"""Unit tests for repro.core.taskgraph: the application model and Figure 2."""

from __future__ import annotations

import pytest

from repro.core.network_model import OrientedGrid
from repro.core.taskgraph import (
    PROCESSING,
    SENSING,
    SINK,
    Task,
    TaskGraph,
    TaskId,
    build_linear_chain,
    build_quadtree,
    quadtree_ascii,
)


class TestTaskGraphConstruction:
    def test_add_and_lookup(self):
        tg = TaskGraph()
        t = tg.add_task(Task(TaskId(0, 0), kind=SENSING))
        assert tg.task(TaskId(0, 0)) is t
        assert TaskId(0, 0) in tg
        assert len(tg) == 1

    def test_duplicate_id_rejected(self):
        tg = TaskGraph()
        tg.add_task(Task(TaskId(0, 0)))
        with pytest.raises(ValueError):
            tg.add_task(Task(TaskId(0, 0)))

    def test_edges(self):
        tg = TaskGraph()
        a, b = TaskId(0, 0), TaskId(1, 0)
        tg.add_task(Task(a))
        tg.add_task(Task(b))
        tg.add_edge(a, b, data_units=2.5)
        assert tg.successors(a) == [b]
        assert tg.predecessors(b) == [a]
        assert tg.edge_units(a, b) == 2.5

    def test_edge_requires_endpoints(self):
        tg = TaskGraph()
        tg.add_task(Task(TaskId(0, 0)))
        with pytest.raises(KeyError):
            tg.add_edge(TaskId(0, 0), TaskId(9, 9))

    def test_self_edge_rejected(self):
        tg = TaskGraph()
        tg.add_task(Task(TaskId(0, 0)))
        with pytest.raises(ValueError):
            tg.add_edge(TaskId(0, 0), TaskId(0, 0))

    def test_duplicate_edge_rejected(self):
        tg = TaskGraph()
        a, b = TaskId(0, 0), TaskId(1, 0)
        tg.add_task(Task(a))
        tg.add_task(Task(b))
        tg.add_edge(a, b)
        with pytest.raises(ValueError):
            tg.add_edge(a, b)

    def test_cycle_rejected_and_rolled_back(self):
        tg = TaskGraph()
        a, b, c = TaskId(0, 0), TaskId(1, 0), TaskId(2, 0)
        for tid in (a, b, c):
            tg.add_task(Task(tid))
        tg.add_edge(a, b)
        tg.add_edge(b, c)
        with pytest.raises(ValueError):
            tg.add_edge(c, a)
        # rollback leaves the graph valid
        assert tg.successors(c) == []
        tg.validate()


class TestTaskGraphQueries:
    def _diamond(self):
        tg = TaskGraph()
        ids = [TaskId(0, 0), TaskId(0, 1), TaskId(1, 0), TaskId(2, 0)]
        for i, tid in enumerate(ids):
            tg.add_task(Task(tid, kind=SENSING if tid.level == 0 else PROCESSING))
        tg.add_edge(ids[0], ids[2])
        tg.add_edge(ids[1], ids[2])
        tg.add_edge(ids[2], ids[3])
        return tg, ids

    def test_leaves_and_roots(self):
        tg, ids = self._diamond()
        assert {t.tid for t in tg.leaves()} == {ids[0], ids[1]}
        assert [t.tid for t in tg.roots()] == [ids[3]]

    def test_topological_order(self):
        tg, ids = self._diamond()
        order = [t.tid for t in tg.topological_order()]
        assert order.index(ids[0]) < order.index(ids[2])
        assert order.index(ids[2]) < order.index(ids[3])

    def test_levels(self):
        tg, _ = self._diamond()
        levels = tg.levels()
        assert [len(lv) for lv in levels] == [2, 1, 1]

    def test_is_tree(self):
        tg, _ = self._diamond()
        assert tg.is_tree()

    def test_not_tree_with_two_roots(self):
        tg = TaskGraph()
        tg.add_task(Task(TaskId(0, 0)))
        tg.add_task(Task(TaskId(0, 1)))
        assert not tg.is_tree()

    def test_arity_uniform(self):
        tg, _ = self._diamond()
        assert tg.arity() is None  # one task has 2 preds, the other 1

    def test_sensing_tasks(self):
        tg, ids = self._diamond()
        assert {t.tid for t in tg.sensing_tasks()} == {ids[0], ids[1]}


class TestValidate:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph().validate()

    def test_sensing_with_predecessor_rejected(self):
        tg = TaskGraph()
        tg.add_task(Task(TaskId(0, 0), kind=PROCESSING))
        tg.add_task(Task(TaskId(1, 0), kind=SENSING))
        tg.add_edge(TaskId(0, 0), TaskId(1, 0))
        with pytest.raises(ValueError):
            tg.validate()

    def test_region_containment_checked(self):
        tg = TaskGraph()
        tg.add_task(Task(TaskId(0, 0), kind=SENSING, region=(5, 5, 1, 1)))
        tg.add_task(Task(TaskId(1, 0), kind=SINK, region=(0, 0, 2, 2)))
        tg.add_edge(TaskId(0, 0), TaskId(1, 0))
        with pytest.raises(ValueError):
            tg.validate()


class TestBuildQuadtree:
    def test_figure2_shape(self):
        # 4x4 grid: 16 leaves + 4 level-1 + 1 root = 21 tasks
        tg = build_quadtree(OrientedGrid(4))
        assert len(tg) == 21
        assert len(tg.leaves()) == 16
        assert len(tg.roots()) == 1
        assert tg.is_tree()
        assert tg.arity() == 4
        tg.validate()

    def test_figure2_labels(self):
        tg = build_quadtree(OrientedGrid(4))
        level1 = sorted(t.tid.index for t in tg.levels()[1])
        assert level1 == [0, 4, 8, 12]  # the paper's Figure 2 labels
        assert tg.levels()[2][0].tid.index == 0

    def test_children_of_root(self):
        tg = build_quadtree(OrientedGrid(4))
        preds = sorted(t.index for t in tg.predecessors(TaskId(2, 0)))
        assert preds == [0, 4, 8, 12]

    def test_kinds(self):
        tg = build_quadtree(OrientedGrid(4))
        assert all(t.kind == SENSING for t in tg.levels()[0])
        assert all(t.kind == PROCESSING for t in tg.levels()[1])
        assert tg.levels()[2][0].kind == SINK

    def test_regions_annotated(self):
        tg = build_quadtree(OrientedGrid(4))
        root = tg.roots()[0]
        assert root.region == (0, 0, 4, 4)
        leaf = tg.task(TaskId(0, 5))
        assert leaf.region == (3, 0, 1, 1)

    def test_trivial_grid(self):
        tg = build_quadtree(OrientedGrid(1))
        assert len(tg) == 1
        assert tg.leaves() == tg.roots()

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            build_quadtree(OrientedGrid(6))
        with pytest.raises(ValueError):
            build_quadtree(OrientedGrid(4, 8))

    def test_edge_units_annotation(self):
        tg = build_quadtree(OrientedGrid(4), data_units_per_edge=3.0)
        assert all(units == 3.0 for _, _, units in tg.edges())

    def test_large_grid_counts(self):
        tg = build_quadtree(OrientedGrid(16))
        # 256 + 64 + 16 + 4 + 1
        assert len(tg) == 341


class TestRendering:
    def test_ascii_contains_all_tasks(self):
        tg = build_quadtree(OrientedGrid(4))
        text = quadtree_ascii(tg)
        assert text.count("\n") + 1 == 21
        assert "[L2] 0 (root)" in text
        assert "[L0] 15 (sense)" in text

    def test_linear_chain(self):
        tg = build_linear_chain(4)
        assert len(tg) == 4
        assert len(tg.leaves()) == 1
        assert tg.is_tree()
        with pytest.raises(ValueError):
            build_linear_chain(0)
