"""Unit tests for the tree-topology synthesis and executor."""

from __future__ import annotations

import pytest

from repro.core import (
    CountAggregation,
    MaxAggregation,
    SumAggregation,
    VirtualTree,
    execute_tree_round,
    synthesize_tree_program,
)
from repro.core.program import Message
from repro.core.synthesis import MGRAPH


class TestTreePrograms:
    def test_leaf_sends_to_parent(self):
        tree = VirtualTree(2, 2)
        spec = synthesize_tree_program(tree, CountAggregation(lambda a: True))
        prog = spec.program_for((2, 3))
        effects = prog.start()
        sends = [e for e in effects if e.kind == "send"]
        assert len(sends) == 1
        assert sends[0].destination == (1, 1)
        assert sends[0].message.kind == MGRAPH
        assert prog.state["done"]

    def test_interior_waits_for_all_children(self):
        tree = VirtualTree(3, 1)
        spec = synthesize_tree_program(tree, CountAggregation(lambda a: True))
        prog = spec.program_for((0, 0))  # root with 3 children
        prog.start()
        effects = []
        for i in range(3):
            effects += prog.deliver(
                Message(MGRAPH, (1, i), payload=1, level=1)
            )
        exfil = [e for e in effects if e.kind == "exfiltrate"]
        assert len(exfil) == 1
        assert exfil[0].payload == 3

    def test_interior_does_not_sense(self):
        # only leaves contribute local values (Section 4.1)
        tree = VirtualTree(2, 1)
        spec = synthesize_tree_program(tree, CountAggregation(lambda a: True))
        prog = spec.program_for((0, 0))
        prog.start()
        effects = []
        for i in range(2):
            effects += prog.deliver(Message(MGRAPH, (1, i), payload=1, level=1))
        exfil = [e for e in effects if e.kind == "exfiltrate"]
        assert exfil[0].payload == 2  # children only, no own +1

    def test_validates_address(self):
        tree = VirtualTree(2, 2)
        spec = synthesize_tree_program(tree, CountAggregation(lambda a: True))
        with pytest.raises(ValueError):
            spec.program_for((5, 0))


class TestTreeExecution:
    @pytest.mark.parametrize("arity,depth", [(2, 1), (2, 4), (3, 3), (4, 2)])
    def test_count_equals_leaf_count(self, arity, depth):
        tree = VirtualTree(arity, depth)
        spec = synthesize_tree_program(tree, CountAggregation(lambda a: True))
        result = execute_tree_round(spec)
        assert result.root_payload == arity**depth
        assert list(result.exfiltrated) == [(0, 0)]

    def test_message_count_is_edges(self):
        tree = VirtualTree(2, 3)
        spec = synthesize_tree_program(tree, CountAggregation(lambda a: True))
        result = execute_tree_round(spec)
        assert result.messages == tree.num_nodes - 1

    def test_latency_is_depth(self):
        tree = VirtualTree(4, 3)
        spec = synthesize_tree_program(tree, CountAggregation(lambda a: True))
        result = execute_tree_round(spec, charge_compute=False)
        assert result.latency == 3.0  # one unit per tree level

    def test_energy_two_per_edge(self):
        tree = VirtualTree(2, 2)
        spec = synthesize_tree_program(tree, CountAggregation(lambda a: True))
        result = execute_tree_round(spec, charge_compute=False)
        assert result.ledger.total == 2.0 * (tree.num_nodes - 1)

    def test_max_reduction(self):
        tree = VirtualTree(2, 3)
        spec = synthesize_tree_program(
            tree, MaxAggregation(lambda a: float(a[1]))
        )
        result = execute_tree_round(spec)
        assert result.root_payload == 7.0  # largest leaf index

    def test_sum_reduction(self):
        tree = VirtualTree(3, 2)
        spec = synthesize_tree_program(tree, SumAggregation(lambda a: 2.0))
        result = execute_tree_round(spec)
        assert result.root_payload == 18.0

    def test_single_node_tree(self):
        tree = VirtualTree(2, 0)
        spec = synthesize_tree_program(tree, CountAggregation(lambda a: True))
        result = execute_tree_round(spec)
        assert result.root_payload == 1
        assert result.messages == 0

    def test_deterministic(self):
        tree = VirtualTree(3, 3)
        spec = synthesize_tree_program(tree, SumAggregation(lambda a: a[1] * 1.0))
        a = execute_tree_round(spec)
        b = execute_tree_round(
            synthesize_tree_program(tree, SumAggregation(lambda a: a[1] * 1.0))
        )
        assert a.root_payload == b.root_payload
        assert a.ledger.per_node() == b.ledger.per_node()


class TestTreeVsGridComparison:
    def test_tree_latency_beats_grid_for_equal_leaves(self):
        # 256 leaves: quad-tree-over-grid pays hop distance; a dedicated
        # 4-ary tree topology pays only its depth — the non-uniform-
        # deployment trade the paper mentions.
        from repro.core import HierarchicalGroups, OrientedGrid, execute_round
        from repro.core import synthesize_quadtree_program

        grid_spec = synthesize_quadtree_program(
            HierarchicalGroups(OrientedGrid(16)),
            CountAggregation(lambda c: True),
        )
        grid = execute_round(grid_spec, charge_compute=False)

        tree = VirtualTree(4, 4)  # 256 leaves
        tree_spec = synthesize_tree_program(tree, CountAggregation(lambda a: True))
        tree_result = execute_tree_round(tree_spec, charge_compute=False)

        assert tree_result.latency < grid.latency
        assert grid.root_payload == 256
        # the tree counts its own 256 leaves
        assert tree_result.root_payload == 256
