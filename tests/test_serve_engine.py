"""Tests for the persistent query-serving engine (``repro.serve``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CountAggregation, VirtualArchitecture
from repro.runtime import FaultEvent, FaultPlan, deploy
from repro.runtime.query import run_deployed_query
from repro.serve import (
    Arrival,
    QueryEngine,
    ServeConfig,
    batch_rounds,
    synthesize_arrivals,
)
from repro.sweep import SweepSpec, run_sweep

from conftest import make_deployment


@pytest.fixture(scope="module")
def served_stack():
    net = make_deployment(side=4, n_random=140, seed=7)
    stack = deploy(net)
    va = VirtualArchitecture(4)
    run = stack.run_application(
        va.synthesize(CountAggregation(lambda c: True), max_level=1)
    )
    assert len(run.exfiltrated) == 4
    return net, stack, dict(run.exfiltrated)


class TestAdmission:
    def test_arrivals_deterministic_and_sorted_in_time(self):
        cells = [(0, 0), (2, 2), (0, 2)]
        a = synthesize_arrivals(cells, 20, seed=4, tenants=3)
        b = synthesize_arrivals(cells, 20, seed=4, tenants=3)
        assert a == b
        assert all(x.time <= y.time for x, y in zip(a, a[1:]))
        assert {arr.tenant for arr in a} <= {0, 1, 2}
        assert synthesize_arrivals(cells, 20, seed=5) != a

    def test_arrivals_validation(self):
        with pytest.raises(ValueError):
            synthesize_arrivals([], 5)
        with pytest.raises(ValueError):
            synthesize_arrivals([(0, 0)], -1)
        with pytest.raises(ValueError):
            synthesize_arrivals([(0, 0)], 5, mean_interarrival=0.0)
        with pytest.raises(ValueError):
            synthesize_arrivals([(0, 0)], 5, tenants=0)
        with pytest.raises(ValueError):
            Arrival(time=-1.0, query_cell=(0, 0))

    def test_rounds_admit_at_window_close(self):
        arrivals = [
            Arrival(time=t, query_cell=(0, 0)) for t in (0.1, 0.9, 1.5, 7.2)
        ]
        rounds = batch_rounds(arrivals, round_interval=1.0)
        assert [(at, len(group)) for at, group in rounds] == [
            (1.0, 2), (2.0, 1), (8.0, 1),
        ]
        # a query is never admitted before it arrived
        for admit_at, group in rounds:
            assert all(a.time <= admit_at for a in group)
        with pytest.raises(ValueError):
            batch_rounds(arrivals, round_interval=0.0)


class TestPersistentEngine:
    def test_clock_is_monotone_across_batches(self, served_stack):
        _, stack, storage = served_stack
        engine = QueryEngine(stack, storage)
        times = []
        for cell in ((3, 3), (1, 1), (3, 3)):
            engine.query(cell, reduce_fn=sum)
            times.append(engine.sim.now)
        assert times == sorted(times)
        assert engine.stats.queries == 3

    def test_warm_cache_matches_cold_and_is_radio_silent(self, served_stack):
        _, stack, storage = served_stack
        engine = QueryEngine(stack, storage)
        cold = engine.query((3, 3), reduce_fn=sum)
        tx = engine.medium.stats.transmissions
        warm = engine.query((3, 3), reduce_fn=sum)
        assert warm.value == cold.value
        assert warm.complete and cold.complete
        assert engine.medium.stats.transmissions == tx
        assert warm.cache_hits == len(storage) and warm.cache_misses == 0
        assert warm.latency == 0.0

    def test_cache_is_per_querier_cell(self, served_stack):
        _, stack, storage = served_stack
        engine = QueryEngine(stack, storage)
        engine.query((3, 3), reduce_fn=sum)
        other = engine.query((1, 1), reduce_fn=sum)
        # a different querier leader holds no cached aggregates yet
        assert other.cache_hits == 0

    def test_update_field_dirties_one_cell(self, served_stack):
        _, stack, storage = served_stack
        engine = QueryEngine(stack, storage)
        baseline = engine.query((3, 3), reduce_fn=None)
        dirty = engine.storage_cells[0]
        engine.update_field(dirty, 50)
        refreshed = engine.query((3, 3), reduce_fn=None)
        assert refreshed.cache_misses == 1
        assert refreshed.cache_hits == len(storage) - 1
        assert 50 in refreshed.value
        assert sorted(baseline.value) != sorted(refreshed.value)

    def test_invalidate_everything_forces_full_refetch(self, served_stack):
        _, stack, storage = served_stack
        engine = QueryEngine(stack, storage)
        engine.query((3, 3), reduce_fn=sum)
        engine.invalidate()
        refetch = engine.query((3, 3), reduce_fn=sum)
        assert refetch.cache_hits == 0
        assert refetch.cache_misses == len(storage)

    def test_cache_off_never_hits(self, served_stack):
        _, stack, storage = served_stack
        engine = QueryEngine(stack, storage, ServeConfig(cache=False))
        engine.query((3, 3), reduce_fn=sum)
        again = engine.query((3, 3), reduce_fn=sum)
        assert again.cache_hits == 0
        assert engine.stats.cache_hits == 0

    def test_wrapper_agrees_with_engine(self, served_stack):
        _, stack, storage = served_stack
        wrapped = run_deployed_query(stack, storage, (2, 2), reduce_fn=sum)
        engine = QueryEngine(stack, storage, ServeConfig(cache=False))
        direct = engine.query((2, 2), reduce_fn=sum)
        assert wrapped.value == direct.value
        assert wrapped.responses == direct.responses
        assert wrapped.complete == direct.complete

    def test_unknown_query_cell_raises(self, served_stack):
        _, stack, storage = served_stack
        engine = QueryEngine(stack, storage)
        with pytest.raises(ValueError):
            engine.query((9, 9))


class TestServeStream:
    def test_per_tenant_accounting(self, served_stack):
        _, stack, storage = served_stack
        engine = QueryEngine(stack, storage)
        arrivals = synthesize_arrivals(
            sorted(stack.binding.leaders), 10, seed=3, tenants=2
        )
        report = engine.serve(arrivals, round_interval=2.0, reduce_fn=sum)
        per_tenant = report.per_tenant()
        assert sum(row["queries"] for row in per_tenant.values()) == 10
        assert report.queries == 10
        assert report.complete_queries == 10
        assert 0.0 < report.cache_hit_rate <= 1.0

    def test_same_seed_engines_fingerprint_identically(self, served_stack):
        _, stack, storage = served_stack
        arrivals = synthesize_arrivals(
            sorted(stack.binding.leaders), 8, seed=6, tenants=2
        )

        def run_once(wire: bool) -> tuple:
            engine = QueryEngine(
                stack,
                storage,
                ServeConfig(
                    loss_rate=0.1,
                    rng=np.random.default_rng(17),
                    reliable=True,
                    wire_format=wire,
                ),
            )
            report = engine.serve(arrivals, round_interval=2.0, reduce_fn=sum)
            return engine.fingerprint(), report.fingerprint()

        assert run_once(False) == run_once(False)
        # the wire codec must be observably transparent to serving
        assert run_once(False) == run_once(True)

    def test_armed_faults_dirty_the_cache_incrementally(self, served_stack):
        _, stack, storage = served_stack
        engine = QueryEngine(stack, storage)
        victim_cell = engine.storage_cells[0]
        victim = stack.binding.leaders[victim_cell]
        warm = engine.query((3, 3), reduce_fn=None)  # warm the cache
        assert warm.complete
        report = engine.arm_faults(
            FaultPlan(events=(FaultEvent(time=0.0, action="kill_node",
                                         node=victim),))
        )
        # the kill fires during this round; the cache was consulted at
        # injection, so this round still serves (stale-by-one) hits...
        during = engine.query((3, 3), reduce_fn=None)
        assert during.complete
        assert report.injected == [(0.0, "kill_node", victim)]
        # ...and the *next* round re-fetches the dirtied cell, finding
        # its leader dead: the loss is reported, never papered over
        after = engine.query((3, 3), reduce_fn=None)
        assert after.cache_misses == 1
        assert not after.complete
        assert after.missing_cells == [victim_cell]

    def test_dead_querier_degrades_to_all_missing(self, served_stack):
        _, stack, storage = served_stack
        engine = QueryEngine(stack, storage)
        querier_cell = (1, 2)
        assert querier_cell not in storage
        stack.network.node(stack.binding.leaders[querier_cell]).kill()
        try:
            outcome = engine.query(querier_cell, reduce_fn=None)
        finally:
            stack.network.node(stack.binding.leaders[querier_cell]).revive()
        assert not outcome.complete
        assert outcome.missing_cells == sorted(storage)
        assert outcome.value == []


class TestServeWorkload:
    PARAMS = {"side": 4, "n_random": 140, "n_queries": 8, "updates": 1}

    def sweep(self, workers: int, extra=None):
        spec = SweepSpec(
            name="serve-test",
            workload="serve",
            grid={"tenants": [1, 2]},
            fixed={**self.PARAMS, **(extra or {})},
        )
        records = run_sweep(spec, workers=workers)
        assert all(r["status"] == "ok" for r in records), [
            r["error"] for r in records if r["status"] != "ok"
        ]
        return sorted(records, key=lambda r: r["run_id"])

    def test_serial_vs_sharded_fingerprints_identical(self):
        serial = self.sweep(workers=1)
        sharded = self.sweep(workers=2)
        assert [r["fingerprint"] for r in serial] == [
            r["fingerprint"] for r in sharded
        ]
        for r in serial:
            assert r["metrics"]["complete_queries"] == r["metrics"]["queries"]
            assert r["metrics"]["cache_hit_rate"] > 0.0

    def test_workload_wire_invariant(self):
        # direct calls: the sweep scheduler folds params (including
        # ``wire``) into its derived seeds, so codec invariance is only
        # observable at fixed seed
        from repro.sweep.workloads import WORKLOADS

        plain = WORKLOADS["serve"]({**self.PARAMS, "wire": False}, seed=21)
        wired = WORKLOADS["serve"]({**self.PARAMS, "wire": True}, seed=21)
        assert plain.fingerprint == wired.fingerprint

        def deterministic(metrics):
            return {
                k: v for k, v in metrics.items()
                if not k.endswith("_s") and not k.endswith("_per_s")
            }

        assert deterministic(plain.metrics) == deterministic(wired.metrics)
