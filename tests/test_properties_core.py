"""Property-based tests for core invariants: Morton order, routing,
group hierarchy, cost metrics, and the synthesized program."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coords import (
    manhattan,
    morton_decode,
    morton_encode,
    xy_route,
)
from repro.core.cost_model import EnergyLedger, energy_balance
from repro.core.executor import execute_round
from repro.core.groups import HierarchicalGroups
from repro.core.network_model import OrientedGrid
from repro.core.synthesis import CountAggregation, synthesize_quadtree_program

coords = st.tuples(
    st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=500)
)


class TestMortonProperties:
    @given(coords)
    def test_roundtrip(self, c):
        assert morton_decode(morton_encode(c)) == c

    @given(st.integers(min_value=0, max_value=10**9))
    def test_inverse_roundtrip(self, i):
        assert morton_encode(morton_decode(i)) == i

    @given(coords, coords)
    def test_injective(self, a, b):
        if a != b:
            assert morton_encode(a) != morton_encode(b)

    @given(coords)
    def test_quadrant_prefix(self, c):
        # shifting coords right by 1 shifts the Morton code right by 2:
        # parent quadrant is a prefix of the child code
        x, y = c
        assert morton_encode((x // 2, y // 2)) == morton_encode(c) >> 2


class TestRoutingProperties:
    @given(coords, coords)
    def test_route_length_is_manhattan(self, a, b):
        path = xy_route(a, b)
        assert len(path) == manhattan(a, b) + 1

    @given(coords, coords)
    def test_route_steps_unit(self, a, b):
        path = xy_route(a, b)
        for u, v in zip(path, path[1:]):
            assert manhattan(u, v) == 1

    @given(coords, coords, coords)
    def test_triangle_inequality(self, a, b, c):
        assert manhattan(a, c) <= manhattan(a, b) + manhattan(b, c)


grid_exp = st.integers(min_value=0, max_value=5)


class TestGroupProperties:
    @given(grid_exp, st.data())
    @settings(max_examples=60, deadline=None)
    def test_leader_idempotent(self, exp, data):
        side = 2**exp
        groups = HierarchicalGroups(OrientedGrid(side))
        x = data.draw(st.integers(0, side - 1))
        y = data.draw(st.integers(0, side - 1))
        level = data.draw(st.integers(0, groups.max_level))
        leader = groups.leader((x, y), level)
        assert groups.leader(leader, level) == leader

    @given(grid_exp, st.data())
    @settings(max_examples=60, deadline=None)
    def test_member_of_own_group(self, exp, data):
        side = 2**exp
        groups = HierarchicalGroups(OrientedGrid(side))
        x = data.draw(st.integers(0, side - 1))
        y = data.draw(st.integers(0, side - 1))
        level = data.draw(st.integers(0, groups.max_level))
        assert (x, y) in groups.members((x, y), level)

    @given(grid_exp, st.data())
    @settings(max_examples=60, deadline=None)
    def test_groups_nest(self, exp, data):
        # the level-k group of a node is contained in its level-(k+1) group
        side = 2**exp
        groups = HierarchicalGroups(OrientedGrid(side))
        if groups.max_level == 0:
            return
        x = data.draw(st.integers(0, side - 1))
        y = data.draw(st.integers(0, side - 1))
        level = data.draw(st.integers(0, groups.max_level - 1))
        inner = set(groups.members((x, y), level))
        outer = set(groups.members((x, y), level + 1))
        assert inner <= outer

    @given(grid_exp)
    @settings(max_examples=10, deadline=None)
    def test_child_leaders_cover_block(self, exp):
        side = 2**exp
        groups = HierarchicalGroups(OrientedGrid(side))
        for level in range(1, groups.max_level + 1):
            for leader in groups.leaders_at(level):
                children = groups.child_leaders(leader, level)
                assert len(children) == 4
                # children lead disjoint sub-blocks covering the block
                covered = set()
                for ch in children:
                    covered |= set(groups.members(ch, level - 1))
                assert covered == set(groups.members(leader, level))


class TestLedgerProperties:
    @given(
        st.dictionaries(
            st.integers(0, 20), st.floats(0.0, 100.0), min_size=0, max_size=20
        )
    )
    def test_balance_in_unit_interval(self, charges):
        ledger = EnergyLedger()
        for node, amount in charges.items():
            ledger.charge(node, amount)
        assert 0.0 <= energy_balance(ledger) <= 1.0

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.floats(0.0, 10.0)),
            min_size=0,
            max_size=30,
        )
    )
    def test_total_is_sum(self, charges):
        ledger = EnergyLedger()
        for node, amount in charges.items() if isinstance(charges, dict) else charges:
            ledger.charge(node, amount)
        assert ledger.total == pytest.approx(
            sum(a for _, a in charges), abs=1e-9
        )


class TestProgramProperties:
    @given(st.integers(min_value=0, max_value=4), st.data())
    @settings(max_examples=40, deadline=None)
    def test_count_reduction_exact_for_any_feature_set(self, exp, data):
        side = 2**exp
        n_features = data.draw(st.integers(0, side * side))
        chosen = data.draw(
            st.sets(
                st.tuples(
                    st.integers(0, side - 1), st.integers(0, side - 1)
                ),
                max_size=n_features,
            )
        )
        groups = HierarchicalGroups(OrientedGrid(side))
        spec = synthesize_quadtree_program(
            groups, CountAggregation(lambda c: c in chosen)
        )
        result = execute_round(spec)
        assert result.root_payload == len(chosen)

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=5, deadline=None)
    def test_message_count_closed_form(self, exp):
        side = 2**exp
        groups = HierarchicalGroups(OrientedGrid(side))
        spec = synthesize_quadtree_program(groups, CountAggregation(lambda c: True))
        result = execute_round(spec)
        # 3 messages per group, sum over levels of 4^(m-k) groups = N-1 ... / 3:
        expected = sum(3 * 4 ** (exp - k) for k in range(1, exp + 1))
        assert result.messages == expected
