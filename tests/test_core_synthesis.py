"""Unit tests for repro.core.synthesis: the Figure 4 program generator."""

from __future__ import annotations

import pytest

from repro.core.groups import CenterLeaderPolicy, HierarchicalGroups
from repro.core.network_model import OrientedGrid
from repro.core.program import EXFILTRATE, SEND, Message
from repro.core.synthesis import (
    MGRAPH,
    CountAggregation,
    MaxAggregation,
    SumAggregation,
    synthesize_quadtree_program,
)


@pytest.fixture
def spec4(groups4):
    return synthesize_quadtree_program(groups4, CountAggregation(lambda c: True))


class TestSynthesis:
    def test_max_level_defaults_to_top(self, spec4):
        assert spec4.max_level == 2

    def test_max_level_bounds(self, groups4):
        agg = CountAggregation(lambda c: True)
        with pytest.raises(ValueError):
            synthesize_quadtree_program(groups4, agg, max_level=3)
        with pytest.raises(ValueError):
            synthesize_quadtree_program(groups4, agg, max_level=-1)

    def test_program_for_validates_coord(self, spec4):
        with pytest.raises(ValueError):
            spec4.program_for((9, 9))

    def test_roles(self, spec4):
        root = spec4.roles((0, 0))
        assert root["is_root"] and root["lead_levels"] == [0, 1, 2]
        leaf = spec4.roles((1, 0))
        assert not leaf["is_root"] and leaf["lead_levels"] == [0]

    def test_render_figure4(self, spec4):
        text = spec4.render_figure4()
        assert "mGraph" in text
        assert "msgsReceived" in text
        assert "Condition : start = true" in text
        assert "exfiltrate" in text


class TestLeafBehaviour:
    def test_leaf_sends_to_level1_leader(self, spec4):
        prog = spec4.program_for((1, 0))
        effects = prog.start()
        sends = [e for e in effects if e.kind == SEND]
        assert len(sends) == 1
        assert sends[0].destination == (0, 0)
        assert sends[0].message.kind == MGRAPH
        assert sends[0].message.level == 1
        assert prog.state["done"]

    def test_leaf_payload_is_local_summary(self, spec4):
        prog = spec4.program_for((3, 3))
        effects = prog.start()
        send = next(e for e in effects if e.kind == SEND)
        assert send.message.payload == 1  # CountAggregation local value

    def test_start_is_idempotent_when_done(self, spec4):
        prog = spec4.program_for((1, 0))
        first = prog.start()
        second = prog.start()
        assert any(e.kind == SEND for e in first)
        assert not any(e.kind == SEND for e in second)


class TestLeaderBehaviour:
    def test_level1_leader_self_merges_then_waits(self, spec4):
        prog = spec4.program_for((2, 0))
        effects = prog.start()
        # no radio send yet: own summary self-merged into level 1
        assert not any(e.kind == SEND for e in effects)
        assert prog.state["recLevel"] == 1
        assert prog.state["ownMerged"][1]

    def test_level1_leader_sends_after_three_children(self, spec4):
        prog = spec4.program_for((2, 0))
        prog.start()
        senders = [(3, 0), (2, 1), (3, 1)]
        all_effects = []
        for s in senders:
            all_effects += prog.deliver(
                Message(MGRAPH, s, payload=1, level=1)
            )
        sends = [e for e in all_effects if e.kind == SEND]
        assert len(sends) == 1
        assert sends[0].destination == (0, 0)
        assert sends[0].message.level == 2
        assert sends[0].message.payload == 4  # quadrant count
        assert prog.state["done"]

    def test_out_of_order_levels_buffered(self, spec4):
        # The root receives a level-2 message before completing level 1
        # ("A level i leader can receive messages from other level i+1
        #  leaders before it completes processing messages from level
        #  i leaders in its own quadrant").
        prog = spec4.program_for((0, 0))
        prog.start()
        prog.deliver(Message(MGRAPH, (2, 0), payload=4, level=2))
        assert prog.state["msgsReceived"][2] == 1
        assert prog.state["recLevel"] == 1  # still working on level 1

    def test_root_exfiltrates_total(self, spec4):
        prog = spec4.program_for((0, 0))
        prog.start()
        effects = []
        for s in ((1, 0), (0, 1), (1, 1)):
            effects += prog.deliver(Message(MGRAPH, s, payload=1, level=1))
        for s in ((2, 0), (0, 2), (2, 2)):
            effects += prog.deliver(Message(MGRAPH, s, payload=4, level=2))
        exfil = [e for e in effects if e.kind == EXFILTRATE]
        assert len(exfil) == 1
        assert exfil[0].payload == 16
        assert prog.state["exfiltrated"] == 16

    def test_root_handles_arbitrary_arrival_order(self, spec4):
        prog = spec4.program_for((0, 0))
        prog.start()
        effects = []
        # level-2 messages first, then level-1
        for s in ((2, 0), (0, 2), (2, 2)):
            effects += prog.deliver(Message(MGRAPH, s, payload=4, level=2))
        for s in ((1, 0), (0, 1), (1, 1)):
            effects += prog.deliver(Message(MGRAPH, s, payload=1, level=1))
        exfil = [e for e in effects if e.kind == EXFILTRATE]
        assert len(exfil) == 1
        assert exfil[0].payload == 16


class TestPartialReduction:
    def test_max_level_zero_every_node_exfiltrates(self, groups4):
        spec = synthesize_quadtree_program(
            groups4, CountAggregation(lambda c: True), max_level=0
        )
        prog = spec.program_for((3, 1))
        effects = prog.start()
        assert [e.kind for e in effects if e.kind != "log"] == [EXFILTRATE]

    def test_max_level_one_leaders_store(self, groups4):
        spec = synthesize_quadtree_program(
            groups4, CountAggregation(lambda c: True), max_level=1
        )
        prog = spec.program_for((2, 2))
        prog.start()
        effects = []
        for s in ((3, 2), (2, 3), (3, 3)):
            effects += prog.deliver(Message(MGRAPH, s, payload=1, level=1))
        exfil = [e for e in effects if e.kind == EXFILTRATE]
        assert len(exfil) == 1 and exfil[0].payload == 4


class TestNonNestedPolicy:
    def test_gap_levels_still_merge(self):
        grid = OrientedGrid(4)
        groups = HierarchicalGroups(grid, policy=CenterLeaderPolicy())
        spec = synthesize_quadtree_program(groups, CountAggregation(lambda c: True))
        # (1, 1) leads level 2 but not level 1 under the center policy
        assert groups.is_leader((1, 1), 2)
        assert not groups.is_leader((1, 1), 1)
        prog = spec.program_for((1, 1))
        effects = prog.start()
        # its own leaf data goes to the foreign level-1 leader (0, 0)
        sends = [e for e in effects if e.kind == SEND]
        assert len(sends) == 1 and sends[0].destination == (0, 0)
        assert not prog.state["done"]  # still anchors level 2
        # four external level-2 contributions complete the reduction
        all_effects = []
        for s, v in (((0, 0), 4), ((2, 0), 4), ((0, 2), 4), ((2, 2), 4)):
            all_effects += prog.deliver(Message(MGRAPH, s, payload=v, level=2))
        exfil = [e for e in all_effects if e.kind == EXFILTRATE]
        assert len(exfil) == 1 and exfil[0].payload == 16


class TestAlgebraicAggregations:
    def test_max_aggregation(self, groups4):
        readings = {c: float(c[0] + 10 * c[1]) for c in groups4.grid.nodes()}
        spec = synthesize_quadtree_program(
            groups4, MaxAggregation(lambda c: readings[c])
        )
        from repro.core.executor import execute_round

        result = execute_round(spec)
        assert result.root_payload == max(readings.values())

    def test_sum_aggregation(self, groups4):
        spec = synthesize_quadtree_program(groups4, SumAggregation(lambda c: 2.0))
        from repro.core.executor import execute_round

        result = execute_round(spec)
        assert result.root_payload == 32.0

    def test_count_aggregation_partial(self, groups4):
        feature = lambda c: c == (0, 0)
        spec = synthesize_quadtree_program(groups4, CountAggregation(feature))
        from repro.core.executor import execute_round

        result = execute_round(spec)
        assert result.root_payload == 1
