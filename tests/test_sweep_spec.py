"""Unit tests for SweepSpec expansion and deterministic seed derivation."""

from __future__ import annotations

import json

import pytest

from repro.sweep import RunSpec, SweepSpec, derive_seed
from repro.sweep.spec import AUDIT_SUFFIX


def small_spec(**overrides) -> SweepSpec:
    fields = {
        "name": "unit",
        "workload": "storm",
        "grid": {"loss": [0.0, 0.1], "side": [4, 8]},
        "fixed": {"rounds": 3},
        "replicates": 2,
    }
    fields.update(overrides)
    return SweepSpec(**fields)


class TestSpecHash:
    def test_stable_across_instances(self):
        assert small_spec().spec_hash() == small_spec().spec_hash()

    def test_sensitive_to_every_seed_determining_field(self):
        base = small_spec().spec_hash()
        assert small_spec(name="other").spec_hash() != base
        assert small_spec(workload="e1").spec_hash() != base
        assert small_spec(grid={"loss": [0.0], "side": [4, 8]}).spec_hash() != base
        assert small_spec(fixed={"rounds": 4}).spec_hash() != base
        assert small_spec(replicates=3).spec_hash() != base
        assert small_spec(seed_salt=1).spec_hash() != base

    def test_audit_count_does_not_perturb_hash_or_seeds(self):
        plain, audited = small_spec(), small_spec(audit_duplicates=3)
        assert plain.spec_hash() == audited.spec_hash()
        plain_seeds = {r.run_id: r.seed for r in plain.expand()}
        audited_seeds = {
            r.run_id: r.seed for r in audited.expand() if not r.audit
        }
        assert plain_seeds == audited_seeds

    def test_grid_key_order_is_canonical(self):
        a = small_spec(grid={"loss": [0.0], "side": [4]})
        b = small_spec(grid={"side": [4], "loss": [0.0]})
        assert a.spec_hash() == b.spec_hash()
        assert a.points() == b.points()


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed("abc", 0, 3, 1) == derive_seed("abc", 0, 3, 1)

    def test_distinct_across_points_and_replicates(self):
        seeds = {
            derive_seed("abc", 0, p, r) for p in range(50) for r in range(10)
        }
        assert len(seeds) == 500

    def test_in_numpy_seed_range(self):
        seed = derive_seed("ff" * 8, 7, 123, 45)
        assert 0 <= seed < 2**63

    def test_fixed_seed_overrides_derivation(self):
        spec = small_spec(fixed={"rounds": 3, "seed": 99})
        assert all(r.seed == 99 for r in spec.expand())


class TestExpansion:
    def test_point_count_and_order(self):
        spec = small_spec()
        points = spec.points()
        assert len(points) == 4  # 2 losses x 2 sides
        # sorted param names: loss varies slower than side
        assert [(p["loss"], p["side"]) for p in points] == [
            (0.0, 4), (0.0, 8), (0.1, 4), (0.1, 8),
        ]
        assert all(p["rounds"] == 3 for p in points)

    def test_run_ids_unique_and_stable(self):
        runs = small_spec(audit_duplicates=2).expand()
        ids = [r.run_id for r in runs]
        assert len(ids) == len(set(ids)) == 10  # 4 points x 2 reps + 2 audits
        assert ids == [r.run_id for r in small_spec(audit_duplicates=2).expand()]

    def test_audit_duplicates_mirror_their_primary(self):
        runs = small_spec(audit_duplicates=2).expand()
        audits = [r for r in runs if r.audit]
        assert len(audits) == 2
        by_id = {r.run_id: r for r in runs}
        for dup in audits:
            assert dup.run_id.endswith(AUDIT_SUFFIX)
            primary = by_id[dup.primary_id]
            assert not primary.audit
            assert dup.seed == primary.seed
            assert dup.params == primary.params

    def test_empty_grid_is_a_single_point(self):
        spec = SweepSpec(name="one", workload="storm", fixed={"side": 4})
        assert len(spec.expand()) == 1
        assert spec.points() == [{"side": 4}]

    def test_record_fields_round_trip_json(self):
        run = small_spec().expand()[0]
        assert isinstance(run, RunSpec)
        fields = json.loads(json.dumps(run.record_fields()))
        assert fields["run_id"] == run.run_id
        assert fields["seed"] == run.seed


class TestValidationAndSerialization:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            SweepSpec(name="", workload="storm")
        with pytest.raises(ValueError):
            SweepSpec(name="x", workload="storm", replicates=0)
        with pytest.raises(ValueError):
            SweepSpec(name="x", workload="storm", grid={"loss": []})
        with pytest.raises(ValueError):
            SweepSpec.from_dict({"name": "x", "workload": "storm", "bogus": 1})

    def test_dict_and_file_round_trip(self, tmp_path):
        spec = small_spec(audit_duplicates=2, seed_salt=5)
        clone = SweepSpec.from_dict(spec.to_dict())
        assert clone == spec
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert SweepSpec.from_file(str(path)) == spec
