"""Unit + property tests for the flood-fill baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.floodfill import compare_three_designs, run_floodfill
from repro.apps.reference import count_regions, region_areas
from repro.apps import random_feature_matrix


class TestFloodFillCorrectness:
    def test_empty(self):
        result = run_floodfill(np.zeros((4, 4), dtype=bool))
        assert result.regions == 0
        assert result.rounds == 0
        assert result.messages == 0

    def test_single_cell(self):
        feat = np.zeros((4, 4), dtype=bool)
        feat[2, 1] = True
        result = run_floodfill(feat)
        assert result.regions == 1
        assert result.areas() == [1]

    def test_solid_block(self):
        feat = np.ones((8, 8), dtype=bool)
        result = run_floodfill(feat)
        assert result.regions == 1
        assert result.areas() == [64]

    def test_checkerboard(self):
        feat = np.indices((8, 8)).sum(axis=0) % 2 == 0
        result = run_floodfill(feat)
        assert result.regions == 32

    def test_matches_reference_on_random(self):
        rng = np.random.default_rng(3)
        for _ in range(15):
            feat = random_feature_matrix(8, float(rng.uniform(0.2, 0.8)), rng)
            result = run_floodfill(feat)
            assert result.regions == count_regions(feat)
            assert result.areas() == region_areas(feat)

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_reference(self, bits):
        feat = np.array(
            [(bits >> i) & 1 for i in range(16)], dtype=bool
        ).reshape(4, 4)
        result = run_floodfill(feat)
        assert result.regions == count_regions(feat)
        assert result.areas() == region_areas(feat)

    def test_labels_are_region_minima(self):
        feat = np.zeros((4, 4), dtype=bool)
        feat[0, :] = True  # top row: one region, min Morton id = id of (0,0)=0
        result = run_floodfill(feat)
        assert set(result.labels.values()) == {0}

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            run_floodfill(np.zeros((2, 4), dtype=bool))


class TestFloodFillCosts:
    def test_rounds_bounded_by_region_diameter(self):
        # a full row: the label of (0,y) must travel side-1 hops
        side = 8
        feat = np.zeros((side, side), dtype=bool)
        feat[0, :] = True
        result = run_floodfill(feat)
        assert side - 1 <= result.rounds <= side + 1

    def test_serpentine_worst_case(self):
        # snake region: path length ~N, far beyond the quad-tree's O(sqrt N)
        side = 8
        feat = np.zeros((side, side), dtype=bool)
        for y in range(side):
            feat[y, :] = True if y % 2 == 0 else False
            if y % 2 == 1:
                feat[y, 0 if (y // 2) % 2 == 1 else side - 1] = True
        result = run_floodfill(feat)
        assert result.regions == count_regions(feat)
        assert result.rounds > 2 * side  # super-sqrt scaling on the snake

    def test_energy_grows_with_density(self):
        lo = run_floodfill(random_feature_matrix(8, 0.2, rng=1))
        hi = run_floodfill(random_feature_matrix(8, 0.8, rng=1))
        assert hi.ledger.total > lo.ledger.total

    def test_deterministic(self):
        feat = random_feature_matrix(8, 0.5, rng=5)
        a = run_floodfill(feat)
        b = run_floodfill(feat)
        assert a.regions == b.regions
        assert a.rounds == b.rounds
        assert a.ledger.per_node() == b.ledger.per_node()


class TestThreeWayComparison:
    def test_all_designs_agree_on_regions(self):
        feat = random_feature_matrix(8, 0.45, rng=7)
        rows = compare_three_designs(feat)
        counts = {r["regions"] for r in rows.values()}
        assert counts == {float(count_regions(feat))}

    def test_quadtree_beats_floodfill_on_snake(self):
        # the serpentine region is flood-fill's worst case: its round count
        # tracks the region diameter (~N/2), far beyond the quad-tree's
        # 2(side-1) hop-steps, and label chatter costs more total energy
        side = 16
        feat = np.zeros((side, side), dtype=bool)
        for y in range(side):
            if y % 2 == 0:
                feat[y, :] = True
            else:
                feat[y, 0 if (y // 2) % 2 == 1 else side - 1] = True
        flood = run_floodfill(feat)
        assert flood.rounds > 2 * (side - 1)  # worse than quad-tree steps
        rows = compare_three_designs(feat)
        assert rows["quad-tree"]["total_energy"] < rows["flood-fill"]["total_energy"]

    def test_floodfill_has_no_hierarchy_hotspot(self):
        feat = random_feature_matrix(16, 0.4, rng=9)
        rows = compare_three_designs(feat)
        # label propagation load is local: hot spot well below centralized's
        assert (
            rows["flood-fill"]["max_node_energy"]
            < rows["centralized"]["max_node_energy"]
        )
