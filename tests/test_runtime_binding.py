"""Unit tests for the Section 5.2 process-binding (leader election)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.binding import (
    bind_processes,
    distance_to_center_metric,
    oracle_binding,
    residual_energy_metric,
)

from conftest import make_deployment


@pytest.fixture(scope="module")
def bound4():
    net = make_deployment(side=4)
    return net, bind_processes(net)


class TestElection:
    def test_exactly_one_leader_per_cell(self, bound4):
        net, result = bound4
        assert set(result.binding.leaders) == set(net.cells.cells())

    def test_verify_clean(self, bound4):
        _, result = bound4
        assert result.binding.verify() == []

    def test_leader_is_closest_to_center(self, bound4):
        net, result = bound4
        for cell, leader in result.binding.leaders.items():
            best = min(
                net.members_of_cell(cell),
                key=lambda m: (distance_to_center_metric(net, m), m),
            )
            assert leader == best

    def test_leader_in_own_cell(self, bound4):
        net, result = bound4
        for cell, leader in result.binding.leaders.items():
            assert net.cell_of(leader) == cell

    def test_is_leader_predicate(self, bound4):
        net, result = bound4
        leaders = set(result.binding.leaders.values())
        for nid in net.node_ids():
            assert result.binding.is_leader(nid) == (nid in leaders)

    def test_deterministic(self):
        net1 = make_deployment(side=4, seed=17)
        net2 = make_deployment(side=4, seed=17)
        r1 = bind_processes(net1)
        r2 = bind_processes(net2)
        assert r1.binding.leaders == r2.binding.leaders


class TestGradient:
    def test_every_member_reaches_leader(self, bound4):
        net, result = bound4
        for nid in net.node_ids():
            path = result.binding.path_to_leader(nid)
            assert path[0] == nid
            assert result.binding.is_leader(path[-1])
            # gradient stays within the cell
            cell = net.cell_of(nid)
            assert all(net.cell_of(p) == cell for p in path)

    def test_leader_path_is_self(self, bound4):
        _, result = bound4
        for leader in result.binding.leaders.values():
            assert result.binding.path_to_leader(leader) == [leader]

    def test_gradient_hops_are_radio_links(self, bound4):
        net, result = bound4
        for nid in net.node_ids():
            path = result.binding.path_to_leader(nid)
            for a, b in zip(path, path[1:]):
                assert b in net.neighbors(a)


class TestMetrics:
    def test_residual_energy_metric(self):
        net = make_deployment(side=4, seed=19)
        # give one node in cell (0,0) a distinctly fuller battery
        members = net.members_of_cell((0, 0))
        for nid in members:
            net.node(nid).draw(10.0)
        champion = members[-1]
        net.node(champion).revive(energy=1e9)
        result = bind_processes(net, metric=residual_energy_metric)
        assert result.binding.leaders[(0, 0)] == champion

    def test_oracle_binding_matches_protocol(self):
        net = make_deployment(side=4, seed=23)
        result = bind_processes(net)
        assert result.binding.leaders == oracle_binding(net)

    def test_custom_metric_tie_break_by_id(self):
        net = make_deployment(side=4, seed=29)
        result = bind_processes(net, metric=lambda n, nid: 0.0)
        for cell, leader in result.binding.leaders.items():
            assert leader == min(net.members_of_cell(cell))


class TestCosts:
    def test_setup_costs_positive(self, bound4):
        _, result = bound4
        assert result.messages > 0
        assert result.energy > 0
        assert result.setup_time > 0

    def test_at_least_one_message_per_node(self, bound4):
        net, result = bound4
        assert result.messages >= len(net)


class TestMultiHopCells:
    def test_election_with_multi_hop_cells(self):
        # short range: the min-flood needs several hops to cover a cell
        net = make_deployment(side=4, n_random=300, range_cells=0.7, seed=5)
        assert net.validate_protocol_preconditions() == []
        result = bind_processes(net)
        assert result.binding.verify() == []
        # flooding took more than one time unit
        assert result.setup_time > 1.0
