"""Property-based tests for the runtime transport under adversity.

The safety property that matters: whatever the loss pattern, the deployed
reduction either completes with the *correct* answer or visibly stalls —
it never reports a wrong result (duplicates suppressed, merges exact).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import (
    count_regions,
    feature_matrix_aggregation,
    random_feature_matrix,
)
from repro.core import CountAggregation, VirtualArchitecture
from repro.runtime import deploy

from conftest import make_deployment

# one shared deployment: hypothesis varies loss seeds and fields
_NET = make_deployment(side=4, seed=3)
_STACK = deploy(_NET)
_VA = VirtualArchitecture(4)

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestLossSafety:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.0, max_value=0.4),
    )
    @SETTINGS
    def test_unreliable_never_wrong(self, seed, loss):
        feat = random_feature_matrix(4, 0.5, rng=seed)
        truth = count_regions(feat)
        run = _STACK.run_application(
            _VA.synthesize(feature_matrix_aggregation(feat)),
            loss_rate=loss,
            rng=np.random.default_rng(seed),
        )
        if run.exfiltrated:
            assert run.root_payload.total_regions() == truth

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.0, max_value=0.3),
    )
    @SETTINGS
    def test_reliable_never_wrong_and_usually_completes(self, seed, loss):
        feat = random_feature_matrix(4, 0.5, rng=seed)
        truth = count_regions(feat)
        run = _STACK.run_application(
            _VA.synthesize(feature_matrix_aggregation(feat)),
            loss_rate=loss,
            rng=np.random.default_rng(seed),
            reliable=True,
            max_retries=8,
        )
        if run.exfiltrated:
            assert run.root_payload.total_regions() == truth
        else:
            # only a retry-budget exhaustion may stall the round
            assert run.drops > 0

    @given(st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_lossless_always_completes(self, seed):
        feat = random_feature_matrix(4, 0.5, rng=seed)
        run = _STACK.run_application(
            _VA.synthesize(feature_matrix_aggregation(feat))
        )
        assert run.root_payload.total_regions() == count_regions(feat)
        assert run.drops == 0


class TestCountInvariance:
    @given(st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_count_reduction_deployed_equals_design(self, seed):
        rng = np.random.default_rng(seed)
        chosen = {
            (int(x), int(y))
            for x, y in rng.integers(0, 4, size=(rng.integers(0, 17), 2))
        }
        agg = CountAggregation(lambda c: c in chosen)
        virtual = _VA.execute(agg)
        deployed = _STACK.run_application(_VA.synthesize(agg))
        assert virtual.root_payload == deployed.root_payload == len(chosen)
