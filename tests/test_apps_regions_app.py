"""Unit tests for the region aggregation, the app wrapper, the baseline,
and the distributed-storage queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    DistributedStorage,
    GaussianBlobField,
    GradientField,
    RegionAggregation,
    TopographicQueryApp,
    compare_designs,
    count_regions,
    count_regions_exact,
    count_regions_fast,
    enumerate_region_areas,
    feature_area_total,
    feature_matrix_aggregation,
    label_regions_quadtree,
    largest_region,
    random_feature_matrix,
    region_areas,
    run_centralized,
    summary_statistics,
)
from repro.core import OrientedGrid, UniformCostModel, VirtualArchitecture


class TestRegionAggregation:
    def test_virtual_execution_matches_oracle(self):
        rng = np.random.default_rng(1)
        va = VirtualArchitecture(8)
        for _ in range(10):
            feat = random_feature_matrix(8, float(rng.uniform(0.1, 0.9)), rng)
            result = va.execute(feature_matrix_aggregation(feat))
            summary = result.root_payload
            assert summary.total_regions() == count_regions(feat)
            assert summary.all_areas() == region_areas(feat)

    def test_matches_pure_recursive_version(self):
        rng = np.random.default_rng(2)
        va = VirtualArchitecture(8)
        feat = random_feature_matrix(8, 0.5, rng)
        distributed = va.execute(feature_matrix_aggregation(feat)).root_payload
        recursive = label_regions_quadtree(feat)
        assert distributed == recursive  # identical canonical summaries

    def test_message_sizes_are_boundary_sizes(self):
        va = VirtualArchitecture(8)
        feat = np.ones((8, 8), dtype=bool)
        result = va.execute(feature_matrix_aggregation(feat), charge_compute=False)
        # data-dependent sizes: more than 1 unit per message on solid input
        assert result.data_units > result.messages

    def test_empty_field_minimal_messages(self):
        va = VirtualArchitecture(8)
        feat = np.zeros((8, 8), dtype=bool)
        result = va.execute(feature_matrix_aggregation(feat), charge_compute=False)
        # all summaries are empty: exactly 1 header unit per message
        assert result.data_units == result.messages

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            feature_matrix_aggregation(np.zeros((4, 8), dtype=bool))

    def test_summary_statistics(self):
        feat = np.zeros((4, 4), dtype=bool)
        feat[1, 1] = True
        stats = summary_statistics(label_regions_quadtree(feat))
        assert stats["regions"] == 1
        assert stats["total_area"] == 1


class TestTopographicQueryApp:
    def test_blob_app_correct(self):
        va = VirtualArchitecture(16)
        field = GaussianBlobField([(0.25, 0.25, 0.1, 1.0), (0.7, 0.7, 0.08, 1.0)])
        app = TopographicQueryApp(va, field, threshold=0.5)
        report = app.run_virtual()
        assert report.correct
        assert report.regions == report.expected_regions == 2

    def test_gradient_app_single_region(self):
        va = VirtualArchitecture(8)
        app = TopographicQueryApp(va, GradientField(0.0, 1.0), threshold=0.5)
        report = app.run_virtual()
        assert report.correct
        assert report.regions == 1

    def test_threshold_above_everything(self):
        va = VirtualArchitecture(8)
        app = TopographicQueryApp(va, GradientField(0.0, 1.0), threshold=5.0)
        report = app.run_virtual()
        assert report.regions == 0 and report.correct

    def test_ascii_map_dimensions(self):
        va = VirtualArchitecture(8)
        app = TopographicQueryApp(va, GradientField(), threshold=0.5)
        lines = app.ascii_feature_map().splitlines()
        assert len(lines) == 8
        assert all(len(line) == 8 for line in lines)

    def test_performance_populated(self):
        va = VirtualArchitecture(8)
        app = TopographicQueryApp(va, GradientField(), threshold=0.5)
        report = app.run_virtual()
        assert report.performance.latency > 0
        assert report.performance.total_energy > 0


class TestCentralizedBaseline:
    def test_correctness_trivial(self):
        feat = random_feature_matrix(8, 0.4, rng=3)
        result = run_centralized(feat)
        assert result.regions == count_regions(feat)
        assert result.areas == region_areas(feat)

    def test_energy_formula(self):
        feat = np.zeros((4, 4), dtype=bool)
        result = run_centralized(feat)
        assert result.hop_units == 48.0  # n^2 (n-1)
        assert result.ledger.total == 96.0

    def test_funnel_hotspot(self):
        # x-first routes funnel every row's traffic through column x=0,
        # so the sink's southern neighbour carries the peak load
        feat = np.zeros((4, 4), dtype=bool)
        result = run_centralized(feat)
        per = result.ledger.per_node()
        assert max(per, key=per.get) == (0, 1)
        assert per[(0, 0)] == 15.0  # the sink receives every reading

    def test_serial_vs_parallel_latency(self):
        feat = np.zeros((8, 8), dtype=bool)
        serial = run_centralized(feat, serial_sink=True)
        parallel = run_centralized(feat, serial_sink=False)
        assert serial.latency > parallel.latency

    def test_compare_designs_row(self):
        feat = random_feature_matrix(8, 0.3, rng=4)
        row = compare_designs(feat)
        assert row["side"] == 8
        assert row["energy_winner"] == "divide-and-conquer"
        assert row["energy_ratio"] > 1.0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            run_centralized(np.zeros((4, 8), dtype=bool))


class TestQueries:
    def _storage(self, feat, level=1):
        side = feat.shape[0]
        va = VirtualArchitecture(side)
        result = va.execute(feature_matrix_aggregation(feat), max_level=level)
        return DistributedStorage.from_execution(va.grid, level, result)

    def test_storage_construction(self):
        feat = random_feature_matrix(8, 0.4, rng=5)
        storage = self._storage(feat, level=2)
        assert len(storage.summaries) == 4
        assert storage.leaders() == [(0, 0), (0, 4), (4, 0), (4, 4)]

    def test_exact_count_matches_oracle(self):
        rng = np.random.default_rng(6)
        for _ in range(10):
            feat = random_feature_matrix(8, float(rng.uniform(0.2, 0.8)), rng)
            storage = self._storage(feat, level=1)
            result = count_regions_exact(storage)
            assert result.value == count_regions(feat)

    def test_fast_count_upper_bounds_exact(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            feat = random_feature_matrix(8, 0.5, rng)
            storage = self._storage(feat, level=1)
            fast = count_regions_fast(storage)
            exact = count_regions_exact(storage)
            assert fast.value >= exact.value

    def test_fast_count_exact_for_isolated_blocks(self):
        # features confined to block interiors never span boundaries
        feat = np.zeros((8, 8), dtype=bool)
        feat[1, 1] = True
        feat[5, 5] = True
        storage = self._storage(feat, level=2)
        assert count_regions_fast(storage).value == 2

    def test_fast_cheaper_than_exact(self):
        feat = np.ones((8, 8), dtype=bool)
        storage = self._storage(feat, level=1)
        fast = count_regions_fast(storage)
        exact = count_regions_exact(storage)
        assert fast.energy < exact.energy

    def test_enumerate_areas(self):
        feat = random_feature_matrix(8, 0.4, rng=8)
        storage = self._storage(feat, level=1)
        result = enumerate_region_areas(storage)
        assert result.value == region_areas(feat)

    def test_largest_region(self):
        feat = np.zeros((8, 8), dtype=bool)
        feat[0:2, 0:3] = True  # area 6
        feat[7, 7] = True
        storage = self._storage(feat, level=1)
        assert largest_region(storage).value == 6

    def test_feature_area_total(self):
        feat = random_feature_matrix(8, 0.5, rng=9)
        storage = self._storage(feat, level=1)
        assert feature_area_total(storage).value == int(feat.sum())

    def test_query_point_affects_cost_not_value(self):
        feat = random_feature_matrix(8, 0.5, rng=10)
        storage = self._storage(feat, level=1)
        at_origin = count_regions_exact(storage, query_point=(0, 0))
        at_corner = count_regions_exact(storage, query_point=(7, 7))
        assert at_origin.value == at_corner.value
        assert at_origin.energy != at_corner.energy

    def test_query_cost_much_less_than_gathering(self):
        # the decoupling claim: querying stored results is cheaper than
        # the boundary-estimation round that produced them
        feat = random_feature_matrix(16, 0.5, rng=11)
        va = VirtualArchitecture(16)
        result = va.execute(feature_matrix_aggregation(feat), max_level=2,
                            charge_compute=False)
        storage = DistributedStorage.from_execution(va.grid, 2, result)
        query = count_regions_fast(storage)
        assert query.energy < result.ledger.total / 2

    def test_from_execution_validates_count(self):
        feat = random_feature_matrix(8, 0.5, rng=12)
        va = VirtualArchitecture(8)
        result = va.execute(feature_matrix_aggregation(feat), max_level=1)
        with pytest.raises(ValueError):
            DistributedStorage.from_execution(va.grid, 2, result)
