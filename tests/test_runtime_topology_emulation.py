"""Unit tests for the Section 5.1 topology-emulation protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coords import ALL_DIRECTIONS, Direction
from repro.deployment.node import SensorNode
from repro.deployment.terrain import CellGrid, Terrain
from repro.deployment.topology import RealNetwork
from repro.runtime.topology_emulation import (
    emulate_topology,
    max_intra_cell_path_length,
    oracle_reachable_directions,
)

from conftest import make_deployment


@pytest.fixture(scope="module")
def emulation4():
    net = make_deployment(side=4)
    return net, emulate_topology(net)


class TestConvergence:
    def test_verify_clean(self, emulation4):
        _, result = emulation4
        assert result.topology.verify() == []

    def test_protocol_matches_oracle(self, emulation4):
        net, result = emulation4
        oracle = oracle_reachable_directions(net)
        for nid in net.node_ids():
            for d in ALL_DIRECTIONS:
                entry = result.topology.entry(nid, d)
                if (nid, d) in oracle:
                    assert entry is not None, (nid, d)
                else:
                    assert entry is None, (nid, d)

    def test_gateway_chains_terminate(self, emulation4):
        net, result = emulation4
        for nid in net.node_ids():
            for d in ALL_DIRECTIONS:
                if result.topology.entry(nid, d) is None:
                    continue
                chain = result.topology.gateway_chain(nid, d)
                assert chain is not None
                assert chain[0] == nid
                assert net.cell_of(chain[-1]) == d.step(net.cell_of(nid))
                # intermediate hops stay in the origin cell
                for hop in chain[1:-1]:
                    assert net.cell_of(hop) == net.cell_of(nid)

    def test_edge_cells_have_null_outward(self, emulation4):
        net, result = emulation4
        for nid in net.node_ids():
            cell = net.cell_of(nid)
            if cell[0] == 0:
                assert result.topology.entry(nid, Direction.WEST) is None
            if cell[1] == 0:
                assert result.topology.entry(nid, Direction.NORTH) is None

    def test_deterministic(self):
        net1 = make_deployment(side=4, seed=21)
        net2 = make_deployment(side=4, seed=21)
        r1 = emulate_topology(net1)
        r2 = emulate_topology(net2)
        assert r1.topology.tables == r2.topology.tables
        assert r1.messages == r2.messages


class TestMultiHopDiscovery:
    """Small ranges force intra-cell multi-hop paths to the cell borders."""

    @pytest.fixture(scope="class")
    def sparse(self):
        # big cells, short range: most nodes cannot see adjacent cells
        net = make_deployment(side=4, n_random=220, range_cells=0.7, seed=6)
        assert net.validate_protocol_preconditions() == []
        return net, emulate_topology(net)

    def test_multi_hop_entries_exist(self, sparse):
        net, result = sparse
        chains = [
            result.topology.gateway_chain(nid, d)
            for nid in net.node_ids()
            for d in ALL_DIRECTIONS
            if result.topology.entry(nid, d) is not None
        ]
        assert any(len(c) > 2 for c in chains), "expected some multi-hop chains"

    def test_still_matches_oracle(self, sparse):
        net, result = sparse
        assert result.topology.verify() == []

    def test_rebroadcast_happened(self, sparse):
        net, result = sparse
        # more transmissions than nodes implies table-update rebroadcasts
        assert result.messages > len(net)

    def test_setup_time_bounded_by_intra_cell_paths(self, sparse):
        net, result = sparse
        bound = max_intra_cell_path_length(net)
        # property (iii): latency proportional to the longest intra-cell
        # path; unit-size messages -> one time unit per hop of propagation
        assert result.setup_time <= bound + 1


class TestBoundarySuppression:
    def test_messages_cross_at_most_one_boundary(self):
        """Property (ii): RT updates never propagate information further
        than one cell boundary, because receivers in foreign cells ignore
        the message.  Equivalently: a node's table entries only ever point
        to same-cell nodes or direct neighbours in the adjacent cell."""
        net = make_deployment(side=4, seed=33)
        result = emulate_topology(net)
        for nid in net.node_ids():
            cell = net.cell_of(nid)
            for d in ALL_DIRECTIONS:
                entry = result.topology.entry(nid, d)
                if entry is None:
                    continue
                entry_cell = net.cell_of(entry)
                assert entry_cell in (cell, d.step(cell))


class TestPeriodicReexecution:
    def test_rounds_rebuild_tables(self):
        net = make_deployment(side=4, seed=9)
        once = emulate_topology(net)
        thrice = emulate_topology(net, rounds=3)
        assert once.topology.tables == thrice.topology.tables

    def test_rerun_after_node_death(self):
        net = make_deployment(side=4, n_random=200, seed=13)
        first = emulate_topology(net)
        # kill a node that currently serves as a gateway
        victim = None
        for nid in net.node_ids():
            for d in ALL_DIRECTIONS:
                if first.topology.entry(nid, d) == nid:
                    continue
            entries = [first.topology.entry(nid, d) for d in ALL_DIRECTIONS]
            if any(e is not None for e in entries):
                victim = next(e for e in entries if e is not None)
                break
        assert victim is not None
        net.node(victim).kill()
        if net.validate_protocol_preconditions() == []:
            second = emulate_topology(net)
            assert second.topology.verify() == []
            assert all(victim not in row.values() for row in
                       second.topology.tables.values())

    def test_rounds_validation(self):
        net = make_deployment(side=4)
        with pytest.raises(ValueError):
            emulate_topology(net, rounds=0)


class TestCosts:
    def test_message_count_scales_with_nodes(self):
        small = make_deployment(side=4, n_random=40, seed=1)
        large = make_deployment(side=4, n_random=160, seed=1)
        r_small = emulate_topology(small)
        r_large = emulate_topology(large)
        assert r_large.messages > r_small.messages

    def test_energy_positive(self, emulation4):
        _, result = emulation4
        assert result.energy > 0
