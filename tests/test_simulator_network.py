"""Unit tests for the wireless medium and node processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost_model import UniformCostModel
from repro.deployment.node import SensorNode
from repro.deployment.terrain import CellGrid, Terrain
from repro.deployment.topology import RealNetwork
from repro.simulator.engine import Simulator
from repro.simulator.network import Packet, WirelessMedium
from repro.simulator.process import Process, ProcessHost


def triangle_network(tx_range=2.0):
    """Three mutually connected nodes."""
    cells = CellGrid(Terrain(10.0), 1)
    nodes = [
        SensorNode(0, (1.0, 1.0), tx_range),
        SensorNode(1, (2.0, 1.0), tx_range),
        SensorNode(2, (1.0, 2.0), tx_range),
    ]
    return RealNetwork(nodes, cells)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def medium(sim):
    return WirelessMedium(sim, triangle_network())


class Recorder(Process):
    def __init__(self):
        super().__init__()
        self.packets = []

    def on_packet(self, packet: Packet) -> None:
        self.packets.append((self.now, packet))


class TestBroadcast:
    def test_broadcast_reaches_all_neighbors(self, sim, medium):
        host = ProcessHost(sim, medium)
        host.add_all(lambda nid: Recorder())
        delivered = medium.broadcast(0, "k", "payload")
        sim.run()
        assert delivered == 2
        assert len(host.get(1).packets) == 1
        assert len(host.get(2).packets) == 1
        assert host.get(0).packets == []

    def test_broadcast_energy_single_tx(self, sim, medium):
        medium.broadcast(0, "k", None, size_units=2.0)
        sim.run()
        # one tx of 2 units + two rx of 2 units
        assert medium.ledger.consumed(0) == 2.0
        assert medium.ledger.consumed(1) == 2.0
        assert medium.ledger.consumed(2) == 2.0

    def test_broadcast_draws_battery(self, sim, medium):
        node0 = medium.network.node(0)
        before = node0.residual_energy
        medium.broadcast(0, "k", None)
        sim.run()
        assert node0.residual_energy == before - 1.0

    def test_dead_source_sends_nothing(self, sim, medium):
        medium.network.node(0).kill()
        assert medium.broadcast(0, "k", None) == 0
        sim.run()
        assert medium.stats.transmissions == 0

    def test_dead_receiver_skipped(self, sim, medium):
        host = ProcessHost(sim, medium)
        host.add_all(lambda nid: Recorder())
        medium.network.node(1).kill()
        delivered = medium.broadcast(0, "k", None)
        sim.run()
        assert delivered == 1

    def test_delivery_latency(self, sim, medium):
        host = ProcessHost(sim, medium)
        host.add_all(lambda nid: Recorder())
        medium.broadcast(0, "k", None, size_units=3.0)
        sim.run()
        t, _ = host.get(1).packets[0]
        assert t == 3.0  # tx_latency of 3 units at unit bandwidth


class TestUnicast:
    def test_unicast_addressed_only(self, sim, medium):
        host = ProcessHost(sim, medium)
        host.add_all(lambda nid: Recorder())
        ok = medium.unicast(0, 1, "k", "data")
        sim.run()
        assert ok
        assert len(host.get(1).packets) == 1
        assert host.get(2).packets == []

    def test_unicast_requires_neighbor(self, sim):
        cells = CellGrid(Terrain(10.0), 1)
        nodes = [
            SensorNode(0, (1.0, 1.0), 1.5),
            SensorNode(1, (5.0, 5.0), 1.5),
        ]
        net = RealNetwork(nodes, cells)
        medium = WirelessMedium(sim, net)
        with pytest.raises(ValueError):
            medium.unicast(0, 1, "k", None)

    def test_unicast_charges_only_addressee(self, sim, medium):
        medium.unicast(0, 1, "k", None)
        sim.run()
        assert medium.ledger.consumed(1) == 1.0
        assert medium.ledger.consumed(2) == 0.0


class TestLossAndJitter:
    def test_loss_rate_drops_packets(self, sim):
        medium = WirelessMedium(
            sim, triangle_network(), loss_rate=0.5, rng=np.random.default_rng(0)
        )
        total_delivered = 0
        for _ in range(200):
            total_delivered += medium.broadcast(0, "k", None)
        sim.run()
        # 400 delivery opportunities at 50% loss
        assert 140 < total_delivered < 260
        assert medium.stats.drops == 400 - total_delivered

    def test_loss_rate_validation(self, sim):
        with pytest.raises(ValueError, match=r"loss_rate must be in \[0, 1\)"):
            WirelessMedium(sim, triangle_network(), loss_rate=1.0)
        with pytest.raises(ValueError, match=r"loss_rate must be in \[0, 1\)"):
            WirelessMedium(sim, triangle_network(), loss_rate=1.5)
        with pytest.raises(ValueError, match=r"loss_rate must be in \[0, 1\)"):
            WirelessMedium(sim, triangle_network(), loss_rate=-0.1)
        with pytest.raises(ValueError, match="jitter must be non-negative"):
            WirelessMedium(sim, triangle_network(), jitter=-0.1)

    def test_boundary_params_accepted(self, sim):
        # the closed ends of the valid ranges must not raise
        WirelessMedium(sim, triangle_network(), loss_rate=0.0, jitter=0.0)
        WirelessMedium(sim, triangle_network(), loss_rate=0.999)

    def test_jitter_spreads_arrivals(self, sim):
        medium = WirelessMedium(
            sim, triangle_network(), jitter=0.5, rng=np.random.default_rng(1)
        )
        host = ProcessHost(sim, medium)
        host.add_all(lambda nid: Recorder())
        medium.broadcast(0, "k", None)
        sim.run()
        t1 = host.get(1).packets[0][0]
        t2 = host.get(2).packets[0][0]
        assert t1 != t2
        assert 1.0 <= min(t1, t2) and max(t1, t2) <= 1.5

    def test_deterministic_with_seed(self):
        def run(seed):
            sim = Simulator()
            medium = WirelessMedium(
                sim, triangle_network(), loss_rate=0.3,
                rng=np.random.default_rng(seed),
            )
            got = [medium.broadcast(0, "k", None) for _ in range(50)]
            sim.run()
            return got

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestStats:
    def test_kind_breakdown(self, sim, medium):
        medium.broadcast(0, "a", None)
        medium.broadcast(0, "a", None)
        medium.unicast(0, 1, "b", None)
        sim.run()
        assert medium.stats.tx_of_kind("a") == 2
        assert medium.stats.tx_of_kind("b") == 1
        assert medium.stats.by_kind_rx["a"] == 4

    def test_summary_shape(self, sim, medium):
        medium.broadcast(0, "k", None)
        sim.run()
        summary = medium.stats.summary()
        assert summary["transmissions"] == 1.0
        assert summary["deliveries"] == 2.0


class TestProcessHost:
    def test_on_start_called(self, sim, medium):
        started = []

        class Starter(Process):
            def on_start(self):
                started.append(self.node_id)

        host = ProcessHost(sim, medium)
        host.add_all(lambda nid: Starter())
        host.start()
        sim.run()
        assert sorted(started) == [0, 1, 2]

    def test_staggered_start(self, sim, medium):
        times = {}

        class Starter(Process):
            def on_start(self):
                times[self.node_id] = self.now

        host = ProcessHost(sim, medium)
        host.add_all(lambda nid: Starter())
        host.start(stagger=0.5)
        sim.run()
        assert times == {0: 0.0, 1: 0.5, 2: 1.0}

    def test_duplicate_process_rejected(self, sim, medium):
        host = ProcessHost(sim, medium)
        host.add(0, Recorder())
        with pytest.raises(ValueError):
            host.add(0, Recorder())

    def test_timers(self, sim, medium):
        class TimerProc(Process):
            def __init__(self):
                super().__init__()
                self.fired = []

            def on_start(self):
                self.set_timer(2.0, "ping")

            def on_timer(self, tag):
                self.fired.append((self.now, tag))

        host = ProcessHost(sim, medium)
        proc = host.add(0, TimerProc())
        host.start()
        sim.run()
        assert proc.fired == [(2.0, "ping")]

    def test_timer_cancel(self, sim, medium):
        class TimerProc(Process):
            def __init__(self):
                super().__init__()
                self.fired = []

            def on_start(self):
                self.set_timer(2.0, "ping")
                self.cancel_timers()

            def on_timer(self, tag):
                self.fired.append(tag)

        host = ProcessHost(sim, medium)
        proc = host.add(0, TimerProc())
        host.start()
        sim.run()
        assert proc.fired == []

    def test_dead_node_timer_suppressed(self, sim, medium):
        class TimerProc(Process):
            def __init__(self):
                super().__init__()
                self.fired = []

            def on_start(self):
                self.set_timer(2.0, "ping")

            def on_timer(self, tag):
                self.fired.append(tag)

        host = ProcessHost(sim, medium)
        proc = host.add(0, TimerProc())
        host.start()
        sim.run(until=1.0)
        medium.network.node(0).kill()
        sim.run()
        assert proc.fired == []

    def test_packets_to_dead_node_not_handled(self, sim, medium):
        host = ProcessHost(sim, medium)
        host.add_all(lambda nid: Recorder())
        medium.broadcast(0, "k", None)
        medium.network.node(1).kill()
        sim.run()
        assert host.get(1).packets == []
        assert len(host.get(2).packets) == 1
