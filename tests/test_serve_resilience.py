"""Resilient-serving tests: overload, deadlines, fault-then-recover.

The DESIGN.md §16 contracts behind ``repro.serve``'s resilience layer:

* construction-time validation fails fast with exact messages at the
  ``Arrival`` / ``TenantPolicy`` / ``ServeConfig`` boundaries;
* per-tenant token buckets deterministically *shed* or *defer* overload,
  and every admitted query terminates with exactly one named outcome;
* deadline-bound queries retry missing cells under seeded backoff, then
  disclose what they have (``partial``) or expire — never hang, never
  silently reduce;
* a serving leader killed by an armed :class:`FaultPlan` does not orphan
  the engine: after failover it re-resolves bindings, invalidates
  exactly the dirtied cache cells, and keeps answering — matching a
  fresh-engine oracle, byte-identically across wire on/off and serial vs
  space-partitioned gather;
* the chaos soak upholds the liveness invariant end to end;
* shed/expired queries flow through sweep metrics and analyze ingest as
  named outcomes, never as run failures.
"""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.core import CountAggregation, VirtualArchitecture
from repro.runtime import FaultEvent, FaultPlan, deploy
from repro.runtime.faults import HealingConfig
from repro.serve import (
    OUTCOMES,
    Arrival,
    QueryEngine,
    ServeConfig,
    TenantPolicy,
    chaos_soak,
)
from repro.serve.chaos import build_serving_stack
from repro.simulator.trace import stable_digest
from repro.sweep import SweepSpec, run_sweep

from conftest import make_deployment


@pytest.fixture(scope="module")
def served_stack():
    net = make_deployment(side=4, n_random=140, seed=7)
    stack = deploy(net)
    va = VirtualArchitecture(4)
    run = stack.run_application(
        va.synthesize(CountAggregation(lambda c: True), max_level=1)
    )
    return stack, dict(run.exfiltrated)


def raises_exact(message: str):
    return pytest.raises(ValueError, match=f"^{re.escape(message)}$")


class TestBoundaryValidation:
    """Exact-message regression tests for the construction boundaries."""

    def test_arrival_rejects_negative_tenant(self):
        with raises_exact("arrival tenant must be >= 0, got -1"):
            Arrival(time=0.0, query_cell=(0, 0), tenant=-1)

    def test_arrival_rejects_empty_cells_tuple(self):
        with raises_exact("arrival cells must be None or a non-empty tuple, got ()"):
            Arrival(time=0.0, query_cell=(0, 0), cells=())

    def test_arrival_rejects_nonpositive_deadline(self):
        with raises_exact("arrival deadline must be > 0, got 0.0"):
            Arrival(time=0.0, query_cell=(0, 0), deadline=0.0)

    def test_arrival_boundary_values_accepted(self):
        # the boundaries themselves are legal: tenant 0, one cell, t=0
        arr = Arrival(time=0.0, query_cell=(0, 0), tenant=0, cells=((1, 1),))
        assert arr.tenant == 0 and arr.cells == ((1, 1),)

    def test_policy_rejects_negative_budget(self):
        with raises_exact("tenant budget must be >= 0, got -1.0"):
            TenantPolicy(budget=-1.0)

    def test_policy_rejects_unknown_overload(self):
        with raises_exact(
            "unknown overload policy 'panic'; expected one of ('shed', 'defer')"
        ):
            TenantPolicy(budget=1.0, overload="panic")

    def test_policy_rejects_negative_staleness(self):
        with raises_exact("tenant max_staleness must be >= 0, got -1"):
            TenantPolicy(max_staleness=-1)

    def test_config_rejects_nonpositive_ack_timeout(self):
        with raises_exact("ack_timeout must be > 0, got 0.0"):
            ServeConfig(ack_timeout=0.0)

    def test_config_rejects_nonpositive_deadline(self):
        with raises_exact("deadline must be > 0, got -2.0"):
            ServeConfig(deadline=-2.0)

    def test_config_rejects_retry_factor_below_one(self):
        with raises_exact("retry_factor must be >= 1.0, got 0.5"):
            ServeConfig(retry_factor=0.5)

    def test_config_rejects_staleness_without_cache(self):
        with raises_exact(
            "max_staleness > 0 requires cache=True (tenant 3 sets max_staleness=2)"
        ):
            ServeConfig(cache=False, tenant_policies={3: TenantPolicy(max_staleness=2)})
        with raises_exact(
            "max_staleness > 0 requires cache=True (default policy sets max_staleness=1)"
        ):
            ServeConfig(cache=False, default_policy=TenantPolicy(max_staleness=1))


class TestOverloadControl:
    def test_shed_and_defer_split_a_burst(self, served_stack):
        stack, storage = served_stack
        engine = QueryEngine(
            stack,
            storage,
            ServeConfig(tenant_policies={
                0: TenantPolicy(budget=1.0, overload="shed"),
                1: TenantPolicy(budget=1.0, overload="defer", max_defer_rounds=8),
            }),
        )
        burst = [
            Arrival(time=0.05 * (i + 1), query_cell=(3, 3), tenant=t)
            for t in (0, 1)
            for i in range(4)
        ]
        report = engine.serve(burst, round_interval=1.0, reduce_fn=sum)
        tenants = report.per_tenant()
        counts = report.outcome_counts()
        # liveness: every query terminates with exactly one named outcome
        assert sum(counts.values()) == len(burst)
        assert set(counts) == set(OUTCOMES)
        # one token in round one: tenant 0 sheds the rest of its burst...
        assert tenants[0]["shed"] == 3
        # ...while tenant 1 queues and drains one per round
        assert tenants[1]["ok"] == 4
        assert tenants[1]["deferred_rounds"] > 0
        assert engine.stats.shed == 3 and engine.stats.deferred > 0

    def test_defer_cap_sheds_the_overflow(self, served_stack):
        stack, storage = served_stack
        engine = QueryEngine(
            stack,
            storage,
            ServeConfig(tenant_policies={
                0: TenantPolicy(budget=1.0, overload="defer", max_defer_rounds=1),
            }),
        )
        burst = [
            Arrival(time=0.05 * (i + 1), query_cell=(3, 3), tenant=0)
            for i in range(4)
        ]
        report = engine.serve(burst, round_interval=1.0, reduce_fn=sum)
        counts = report.outcome_counts()
        # a query may wait at most one round before the bucket gives up
        assert counts["ok"] == 2 and counts["shed"] == 2

    def test_unlimited_tenant_is_never_throttled(self, served_stack):
        stack, storage = served_stack
        engine = QueryEngine(stack, storage)
        burst = [
            Arrival(time=0.05 * (i + 1), query_cell=(3, 3)) for i in range(6)
        ]
        report = engine.serve(burst, round_interval=1.0, reduce_fn=sum)
        assert report.outcome_counts()["ok"] == 6
        assert engine.stats.shed == 0 and engine.stats.deferred == 0


class TestDeadlines:
    def test_lossy_deadline_queries_terminate_named(self, served_stack):
        stack, storage = served_stack
        engine = QueryEngine(
            stack,
            storage,
            ServeConfig(
                loss_rate=0.5,
                rng=np.random.default_rng(4),
                cache=False,
                deadline=8.0,
                query_retries=3,
                retry_base=1.0,
            ),
        )
        outcomes = [engine.query((3, 3), reduce_fn=sum) for _ in range(4)]
        assert all(o.outcome in OUTCOMES for o in outcomes)
        assert not engine._active  # nothing hangs past its deadline
        assert engine.stats.retries > 0
        for o in outcomes:
            if o.outcome == "deadline_expired":
                # expiry means *nothing* arrived: every cell is disclosed
                assert len(o.missing_cells) == len(engine.storage_cells)
            if o.outcome == "partial":
                assert o.missing_cells  # disclosed, never silent

    def test_retries_recover_a_nearby_cell(self, served_stack):
        stack, storage = served_stack
        engine = QueryEngine(
            stack,
            storage,
            ServeConfig(
                loss_rate=0.3,
                rng=np.random.default_rng(4),
                cache=False,
                deadline=10.0,
                query_retries=4,
                retry_base=1.0,
            ),
        )
        near = sorted(storage)[-1]
        outcomes = [
            engine.query((3, 3), cells=[near], reduce_fn=sum) for _ in range(6)
        ]
        assert any(o.complete and o.retries > 0 for o in outcomes)

    def test_deadline_outcomes_fold_into_the_fingerprint(self, served_stack):
        stack, storage = served_stack

        def run(deadline):
            eng = QueryEngine(
                stack,
                storage,
                ServeConfig(
                    loss_rate=0.4,
                    rng=np.random.default_rng(9),
                    cache=False,
                    deadline=deadline,
                    query_retries=2,
                ),
            )
            eng.query((3, 3), reduce_fn=sum)
            return eng.fingerprint()

        assert run(4.0) == run(4.0)
        assert run(4.0) != run(40.0)


class TestStaleness:
    def test_lenient_tenant_rides_out_an_epoch_bump(self, served_stack):
        stack, storage = served_stack
        engine = QueryEngine(
            stack,
            storage,
            ServeConfig(tenant_policies={5: TenantPolicy(max_staleness=3)}),
        )
        fresh = engine.query((3, 3), tenant=5, reduce_fn=sum)
        stale_cell = next(c for c in engine.storage_cells if c != (3, 3))
        engine.update_field(stale_cell, 777)
        tx = engine.medium.stats.transmissions
        stale = engine.query((3, 3), tenant=5, reduce_fn=sum)
        assert stale.value == fresh.value  # served the old aggregate
        assert stale.staleness == 1
        assert engine.medium.stats.transmissions == tx  # radio-silent
        assert engine.stats.stale_hits > 0
        # the default (strict) tenant refuses the stale entry
        strict = engine.query((3, 3), tenant=0, reduce_fn=sum)
        assert strict.cache_misses == 1 and strict.staleness == 0
        assert strict.value != stale.value


def _recover_run(wire: bool, partitions: int):
    """Kill a serving leader mid-campaign; return (engine fp, outcomes)."""
    stack, storage = build_serving_stack(seed=9, partitions=partitions)
    engine = QueryEngine(
        stack,
        storage,
        ServeConfig(
            wire_format=wire,
            healing=HealingConfig(heartbeat_interval=1.0, miss_threshold=2),
            healing_headroom=8.0,
        ),
    )
    probe_cell = sorted(storage)[0]
    victim = sorted(storage)[-1]
    cold = engine.query(probe_cell, reduce_fn=sum)
    engine.arm_faults(FaultPlan((
        FaultEvent(time=0.5, action="kill_leader", cell=victim),
    )))
    engine.tick()  # kill fires; heartbeat loss detected; cell fails over
    after = engine.query(probe_cell, reduce_fn=sum)
    fingerprint = stable_digest(
        (engine.fingerprint(), cold.digest_tuple(), after.digest_tuple())
    )
    return fingerprint, cold, after, engine


class TestFaultThenRecover:
    """The satellite: serving continuity across an armed leader kill."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return _recover_run(wire=False, partitions=1)

    def test_failover_keeps_serving_and_matches_oracle(self, baseline):
        _, cold, after, engine = baseline
        assert engine._fault_report is not None
        assert len(engine._fault_report.failovers) >= 1
        assert after.complete and after.missing_cells == []
        assert after.value == cold.value
        # exactly the failed-over cell was invalidated, nothing else
        assert after.cache_misses == 1
        # a fresh engine over the same stack must agree post-failover
        stack, storage = build_serving_stack(seed=9)
        oracle = QueryEngine(stack, storage).query(
            sorted(storage)[0], reduce_fn=sum
        )
        assert after.value == oracle.value

    @pytest.mark.parametrize("wire", [False, True])
    def test_wire_codec_is_invisible_to_recovery(self, baseline, wire):
        fp, _, _, _ = _recover_run(wire=wire, partitions=1)
        assert fp == baseline[0]

    def test_partitioned_gather_is_invisible_to_recovery(self, baseline):
        fp, _, _, _ = _recover_run(wire=False, partitions=4)
        assert fp == baseline[0]


class TestChaosSoak:
    def test_liveness_invariant_holds(self):
        soak = chaos_soak()
        assert soak.liveness_ok
        assert sum(soak.counts.values()) == soak.queries
        assert soak.lost == 0 and soak.leftover_active == 0
        # the storm actually bit: overload shed, deadlines expired,
        # leaders failed over — and the engine still answers afterwards
        assert soak.shed > 0 and soak.expired > 0 and soak.failovers > 0
        assert soak.probe_complete


class TestSweepAndIngest:
    PARAMS = {"side": 4, "n_random": 140, "n_queries": 8}

    def test_resilience_axes_flow_through_the_sweep(self):
        spec = SweepSpec(
            name="serve-resilience-test",
            workload="serve",
            grid={"tenant_budget": [0.0, 1.0]},
            fixed={
                **self.PARAMS,
                "deadline": 6.0,
                "max_staleness": 1,
                "overload": "defer",
                "loss": 0.2,
                "kill_leaders": 1,
                "updates": 1,
            },
        )
        serial = run_sweep(spec, workers=1)
        assert all(r["status"] == "ok" for r in serial), [
            r["error"] for r in serial if r["status"] != "ok"
        ]
        sharded = run_sweep(spec, workers=2)
        assert sorted(r["fingerprint"] for r in serial) == sorted(
            r["fingerprint"] for r in sharded
        )
        for r in serial:
            m = r["metrics"]
            # the outcome taxonomy always sums to the admitted stream
            assert (
                m["ok_queries"] + m["partial_queries"]
                + m["shed_queries"] + m["expired_queries"]
            ) == m["queries"]
            assert m["failovers"] >= 1.0

    def test_legacy_serve_fingerprint_is_unchanged_by_new_axes(self):
        from repro.sweep.workloads import WORKLOADS

        legacy = WORKLOADS["serve"](dict(self.PARAMS), seed=21)
        explicit = WORKLOADS["serve"](
            {**self.PARAMS, "deadline": 0.0, "tenant_budget": 0.0,
             "max_staleness": 0, "kill_leaders": 0},
            seed=21,
        )
        assert legacy.fingerprint == explicit.fingerprint

    def test_ingest_counts_shed_and_expired_as_ok_runs(self, tmp_path):
        from repro.analyze import ingest_jsonl
        from repro.sweep.sink import append_record
        from repro.sweep.worker import base_record

        spec = SweepSpec(
            name="serve-outcomes",
            workload="serve",
            grid={"tenant_budget": [1.0]},
            replicates=2,
        )
        sink = tmp_path / "serve.jsonl"
        for run in spec.expand():
            record = base_record(run, shard=0, attempt=1)
            record.update({
                "status": "ok",
                "error": None,
                "elapsed_s": 0.01,
                "metrics": {
                    "queries": 8.0,
                    "ok_queries": 5.0,
                    "partial_queries": 1.0,
                    "shed_queries": 1.0,
                    "expired_queries": 1.0,
                    "retries": 3.0,
                },
                "fingerprint": f"fp-{run.primary_id.replace('/', '-')}",
            })
            append_record(str(sink), record)
        report = ingest_jsonl(str(sink))
        assert report.clean
        # shed/expired are named outcomes inside an *ok* run — ingest
        # must never surface them as run failures
        assert all(r.ok for r in report.records)
        for r in report.records:
            metrics = r.metric_dict()
            assert metrics["shed_queries"] == 1.0
            assert metrics["expired_queries"] == 1.0
