"""Unit tests for the simulated-annealing mapping tool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    HierarchicalGroups,
    OrientedGrid,
    build_quadtree,
    check_all_constraints,
    recursive_quadrant_mapping,
)
from repro.core.auto_mapping import (
    anneal_mapping,
    balanced_energy_objective,
    latency_objective,
    total_energy_objective,
)
from repro.core.cost_model import energy_balance


@pytest.fixture
def problem4():
    grid = OrientedGrid(4)
    return grid, build_quadtree(grid)


class TestAnnealing:
    def test_final_mapping_feasible(self, problem4):
        grid, tg = problem4
        result = anneal_mapping(tg, grid, iterations=500, rng=0)
        check_all_constraints(result.mapping)

    def test_energy_objective_beats_or_matches_paper(self, problem4):
        # the NW-corner hand mapping is structurally elegant but not
        # energy-optimal: free placement finds centroid positions
        grid, tg = problem4
        paper = recursive_quadrant_mapping(tg, HierarchicalGroups(grid))
        paper_energy, _ = paper.communication_cost()
        result = anneal_mapping(tg, grid, iterations=4000, rng=1)
        assert result.score <= paper_energy

    def test_warm_start_from_paper_mapping(self, problem4):
        grid, tg = problem4
        paper = recursive_quadrant_mapping(tg, HierarchicalGroups(grid))
        result = anneal_mapping(tg, grid, initial=paper, iterations=2000, rng=2)
        paper_energy, _ = paper.communication_cost()
        assert result.initial_score == paper_energy
        assert result.score <= paper_energy

    def test_latency_objective(self, problem4):
        grid, tg = problem4
        result = anneal_mapping(
            tg, grid, objective=latency_objective(), iterations=3000, rng=3
        )
        _, latency = result.mapping.communication_cost()
        assert latency == result.score
        assert latency <= 6.0  # no worse than the paper mapping

    def test_balance_objective_improves_balance(self, problem4):
        grid, tg = problem4
        energy_only = anneal_mapping(tg, grid, iterations=3000, rng=4)
        balanced = anneal_mapping(
            tg,
            grid,
            objective=balanced_energy_objective(balance_weight=5.0),
            iterations=3000,
            rng=4,
        )
        nodes = list(grid.nodes())
        b_energy = energy_balance(balanced.mapping.per_node_energy(), nodes)
        e_energy = energy_balance(energy_only.mapping.per_node_energy(), nodes)
        assert b_energy >= e_energy - 0.05

    def test_deterministic_given_seed(self, problem4):
        grid, tg = problem4
        a = anneal_mapping(tg, grid, iterations=1000, rng=7)
        b = anneal_mapping(tg, grid, iterations=1000, rng=7)
        assert a.score == b.score
        assert a.mapping.placement == b.mapping.placement

    def test_counters(self, problem4):
        grid, tg = problem4
        result = anneal_mapping(tg, grid, iterations=500, rng=8)
        assert 0 < result.accepted_moves <= result.evaluated_moves
        assert 0 <= result.improvement <= 1.0

    def test_iterations_validation(self, problem4):
        grid, tg = problem4
        with pytest.raises(ValueError):
            anneal_mapping(tg, grid, iterations=0)

    def test_balance_weight_validation(self):
        with pytest.raises(ValueError):
            balanced_energy_objective(balance_weight=-1.0)

    def test_leafless_graph_trivial(self):
        # a graph with no interior tasks has nothing to move
        from repro.core.taskgraph import Task, TaskGraph, TaskId

        grid = OrientedGrid(1)
        tg = TaskGraph()
        tg.add_task(Task(TaskId(0, 0)))
        result = anneal_mapping(tg, grid, iterations=10, rng=0)
        assert result.evaluated_moves == 0
        assert result.score == result.initial_score
