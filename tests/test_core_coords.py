"""Unit tests for repro.core.coords: directions, distances, Morton order."""

from __future__ import annotations

import pytest

from repro.core.coords import (
    ALL_DIRECTIONS,
    Direction,
    block_leader,
    block_members,
    chebyshev,
    coords_in_rect,
    direction_between,
    ilog2,
    is_power_of_two,
    manhattan,
    morton_decode,
    morton_encode,
    morton_order,
    neighbors4,
    validate_coord,
    xy_route,
)


class TestDirection:
    def test_four_directions(self):
        assert len(ALL_DIRECTIONS) == 4
        assert {d.value for d in ALL_DIRECTIONS} == {
            (0, -1),
            (0, 1),
            (1, 0),
            (-1, 0),
        }

    def test_north_decreases_y(self):
        assert Direction.NORTH.step((3, 3)) == (3, 2)

    def test_south_increases_y(self):
        assert Direction.SOUTH.step((3, 3)) == (3, 4)

    def test_east_increases_x(self):
        assert Direction.EAST.step((3, 3)) == (4, 3)

    def test_west_decreases_x(self):
        assert Direction.WEST.step((3, 3)) == (2, 3)

    def test_opposites(self):
        for d in ALL_DIRECTIONS:
            assert d.opposite.opposite is d
            assert d.opposite.step(d.step((0, 0))) == (0, 0)

    def test_step_distance(self):
        assert Direction.EAST.step((1, 1), 5) == (6, 1)

    def test_direction_between(self):
        assert direction_between((2, 2), (2, 1)) is Direction.NORTH
        assert direction_between((2, 2), (3, 2)) is Direction.EAST

    def test_direction_between_rejects_non_adjacent(self):
        with pytest.raises(ValueError):
            direction_between((0, 0), (2, 0))
        with pytest.raises(ValueError):
            direction_between((0, 0), (1, 1))
        with pytest.raises(ValueError):
            direction_between((0, 0), (0, 0))


class TestDistances:
    def test_manhattan_basic(self):
        assert manhattan((0, 0), (3, 4)) == 7
        assert manhattan((3, 4), (0, 0)) == 7

    def test_manhattan_zero(self):
        assert manhattan((5, 5), (5, 5)) == 0

    def test_chebyshev(self):
        assert chebyshev((0, 0), (3, 4)) == 4
        assert chebyshev((1, 1), (1, 9)) == 8

    def test_neighbors4(self):
        assert set(neighbors4((2, 2))) == {(2, 1), (2, 3), (3, 2), (1, 2)}


class TestXYRoute:
    def test_route_endpoints_and_length(self):
        path = xy_route((0, 0), (3, 2))
        assert path[0] == (0, 0)
        assert path[-1] == (3, 2)
        assert len(path) == manhattan((0, 0), (3, 2)) + 1

    def test_route_moves_x_first(self):
        path = xy_route((0, 0), (2, 2))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_route_westward(self):
        path = xy_route((3, 1), (1, 0))
        assert path == [(3, 1), (2, 1), (1, 1), (1, 0)]

    def test_route_to_self(self):
        assert xy_route((2, 2), (2, 2)) == [(2, 2)]

    def test_route_steps_are_adjacent(self):
        path = xy_route((5, 1), (0, 7))
        for a, b in zip(path, path[1:]):
            assert manhattan(a, b) == 1


class TestMorton:
    def test_figure3_numbering(self):
        # The 4x4 layout printed in Figure 3 of the paper.
        expected = {
            (0, 0): 0, (1, 0): 1, (0, 1): 2, (1, 1): 3,
            (2, 0): 4, (3, 0): 5, (2, 1): 6, (3, 1): 7,
            (0, 2): 8, (1, 2): 9, (0, 3): 10, (1, 3): 11,
            (2, 2): 12, (3, 2): 13, (2, 3): 14, (3, 3): 15,
        }
        for coord, index in expected.items():
            assert morton_encode(coord) == index
            assert morton_decode(index) == coord

    def test_roundtrip_large(self):
        for x in range(0, 200, 7):
            for y in range(0, 200, 11):
                assert morton_decode(morton_encode((x, y))) == (x, y)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            morton_encode((-1, 0))
        with pytest.raises(ValueError):
            morton_decode(-1)

    def test_morton_order_covers_grid(self):
        coords = list(morton_order(4))
        assert len(coords) == 16
        assert len(set(coords)) == 16
        assert all(0 <= x < 4 and 0 <= y < 4 for x, y in coords)

    def test_morton_order_requires_power_of_two(self):
        with pytest.raises(ValueError):
            list(morton_order(3))

    def test_morton_blocks_are_contiguous(self):
        # indices 4k..4k+3 always form a 2x2 block
        for k in range(16):
            block = [morton_decode(4 * k + i) for i in range(4)]
            xs = {c[0] for c in block}
            ys = {c[1] for c in block}
            assert len(xs) == 2 and len(ys) == 2
            assert max(xs) - min(xs) == 1 and max(ys) - min(ys) == 1


class TestPowersAndBlocks:
    def test_is_power_of_two(self):
        assert all(is_power_of_two(2**i) for i in range(12))
        assert not any(is_power_of_two(v) for v in (0, -1, 3, 6, 12, 100))

    def test_ilog2(self):
        assert ilog2(1) == 0
        assert ilog2(64) == 6
        with pytest.raises(ValueError):
            ilog2(10)

    def test_block_leader_level0_is_identity(self):
        assert block_leader((5, 7), 0) == (5, 7)

    def test_block_leader_level1(self):
        assert block_leader((0, 0), 1) == (0, 0)
        assert block_leader((1, 1), 1) == (0, 0)
        assert block_leader((2, 3), 1) == (2, 2)

    def test_block_leader_level2(self):
        assert block_leader((3, 3), 2) == (0, 0)
        assert block_leader((5, 2), 2) == (4, 0)

    def test_block_leader_rejects_negative_level(self):
        with pytest.raises(ValueError):
            block_leader((0, 0), -1)

    def test_block_members_size(self):
        members = block_members((0, 0), 2)
        assert len(members) == 16
        assert (3, 3) in members and (0, 0) in members

    def test_block_members_requires_corner(self):
        with pytest.raises(ValueError):
            block_members((1, 0), 1)

    def test_block_leader_member_consistency(self):
        for level in (1, 2, 3):
            for coord in ((0, 0), (3, 5), (7, 7), (6, 1)):
                leader = block_leader(coord, level)
                assert coord in block_members(leader, level)


class TestHelpers:
    def test_coords_in_rect(self):
        cells = list(coords_in_rect(1, 2, 2, 3))
        assert len(cells) == 6
        assert cells[0] == (1, 2)
        assert cells[-1] == (2, 4)

    def test_validate_coord_accepts(self):
        assert validate_coord((1, 2)) == (1, 2)

    def test_validate_coord_rejects(self):
        for bad in ([1, 2], (1,), (1, 2, 3), (1.0, 2), "xy", None):
            with pytest.raises(TypeError):
                validate_coord(bad)
