"""Unit tests for the ASCII visualization helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.viz import (
    LABEL_CHARS,
    render_band_map,
    render_deployment,
    render_energy_map,
    render_feature_map,
    render_group_blocks,
    render_label_map,
)
from repro.core import HierarchicalGroups, OrientedGrid

from conftest import make_deployment


class TestFeatureMap:
    def test_dimensions(self):
        feat = np.zeros((3, 5), dtype=bool)
        lines = render_feature_map(feat).splitlines()
        assert len(lines) == 3
        assert all(len(line) == 5 for line in lines)

    def test_marks(self):
        feat = np.zeros((2, 2), dtype=bool)
        feat[0, 1] = True
        assert render_feature_map(feat) == ".#\n.."

    def test_custom_chars(self):
        feat = np.ones((1, 2), dtype=bool)
        assert render_feature_map(feat, on="X", off="_") == "XX"

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            render_feature_map(np.zeros(4, dtype=bool))


class TestLabelMap:
    def test_distinct_regions_distinct_chars(self):
        feat = np.zeros((3, 3), dtype=bool)
        feat[0, 0] = True
        feat[2, 2] = True
        text = render_label_map(feat)
        assert text[0] == "1"
        assert text.splitlines()[2][2] == "2"

    def test_connected_region_single_char(self):
        feat = np.ones((2, 2), dtype=bool)
        assert render_label_map(feat) == "11\n11"

    def test_background(self):
        feat = np.zeros((2, 2), dtype=bool)
        assert render_label_map(feat, background="o") == "oo\noo"


class TestBandMap:
    def test_band_chars(self):
        readings = np.array([[0.0, 5.0], [10.0, 15.0]])
        text = render_band_map(readings, [4.0, 12.0])
        assert text == f"{LABEL_CHARS[0]}{LABEL_CHARS[1]}\n{LABEL_CHARS[1]}{LABEL_CHARS[2]}"

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            render_band_map(np.zeros((2, 2)), [2.0, 1.0])

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            render_band_map(np.zeros(4), [1.0])


class TestDeploymentMap:
    def test_contains_nodes_and_grid(self):
        net = make_deployment(side=4, seed=7)
        text = render_deployment(net)
        assert "*" in text
        assert "|" in text and "-" in text

    def test_leaders_marked(self):
        from repro.runtime import bind_processes

        net = make_deployment(side=4, seed=7)
        binding = bind_processes(net).binding
        text = render_deployment(net, leaders=binding.leaders)
        assert text.count("L") >= 1

    def test_dead_nodes_marked(self):
        net = make_deployment(side=4, seed=7)
        net.node(net.node_ids()[0]).kill()
        text = render_deployment(net)
        assert "x" in text


class TestGroupBlocks:
    def test_level1_blocks(self):
        groups = HierarchicalGroups(OrientedGrid(4))
        text = render_group_blocks(groups, 1)
        lines = text.splitlines()
        assert len(lines) == 4
        assert text.count("L") == 4  # one leader per 2x2 block

    def test_level0_all_leaders(self):
        groups = HierarchicalGroups(OrientedGrid(2))
        text = render_group_blocks(groups, 0)
        assert text == "LL\nLL"


class TestEnergyMap:
    def test_hot_spot_densest_char(self):
        per = {(0, 0): 10.0, (1, 0): 1.0, (0, 1): 0.0, (1, 1): 5.0}
        text = render_energy_map(per, side=2, levels=" .#")
        assert text.splitlines()[0][0] == "#"
        assert text.splitlines()[1][0] == " "

    def test_all_zero(self):
        text = render_energy_map({}, side=2)
        assert set(text) <= {" ", "\n"}

    def test_rejects_bad_side(self):
        with pytest.raises(ValueError):
            render_energy_map({}, side=0)

    def test_renders_executor_output(self):
        from repro.core import CountAggregation, VirtualArchitecture

        va = VirtualArchitecture(8)
        result = va.execute(CountAggregation(lambda c: True), charge_compute=False)
        text = render_energy_map(result.ledger.per_node(), side=8)
        lines = text.splitlines()
        assert len(lines) == 8 and all(len(l) == 8 for l in lines)
