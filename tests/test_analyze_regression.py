"""Trajectory regression detection (`repro.analyze.regression`).

The detector must name the exact offending workload *and* metric when a
gated trajectory degrades (floor and/or CI-overlap rule), must never fire
on flat-but-noisy history, and must degrade ungated series to ``drift``
(visible, non-fatal) — the behaviour the CI ``analyze`` job relies on to
pass clean over the real committed ``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

import json

import pytest

from repro.analyze.regression import (
    MIN_HISTORY,
    RegressionReport,
    analyze_trajectories,
    detect_regressions,
    write_report,
)
from repro.analyze.tables import regression_table
from repro.bench import NO_REGRESSION_FLOOR, TRAJECTORY_GATES

GATED_WORKLOAD, GATED_METRIC = TRAJECTORY_GATES[0]


def trajectory(values, workload=GATED_WORKLOAD, metric=GATED_METRIC):
    """A synthetic BENCH-style trajectory, one commit per value."""
    return [
        {
            "commit": f"c{i}",
            "date": None,
            "workloads": {workload: {metric: v, "wall_s": 1.0}},
        }
        for i, v in enumerate(values)
    ]


class TestDetection:
    def test_degrading_trajectory_flagged_with_exact_name(self):
        checks = detect_regressions(
            trajectory([1000.0, 1010.0, 990.0, 1005.0, 995.0, 500.0]), "micro"
        )
        (finding,) = [c for c in checks if c.gated and c.rules_violated]
        assert finding.workload == GATED_WORKLOAD
        assert finding.metric == GATED_METRIC
        assert finding.commit == "c5"
        assert set(finding.rules_violated) == {"floor", "ci"}
        assert not finding.ok
        assert finding.ratio_vs_best == pytest.approx(500.0 / 1010.0)

    def test_flat_noisy_trajectory_no_false_positive(self):
        values = [1000.0, 980.0, 1020.0, 995.0, 1010.0, 990.0, 1005.0]
        report = analyze_trajectories([("micro", trajectory(values))])
        assert report.ok and not report.findings and not report.drift
        (check,) = report.checked
        assert check.rules_violated == ()

    def test_ci_rule_fires_below_floor_threshold(self):
        """A drop too small for the 0.85x floor still trips the 99% PI."""
        values = [1000.0, 1001.0, 999.0, 1000.5, 999.5, 900.0]
        checks = detect_regressions(trajectory(values), "micro")
        (check,) = checks
        assert 900.0 / 1001.0 > NO_REGRESSION_FLOOR  # the floor does NOT fire
        assert check.rules_violated == ("ci",)
        assert not check.ok

    def test_floor_rule_fires_alone_on_wide_history(self):
        """A deep drop inside a wide-variance history trips only the floor."""
        values = [1000.0, 400.0, 1600.0, 700.0, 1300.0, 800.0]
        (check,) = detect_regressions(trajectory(values), "micro")
        assert check.rules_violated == ("floor",)

    def test_ungated_series_degrades_to_drift(self):
        values = [1000.0, 1010.0, 990.0, 1005.0, 995.0, 500.0]
        report = analyze_trajectories(
            [("micro", trajectory(values, workload="timer_storm"))]
        )
        assert report.ok  # drift is visible, never fatal
        assert not report.findings
        (drifting,) = report.drift
        assert drifting.workload == "timer_storm"
        assert drifting.rules_violated  # the same rules fired, ungated

    def test_short_history_skips_ci_rule(self):
        values = [1000.0] * MIN_HISTORY  # history is MIN_HISTORY - 1 points
        (check,) = detect_regressions(trajectory(values + [500.0])[-3:], "micro")
        assert check.pi_lower is None
        assert check.rules_violated == ("floor",)

    def test_single_entry_trajectory_produces_no_checks(self):
        assert detect_regressions(trajectory([1000.0]), "micro") == []
        assert detect_regressions([], "micro") == []

    def test_series_new_in_latest_entry_is_skipped(self):
        runs = trajectory([1000.0, 1005.0])
        runs[-1]["workloads"]["brand_new"] = {"things_per_s": 1.0}
        labels = {c.workload for c in detect_regressions(runs, "micro")}
        assert "brand_new" not in labels

    def test_e1_axis_rows_named_with_axis(self):
        runs = [
            {
                "commit": f"c{i}",
                "workloads": {
                    "e1_deployed_scaling": [
                        {"side": 8, "n_nodes": 100, "tx_per_s": v},
                        {"side": 16, "n_nodes": 400, "tx_per_s": v * 2},
                    ]
                },
            }
            for i, v in enumerate([1000.0, 990.0, 1010.0, 400.0])
        ]
        checks = detect_regressions(runs, "e1")
        labels = {c.workload for c in checks}
        assert labels == {
            "e1_deployed_scaling[side=8]",
            "e1_deployed_scaling[side=16]",
        }
        assert all(not c.gated for c in checks)  # E1 rows are watch-only
        report = RegressionReport(checked=checks)
        assert report.ok and report.drift  # degraded, visible, not fatal

    def test_non_rate_metrics_ignored(self):
        runs = trajectory([1000.0, 500.0])
        for run in runs:
            run["workloads"][GATED_WORKLOAD]["deliveries"] = 12345
        metrics = {c.metric for c in detect_regressions(runs, "micro")}
        assert metrics == {GATED_METRIC}


class TestReport:
    def test_report_json_is_byte_stable_and_names_findings(self, tmp_path):
        docs = [
            ("micro", trajectory([1000.0, 1010.0, 990.0, 1005.0, 995.0, 500.0]))
        ]
        report = analyze_trajectories(docs)
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_report(str(first), report)
        write_report(str(second), analyze_trajectories(docs))
        assert first.read_bytes() == second.read_bytes()
        doc = json.loads(first.read_text())
        assert doc["ok"] is False
        (finding,) = doc["findings"]
        assert finding["workload"] == GATED_WORKLOAD
        assert finding["metric"] == GATED_METRIC
        assert finding["status"] == "regression"

    def test_table_names_the_finding_first(self):
        report = analyze_trajectories(
            [
                ("micro", trajectory([1000.0, 1010.0, 990.0, 1005.0, 995.0, 500.0])),
                ("micro2", trajectory([1000.0, 1001.0, 999.0, 1000.0])),
            ]
        )
        table = regression_table(report)
        lines = table.splitlines()
        assert "REGRESSION(floor,ci)" in lines[2]  # findings sort first
        assert GATED_WORKLOAD in lines[2] and GATED_METRIC in lines[2]

    def test_committed_artifacts_pass_clean(self):
        """The real BENCH_*.json trajectories must not trip the gates."""
        import os

        from repro.analyze.ingest import ingest_trajectory

        root = os.path.join(os.path.dirname(__file__), "..")
        docs = []
        for filename, bench in (("BENCH_micro.json", "micro"), ("BENCH_e1.json", "e1")):
            path = os.path.join(root, filename)
            if os.path.exists(path):
                doc = ingest_trajectory(path, expect_bench=bench)
                docs.append((doc.bench, doc.runs))
        if not docs:
            pytest.skip("no committed BENCH_*.json artifacts")
        report = analyze_trajectories(docs)
        assert report.ok, [c.to_dict() for c in report.findings]
