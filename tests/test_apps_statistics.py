"""Unit tests for the statistical primitives and banded queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.statistics import (
    BandedLabeling,
    HistogramAggregation,
    TopKAggregation,
    banded_labeling,
    quantile_from_histogram,
    query_reading_range,
    rank_of_value,
)
from repro.core import VirtualArchitecture


def readings_for(side):
    """Deterministic readings: value = x + side*y."""
    return lambda c: float(c[0] + side * c[1])


class TestHistogramAggregation:
    def test_in_network_histogram_exact(self):
        side = 8
        va = VirtualArchitecture(side)
        edges = [16.0, 32.0, 48.0]
        agg = HistogramAggregation(readings_for(side), edges)
        result = va.execute(agg)
        counts = result.root_payload
        assert sum(counts) == side * side
        assert counts == [16, 16, 16, 16]  # uniform ramp splits evenly

    def test_bin_edges_validation(self):
        with pytest.raises(ValueError):
            HistogramAggregation(lambda c: 0.0, [2.0, 1.0])
        with pytest.raises(ValueError):
            HistogramAggregation(lambda c: 0.0, [])

    def test_extreme_values_land_in_end_bins(self):
        agg = HistogramAggregation(lambda c: 0.0, [10.0])
        low = agg.local((0, 0))
        assert low == [1, 0]
        agg_hi = HistogramAggregation(lambda c: 99.0, [10.0])
        assert agg_hi.local((0, 0)) == [0, 1]

    def test_message_size_is_bin_count(self):
        agg = HistogramAggregation(lambda c: 0.0, [1.0, 2.0])
        assert agg.size_of([0, 0, 0]) == 3.0


class TestQuantilesAndRanks:
    def test_median_of_uniform_ramp(self):
        side = 8
        va = VirtualArchitecture(side)
        edges = [float(v) for v in range(0, 64, 4)]
        agg = HistogramAggregation(readings_for(side), edges)
        counts = va.execute(agg).root_payload
        median = quantile_from_histogram(counts, edges, 0.5)
        assert abs(median - 32.0) <= 4.0  # within one bin width

    def test_quantile_bounds(self):
        counts = [5, 5]
        edges = [10.0]
        assert quantile_from_histogram(counts, edges, 0.0) == 10.0
        assert quantile_from_histogram(counts, edges, 1.0) == 10.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            quantile_from_histogram([1], [0.0], 1.5)
        with pytest.raises(ValueError):
            quantile_from_histogram([0, 0], [0.0], 0.5)

    def test_rank_of_value(self):
        counts = [3, 4, 5]
        edges = [10.0, 20.0]
        assert rank_of_value(counts, edges, 5.0) == 0
        assert rank_of_value(counts, edges, 15.0) == 3
        assert rank_of_value(counts, edges, 25.0) == 7


class TestTopK:
    def test_in_network_topk_exact(self):
        side = 8
        va = VirtualArchitecture(side)
        agg = TopKAggregation(readings_for(side), k=3)
        result = va.execute(agg)
        top = result.root_payload
        assert [v for v, _ in top] == [63.0, 62.0, 61.0]
        assert top[0][1] == (7, 7)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            TopKAggregation(lambda c: 0.0, 0)

    def test_k_larger_than_population(self):
        va = VirtualArchitecture(2)
        agg = TopKAggregation(readings_for(2), k=10)
        top = va.execute(agg).root_payload
        assert len(top) == 4

    def test_ties_break_by_coordinate(self):
        va = VirtualArchitecture(4)
        agg = TopKAggregation(lambda c: 1.0, k=2)
        top = va.execute(agg).root_payload
        assert top == [(1.0, (0, 0)), (1.0, (0, 1))]


class TestBandedLabeling:
    def test_bands_partition_grid(self):
        side = 8
        readings = np.add.outer(np.arange(side), np.arange(side)).astype(float)
        lab = banded_labeling(readings, [4.0, 8.0, 12.0])
        total_area = sum(sum(a) for a in lab.band_areas)
        assert total_area == side * side
        assert lab.num_bands == 4

    def test_diagonal_bands_are_single_regions(self):
        side = 8
        readings = np.add.outer(np.arange(side), np.arange(side)).astype(float)
        lab = banded_labeling(readings, [4.0, 8.0, 12.0])
        # each diagonal band of the x+y ramp is connected
        assert all(c == 1 for c in lab.band_regions)

    def test_band_of(self):
        lab = banded_labeling(np.zeros((2, 2)), [1.0, 2.0])
        assert lab.band_of(0.5) == 0
        assert lab.band_of(1.5) == 1
        assert lab.band_of(99.0) == 2

    def test_edges_validation(self):
        with pytest.raises(ValueError):
            banded_labeling(np.zeros((2, 2)), [2.0, 1.0])


class TestRangeQuery:
    @pytest.fixture
    def labeling(self):
        side = 8
        readings = np.add.outer(np.arange(side), np.arange(side)).astype(float)
        return banded_labeling(readings, [4.0, 8.0, 12.0])

    def test_single_band_query(self, labeling):
        result = query_reading_range(labeling, 5.0, 7.0)
        assert result["bands"] == [1]
        assert result["total_regions"] == 1

    def test_multi_band_query(self, labeling):
        result = query_reading_range(labeling, 2.0, 10.0)
        assert result["bands"] == [0, 1, 2]
        assert result["total_regions"] == 3

    def test_area_accounting(self, labeling):
        everything = query_reading_range(labeling, -1.0, 100.0)
        assert everything["total_area"] == 64

    def test_validation(self, labeling):
        with pytest.raises(ValueError):
            query_reading_range(labeling, 5.0, 1.0)
