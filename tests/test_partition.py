"""Space-partitioned parallel simulator (DESIGN.md §12).

The subsystem's contract, pinned here:

* **serial == partitioned**: for every seeded configuration the K-shard
  conservative-lookahead run produces the same fingerprint whether the
  shard worlds execute serially in-process or on real worker processes —
  across loss, jitter, wire-codec, and fault-plan regimes (property test
  plus pinned regression examples);
* K = 1 through the partition entry point is byte-identical to the
  legacy single-simulator path (same root RNG stream);
* battery drain and leader state are written back to the parent stack,
  so a partitioned round composes with follow-up rounds exactly like a
  serial one;
* the medium refuses transmissions whose delay undercuts the declared
  lookahead bound (the conservative-synchronization safety net);
* nested parallelism resolves by shrinking the worker pool, never K.
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from hypothesis import HealthCheck, example, given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - baked into the test image
    HAVE_HYPOTHESIS = False

from repro.core import CountAggregation, VirtualArchitecture
from repro.partition import (
    SWEEP_WORKERS_ENV,
    default_lookahead,
    effective_procs,
    plan_stripes,
    run_partitioned_application,
    run_partitioned_storm,
)
from repro.runtime import FaultEvent, FaultPlan, deploy
from repro.simulator.engine import Simulator

from conftest import make_deployment


def _count_all(cell) -> bool:
    """Module-level predicate: specs are pickled into shard workers."""
    return True


def _spec(side: int):
    return VirtualArchitecture(side).synthesize(CountAggregation(_count_all))


def _fingerprint(result):
    report = result.fault_report
    return (
        result.ledger.fingerprint(),
        result.transmissions,
        result.drops,
        result.latency,
        result.events_processed,
        # exfiltrated (not root_payload): under heavy loss a round may
        # legitimately exhaust its retries, and both sides must agree on
        # that outcome too
        tuple(sorted(result.exfiltrated.items())),
        None
        if report is None
        else (
            tuple(report.injected),
            tuple(report.failovers),
            report.reroutes,
            report.frames_rejected,
        ),
    )


def _boundary_kill_plan(stack, partitions: int):
    """A kill_leader landing on a cell that borders a shard cut."""
    plan = plan_stripes(stack.network, max(2, partitions))
    cell = next(
        c for c in sorted(plan.boundary_cells) if c in stack.binding.leaders
    )
    return FaultPlan(
        events=(FaultEvent(time=0.5, action="kill_leader", cell=cell),)
    )


def _app_fingerprint(
    side: int,
    partitions: int,
    procs: int,
    seed: int = 11,
    loss: float = 0.0,
    jitter: float = 0.0,
    wire: bool = False,
    fault: bool = False,
):
    net = make_deployment(side=side, seed=seed)
    stack = deploy(net)
    plan = _boundary_kill_plan(stack, partitions) if fault else None
    result = run_partitioned_application(
        stack,
        _spec(side),
        partitions=partitions,
        procs=procs,
        loss_rate=loss,
        jitter=jitter,
        rng=np.random.default_rng(seed + 1),
        reliable=loss > 0.0 or fault,
        max_retries=8,
        wire_format=wire,
        fault_plan=plan,
        wall_timeout_s=120.0,
    )
    return _fingerprint(result)


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------


def test_plan_stripes_shape():
    net = make_deployment(side=8, seed=11)
    plan = plan_stripes(net, 4)
    assert plan.partitions == 4 and plan.side == 8
    # every node owned exactly once, by the shard of its column stripe
    owned = [nid for shard in plan.local_nodes for nid in shard]
    assert sorted(owned) == sorted(net.node_ids())
    for nid in net.node_ids():
        col = net.cell_of(nid)[0]
        assert plan.shard_of_node[nid] == col * 4 // 8
    # stripe cuts exist, and every boundary cell touches a foreign shard
    assert plan.boundary_cells
    for cell in plan.boundary_cells:
        assert 0 <= plan.shard_of_cell(cell) < 4


def test_plan_stripes_validation():
    net = make_deployment(side=8, seed=11)
    with pytest.raises(ValueError):
        plan_stripes(net, 3)  # 8 % 3 != 0
    with pytest.raises(ValueError):
        plan_stripes(net, 16)  # more shards than columns
    with pytest.raises(ValueError):
        plan_stripes(net, 0)


# ---------------------------------------------------------------------------
# Engine primitives the windowed driver relies on
# ---------------------------------------------------------------------------


def test_engine_run_until_lookahead_and_inject():
    sim = Simulator()
    fired = []
    for t in (1.0, 2.0, 3.0, 5.0):
        sim.schedule(t, fired.append, t)
    assert sim.next_event_time() == 1.0
    # arrival exactly == horizon is inside the window
    assert sim.run_until_lookahead(3.0) == 3
    assert fired == [1.0, 2.0, 3.0]
    assert sim.now == 3.0  # the clock stays at the last fired event
    assert sim.next_event_time() == 5.0
    # boundary injection at the current instant is legal...
    sim.inject_at(3.0, fired.append, "boundary")
    assert sim.run_until_lookahead(4.0) == 1
    assert fired[-1] == "boundary"
    # ...but injection into the past must be impossible
    with pytest.raises(ValueError):
        sim.inject_at(2.0, fired.append, "late")


def test_medium_rejects_sub_lookahead_delay():
    """The conservative bound is load-bearing: a partitioned medium must
    refuse any transmission that could arrive inside the current window."""
    net = make_deployment(side=8, seed=11)
    with pytest.raises(RuntimeError, match="lookahead"):
        run_partitioned_storm(
            net, rounds=2, partitions=2, procs=1,
            rng=np.random.default_rng(11), lookahead=999.0,
        )


# ---------------------------------------------------------------------------
# Serial == partitioned
# ---------------------------------------------------------------------------


def test_k1_byte_identical_to_legacy():
    side, seed = 8, 11
    net = make_deployment(side=side, seed=seed)
    stack = deploy(net)
    legacy = stack.run_application(
        _spec(side), loss_rate=0.1, rng=np.random.default_rng(seed + 1),
        reliable=True, max_retries=8,
    )
    net2 = make_deployment(side=side, seed=seed)
    stack2 = deploy(net2)
    via_k1 = run_partitioned_application(
        stack2, _spec(side), partitions=1, procs=1, loss_rate=0.1,
        rng=np.random.default_rng(seed + 1), reliable=True, max_retries=8,
    )
    assert _fingerprint(via_k1) == _fingerprint(legacy)


@pytest.mark.parametrize("partitions", [2, 4])
@pytest.mark.parametrize("wire", [False, True])
def test_serial_equals_worker_processes(partitions, wire):
    serial = _app_fingerprint(8, partitions, procs=1, loss=0.1, wire=wire)
    parallel = _app_fingerprint(8, partitions, procs=2, loss=0.1, wire=wire)
    assert serial == parallel


def test_boundary_cell_fault_replays_identically():
    serial = _app_fingerprint(8, 4, procs=1, loss=0.05, wire=True, fault=True)
    parallel = _app_fingerprint(8, 4, procs=2, loss=0.05, wire=True, fault=True)
    assert serial == parallel
    report = serial[-1]
    assert report is not None
    assert len(report[1]) == 1  # the boundary failover, recorded exactly once


def test_storm_fingerprint_procs_invariant():
    net = make_deployment(side=8, seed=11)
    runs = [
        run_partitioned_storm(
            net, rounds=3, partitions=4, procs=procs, loss_rate=0.1,
            jitter=0.2, rng=np.random.default_rng(11),
        )
        for procs in (1, 2, 4)
    ]
    assert len({r.fingerprint for r in runs}) == 1
    assert runs[0].windows > 0


def test_battery_writeback_composes_with_followup_round():
    """Round 2 on a stack whose round 1 was partitioned must equal round 2
    on a stack whose round 1 was serial: drained batteries, consumed
    energy, and leader state all written back to the parent network."""
    side, seed = 8, 11

    def two_rounds(partitioned: bool):
        net = make_deployment(side=side, seed=seed)
        stack = deploy(net)
        if partitioned:
            run_partitioned_application(
                stack, _spec(side), partitions=4, procs=2,
                rng=np.random.default_rng(seed + 1),
            )
        else:
            stack.run_application(
                _spec(side), rng=np.random.default_rng(seed + 1)
            )
        second = stack.run_application(
            _spec(side), rng=np.random.default_rng(seed + 2)
        )
        return _fingerprint(second)

    assert two_rounds(partitioned=True) == two_rounds(partitioned=False)


# ---------------------------------------------------------------------------
# Nested parallelism
# ---------------------------------------------------------------------------


def test_effective_procs_clamps_pool_not_shards(monkeypatch):
    monkeypatch.setenv(SWEEP_WORKERS_ENV, str(8 * (__import__("os").cpu_count() or 1)))
    budget = effective_procs(4)
    assert budget.procs == 1 and budget.requested == 4 and budget.clamped
    # explicit procs is an operator override of the cpu budget
    assert effective_procs(4, procs=3).procs == 3
    # but never more workers than shards
    assert effective_procs(2, procs=64).procs == 2
    monkeypatch.delenv(SWEEP_WORKERS_ENV)
    assert effective_procs(1).procs == 1


def test_default_lookahead_positive():
    from repro.core import UniformCostModel

    assert default_lookahead(UniformCostModel(), None) > 0.0


# ---------------------------------------------------------------------------
# The property: serial == partitioned for every seeded configuration
# ---------------------------------------------------------------------------


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
        derandomize=True,
    )
    @given(
        side=st.sampled_from([8, 16]),
        partitions=st.sampled_from([1, 2, 4]),
        loss=st.sampled_from([0.0, 0.12]),
        jitter=st.sampled_from([0.0, 0.2]),
        wire=st.booleans(),
        fault=st.booleans(),
        seed=st.integers(min_value=3, max_value=97),
    )
    @example(side=8, partitions=4, loss=0.12, jitter=0.0, wire=True,
             fault=True, seed=11)
    @example(side=16, partitions=2, loss=0.0, jitter=0.2, wire=False,
             fault=False, seed=11)
    @example(side=8, partitions=1, loss=0.12, jitter=0.0, wire=True,
             fault=False, seed=11)
    def test_property_serial_equals_partitioned(
        side, partitions, loss, jitter, wire, fault, seed
    ):
        kwargs = dict(seed=seed, loss=loss, jitter=jitter, wire=wire,
                      fault=fault)
        serial = _app_fingerprint(side, partitions, procs=1, **kwargs)
        parallel = _app_fingerprint(side, partitions, procs=2, **kwargs)
        assert serial == parallel
