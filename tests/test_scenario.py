"""Tests for the pluggable scenario models (repro.scenario, DESIGN.md §14).

Unit tests pin the declarative models' determinism, validation, and dict
round-trips; integration tests pin the subsystem's reproducibility
contract — identical fingerprints for a seeded scenario across serial,
partitioned (K in {1, 4}), and sharded-sweep execution, with the wire
codec on and off — plus the boundary-packet wire codec itself.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import CountAggregation, VirtualArchitecture
from repro.deployment import (
    CellGrid,
    Terrain,
    build_network,
    ensure_coverage,
    uniform_random,
)
from repro.runtime import deploy
from repro.runtime.faults import FaultEvent, FaultPlan
from repro.runtime.wire import WireDecodeError, decode_packet, encode_packet
from repro.scenario import (
    Attacker,
    LogNormalShadowing,
    MobilityModel,
    Move,
    PerPairFading,
    Scenario,
    SourcePeriodModel,
    UnitDisk,
    link_model_from_dict,
    plan_cell_hops,
)
from repro.scenario.link import stable_unit
from repro.simulator.network import Packet

SIDE = 4
SEED = 17


def make_network(seed: int = SEED, side: int = SIDE, n_random: int = 140):
    terrain = Terrain(100.0)
    cells = CellGrid(terrain, side)
    rng = np.random.default_rng(seed)
    positions = ensure_coverage(uniform_random(n_random, terrain, rng), cells, rng)
    return build_network(positions, cells, tx_range=cells.cell_side * 2.3)


def count_all(cell) -> bool:
    """Module-level predicate (partitioned runs pickle the spec)."""
    return True


def run_round(
    scenario,
    partitions: int = 0,
    wire: bool = False,
    plan=None,
    seed: int = SEED,
):
    """One seeded round on a fresh stack; ``partitions=0`` = legacy path."""
    from repro.partition.runner import run_partitioned_application

    stack = deploy(make_network(seed))
    spec = VirtualArchitecture(SIDE).synthesize(CountAggregation(count_all))
    if partitions == 0:
        return stack.run_application(
            spec,
            rng=np.random.default_rng(seed + 1),
            reliable=True,
            max_retries=8,
            wire_format=wire,
            fault_plan=plan,
            scenario=scenario,
        )
    return run_partitioned_application(
        stack,
        spec,
        partitions=partitions,
        procs=1,
        rng=np.random.default_rng(seed + 1),
        reliable=True,
        max_retries=8,
        wire_format=wire,
        fault_plan=plan,
        scenario=scenario,
        wall_timeout_s=120.0,
    )


def full_scenario(seed: int = SEED) -> Scenario:
    net = make_network(seed)
    cells = [(x, y) for x in range(SIDE) for y in range(SIDE)]
    return Scenario(
        link=LogNormalShadowing(sigma=3.0, seed=seed),
        mobility=plan_cell_hops(
            sorted(net.node_ids()), cells, hops=3, at=0.6, spacing=0.1, seed=seed
        ),
        attacker=Attacker(start_cell=(0, 0), source_cells=((SIDE - 1, SIDE - 1),)),
        sources=SourcePeriodModel(
            cells=((SIDE - 1, SIDE - 1),), period=1.0, first=0.4, count=2,
            dst_cell=(0, 0),
        ),
    )


class TestStableUnit:
    def test_deterministic_and_in_range(self):
        draws = [stable_unit(3, 1, 2, n) for n in range(1000)]
        assert draws == [stable_unit(3, 1, 2, n) for n in range(1000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        # roughly uniform: the mean of 1000 draws sits near 0.5
        assert 0.4 < sum(draws) / len(draws) < 0.6

    def test_distinct_inputs_decorrelate(self):
        assert stable_unit(1, 2, 3) != stable_unit(1, 2, 4)
        assert stable_unit(0) != stable_unit(1)


class TestLinkModels:
    def test_unit_disk_builds_no_gate(self):
        assert UnitDisk().build_gate(make_network()) is None

    def test_gate_admission_is_counter_deterministic(self):
        net = make_network()
        model = LogNormalShadowing(sigma=4.0, seed=5)
        a, b = model.build_gate(net), model.build_gate(net)
        u = net.node_ids()[0]
        v = net.neighbors(u)[0]
        verdicts = [a.admit(u, v) for _ in range(200)]
        assert verdicts == [b.admit(u, v) for _ in range(200)]
        assert a.faded == b.faded

    def test_shadowing_is_asymmetric(self):
        net = make_network()
        gate = LogNormalShadowing(sigma=6.0, softness=1.0, seed=2).build_gate(net)
        probs_fwd = []
        probs_rev = []
        for u in net.node_ids()[:40]:
            for v in net.neighbors(u):
                probs_fwd.append(gate._prob_fn(u, v))
                probs_rev.append(gate._prob_fn(v, u))
        assert probs_fwd != probs_rev  # directed draws differ somewhere

    def test_per_pair_fading_probability_shape(self):
        net = make_network()
        gate = PerPairFading(depth=1.0, seed=0).build_gate(net)
        u = net.node_ids()[0]
        for v in net.neighbors(u):
            assert 0.0 <= gate._prob_fn(u, v) <= 1.0

    def test_dict_round_trip(self):
        for model in (
            UnitDisk(),
            LogNormalShadowing(sigma=2.5, path_loss_exponent=3.0, seed=9),
            PerPairFading(depth=0.25, seed=4),
        ):
            clone = link_model_from_dict(json.loads(json.dumps(model.to_dict())))
            assert clone == model
            assert clone.fingerprint() == model.fingerprint()

    def test_validation(self):
        with pytest.raises(ValueError, match="sigma"):
            LogNormalShadowing(sigma=-0.1)
        with pytest.raises(ValueError, match="path_loss_exponent"):
            LogNormalShadowing(path_loss_exponent=0.0)
        with pytest.raises(ValueError, match="depth"):
            PerPairFading(depth=-0.5)
        with pytest.raises(ValueError, match="unknown link model"):
            link_model_from_dict({"kind": "string-and-cans"})


class TestMobilityModel:
    def test_moves_sort_and_round_trip(self):
        model = MobilityModel(
            moves=(
                Move(time=2.0, node=5, cell=(1, 1)),
                Move(time=1.0, node=9, position=(3.0, 4.0)),
            )
        )
        assert [m.time for m in model.moves] == [1.0, 2.0]
        clone = MobilityModel.from_dicts(json.loads(json.dumps(model.to_dicts())))
        assert clone == model
        assert clone.fingerprint() == model.fingerprint()

    def test_plan_cell_hops_is_seed_pure(self):
        nodes, cells = range(50), [(0, 0), (1, 1), (2, 2)]
        a = plan_cell_hops(nodes, cells, hops=7, seed=3)
        assert a == plan_cell_hops(nodes, cells, hops=7, seed=3)
        assert a != plan_cell_hops(nodes, cells, hops=7, seed=4)
        assert len({m.node for m in a.moves}) == 7  # distinct movers

    def test_validation(self):
        with pytest.raises(ValueError, match="cell= or position="):
            Move(time=1.0, node=0)
        with pytest.raises(ValueError, match="hops"):
            plan_cell_hops(range(10), [(0, 0)], hops=0)
        with pytest.raises(ValueError, match="distinct nodes"):
            plan_cell_hops(range(3), [(0, 0)], hops=5)

    def test_move_node_rewrites_topology(self):
        net = make_network()
        cells = net.cells
        nid = net.node_ids()[0]
        old_cell = net.cell_of(nid)
        target = (SIDE - 1, SIDE - 1) if old_cell != (SIDE - 1, SIDE - 1) else (0, 0)
        gen = net.liveness_generation
        returned_old, new_cell = net.move_node(nid, cells.center(target))
        assert (returned_old, new_cell) == (old_cell, target)
        assert net.cell_of(nid) == target
        assert nid in net.members_of_cell(target)
        assert nid not in net.members_of_cell(old_cell)
        assert net.liveness_generation > gen
        # adjacency is symmetric after the rewrite
        for nbr in net.neighbors(nid, alive_only=False):
            assert nid in net.neighbors(nbr, alive_only=False)


class TestAttackerModel:
    def test_pursuit_walks_reverse_path_and_captures(self):
        net = make_network()
        atk = Attacker(start_cell=(0, 0), source_cells=((1, 1),))
        # synthetic tap: 7 -> 5 -> 3 chain of transmissions toward node 3
        deliveries = [(1.0, 5, 3), (2.0, 7, 5)]
        out = atk.pursue(deliveries, start_node=3, source_nodes=[7], network=net)
        assert out.captured and out.capture_time == 2.0 and out.moves == 2
        assert out.final_node == 7 and out.distance == 0.0

    def test_cooldown_skips_deliveries(self):
        net = make_network()
        atk = Attacker(start_cell=(0, 0), source_cells=((1, 1),), move_cooldown=5.0)
        deliveries = [(1.0, 5, 3), (2.0, 7, 5)]  # second lands inside cooldown
        out = atk.pursue(deliveries, start_node=3, source_nodes=[7], network=net)
        assert not out.captured and out.moves == 1 and out.final_node == 5

    def test_unresolvable_start_yields_null_outcome(self):
        net = make_network()
        atk = Attacker(start_cell=(0, 0), source_cells=((1, 1),))
        out = atk.pursue([], start_node=None, source_nodes=[1], network=net)
        assert out.as_tuple() == (False, -1.0, 0, -1, -1.0)

    def test_dict_round_trip(self):
        atk = Attacker(
            start_cell=(0, 0), source_cells=((3, 3), (1, 2)), move_cooldown=2.0
        )
        clone = Attacker.from_dict(json.loads(json.dumps(atk.to_dict())))
        assert clone == atk and clone.fingerprint() == atk.fingerprint()


class TestSourcePeriodModel:
    def test_events_are_sorted_and_complete(self):
        model = SourcePeriodModel(
            cells=((1, 1), (0, 2)), period=2.0, first=0.5, count=3
        )
        events = list(model.events())
        assert len(events) == 6
        assert events == sorted(events)
        assert {cell for _, cell, _ in events} == {(1, 1), (0, 2)}

    def test_dict_round_trip(self):
        model = SourcePeriodModel(cells=((2, 2),), period=1.5, count=4)
        clone = SourcePeriodModel.from_dict(json.loads(json.dumps(model.to_dict())))
        assert clone == model and clone.fingerprint() == model.fingerprint()


class TestScenarioSpec:
    def test_trivial_detection(self):
        assert Scenario().is_trivial()
        assert Scenario(link=UnitDisk()).is_trivial()
        assert not Scenario(link=PerPairFading()).is_trivial()
        assert not Scenario(
            mobility=MobilityModel((Move(time=1.0, node=0, cell=(0, 0)),))
        ).is_trivial()

    def test_coerce(self):
        scn = Scenario(link=PerPairFading(depth=0.3))
        assert Scenario.coerce(None) is None
        assert Scenario.coerce(scn) is scn
        assert Scenario.coerce(scn.to_dict()) == scn
        with pytest.raises(TypeError):
            Scenario.coerce("shadowing")

    def test_full_round_trip_preserves_fingerprint(self):
        scn = full_scenario()
        clone = Scenario.from_dict(json.loads(json.dumps(scn.to_dict())))
        assert clone.fingerprint() == scn.fingerprint()


class TestPacketWireCodec:
    def test_round_trip(self):
        for packet in (
            Packet(src=3, kind="transport", payload=(1, "x", [2.5]), size_units=2.0),
            Packet(src=0, kind="hb", payload=None, size_units=0.25, dst=7),
        ):
            assert decode_packet(encode_packet(packet)) == packet

    def test_corruption_is_loud(self):
        blob = encode_packet(Packet(src=1, kind="k", payload="p"))
        with pytest.raises(WireDecodeError):
            decode_packet(blob[:5])
        with pytest.raises(WireDecodeError):
            decode_packet(b"XX" + blob[2:])
        with pytest.raises(WireDecodeError):
            decode_packet(b"")


class TestScenarioRuns:
    def test_unit_disk_is_byte_identical_to_no_scenario(self):
        base = run_round(None)
        named = run_round(Scenario(link=UnitDisk()))
        assert named.fingerprint() == base.fingerprint()
        assert named.scenario_report is None

    @pytest.mark.parametrize(
        "model",
        [LogNormalShadowing(sigma=3.0, seed=7), PerPairFading(depth=0.7, seed=7)],
        ids=["shadowing", "fading"],
    )
    def test_link_models_rerun_identically_and_fade(self, model):
        first = run_round(Scenario(link=model))
        again = run_round(Scenario(link=model))
        assert first.fingerprint() == again.fingerprint()
        assert first.scenario_report.link_faded > 0

    @pytest.mark.parametrize("partitions", [1, 4])
    @pytest.mark.parametrize("wire", [False, True], ids=["pickle", "wire"])
    def test_full_scenario_is_execution_mode_invariant(self, partitions, wire):
        scn = full_scenario()
        plan = FaultPlan(
            events=(FaultEvent(time=0.7, action="kill_leader", cell=(1, 1)),)
        )
        serial = run_round(scn, wire=wire, plan=plan)
        sharded = run_round(scn, partitions=partitions, wire=wire, plan=plan)
        assert sharded.fingerprint() == serial.fingerprint()
        assert (
            sharded.scenario_report.attacker.as_tuple()
            == serial.scenario_report.attacker.as_tuple()
        )

    def test_report_accounting(self):
        scn = full_scenario()
        result = run_round(scn)
        rep = result.scenario_report
        assert len(rep.relocations) == len(scn.mobility.moves)
        assert rep.source_emissions + rep.source_skipped == 2
        metrics = rep.metrics()
        for key in ("relocations", "link_faded", "attacker_moves"):
            assert key in metrics


class TestScenarioSweepAxis:
    def test_e1_scenario_axis_serial_matches_sharded(self):
        from repro.sweep import SweepSpec, run_sweep

        scn_dict = full_scenario().to_dict()
        spec = SweepSpec(
            name="scenario-axis",
            workload="e1",
            grid={"scenario": [None, scn_dict]},
            fixed={"side": SIDE, "n_random": 140},
        )
        serial = run_sweep(spec, workers=1)
        sharded = run_sweep(spec, workers=2, timeout_s=600, retries=1)
        assert all(r["status"] == "ok" for r in serial + sharded)
        assert {r["run_id"]: r["fingerprint"] for r in sharded} == {
            r["run_id"]: r["fingerprint"] for r in serial
        }
        with_scn = [r for r in serial if r["params"]["scenario"] is not None]
        assert with_scn and "attacker_moves" in with_scn[0]["metrics"]
