"""Meta-tests keeping the documentation honest.

DESIGN.md's experiment index must point at bench modules that exist;
README's example table must list scripts that exist; every public module
needs a docstring; package ``__all__`` lists must resolve.
"""

from __future__ import annotations

import importlib
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestDesignIndex:
    def test_every_bench_target_exists(self):
        text = (REPO / "DESIGN.md").read_text()
        targets = set(re.findall(r"`benchmarks/(bench_\w+\.py)`", text))
        assert targets, "DESIGN.md lists no bench targets?"
        for target in targets:
            assert (REPO / "benchmarks" / target).exists(), target

    def test_every_bench_module_is_indexed(self):
        text = (REPO / "DESIGN.md").read_text()
        on_disk = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        indexed = set(re.findall(r"`benchmarks/(bench_\w+\.py)`", text))
        assert on_disk <= indexed, f"unindexed benches: {on_disk - indexed}"

    def test_inventory_modules_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        for module in modules:
            importlib.import_module(module)


class TestReadme:
    def test_examples_exist(self):
        text = (REPO / "README.md").read_text()
        examples = set(re.findall(r"`examples/(\w+\.py)`", text))
        assert len(examples) >= 5
        for ex in examples:
            assert (REPO / "examples" / ex).exists(), ex

    def test_all_examples_are_listed(self):
        text = (REPO / "README.md").read_text()
        on_disk = {p.name for p in (REPO / "examples").glob("*.py")}
        listed = set(re.findall(r"`examples/(\w+\.py)`", text))
        assert on_disk <= listed, f"unlisted examples: {on_disk - listed}"

    def test_doc_files_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
            assert (REPO / name).exists(), name


class TestPublicApiHygiene:
    PACKAGES = [
        "repro",
        "repro.analyze",
        "repro.core",
        "repro.apps",
        "repro.deployment",
        "repro.scenario",
        "repro.simulator",
        "repro.runtime",
    ]

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        mod = importlib.import_module(package)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{package}.{name}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_sorted(self, package):
        mod = importlib.import_module(package)
        assert list(mod.__all__) == sorted(mod.__all__), package

    def test_every_module_has_docstring(self):
        for path in (REPO / "src" / "repro").rglob("*.py"):
            module = (
                str(path.relative_to(REPO / "src"))
                .replace("/", ".")
                .removesuffix(".py")
                .removesuffix(".__init__")
            )
            mod = importlib.import_module(module)
            assert mod.__doc__ and len(mod.__doc__.strip()) > 40, module

    def test_public_classes_have_docstrings(self):
        import inspect

        for package in self.PACKAGES:
            mod = importlib.import_module(package)
            for name in mod.__all__:
                obj = getattr(mod, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    assert obj.__doc__, f"{package}.{name} lacks a docstring"


class TestAnalyzeDocs:
    def test_analyze_documented_everywhere(self):
        """The analytics pipeline is documented in all three doc files."""
        design = (REPO / "DESIGN.md").read_text()
        assert "## 15. Campaign analytics (`repro.analyze`)" in design
        for name in ("README.md", "EXPERIMENTS.md"):
            text = (REPO / name).read_text()
            assert "python -m repro analyze" in text, name

    def test_golden_fixture_regen_hint_is_accurate(self):
        """DESIGN.md's regen command points at a real entry point."""
        design = (REPO / "DESIGN.md").read_text()
        assert "python tests/test_analyze_golden.py --regen" in design
        golden = (REPO / "tests" / "test_analyze_golden.py").read_text()
        assert '"--regen"' in golden


class TestReadmeSnippets:
    def test_python_blocks_execute(self):
        """Every ```python block in the README must run as written."""
        text = (REPO / "README.md").read_text()
        blocks, cur, in_block = [], [], False
        for line in text.splitlines():
            if line.startswith("```python"):
                in_block, cur = True, []
                continue
            if line.startswith("```") and in_block:
                in_block = False
                blocks.append("\n".join(cur))
                continue
            if in_block:
                cur.append(line)
        assert len(blocks) >= 2
        namespace: dict = {}
        for block in blocks:
            exec(block, namespace)  # noqa: S102 - the docs are the fixture
        # the quickstart's documented outputs hold
        assert namespace["report"].regions == 2
        assert namespace["report"].correct is True
