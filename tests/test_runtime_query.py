"""Unit tests for deployed query execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    MergeAccumulator,
    count_regions,
    feature_matrix_aggregation,
    random_feature_matrix,
)
from repro.core import VirtualArchitecture
from repro.runtime import deploy
from repro.runtime.query import run_deployed_query

from conftest import make_deployment


@pytest.fixture(scope="module")
def stack_with_storage():
    net = make_deployment(side=4, n_random=120, seed=7)
    stack = deploy(net)
    feat = random_feature_matrix(4, 0.5, rng=2)
    va = VirtualArchitecture(4)
    spec = va.synthesize(feature_matrix_aggregation(feat), max_level=1)
    run = stack.run_application(spec)
    assert len(run.exfiltrated) == 4  # level-1 storage leaders
    return net, stack, feat, run.exfiltrated


class TestDeployedQueries:
    def test_count_query_sums_local_counts(self, stack_with_storage):
        _, stack, feat, storage = stack_with_storage
        result = run_deployed_query(
            stack,
            {cell: s.total_regions() for cell, s in storage.items()},
            query_cell=(3, 3),
            reduce_fn=sum,
        )
        # sum-of-local-counts equals the design-time fast query's value
        expected = sum(s.total_regions() for s in storage.values())
        assert result.value == expected
        assert result.responses == len(storage) - (1 if (3, 3) in storage else 0)
        assert result.drops == 0

    def test_exact_count_via_summary_shipping(self, stack_with_storage):
        _, stack, feat, storage = stack_with_storage

        def merge_all(summaries):
            acc = MergeAccumulator((0, 0, 4, 4))
            for s in summaries:
                acc.add(s)
            return acc.finalize().total_regions()

        result = run_deployed_query(
            stack,
            dict(storage),
            query_cell=(0, 0),
            reduce_fn=merge_all,
            response_size_of=lambda s: s.size_units,
        )
        assert result.value == count_regions(feat)

    def test_query_from_storage_cell_skips_self_roundtrip(
        self, stack_with_storage
    ):
        _, stack, feat, storage = stack_with_storage
        assert (0, 0) in storage
        result = run_deployed_query(
            stack,
            {cell: 1 for cell in storage},
            query_cell=(0, 0),
            reduce_fn=sum,
        )
        assert result.value == len(storage)
        assert result.responses == len(storage) - 1  # own count was local

    def test_query_cost_less_than_gathering(self, stack_with_storage):
        net, stack, feat, storage = stack_with_storage
        va = VirtualArchitecture(4)
        gather_run = stack.run_application(
            va.synthesize(feature_matrix_aggregation(feat), max_level=1)
        )
        query = run_deployed_query(
            stack,
            {cell: s.total_regions() for cell, s in storage.items()},
            query_cell=(1, 1),
            reduce_fn=sum,
        )
        assert query.energy < gather_run.ledger.total

    def test_invalid_query_cell(self, stack_with_storage):
        _, stack, _, storage = stack_with_storage
        with pytest.raises(ValueError):
            run_deployed_query(
                stack, dict(storage), query_cell=(9, 9), reduce_fn=len
            )

    def test_deterministic(self, stack_with_storage):
        _, stack, _, storage = stack_with_storage
        kwargs = dict(
            storage={cell: 1 for cell in storage},
            query_cell=(2, 2),
            reduce_fn=sum,
        )
        a = run_deployed_query(stack, **kwargs)
        b = run_deployed_query(stack, **kwargs)
        assert (a.value, a.latency, a.transmissions) == (
            b.value,
            b.latency,
            b.transmissions,
        )

    def test_lossy_query_degrades_not_corrupts(self, stack_with_storage):
        _, stack, _, storage = stack_with_storage
        result = run_deployed_query(
            stack,
            {cell: 1 for cell in storage},
            query_cell=(3, 0),
            reduce_fn=sum,
            loss_rate=0.3,
            rng=np.random.default_rng(1),
        )
        # some responses may be lost; the answer is a lower bound
        assert result.value <= len(storage)

    def test_reliable_query_survives_loss(self, stack_with_storage):
        _, stack, _, storage = stack_with_storage
        result = run_deployed_query(
            stack,
            {cell: 1 for cell in storage},
            query_cell=(3, 0),
            reduce_fn=sum,
            loss_rate=0.25,
            rng=np.random.default_rng(3),
            reliable=True,
        )
        assert result.value == len(storage)  # every response got through
        assert result.complete
        assert result.missing_cells == []


class TestCompletenessAccounting:
    """Regression: the seed silently reduced over partial answers."""

    def test_clean_run_reports_complete(self, stack_with_storage):
        _, stack, _, storage = stack_with_storage
        result = run_deployed_query(
            stack, {cell: 1 for cell in storage}, query_cell=(3, 3),
            reduce_fn=sum,
        )
        assert result.complete
        assert result.missing_cells == []
        assert result.misdirected == 0

    def test_lossy_partial_answer_reported_incomplete(self, stack_with_storage):
        """The silent-partial-answer bug: under forced loss the reducer
        used to run over whatever arrived, with ``expected_responses``
        stored but never consulted.  The seeded run below loses at least
        one response; the result must say so."""
        _, stack, _, storage = stack_with_storage
        result = run_deployed_query(
            stack,
            {cell: 1 for cell in storage},
            query_cell=(3, 0),
            reduce_fn=sum,
            loss_rate=0.6,
            rng=np.random.default_rng(2),
        )
        assert result.value < len(storage), "seed no longer forces a loss"
        assert not result.complete
        assert result.missing_cells, "lost cells must be enumerated"
        assert set(result.missing_cells) <= set(storage)
        assert result.value + len(result.missing_cells) == len(storage)

    def test_missing_cells_name_exactly_the_silent_cells(
        self, stack_with_storage
    ):
        _, stack, _, storage = stack_with_storage
        result = run_deployed_query(
            stack,
            {cell: cell for cell in storage},  # payload identifies its cell
            query_cell=(3, 0),
            reduce_fn=list,
            loss_rate=0.6,
            rng=np.random.default_rng(2),
        )
        answered = set(result.value)
        assert set(result.missing_cells) == set(storage) - answered


class TestMisdirectedAccounting:
    """Regression: ``misdirected`` was counted internally, then dropped."""

    def test_request_to_empty_leader_counts_misdirected(
        self, stack_with_storage
    ):
        _, stack, _, storage = stack_with_storage
        cells = sorted(storage)
        # one "storage" cell whose leader holds nothing: the request is
        # delivered to a leader that cannot answer — a protocol routing
        # error that used to vanish
        bogus = {cells[0]: 1, cells[1]: None}
        result = run_deployed_query(
            stack, bogus, query_cell=(3, 3), reduce_fn=sum
        )
        assert result.misdirected == 1
        assert not result.complete
        assert result.missing_cells == [cells[1]]
        assert result.value == 1
