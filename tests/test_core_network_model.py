"""Unit tests for repro.core.network_model: grid and tree topologies."""

from __future__ import annotations

import pytest

from repro.core.coords import Direction
from repro.core.network_model import OrientedGrid, VirtualTree


class TestOrientedGridBasics:
    def test_num_nodes(self):
        assert OrientedGrid(4).num_nodes == 16
        assert OrientedGrid(3, 5).num_nodes == 15

    def test_default_square(self):
        g = OrientedGrid(6)
        assert g.width == 6 and g.height == 6

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            OrientedGrid(0)
        with pytest.raises(ValueError):
            OrientedGrid(4, -1)

    def test_contains(self):
        g = OrientedGrid(4)
        assert (0, 0) in g and (3, 3) in g
        assert (4, 0) not in g and (0, -1) not in g
        assert "nope" not in g

    def test_nodes_enumeration(self):
        g = OrientedGrid(3, 2)
        nodes = list(g.nodes())
        assert len(nodes) == 6
        assert nodes[0] == (0, 0)
        assert nodes[-1] == (2, 1)

    def test_equality_and_hash(self):
        assert OrientedGrid(4) == OrientedGrid(4)
        assert OrientedGrid(4) != OrientedGrid(4, 5)
        assert hash(OrientedGrid(4)) == hash(OrientedGrid(4))


class TestOrientedGridNeighbors:
    def test_interior_has_four(self):
        g = OrientedGrid(4)
        assert len(g.neighbors((1, 1))) == 4

    def test_corner_has_two(self):
        g = OrientedGrid(4)
        assert set(g.neighbors((0, 0))) == {(1, 0), (0, 1)}

    def test_edge_has_three(self):
        g = OrientedGrid(4)
        assert len(g.neighbors((2, 0))) == 3

    def test_neighbor_in_direction(self):
        g = OrientedGrid(4)
        assert g.neighbor_in((1, 1), Direction.NORTH) == (1, 0)
        assert g.neighbor_in((0, 0), Direction.WEST) is None

    def test_validate_member_raises(self):
        g = OrientedGrid(4)
        with pytest.raises(ValueError):
            g.neighbors((9, 9))


class TestOrientedGridRouting:
    def test_hop_distance_is_manhattan(self):
        g = OrientedGrid(8)
        assert g.hop_distance((0, 0), (7, 7)) == 14

    def test_route_valid(self):
        g = OrientedGrid(8)
        path = g.route((1, 6), (6, 2))
        assert path[0] == (1, 6) and path[-1] == (6, 2)
        assert len(path) == g.hop_distance((1, 6), (6, 2)) + 1
        assert all(p in g for p in path)

    def test_route_rejects_outside(self):
        g = OrientedGrid(4)
        with pytest.raises(ValueError):
            g.route((0, 0), (5, 5))

    def test_diameter(self):
        assert OrientedGrid(4).diameter() == 6
        assert OrientedGrid(2, 7).diameter() == 7


class TestOrientedGridQuadtreeCompat:
    def test_power_of_two_square(self):
        assert OrientedGrid(8).is_quadtree_compatible
        assert not OrientedGrid(6).is_quadtree_compatible
        assert not OrientedGrid(8, 4).is_quadtree_compatible

    def test_max_level(self):
        assert OrientedGrid(8).max_level == 3
        assert OrientedGrid(1).max_level == 0

    def test_max_level_rejected_for_incompatible(self):
        with pytest.raises(ValueError):
            OrientedGrid(6).max_level

    def test_morton_index_roundtrip(self):
        g = OrientedGrid(4)
        for node in g.nodes():
            assert g.coord_of(g.index_of(node)) == node

    def test_row_major_index(self):
        g = OrientedGrid(4)
        assert g.row_major_index((0, 0)) == 0
        assert g.row_major_index((3, 0)) == 3
        assert g.row_major_index((0, 1)) == 4

    def test_boundary_nodes(self):
        g = OrientedGrid(4)
        boundary = set(g.boundary_nodes())
        assert len(boundary) == 12
        assert (0, 0) in boundary and (3, 3) in boundary
        assert (1, 1) not in boundary

    def test_boundary_nodes_1x1(self):
        assert set(OrientedGrid(1).boundary_nodes()) == {(0, 0)}


class TestVirtualTree:
    def test_num_nodes(self):
        # binary tree of depth 2: 1 + 2 + 4
        assert VirtualTree(2, 2).num_nodes == 7
        assert VirtualTree(4, 2).num_nodes == 21

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            VirtualTree(1, 3)
        with pytest.raises(ValueError):
            VirtualTree(2, -1)

    def test_contains(self):
        t = VirtualTree(2, 2)
        assert (0, 0) in t and (2, 3) in t
        assert (3, 0) not in t and (1, 2) not in t

    def test_parent_child(self):
        t = VirtualTree(2, 2)
        assert t.parent((0, 0)) is None
        assert t.parent((2, 3)) == (1, 1)
        assert t.children((1, 1)) == [(2, 2), (2, 3)]
        assert t.children((2, 0)) == []

    def test_neighbors(self):
        t = VirtualTree(2, 2)
        assert set(t.neighbors((1, 0))) == {(0, 0), (2, 0), (2, 1)}

    def test_route_through_lca(self):
        t = VirtualTree(2, 3)
        path = t.route((3, 0), (3, 7))
        assert path[0] == (3, 0) and path[-1] == (3, 7)
        assert (0, 0) in path  # LCA is the root for opposite subtrees
        assert t.hop_distance((3, 0), (3, 7)) == 6

    def test_route_within_subtree(self):
        t = VirtualTree(2, 3)
        assert t.hop_distance((3, 0), (3, 1)) == 2
        assert t.hop_distance((2, 0), (3, 1)) == 1

    def test_route_to_self(self):
        t = VirtualTree(2, 2)
        assert t.route((2, 1), (2, 1)) == [(2, 1)]

    def test_nodes_enumeration(self):
        t = VirtualTree(3, 1)
        assert list(t.nodes()) == [(0, 0), (1, 0), (1, 1), (1, 2)]
