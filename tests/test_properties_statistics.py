"""Property-based tests for the statistical aggregations.

The in-network histogram/top-k reductions must agree with their plain
NumPy counterparts on every input — the "summing, sorting, ranking"
primitives are exact, not approximate.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.statistics import (
    HistogramAggregation,
    TopKAggregation,
    banded_labeling,
    quantile_from_histogram,
    rank_of_value,
)
from repro.core import VirtualArchitecture


@st.composite
def readings_grids(draw, max_exp=3):
    exp = draw(st.integers(min_value=1, max_value=max_exp))
    side = 2**exp
    values = draw(
        st.lists(
            st.floats(
                min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
            ),
            min_size=side * side,
            max_size=side * side,
        )
    )
    return side, np.array(values).reshape(side, side)


@st.composite
def edge_lists(draw):
    edges = draw(
        st.lists(
            st.floats(
                min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
            ),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    return sorted(edges)


class TestHistogramProperties:
    @given(readings_grids(), edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_histogram(self, grid_data, edges):
        side, readings = grid_data
        va = VirtualArchitecture(side)
        agg = HistogramAggregation(lambda c: readings[c[1], c[0]], edges)
        counts = va.execute(agg).root_payload
        # bisect_right boundary convention == np.digitize(right=False):
        # a reading equal to an edge lands in the upper bin
        expected = np.bincount(
            np.digitize(readings.ravel(), edges, right=False),
            minlength=len(edges) + 1,
        )
        assert counts == list(expected)

    @given(readings_grids(), edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_total_count_preserved(self, grid_data, edges):
        side, readings = grid_data
        va = VirtualArchitecture(side)
        agg = HistogramAggregation(lambda c: readings[c[1], c[0]], edges)
        counts = va.execute(agg).root_payload
        assert sum(counts) == side * side

    @given(readings_grids(), edge_lists(), st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_quantile_within_edges(self, grid_data, edges, q):
        side, readings = grid_data
        va = VirtualArchitecture(side)
        agg = HistogramAggregation(lambda c: readings[c[1], c[0]], edges)
        counts = va.execute(agg).root_payload
        value = quantile_from_histogram(counts, edges, q)
        assert edges[0] <= value <= edges[-1]

    @given(readings_grids(), edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_rank_monotone(self, grid_data, edges):
        side, readings = grid_data
        va = VirtualArchitecture(side)
        agg = HistogramAggregation(lambda c: readings[c[1], c[0]], edges)
        counts = va.execute(agg).root_payload
        probes = sorted([edges[0] - 1] + list(edges) + [edges[-1] + 1])
        ranks = [rank_of_value(counts, edges, p) for p in probes]
        assert ranks == sorted(ranks)


class TestTopKProperties:
    @given(readings_grids(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_matches_sorted_reference(self, grid_data, k):
        side, readings = grid_data
        va = VirtualArchitecture(side)
        agg = TopKAggregation(lambda c: readings[c[1], c[0]], k)
        top = va.execute(agg).root_payload
        all_pairs = sorted(
            (
                (float(readings[y, x]), (x, y))
                for x in range(side)
                for y in range(side)
            ),
            key=lambda rc: (-rc[0], rc[1]),
        )
        assert top == all_pairs[:k]


class TestBandedProperties:
    @given(readings_grids(), edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_bands_partition(self, grid_data, edges):
        side, readings = grid_data
        lab = banded_labeling(readings, edges)
        total = sum(sum(a) for a in lab.band_areas)
        assert total == side * side
        # per-cell: exactly one band claims each cell
        stacked = np.stack(lab.band_feature)
        assert np.all(stacked.sum(axis=0) == 1)
