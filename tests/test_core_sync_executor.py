"""Unit tests for the synchronous (TDMA-style) executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    feature_matrix_aggregation,
    label_regions_quadtree,
    random_feature_matrix,
)
from repro.core import (
    CountAggregation,
    HierarchicalGroups,
    OrientedGrid,
    SumAggregation,
    UniformCostModel,
    execute_round,
    execute_round_sync,
    synthesize_quadtree_program,
)


def make_spec(side, agg=None):
    groups = HierarchicalGroups(OrientedGrid(side))
    return synthesize_quadtree_program(groups, agg or CountAggregation(lambda c: True))


class TestResultEquivalence:
    @pytest.mark.parametrize("side", [1, 2, 4, 8, 16])
    def test_same_answer_as_async(self, side):
        spec = make_spec(side)
        sync = execute_round_sync(make_spec(side))
        async_ = execute_round(spec)
        assert sync.root_payload == async_.root_payload

    def test_same_energy_as_async(self):
        # energy accounting is slot-independent
        sync = execute_round_sync(make_spec(8))
        async_ = execute_round(make_spec(8), charge_compute=True)
        assert sync.ledger.total == pytest.approx(
            async_.ledger.total
        )

    def test_same_messages_and_hop_units(self):
        sync = execute_round_sync(make_spec(8))
        async_ = execute_round(make_spec(8))
        assert sync.messages == async_.messages
        assert sync.hop_units == async_.hop_units

    def test_region_labeling_identical(self):
        feat = random_feature_matrix(8, 0.5, rng=1)
        agg = feature_matrix_aggregation(feat)
        sync = execute_round_sync(make_spec(8, agg))
        assert sync.root_payload == label_regions_quadtree(feat)


class TestSlottedLatency:
    def test_unit_latency_matches_step_count(self):
        # unit messages: slotted latency equals the paper's step count
        from repro.core.analysis import quadtree_step_count

        for side in (2, 4, 8, 16):
            result = execute_round_sync(make_spec(side))
            assert result.latency == quadtree_step_count(side)

    def test_latency_quantized_up(self):
        # fractional sizes round *up* to whole slots, so sync >= async
        cm = UniformCostModel(bandwidth=3.0)
        spec = make_spec(4)
        sync = execute_round_sync(make_spec(4), cost_model=cm)
        async_ = execute_round(spec, cost_model=cm, charge_compute=False)
        assert sync.latency >= async_.latency

    def test_trivial_grid(self):
        result = execute_round_sync(make_spec(1))
        assert result.latency == 0.0
        assert result.root_payload == 1

    def test_deterministic(self):
        feat = random_feature_matrix(8, 0.4, rng=3)
        a = execute_round_sync(make_spec(8, feature_matrix_aggregation(feat)))
        b = execute_round_sync(make_spec(8, feature_matrix_aggregation(feat)))
        assert a.latency == b.latency
        assert a.ledger.per_node() == b.ledger.per_node()

    def test_sum_reduction(self):
        result = execute_round_sync(make_spec(4, SumAggregation(lambda c: 0.5)))
        assert result.root_payload == 8.0
