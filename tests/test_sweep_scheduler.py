"""Integration tests for the sharded sweep scheduler.

These spawn real worker processes (tiny workloads, so each test stays in
the seconds range even on one core) and pin the subsystem's guarantees:
serial == sharded fingerprints, structured failures instead of lost runs,
hung-run timeouts, crashed-worker retry, and resume-from-partial-results.
"""

from __future__ import annotations

import os

import pytest

from repro.sweep import (
    SweepSpec,
    append_record,
    audit_determinism,
    execute_run,
    load_records,
    run_sweep,
)
from repro.sweep.worker import CRASH_ENV

#: Small but non-trivial: 2 loss regimes x 2 replicates + 2 audit dups.
TINY_STORM = SweepSpec(
    name="sched-test",
    workload="storm",
    grid={"loss": [0.0, 0.2]},
    fixed={"side": 4, "n_random": 70, "rounds": 2},
    replicates=2,
    audit_duplicates=2,
)


def fingerprints(records):
    return {r["run_id"]: r["fingerprint"] for r in records}


class TestSerialPath:
    def test_one_record_per_expanded_run(self, tmp_path):
        records = run_sweep(TINY_STORM, workers=1)
        assert len(records) == len(TINY_STORM.expand()) == 6
        assert all(r["status"] == "ok" for r in records)
        assert all(r["fingerprint"] for r in records)

    def test_same_seed_reexecution_is_fingerprint_identical(self):
        run = TINY_STORM.expand()[0]
        assert (
            execute_run(run)["fingerprint"] == execute_run(run)["fingerprint"]
        )

    def test_audit_pairs_agree_in_process(self):
        report = audit_determinism(run_sweep(TINY_STORM, workers=1))
        assert report.pairs_checked == 2
        assert report.ok


class TestShardedPath:
    def test_sharded_matches_serial_fingerprints(self):
        serial = run_sweep(TINY_STORM, workers=1)
        sharded = run_sweep(TINY_STORM, workers=2, timeout_s=120, retries=1)
        assert fingerprints(sharded) == fingerprints(serial)

    def test_audit_duplicates_land_on_a_different_shard(self):
        sharded = run_sweep(TINY_STORM, workers=2, timeout_s=120, retries=1)
        by_id = {r["run_id"]: r for r in sharded}
        audits = [r for r in sharded if r["audit"]]
        assert audits
        for dup in audits:
            primary = by_id[dup["run_id"].removesuffix("#audit")]
            assert dup["shard"] != primary["shard"]
        assert audit_determinism(sharded).ok

    def test_workload_exception_becomes_structured_failure(self):
        spec = SweepSpec(name="boom", workload="_fail", grid={"x": [1, 2, 3]})
        records = run_sweep(spec, workers=2, retries=0)
        assert len(records) == 3
        assert all(r["status"] == "failed" for r in records)
        assert all("injected workload failure" in r["error"] for r in records)

    def test_unknown_workload_is_a_structured_failure_not_a_crash(self):
        spec = SweepSpec(name="nope", workload="no-such-workload", grid={})
        records = run_sweep(spec, workers=2, retries=0)
        assert len(records) == 1
        assert records[0]["status"] == "failed"
        assert "unknown workload" in records[0]["error"]

    def test_hung_run_times_out_with_bounded_retries(self):
        spec = SweepSpec(
            name="hang", workload="_sleep", grid={"sleep_s": [30.0]},
        )
        records = run_sweep(spec, workers=2, timeout_s=0.3, retries=1)
        assert len(records) == 1
        assert records[0]["status"] == "failed"
        assert "timed out" in records[0]["error"]
        assert records[0]["attempt"] == 2  # first try + one retry

    def test_crashed_worker_is_retried_and_recovers(self, monkeypatch):
        victim = next(r for r in TINY_STORM.expand() if not r.audit)
        monkeypatch.setenv(CRASH_ENV, victim.run_id)
        records = run_sweep(TINY_STORM, workers=2, timeout_s=120, retries=1)
        assert len(records) == len(TINY_STORM.expand())
        victim_record = next(r for r in records if r["run_id"] == victim.run_id)
        assert victim_record["status"] == "ok"
        assert victim_record["attempt"] >= 2
        monkeypatch.delenv(CRASH_ENV)
        assert fingerprints(records) == fingerprints(run_sweep(TINY_STORM, workers=1))

    def test_persistently_crashing_run_degrades_to_failure(self, monkeypatch):
        spec = SweepSpec(
            name="crashy", workload="_sleep",
            grid={"sleep_s": [0.0, 0.01]},
        )
        victim = spec.expand()[0]
        monkeypatch.setenv(CRASH_ENV, victim.run_id)
        monkeypatch.setenv("REPRO_SWEEP_CRASH_ATTEMPTS", "99")  # never stops crashing
        records = run_sweep(spec, workers=2, timeout_s=60, retries=1)
        assert len(records) == 2
        by_id = {r["run_id"]: r for r in records}
        assert by_id[victim.run_id]["status"] == "failed"
        assert "crashed" in by_id[victim.run_id]["error"]
        survivor = spec.expand()[1]
        assert by_id[survivor.run_id]["status"] == "ok"


class TestResume:
    def test_resume_skips_completed_runs(self, tmp_path):
        path = str(tmp_path / "resume.jsonl")
        serial = run_sweep(TINY_STORM, workers=1)
        half = len(serial) // 2
        for record in serial[:half]:
            append_record(path, record)
        resumed = run_sweep(TINY_STORM, out_path=path, workers=2,
                            timeout_s=120, retries=1)
        assert fingerprints(resumed) == fingerprints(serial)
        # the pre-seeded records were reused verbatim, not re-executed
        kept = {r["run_id"]: r for r in resumed}
        for record in serial[:half]:
            assert kept[record["run_id"]] == record
        on_disk = load_records(path)
        assert {r["run_id"] for r in on_disk} == {r["run_id"] for r in serial}

    def test_failed_records_are_retried_on_resume(self, tmp_path):
        path = str(tmp_path / "resume.jsonl")
        spec = SweepSpec(
            name="retry-on-resume", workload="storm",
            grid={"loss": [0.0]}, fixed={"side": 4, "n_random": 70, "rounds": 2},
        )
        run = spec.expand()[0]
        failed = {
            **run.record_fields(),
            "schema": 1, "kind": "run", "shard": 0, "attempt": 2,
            "status": "failed", "error": "timeout", "elapsed_s": 0.0,
            "metrics": {}, "fingerprint": None,
        }
        append_record(path, failed)
        records = run_sweep(spec, out_path=path, workers=1)
        assert len(records) == 1
        assert records[0]["status"] == "ok"

    def test_no_resume_reruns_everything(self, tmp_path):
        path = str(tmp_path / "sink.jsonl")
        first = run_sweep(TINY_STORM, out_path=path, workers=1)
        again = run_sweep(TINY_STORM, out_path=path, workers=1, resume=False)
        assert fingerprints(again) == fingerprints(first)
        # both passes appended: the sink keeps full history
        assert len(load_records(path)) == 2 * len(first)


class TestWallClockAcceptance:
    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="speedup acceptance needs >= 4 physical cores",
    )
    def test_e1_grid_on_4_workers_beats_serial_by_2_5x(self):
        import time

        spec = SweepSpec(
            name="e1-accept", workload="e1",
            grid={"side": [4, 8]}, replicates=8,  # 16 runs
        )
        t0 = time.perf_counter()
        serial = run_sweep(spec, workers=1)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        sharded = run_sweep(spec, workers=4, timeout_s=600, retries=1)
        t_sharded = time.perf_counter() - t0
        assert fingerprints(sharded) == fingerprints(serial)
        assert t_serial / t_sharded >= 2.5, (
            f"sweep speedup only {t_serial / t_sharded:.2f}x "
            f"(serial {t_serial:.2f}s, 4 workers {t_sharded:.2f}s)"
        )


class TestFaultPlanSweeps:
    """Seeded fault injection through the sweep layer (DESIGN.md §10)."""

    STORM_PLAN = [
        {"time": 0.5, "action": "kill_leader", "cell": [0, 1]},
        {"time": 0.55, "action": "kill_leader", "cell": [2, 2]},
        {"time": 0.0, "action": "corrupt_frame", "count": 3},
    ]

    def spec(self, **fixed):
        return SweepSpec(
            name="fault-e1",
            workload="e1",
            grid={"wire": [False, True]},
            fixed={"side": 4, "n_random": 140, "loss": 0.05,
                   "faultplan": self.STORM_PLAN, **fixed},
            replicates=2,
        )

    def test_same_seed_same_plan_serial_vs_sharded(self):
        serial = run_sweep(self.spec(), workers=1)
        assert all(r["status"] == "ok" for r in serial)
        sharded = run_sweep(self.spec(), workers=2, timeout_s=600, retries=1)
        assert fingerprints(sharded) == fingerprints(serial)

    def test_wire_on_off_fingerprints_agree(self):
        # pin the seed so the two wire grid points run the identical
        # experiment (derived seeds differ per grid point by design)
        records = run_sweep(self.spec(seed=23), workers=1)
        by_wire = {}
        for r in records:
            by_wire.setdefault(r["params"]["wire"], set()).add(r["fingerprint"])
        # codec independence survives fault injection: same seed, same
        # plan -> same fingerprint whether frames travel as objects or
        # wire bytes (corrupted-frame rejection included)
        assert by_wire[False] == by_wire[True] and len(by_wire[False]) == 1
        assert all(r["metrics"]["failovers"] >= 1 for r in records)

    def test_churn_midrun_kill_grid(self):
        spec = SweepSpec(
            name="churn-midrun",
            workload="churn",
            grid={"midrun_kill": [0, 2]},
            fixed={"side": 4, "n_random": 150, "churn": 0.25},
            replicates=2,
        )
        serial = run_sweep(spec, workers=1)
        assert all(r["status"] == "ok" for r in serial)
        sharded = run_sweep(spec, workers=2, timeout_s=600, retries=1)
        assert fingerprints(sharded) == fingerprints(serial)
        with_kill = [r for r in serial if r["params"]["midrun_kill"] == 2]
        assert with_kill
        for r in with_kill:
            if r["metrics"].get("recovered"):
                assert r["metrics"]["app_count"] == 16.0
                assert r["metrics"]["midrun_failovers"] >= 1
