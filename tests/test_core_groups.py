"""Unit tests for repro.core.groups: the hierarchical group middleware."""

from __future__ import annotations

import pytest

from repro.core.groups import (
    CenterLeaderPolicy,
    HierarchicalGroups,
    NorthWestLeaderPolicy,
    RandomLeaderPolicy,
)
from repro.core.network_model import OrientedGrid


class TestHierarchyStructure:
    def test_max_level_power_of_two(self):
        assert HierarchicalGroups(OrientedGrid(8)).max_level == 3
        assert HierarchicalGroups(OrientedGrid(1)).max_level == 0

    def test_max_level_non_power_of_two(self):
        # blocks of 4 fit in a 6-wide grid, blocks of 8 do not
        assert HierarchicalGroups(OrientedGrid(6)).max_level == 2

    def test_block_side(self, groups4):
        assert groups4.block_side(0) == 1
        assert groups4.block_side(1) == 2
        assert groups4.block_side(2) == 4

    def test_level_bounds_checked(self, groups4):
        with pytest.raises(ValueError):
            groups4.block_side(3)
        with pytest.raises(ValueError):
            groups4.leader((0, 0), -1)

    def test_rejects_branching_below_two(self, grid4):
        with pytest.raises(ValueError):
            HierarchicalGroups(grid4, branching=1)

    def test_num_groups(self, groups4):
        assert groups4.num_groups(0) == 16
        assert groups4.num_groups(1) == 4
        assert groups4.num_groups(2) == 1


class TestNorthWestPolicy:
    def test_level0_everyone_leads(self, groups4):
        for node in groups4.grid.nodes():
            assert groups4.is_leader(node, 0)
            assert groups4.leader(node, 0) == node

    def test_level1_leaders_match_paper(self, groups4):
        # Figure 3: level-1 leaders are Morton 0, 4, 8, 12
        assert groups4.leader((1, 1), 1) == (0, 0)
        assert groups4.leader((3, 0), 1) == (2, 0)
        assert groups4.leader((0, 3), 1) == (0, 2)
        assert groups4.leader((2, 2), 1) == (2, 2)

    def test_root_is_origin(self, groups4):
        for node in groups4.grid.nodes():
            assert groups4.leader(node, 2) == (0, 0)

    def test_nesting_property(self):
        # "all level i leaders are also level i-1 leaders"
        groups = HierarchicalGroups(OrientedGrid(16))
        for level in range(1, groups.max_level + 1):
            for leader in groups.leaders_at(level):
                assert groups.is_leader(leader, level - 1)

    def test_leadership_level(self, groups4):
        assert groups4.leadership_level((0, 0)) == 2
        assert groups4.leadership_level((2, 0)) == 1
        assert groups4.leadership_level((1, 0)) == 0

    def test_members_partition(self, groups4):
        for level in range(groups4.max_level + 1):
            seen = set()
            for leader in groups4.leaders_at(level):
                members = groups4.members(leader, level)
                assert len(members) == groups4.block_side(level) ** 2
                assert not (set(members) & seen)
                seen |= set(members)
            assert len(seen) == 16

    def test_followers_exclude_leader(self, groups4):
        fol = groups4.followers((0, 0), 1)
        assert (0, 0) not in fol
        assert len(fol) == 3

    def test_leaders_at_count(self, groups4):
        assert len(list(groups4.leaders_at(1))) == 4
        assert list(groups4.leaders_at(2)) == [(0, 0)]

    def test_child_leaders_are_quadrant_corners(self, groups4):
        children = groups4.child_leaders((0, 0), 2)
        assert children == [(0, 0), (2, 0), (0, 2), (2, 2)]

    def test_child_leaders_level1(self, groups4):
        assert groups4.child_leaders((2, 2), 1) == [(2, 2), (3, 2), (2, 3), (3, 3)]

    def test_child_leaders_level0_empty(self, groups4):
        assert groups4.child_leaders((1, 1), 0) == []


class TestGroupCosts:
    def test_follower_to_leader_hops(self, groups4):
        assert groups4.follower_to_leader_hops((1, 1), 1) == 2
        assert groups4.follower_to_leader_hops((0, 0), 2) == 0
        assert groups4.follower_to_leader_hops((3, 3), 2) == 6

    def test_gather_cost_level1(self, groups4):
        total, worst = groups4.group_gather_cost((0, 0), 1)
        # followers at distances 1, 1, 2
        assert total == 4.0
        assert worst == 2.0

    def test_gather_cost_scales_with_units(self, groups4):
        total1, _ = groups4.group_gather_cost((0, 0), 1, units_per_member=1.0)
        total3, _ = groups4.group_gather_cost((0, 0), 1, units_per_member=3.0)
        assert total3 == 3 * total1

    def test_cost_proportional_to_hops(self):
        # Section 4.2: member->leader cost proportional to hop distance.
        groups = HierarchicalGroups(OrientedGrid(8))
        for level in (1, 2, 3):
            for member in ((3, 3), (5, 1), (7, 7)):
                hops = groups.follower_to_leader_hops(member, level)
                assert hops == groups.grid.hop_distance(
                    member, groups.leader(member, level)
                )

    def test_role_table(self, groups4):
        table = groups4.role_table((2, 0))
        assert table == {0: "leader", 1: "leader", 2: "follower"}


class TestAlternativePolicies:
    def test_center_policy_level1_is_corner(self):
        # 2x2 blocks have NW-rounded centre at the corner itself
        groups = HierarchicalGroups(OrientedGrid(4), policy=CenterLeaderPolicy())
        assert groups.leader((1, 1), 1) == (0, 0)

    def test_center_policy_level2_interior(self):
        groups = HierarchicalGroups(OrientedGrid(4), policy=CenterLeaderPolicy())
        assert groups.leader((0, 0), 2) == (1, 1)

    def test_center_policy_reduces_mean_distance(self):
        grid = OrientedGrid(8)
        nw = HierarchicalGroups(grid)
        center = HierarchicalGroups(grid, policy=CenterLeaderPolicy())
        level = 3
        nw_total = sum(nw.follower_to_leader_hops(n, level) for n in grid.nodes())
        c_total = sum(center.follower_to_leader_hops(n, level) for n in grid.nodes())
        assert c_total < nw_total

    def test_random_policy_deterministic(self):
        grid = OrientedGrid(8)
        a = HierarchicalGroups(grid, policy=RandomLeaderPolicy(seed=3))
        b = HierarchicalGroups(grid, policy=RandomLeaderPolicy(seed=3))
        for node in grid.nodes():
            assert a.leader(node, 2) == b.leader(node, 2)

    def test_random_policy_leader_in_block(self):
        grid = OrientedGrid(8)
        groups = HierarchicalGroups(grid, policy=RandomLeaderPolicy(seed=1))
        for node in grid.nodes():
            for level in range(groups.max_level + 1):
                leader = groups.leader(node, level)
                assert leader in groups.members(node, level)

    def test_policy_names(self):
        assert NorthWestLeaderPolicy().name() == "NorthWestLeaderPolicy"
        assert CenterLeaderPolicy().name() == "CenterLeaderPolicy"
