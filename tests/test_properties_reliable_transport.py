"""Property tests for reliable transport and simulator determinism.

* Under i.i.d. packet loss, hop-by-hop ARQ delivers each envelope
  **at most once** to ``on_deliver``, and every originated envelope is
  *accounted for* — delivered or explicitly dropped, never silently
  suppressed (duplicate suppression must never eat a new uid).
* Same-seed runs of the deployed stack produce identical
  :class:`EnergyLedger` and :class:`MediumStats` fingerprints.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - baked into the test image
    HAVE_HYPOTHESIS = False

from repro.core import CountAggregation, VirtualArchitecture
from repro.runtime import deploy
from repro.runtime.routing import TransportProcess
from repro.simulator.engine import Simulator
from repro.simulator.network import WirelessMedium
from repro.simulator.process import ProcessHost

from conftest import make_deployment

pytestmark = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)


@functools.lru_cache(maxsize=1)
def shared_stack():
    """One deployed stack reused across hypothesis examples (read-only:
    transport runs neither drain noticeable battery nor mutate tables)."""
    net = make_deployment(side=4, seed=9)
    return net, deploy(net)


def run_reliable_round(
    loss_rate: float,
    seed: int,
    n_envelopes: int,
    wire_format: bool = False,
    backoff: bool = True,
):
    net, stack = shared_stack()
    sim = Simulator()
    medium = WirelessMedium(
        sim, net, loss_rate=loss_rate, rng=np.random.default_rng(seed)
    )
    host = ProcessHost(sim, medium)
    delivered = []  # uids seen by on_deliver
    dropped = []    # uids reported to on_drop
    for nid in net.alive_ids():
        host.add(
            nid,
            TransportProcess(
                stack.topology,
                stack.binding,
                on_deliver=lambda p, env: delivered.append(env.uid),
                on_drop=lambda p, env, reason: dropped.append(env.uid),
                reliable=True,
                max_retries=10,
                wire_format=wire_format,
                # backoff=False recovers the legacy fixed retry interval
                backoff_factor=2.0 if backoff else 1.0,
                backoff_jitter=0.5 if backoff else 0.0,
            ),
        )
    host.start()
    cells = sorted(stack.binding.leaders)
    for i in range(n_envelopes):
        src_cell = cells[i % len(cells)]
        dst_cell = cells[(i * 7 + 3) % len(cells)]
        if dst_cell == src_cell:
            dst_cell = cells[(i * 7 + 4) % len(cells)]
        origin = stack.binding.leader_of(src_cell)
        # distinct origins per i (12 <= 16 cells), so uids are all distinct
        sim.schedule(0.1 * i, host.get(origin).originate, dst_cell, f"msg-{i}")
    sim.run_until_quiet()
    return delivered, dropped, host


@pytest.mark.parametrize(
    "backoff", [True, False], ids=["backoff", "fixed-interval"]
)
@pytest.mark.parametrize(
    "wire_format", [False, True], ids=["plain", "wire-codec"]
)
@given(
    loss_rate=st.floats(min_value=0.0, max_value=0.35),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=12, deadline=None)
def test_at_most_once_delivery_and_no_lost_new_uids(
    wire_format, backoff, loss_rate, seed
):
    """ARQ retransmission never delivers a uid twice, with the wire codec
    on as well as off, and with exponential backoff on as well as the
    legacy fixed retry interval — retry *timing* must not affect the
    delivery semantics."""
    delivered, dropped, host = run_reliable_round(
        loss_rate, seed, n_envelopes=12, wire_format=wire_format, backoff=backoff
    )
    # at-most-once: no uid reaches on_deliver twice
    assert len(delivered) == len(set(delivered)), (
        f"duplicate delivery under loss={loss_rate} seed={seed} "
        f"wire_format={wire_format} backoff={backoff}"
    )
    # accounting: every originated envelope is delivered or explicitly
    # dropped somewhere — a *new* uid swallowed by duplicate suppression
    # would vanish without either record
    accounted = set(delivered) | set(dropped)
    assert len(accounted) == 12, (
        f"envelopes vanished: {12 - len(accounted)} unaccounted "
        f"(loss={loss_rate} seed={seed} wire_format={wire_format} "
        f"backoff={backoff})"
    )


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=8, deadline=None)
def test_suppression_only_fires_on_actual_duplicates(seed):
    # lossless channel: ARQ never retransmits, so nothing may be suppressed
    delivered, dropped, host = run_reliable_round(0.0, seed, n_envelopes=8)
    assert sum(p.duplicates_suppressed for p in host.processes.values()) == 0
    assert len(delivered) == 8
    assert dropped == []


def _deployed_fingerprint(seed: int):
    net = make_deployment(side=4, seed=3)
    stack = deploy(net)
    va = VirtualArchitecture(4)
    spec = va.synthesize(CountAggregation(lambda c: True))
    result = stack.run_application(
        spec, loss_rate=0.2, rng=np.random.default_rng(seed),
        reliable=True, max_retries=6,
    )
    return (
        sorted(result.ledger.per_node().items()),
        sorted(result.ledger.by_category().items()),
        result.transmissions,
        result.latency,
        result.drops,
    )


def test_same_seed_runs_are_identical():
    """Pin seeded determinism of EnergyLedger + MediumStats end to end."""
    assert _deployed_fingerprint(77) == _deployed_fingerprint(77)
    # and the seed actually matters (guards against a seed being ignored)
    assert _deployed_fingerprint(77) != _deployed_fingerprint(78)


def test_retry_delay_is_deterministic_monotone_and_capped():
    """The backoff schedule is a pure function of (node, uid, attempt):
    exponential in the attempt, jittered within [base, base * (1+jitter)],
    capped at backoff_max, and identical across process instances."""
    net, stack = shared_stack()

    def make():
        return TransportProcess(
            stack.topology, stack.binding, reliable=True,
            ack_timeout=4.0, backoff_factor=2.0, backoff_jitter=0.5,
        )

    p1, p2 = make(), make()
    p1.node_id = p2.node_id = 5
    uid = (5, 3)
    delays = [p1._retry_delay(uid, k) for k in range(8)]
    assert delays == [p2._retry_delay(uid, k) for k in range(8)]
    for k, d in enumerate(delays):
        base = min(4.0 * 2.0**k, p1.backoff_max)
        assert base <= d <= base * 1.5
    # cap: exponent growth stops at backoff_max (jitter aside)
    assert delays[-1] <= p1.backoff_max * 1.5
    # a different uid or node yields a different jitter draw somewhere
    assert [p1._retry_delay((5, 4), k) for k in range(8)] != delays


def test_backoff_off_recovers_fixed_interval():
    net, stack = shared_stack()
    p = TransportProcess(
        stack.topology, stack.binding, reliable=True,
        ack_timeout=4.0, backoff_factor=1.0, backoff_jitter=0.0,
    )
    p.node_id = 1
    assert [p._retry_delay((1, 0), k) for k in range(5)] == [4.0] * 5


def test_backoff_parameter_validation():
    net, stack = shared_stack()
    with pytest.raises(ValueError):
        TransportProcess(stack.topology, stack.binding, backoff_factor=0.5)
    with pytest.raises(ValueError):
        TransportProcess(stack.topology, stack.binding, backoff_jitter=-0.1)
