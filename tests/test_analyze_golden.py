"""Golden fixtures for the analyze pipeline output formats.

Byte-pins the two publishable artifacts of `repro.analyze` against
fixtures committed under ``tests/data/analyze_fixtures/``:

* ``golden_table.txt`` — the campaign table for a fixed synthetic sweep
  sink (``campaign.jsonl``), aggregated by ``loss`` at 95% confidence;
* ``golden_report.json`` — ``ANALYZE_report.json`` for a fixed
  ``bench_micro.json`` trajectory containing one deliberate regression.

Any formatting or statistics change trips these byte comparisons; the
fix is a conscious regeneration —

    python tests/test_analyze_golden.py --regen

— which rebuilds the fixture *inputs* and the pinned *outputs* from the
same deterministic builders, never a silent drift (the same contract as
``tests/test_runtime_wire.py --regen`` for the wire format).
"""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.analyze import (
    GroupQuery,
    MemoizedAggregator,
    analyze_trajectories,
    campaign_table,
    ingest_trajectory,
    markdown_table,
    write_report,
)
from repro.sweep.sink import append_record
from repro.sweep.spec import SweepSpec
from repro.sweep.worker import base_record

FIXTURES_DIR = os.path.join(os.path.dirname(__file__), "data", "analyze_fixtures")
CAMPAIGN_PATH = os.path.join(FIXTURES_DIR, "campaign.jsonl")
BENCH_PATH = os.path.join(FIXTURES_DIR, "bench_micro.json")
GOLDEN_TABLE = os.path.join(FIXTURES_DIR, "golden_table.txt")
GOLDEN_REPORT = os.path.join(FIXTURES_DIR, "golden_report.json")

REGEN_HINT = (
    "the analyze output format changed: if intentional, regenerate the "
    "golden fixtures with `python tests/test_analyze_golden.py --regen`"
)


# ---------------------------------------------------------------------------
# deterministic fixture builders (inputs and outputs regenerate together)
# ---------------------------------------------------------------------------

def campaign_records():
    """The canonical fixture sweep: 2 loss points x 4 replicates + audits."""
    spec = SweepSpec(
        name="golden-campaign",
        workload="storm",
        grid={"loss": [0.0, 0.1]},
        replicates=4,
        audit_duplicates=1,
    )
    records = []
    for run in spec.expand():
        record = base_record(run, shard=0, attempt=1)
        record.update(
            {
                "status": "ok",
                "error": None,
                "elapsed_s": 0.01,
                "metrics": {
                    # deterministic in the derived per-run seed, so the
                    # fixture regenerates identically from the spec alone
                    "deliveries": 250000.0 + (run.seed % 9973),
                    "deliveries_per_s": 1.0e6 + (run.seed % 99991),
                },
                "fingerprint": f"fp-{run.primary_id.replace('/', '-')}",
            }
        )
        records.append(record)
    return records


def bench_trajectory():
    """A 6-commit micro trajectory whose last commit regresses one gate."""
    gated = [1.00e6, 1.02e6, 0.99e6, 1.01e6, 1.00e6, 0.50e6]
    steady = [2.00e6, 1.98e6, 2.02e6, 2.01e6, 1.99e6, 2.00e6]
    return {
        "bench": "micro",
        "schema": 2,
        "runs": [
            {
                "commit": f"fixture{i}",
                "date": f"2026-01-{i + 1:02d}",
                "workloads": {
                    "medium_broadcast_storm": {
                        "deliveries_per_s": g, "wall_s": 1.0,
                    },
                    "wire_codec": {"roundtrips_per_s": s, "wall_s": 1.0},
                },
            }
            for i, (g, s) in enumerate(zip(gated, steady))
        ],
    }


def build_table() -> str:
    result = MemoizedAggregator(cache_dir=None).aggregate(
        [CAMPAIGN_PATH], GroupQuery(by=("loss",))
    )
    return campaign_table(result, confidence=0.95)


def build_report() -> dict:
    doc = ingest_trajectory(BENCH_PATH, expect_bench="micro")
    return analyze_trajectories([(doc.bench, doc.runs)])


def regenerate_fixtures() -> None:
    os.makedirs(FIXTURES_DIR, exist_ok=True)
    for stale in (CAMPAIGN_PATH,):
        if os.path.exists(stale):
            os.unlink(stale)
    for record in campaign_records():
        append_record(CAMPAIGN_PATH, record)
    with open(BENCH_PATH, "w") as fh:
        json.dump(bench_trajectory(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(GOLDEN_TABLE, "w") as fh:
        fh.write(build_table())
    write_report(GOLDEN_REPORT, build_report())
    print(f"regenerated fixtures under {FIXTURES_DIR}")


# ---------------------------------------------------------------------------
# the byte pins
# ---------------------------------------------------------------------------

class TestGoldenFixtures:
    def test_fixture_inputs_match_their_builders(self):
        """The committed inputs regenerate identically from the builders."""
        with open(CAMPAIGN_PATH) as fh:
            committed = [json.loads(line) for line in fh]
        assert committed == campaign_records(), REGEN_HINT
        with open(BENCH_PATH) as fh:
            assert json.load(fh) == bench_trajectory(), REGEN_HINT

    def test_campaign_table_bytes(self):
        with open(GOLDEN_TABLE) as fh:
            assert build_table() == fh.read(), REGEN_HINT

    def test_analyze_report_bytes(self, tmp_path):
        out = tmp_path / "ANALYZE_report.json"
        write_report(str(out), build_report())
        with open(GOLDEN_REPORT, "rb") as fh:
            assert out.read_bytes() == fh.read(), REGEN_HINT

    def test_report_byte_stable_across_two_runs(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_report(str(first), build_report())
        write_report(str(second), build_report())
        assert first.read_bytes() == second.read_bytes()
        assert build_table() == build_table()

    def test_golden_report_names_the_planted_regression(self):
        with open(GOLDEN_REPORT) as fh:
            doc = json.load(fh)
        assert doc["ok"] is False
        (finding,) = doc["findings"]
        assert finding["workload"] == "medium_broadcast_storm"
        assert finding["metric"] == "deliveries_per_s"
        # the steady wire_codec series stays clean in the same report
        clean = [
            c for c in doc["checked"] if c["workload"] == "wire_codec"
        ]
        assert clean and clean[0]["status"] == "ok"

    def test_markdown_rendering_row_count(self):
        """Markdown mirrors the text table row-for-row (format-only diff)."""
        result = MemoizedAggregator(cache_dir=None).aggregate(
            [CAMPAIGN_PATH], GroupQuery(by=("loss",))
        )
        text = campaign_table(result).strip().splitlines()
        rows = [
            [c for c in line.split("  ") if c.strip()] for line in text[2:]
        ]
        md = markdown_table(("x",), []).splitlines()
        assert len(md) == 2  # header + rule
        md_full = campaign_table(result, markdown=True).strip().splitlines()
        assert len(md_full) == len(rows) + 2


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate_fixtures()
    else:
        sys.exit(pytest.main([__file__, "-q"]))
