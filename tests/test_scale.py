"""Scale tests: the design-time stack at large N.

The paper targets "large-scale ... dense" networks; these tests pin that
the design-time machinery handles five-digit node counts in seconds and
that its exact invariants survive the scale-up.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    count_regions,
    feature_matrix_aggregation,
    label_regions_quadtree,
    random_feature_matrix,
)
from repro.core import (
    CountAggregation,
    HierarchicalGroups,
    OrientedGrid,
    execute_round,
    execute_round_sync,
    synthesize_quadtree_program,
)
from repro.core.analysis import estimate_quadtree, quadtree_step_count


class TestLargeGrid:
    def test_128x128_reduction(self):
        # 16384 virtual nodes, 21845 programs, ~21k messages
        side = 128
        groups = HierarchicalGroups(OrientedGrid(side))
        spec = synthesize_quadtree_program(groups, CountAggregation(lambda c: True))
        result = execute_round(spec, charge_compute=False)
        assert result.root_payload == side * side
        assert result.latency == quadtree_step_count(side)
        est = estimate_quadtree(side)
        assert result.ledger.total == pytest.approx(est.total_energy)
        assert result.messages == est.messages

    def test_64x64_region_labeling_exact(self):
        feat = random_feature_matrix(64, 0.45, rng=9)
        result = execute_round(
            synthesize_quadtree_program(
                HierarchicalGroups(OrientedGrid(64)),
                feature_matrix_aggregation(feat),
            )
        )
        assert result.root_payload.total_regions() == count_regions(feat)

    def test_128x128_recursive_labeling(self):
        feat = random_feature_matrix(128, 0.4, rng=10)
        summary = label_regions_quadtree(feat)
        assert summary.total_regions() == count_regions(feat)


class TestSyncAsyncEquivalence:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_same_summary_any_field(self, seed):
        feat = random_feature_matrix(8, 0.5, rng=seed)
        agg = feature_matrix_aggregation(feat)
        groups = HierarchicalGroups(OrientedGrid(8))
        sync = execute_round_sync(synthesize_quadtree_program(groups, agg))
        async_ = execute_round(synthesize_quadtree_program(groups, agg))
        assert sync.root_payload == async_.root_payload
        assert sync.messages == async_.messages
        assert sync.ledger.total == pytest.approx(async_.ledger.total)
