"""Unit tests for the EventTrace structured log."""

from __future__ import annotations

from repro.simulator.trace import EventTrace, MediumStats, TraceRecord


class TestEventTrace:
    def test_log_and_query(self):
        trace = EventTrace()
        trace.log(1.0, 0, "elect", detail={"value": 3})
        trace.log(2.0, 1, "elect")
        trace.log(3.0, 0, "rt")
        assert len(trace) == 3
        assert len(trace.of_event("elect")) == 2
        assert trace.of_event("elect")[0].detail == {"value": 3}

    def test_last_time(self):
        trace = EventTrace()
        assert trace.last_time() == 0.0
        trace.log(1.0, 0, "a")
        trace.log(5.0, 0, "b")
        assert trace.last_time() == 5.0
        assert trace.last_time("a") == 1.0
        assert trace.last_time("missing") == 0.0

    def test_disabled_trace_records_nothing(self):
        trace = EventTrace(enabled=False)
        trace.log(1.0, 0, "a")
        assert len(trace) == 0

    def test_record_fields(self):
        record = TraceRecord(time=2.5, node=7, event="x", detail="d")
        assert record.time == 2.5
        assert record.node == 7


class TestMediumStatsEdge:
    def test_fresh_stats_zeroed(self):
        stats = MediumStats()
        assert stats.transmissions == 0
        assert stats.tx_of_kind("anything") == 0
        assert stats.summary()["drops"] == 0.0

    def test_drop_accounting(self):
        stats = MediumStats()
        stats.record_drop("rt")
        stats.record_drop("rt")
        stats.record_drop("elect")
        assert stats.drops == 3
        assert stats.by_kind_drop == {"rt": 2, "elect": 1}
