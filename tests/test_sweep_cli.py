"""Unit tests for the ``python -m repro sweep`` command-line surface."""

from __future__ import annotations

import json

import pytest

from repro.sweep.cli import build_parser, build_spec, main, parse_grid, parse_value


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4", 4),
            ("-2", -2),
            ("0.25", 0.25),
            ("1e-3", 1e-3),
            ("true", True),
            ("False", False),
            ("storm", "storm"),
        ],
    )
    def test_parse_value(self, text, expected):
        value = parse_value(text)
        assert value == expected
        assert type(value) is type(expected)

    def test_parse_grid(self):
        grid = parse_grid(["side=4,8", "loss=0.0,0.1", "rotate=true,false"])
        assert grid == {
            "side": [4, 8],
            "loss": [0.0, 0.1],
            "rotate": [True, False],
        }

    @pytest.mark.parametrize("bad", ["side", "=4", "side="])
    def test_parse_grid_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_grid([bad])

    def test_build_spec_from_inline_flags(self):
        args = build_parser().parse_args(
            ["--workload", "storm", "--grid", "loss=0.0,0.1",
             "--fixed", "side=4", "--replicates", "3", "--audit", "1"]
        )
        spec = build_spec(args)
        assert spec.workload == "storm"
        assert spec.grid == {"loss": [0.0, 0.1]}
        assert spec.fixed == {"side": 4}
        assert spec.replicates == 3
        assert spec.audit_duplicates == 1
        assert spec.name == "storm"  # defaults to the workload

    def test_build_spec_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "filed", "workload": "storm", "grid": {"loss": [0.0]},
        }))
        args = build_parser().parse_args(["--spec", str(path)])
        assert build_spec(args).name == "filed"

    def test_spec_file_and_inline_flags_are_exclusive(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"name": "x", "workload": "storm"}))
        args = build_parser().parse_args(
            ["--spec", str(path), "--workload", "storm"]
        )
        with pytest.raises(ValueError):
            build_spec(args)


class TestMain:
    def test_list_workloads(self, capsys):
        assert main(["--list-workloads"]) == 0
        names = capsys.readouterr().out.split()
        assert names == sorted(names)
        assert {"churn", "e1", "regions", "storm"} <= set(names)
        assert not any(n.startswith("_") for n in names)

    def test_missing_workload_is_usage_error(self, capsys):
        assert main(["--grid", "side=4"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unreadable_spec_file_is_usage_error(self, tmp_path, capsys):
        assert main(["--spec", str(tmp_path / "missing.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_tiny_sweep_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "runs.jsonl"
        summary = tmp_path / "summary.json"
        code = main([
            "--workload", "storm", "--grid", "loss=0.0",
            "--fixed", "side=4", "--fixed", "n_random=70",
            "--fixed", "rounds=2", "--audit", "0",
            "--workers", "1", "--out", str(out),
            "--summary", str(summary), "--quiet",
        ])
        assert code == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["status"] == "ok"
        doc = json.loads(summary.read_text())
        assert doc["bench"] == "sweep:storm"
        assert doc["schema"] == 2

    def test_resume_short_circuits_a_completed_sweep(self, tmp_path, capsys):
        out = tmp_path / "runs.jsonl"
        argv = [
            "--workload", "storm", "--grid", "loss=0.0",
            "--fixed", "side=4", "--fixed", "n_random=70",
            "--fixed", "rounds=2", "--audit", "0",
            "--workers", "1", "--out", str(out), "--quiet",
        ]
        assert main(argv) == 0
        size_after_first = out.stat().st_size
        assert main(argv) == 0  # everything already in the sink
        assert out.stat().st_size == size_after_first

    def test_strict_flag_fails_on_structured_failures(self, tmp_path, capsys):
        argv = [
            "--workload", "_fail", "--grid", "x=1", "--audit", "0",
            "--workers", "1", "--retries", "0",
            "--out", str(tmp_path / "runs.jsonl"), "--quiet",
        ]
        assert main(argv + ["--strict"]) == 3
        assert "FAILED" not in capsys.readouterr().out  # quiet stays quiet
        # without --strict the failure is recorded but exit stays 0
        assert main(argv + ["--no-resume"]) == 0

    def test_self_check_flag_routes_to_selfcheck(self, monkeypatch):
        calls = {}

        def fake_check(workers, quiet):
            calls["args"] = (workers, quiet)
            return 0

        import repro.sweep.selfcheck as selfcheck

        monkeypatch.setattr(selfcheck, "self_check", fake_check)
        assert main(["--self-check", "--workers", "3", "--quiet"]) == 0
        assert calls["args"] == (3, True)
