"""Regression tests for the reliable-transport bugs fixed in PR 1.

1. ``_seen_uids`` grew without bound; it is now a per-origin high-water
   mark plus a bounded out-of-order window.
2. Retransmission re-sent the *same mutable* envelope object after
   downstream hops had already incremented ``hops`` — the retransmitted
   copy must carry the hop count as of its first transmission.
"""

from __future__ import annotations

import pytest

from repro.runtime import deploy
from repro.runtime.routing import (
    ACK_KIND,
    TRANSPORT_KIND,
    TransportProcess,
    trace_route,
)
from repro.simulator.engine import Simulator
from repro.simulator.network import WirelessMedium
from repro.simulator.process import ProcessHost

from conftest import make_deployment


def make_transport(**kwargs) -> TransportProcess:
    """A detached TransportProcess (dedup logic needs no network)."""
    return TransportProcess(topology=None, binding=None, **kwargs)


class TestDedupWindow:
    def test_in_order_duplicates_suppressed(self):
        tp = make_transport(reliable=True)
        for seq in range(100):
            assert not tp._uid_seen(7, seq)
            tp._uid_mark(7, seq)
            assert tp._uid_seen(7, seq)

    def test_memory_bounded_per_origin(self):
        tp = make_transport(reliable=True, dedup_window=64)
        for seq in range(10_000):
            tp._uid_mark(3, seq)
        # the seed kept one set entry per uid ever seen (10k here)
        assert len(tp._seen_recent[3]) <= 64
        assert tp._seen_high[3] == 9_999

    def test_new_uid_within_window_not_suppressed(self):
        tp = make_transport(reliable=True, dedup_window=16)
        # arrivals out of order: 5 arrives before 3
        tp._uid_mark(1, 5)
        assert not tp._uid_seen(1, 3)  # new uid, just displaced
        tp._uid_mark(1, 3)
        assert tp._uid_seen(1, 3)
        assert not tp._uid_seen(1, 4)  # the gap is still new

    def test_uids_older_than_window_assumed_seen(self):
        tp = make_transport(reliable=True, dedup_window=8)
        tp._uid_mark(1, 100)
        assert tp._uid_seen(1, 92)   # <= high - window: treated as seen
        assert not tp._uid_seen(1, 93)  # inside the window: still new

    def test_origins_independent(self):
        tp = make_transport(reliable=True)
        tp._uid_mark(1, 50)
        assert not tp._uid_seen(2, 50)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            make_transport(reliable=True, dedup_window=0)


class TestDedupWindowBoundary:
    """Pin the exact window edge and the long-run memory contract."""

    def test_seq_exactly_at_high_minus_window_assumed_seen(self):
        window = 32
        tp = make_transport(reliable=True, dedup_window=window)
        high = 1_000
        tp._uid_mark(9, high)
        # the closed boundary: high - window is the *first* assumed-seen seq
        assert tp._uid_seen(9, high - window)
        assert not tp._uid_seen(9, high - window + 1)
        # marking the first in-window seq flips only that seq
        tp._uid_mark(9, high - window + 1)
        assert tp._uid_seen(9, high - window + 1)
        assert not tp._uid_seen(9, high - window + 2)

    def test_boundary_shifts_as_high_water_advances(self):
        tp = make_transport(reliable=True, dedup_window=4)
        tp._uid_mark(2, 10)
        assert not tp._uid_seen(2, 7)
        tp._uid_mark(2, 11)  # floor moves from 6 to 7
        assert tp._uid_seen(2, 7)
        assert not tp._uid_seen(2, 8)

    def test_evicted_seq_stays_suppressed_via_floor(self):
        """A seq marked inside the window must remain suppressed after
        eviction — the floor rule has to take over from the recent set."""
        window = 8
        tp = make_transport(reliable=True, dedup_window=window)
        tp._uid_mark(5, 0)
        assert tp._uid_seen(5, 0)
        tp._uid_mark(5, window + 1)  # evicts 0 from the recent set
        assert 0 not in tp._seen_recent[5]
        assert tp._uid_seen(5, 0)

    def test_long_churn_run_keeps_per_origin_state_bounded(self):
        """Mirror the on_packet flow (mark only unseen seqs) over a long
        out-of-order stream with duplicates: acceptance is exactly-once
        per seq and the recent set never outgrows the window."""
        import numpy as np

        window = 64
        tp = make_transport(reliable=True, dedup_window=window)
        rng = np.random.default_rng(17)
        for origin in (1, 2):
            # every seq twice, displaced by < window/2 positions: a
            # realistic retransmit-plus-jitter arrival order
            stream = [s for s in range(5_000) for _ in (0, 1)]
            keys = np.array(stream) + rng.uniform(0, window // 2, len(stream))
            accepted = set()
            for idx in np.argsort(keys, kind="stable"):
                seq = stream[int(idx)]
                if not tp._uid_seen(origin, seq):
                    tp._uid_mark(origin, seq)
                    accepted.add(seq)
                assert len(tp._seen_recent[origin]) <= window + 1, (
                    f"recent set exceeded the dedup window at seq {seq}"
                )
            # reordering stays inside the window, so acceptance is
            # *exactly* once per seq — no duplicates, no false positives
            assert accepted == set(range(5_000))
        assert set(tp._seen_high) == {1, 2}
        assert tp._seen_high[1] == tp._seen_high[2] == 4_999


class AckDroppingMedium(WirelessMedium):
    """Drops the first ``n_drops`` acknowledgement unicasts outright,
    forcing upstream retransmission of envelopes that *were* delivered."""

    def __init__(self, *args, n_drops: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self.acks_to_drop = n_drops
        self.transport_log = []  # (src, dst, uid, hops) per envelope unicast

    def unicast(self, src, dst, kind, payload, size_units=1.0):
        if kind == ACK_KIND and self.acks_to_drop > 0:
            self.acks_to_drop -= 1
            return False
        if kind == TRANSPORT_KIND:
            self.transport_log.append((src, dst, payload.uid, payload.hops))
        return super().unicast(src, dst, kind, payload, size_units)


@pytest.fixture(scope="module")
def stack4():
    net = make_deployment(side=4, seed=3)
    return net, deploy(net)


class TestRetransmissionHopAccounting:
    def run_one_envelope(self, net, stack, n_ack_drops):
        sim = Simulator()
        medium = AckDroppingMedium(sim, net, n_drops=n_ack_drops)
        host = ProcessHost(sim, medium)
        delivered = []
        for nid in net.alive_ids():
            host.add(
                nid,
                TransportProcess(
                    stack.topology,
                    stack.binding,
                    on_deliver=lambda proc, env: delivered.append(env),
                    reliable=True,
                    max_retries=8,
                ),
            )
        src_cell, dst_cell = (0, 0), (3, 3)
        origin = stack.binding.leader_of(src_cell)
        host.start()
        sim.schedule(0.0, host.get(origin).originate, dst_cell, "payload")
        sim.run_until_quiet()
        return medium, host, delivered

    def test_retransmitted_envelope_hops_not_inflated(self, stack4):
        """The wire-level regression: every retransmission of (src, uid, dst)
        must carry the same hop count as the first attempt.  On the seed the
        retransmitted object had been incremented by downstream hops."""
        net, stack = stack4
        medium, host, delivered = self.run_one_envelope(net, stack, n_ack_drops=1)
        retransmissions = sum(p.retransmissions for p in host.processes.values())
        assert retransmissions >= 1, "ack drop did not force a retransmission"
        by_attempt = {}
        for src, dst, uid, hops in medium.transport_log:
            by_attempt.setdefault((src, dst, uid), []).append(hops)
        repeated = {k: v for k, v in by_attempt.items() if len(v) > 1}
        assert repeated, "no transmission was attempted twice"
        for key, hop_values in repeated.items():
            assert len(set(hop_values)) == 1, (
                f"retransmission of {key} carried inflated hops: {hop_values}"
            )

    def test_delivered_hops_match_loss_free_path_length(self, stack4):
        net, stack = stack4
        expected = len(trace_route(stack.topology, stack.binding, (0, 0), (3, 3))) - 1
        for n_ack_drops in (0, 1, 3):
            _, host, delivered = self.run_one_envelope(net, stack, n_ack_drops)
            assert len(delivered) == 1  # at-most-once (and it got through)
            assert delivered[0].hops == expected, (
                f"hop count diverged from loss-free path under "
                f"{n_ack_drops} forced ack drops"
            )

    def test_duplicate_suppression_counter_exposed(self, stack4):
        net, stack = stack4
        _, host, _ = self.run_one_envelope(net, stack, n_ack_drops=2)
        suppressed = sum(
            p.duplicates_suppressed for p in host.processes.values()
        )
        assert suppressed >= 1
        stats = next(iter(host.processes.values())).transport_stats()
        assert set(stats) == {
            "forwarded", "drops", "retransmissions", "duplicates_suppressed",
            "rejected_frames",
        }
