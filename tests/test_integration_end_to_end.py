"""Integration tests: the full Figure 1 design flow, top to bottom.

Walks the paper's methodology end to end — application → task graph →
mapping → synthesis → design-time execution → deployment → runtime
protocols → physical execution — and cross-checks every stage against the
others (the paper's core promise: *"theoretical performance analysis
corresponds to real performance measurements"*).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    GaussianBlobField,
    TopographicQueryApp,
    compare_designs,
    count_regions,
    feature_matrix_aggregation,
    label_regions_quadtree,
    random_feature_matrix,
    run_centralized,
)
from repro.core import (
    CountAggregation,
    HierarchicalGroups,
    OrientedGrid,
    VirtualArchitecture,
    build_quadtree,
    check_all_constraints,
    recursive_quadrant_mapping,
)
from repro.core.analysis import estimate_quadtree
from repro.runtime import deploy

from conftest import make_deployment


class TestDesignFlow:
    """One full pass of Figure 1 on an 8x8 problem."""

    side = 8
    field = GaussianBlobField(
        [(0.25, 0.3, 0.12, 1.0), (0.7, 0.65, 0.1, 0.9), (0.8, 0.2, 0.05, 1.2)]
    )

    @pytest.fixture(scope="class")
    def va(self):
        return VirtualArchitecture(self.side)

    @pytest.fixture(scope="class")
    def app(self, va):
        return TopographicQueryApp(va, self.field, threshold=0.5)

    def test_stage1_application_model(self, va):
        tg = build_quadtree(va.grid)
        tg.validate()
        assert tg.arity() == 4

    def test_stage2_mapping_constraints(self, va):
        tg = build_quadtree(va.grid)
        mapping = recursive_quadrant_mapping(tg, va.groups)
        check_all_constraints(mapping)

    def test_stage3_analysis_brackets_execution(self, va, app):
        # unit-size estimate is a lower bound for the data-dependent run;
        # the paper's step count is exactly the unit-message latency
        est = estimate_quadtree(self.side)
        result = va.execute(app.aggregation, charge_compute=False)
        assert result.latency >= est.latency_steps
        assert result.ledger.total >= 0

    def test_stage4_design_time_execution(self, app):
        report = app.run_virtual()
        assert report.correct

    def test_stage5_deployment_and_physical_run(self, app):
        net = make_deployment(side=self.side, n_random=400, seed=11)
        stack = deploy(net)
        run = stack.run_application(app.synthesize())
        assert run.root_payload.total_regions() == app.run_virtual().regions
        assert run.drops == 0

    def test_stage6_design_vs_deployed_results_identical(self, app):
        # the exfiltrated summary must be bit-identical across backends
        va_result = app.architecture.execute(app.aggregation)
        net = make_deployment(side=self.side, n_random=400, seed=11)
        stack = deploy(net)
        deployed = stack.run_application(app.synthesize())
        assert deployed.root_payload == va_result.root_payload


class TestVirtualVsDeployedCosts:
    def test_virtual_message_count_equals_deployed_envelopes(self):
        # every logical mGraph send appears exactly once in both backends
        side = 4
        net = make_deployment(side=side, seed=7)
        stack = deploy(net)
        va = VirtualArchitecture(side)
        agg = CountAggregation(lambda c: True)
        virtual = va.execute(agg)
        deployed = stack.run_application(va.synthesize(agg))
        assert deployed.delivered_envelopes == virtual.messages

    def test_deployed_latency_scales_with_virtual(self):
        side = 4
        net = make_deployment(side=side, seed=7)
        stack = deploy(net)
        va = VirtualArchitecture(side)
        agg = CountAggregation(lambda c: True)
        virtual = va.execute(agg, charge_compute=False)
        deployed = stack.run_application(va.synthesize(agg))
        # physical forwarding can only add hops
        assert deployed.latency >= virtual.latency


class TestDesignComparisonShape:
    """Experiment E2's qualitative shape, asserted as an invariant."""

    @pytest.mark.parametrize("side", [4, 8, 16])
    def test_dnc_wins_energy_at_all_sizes(self, side):
        feat = random_feature_matrix(side, 0.4, rng=1)
        row = compare_designs(feat)
        assert row["energy_winner"] == "divide-and-conquer"

    def test_energy_advantage_grows_with_n(self):
        ratios = []
        for side in (4, 8, 16, 32):
            feat = random_feature_matrix(side, 0.4, rng=1)
            ratios.append(compare_designs(feat)["energy_ratio"])
        assert ratios == sorted(ratios)

    def test_hotspot_advantage(self):
        feat = random_feature_matrix(16, 0.4, rng=2)
        row = compare_designs(feat)
        assert row["dnc_max_node"] < row["central_max_node"]


class TestScalingClaim:
    """Section 4.1: O(sqrt(N)) steps."""

    def test_unit_steps_linear_in_side(self):
        va_latencies = []
        for side in (4, 8, 16, 32):
            va = VirtualArchitecture(side)
            result = va.execute(CountAggregation(lambda c: True), charge_compute=False)
            va_latencies.append(result.latency)
        # latency = 2(side - 1): exactly linear in sqrt(N)
        assert va_latencies == [6.0, 14.0, 30.0, 62.0]

    def test_scaling_exponent_half(self):
        import math

        sides = [4, 8, 16, 32, 64]
        latencies = []
        for side in sides:
            va = VirtualArchitecture(side)
            r = va.execute(CountAggregation(lambda c: True), charge_compute=False)
            latencies.append(r.latency)
        # fit log(latency) vs log(N): slope should be ~0.5
        xs = [math.log(s * s) for s in sides]
        ys = [math.log(l) for l in latencies]
        n = len(xs)
        slope = (n * sum(x * y for x, y in zip(xs, ys)) - sum(xs) * sum(ys)) / (
            n * sum(x * x for x in xs) - sum(xs) ** 2
        )
        assert slope == pytest.approx(0.5, abs=0.05)


class TestRobustnessUnderLoss:
    def test_moderate_loss_usually_completes_with_retries_off(self):
        # the paper's asynchronous model tolerates reordering but not loss;
        # this test documents the failure mode: with loss the round may
        # stall, never mislabel.
        net = make_deployment(side=4, seed=3)
        stack = deploy(net)
        va = VirtualArchitecture(4)
        feat = random_feature_matrix(4, 0.5, rng=4)
        completed_correct = 0
        attempts = 5
        for i in range(attempts):
            run = stack.run_application(
                va.synthesize(feature_matrix_aggregation(feat)),
                loss_rate=0.05,
                rng=np.random.default_rng(i),
            )
            if run.exfiltrated:
                assert run.root_payload.total_regions() == count_regions(feat)
                completed_correct += 1
        assert completed_correct >= 1
