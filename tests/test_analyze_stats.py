"""Property tests for `repro.analyze.stats` (hypothesis + scipy cross-check).

The accumulator/CI layer carries the campaign analytics' statistical
claims, so the guarantees are tested as *properties*, not examples:

* any partition of a sample stream into accumulators, merged in any
  order or grouping, equals the single-pass summary (count/min/max
  exactly, moments to float rounding) — the invariant the disk memo's
  partial-per-file design relies on;
* confidence intervals always contain the sample mean, and their width
  shrinks monotonically in ``n`` at fixed variance — the t-table's
  ``1/df`` interpolation preserves monotonicity by construction;
* the pinned t-table matches ``scipy.stats.t.ppf`` where scipy is
  available (it is a test extra, never a runtime dependency).
"""

from __future__ import annotations

import math

import pytest

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - baked into the test image
    HAVE_HYPOTHESIS = False

from repro.analyze.stats import (
    NORMAL_CUTOVER_N,
    SUPPORTED_CONFIDENCES,
    Accumulator,
    confidence_interval,
    prediction_interval_lower,
    t_critical,
    z_critical,
)

pytestmark = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)

#: Bounded, finite samples: wide enough to exercise cancellation, small
#: enough that Welford/Chan stay within comfortable float tolerance.
samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=60,
)


def single_pass(xs) -> Accumulator:
    return Accumulator().add_all(xs)


def assert_close(a: Accumulator, b: Accumulator) -> None:
    """count/min/max exact; moments to float rounding."""
    assert a.count == b.count
    assert a.min == b.min and a.max == b.max
    scale = max(1.0, abs(a.mean), abs(b.mean))
    assert math.isclose(a.mean, b.mean, rel_tol=1e-9, abs_tol=1e-9 * scale)
    m2_scale = max(1.0, a.m2, b.m2)
    assert abs(a.m2 - b.m2) <= 1e-7 * m2_scale


class TestMergeProperties:
    @given(samples, samples)
    @settings(max_examples=100, deadline=None)
    def test_merge_of_two_partials_equals_single_pass(self, xs, ys):
        merged = single_pass(xs).merge(single_pass(ys))
        assert_close(merged, single_pass(xs + ys))

    @given(samples, samples, samples)
    @settings(max_examples=100, deadline=None)
    def test_merge_is_associative(self, xs, ys, zs):
        left = single_pass(xs).merge(single_pass(ys)).merge(single_pass(zs))
        right = single_pass(xs).merge(
            single_pass(ys).merge(single_pass(zs))
        )
        assert_close(left, right)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_any_partition_order_invariant(self, tagged):
        """Samples dealt into arbitrary buckets, merged, == one pass."""
        xs = [x for x, _ in tagged]
        parts = [Accumulator() for _ in range(5)]
        for x, b in tagged:
            parts[b].add(x)
        merged = Accumulator()
        for part in parts:
            merged.merge(part)
        assert_close(merged, single_pass(xs))

    @given(samples)
    @settings(max_examples=50, deadline=None)
    def test_merging_empty_is_identity(self, xs):
        acc = single_pass(xs)
        before = acc.to_dict()
        acc.merge(Accumulator())
        assert acc.to_dict() == before
        fresh = Accumulator().merge(single_pass(xs))
        assert_close(fresh, single_pass(xs))

    @given(samples)
    @settings(max_examples=50, deadline=None)
    def test_dict_round_trip(self, xs):
        acc = single_pass(xs)
        assert_close(Accumulator.from_dict(acc.to_dict()), acc)


class TestConfidenceIntervals:
    @given(samples, st.sampled_from(sorted(SUPPORTED_CONFIDENCES)))
    @settings(max_examples=100, deadline=None)
    def test_ci_contains_sample_mean(self, xs, confidence):
        ci = confidence_interval(single_pass(xs), confidence)
        assert ci.lo <= ci.mean <= ci.hi
        assert ci.n == len(xs)
        assert ci.half_width >= 0.0
        assert ci.method in ("t", "normal", "degenerate")

    @given(
        st.floats(min_value=0.01, max_value=1e3),
        st.sampled_from(sorted(SUPPORTED_CONFIDENCES)),
    )
    @settings(max_examples=60, deadline=None)
    def test_ci_width_shrinks_monotonically_in_n(self, std, confidence):
        """At fixed variance the half-width strictly decreases with n.

        Accumulators are synthesized directly (m2 = var * (n-1)) so the
        sample variance is held constant while n grows — this isolates
        the ``t(n-1)/sqrt(n)`` factor, which must be strictly decreasing
        because ``t_critical`` is monotone non-increasing in df.
        """
        widths = []
        for n in (2, 3, 5, 8, 13, 30, 80, 150, 400):
            acc = Accumulator(count=n, mean=10.0, m2=std * std * (n - 1),
                              min=0.0, max=20.0)
            widths.append(confidence_interval(acc, confidence).half_width)
        for narrow, wide in zip(widths[1:], widths):
            assert narrow < wide

    def test_degenerate_below_two_samples(self):
        ci = confidence_interval(Accumulator().add(4.2))
        assert (ci.lo, ci.hi, ci.half_width) == (4.2, 4.2, 0.0)
        assert ci.method == "degenerate"
        with pytest.raises(ValueError):
            confidence_interval(Accumulator())

    def test_normal_cutover(self):
        small = Accumulator(count=NORMAL_CUTOVER_N - 1, mean=0.0,
                            m2=float(NORMAL_CUTOVER_N - 2), min=-1.0, max=1.0)
        large = Accumulator(count=NORMAL_CUTOVER_N, mean=0.0,
                            m2=float(NORMAL_CUTOVER_N - 1), min=-1.0, max=1.0)
        assert confidence_interval(small).method == "t"
        assert confidence_interval(large).method == "normal"

    @given(samples)
    @settings(max_examples=50, deadline=None)
    def test_prediction_interval_below_mean(self, xs):
        acc = single_pass(xs)
        lower = prediction_interval_lower(acc)
        if acc.count < 2 or acc.std == 0.0:
            assert lower is None
        else:
            assert lower < acc.mean


class TestTTable:
    def test_monotone_decreasing_to_normal(self):
        for confidence in SUPPORTED_CONFIDENCES:
            values = [t_critical(df, confidence) for df in range(1, 200)]
            for later, earlier in zip(values[1:], values):
                assert later <= earlier
            assert values[-1] == z_critical(confidence)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            t_critical(0)
        with pytest.raises(ValueError):
            t_critical(5, confidence=0.42)

    def test_matches_scipy_where_available(self):
        stats = pytest.importorskip("scipy.stats")
        for confidence in SUPPORTED_CONFIDENCES:
            for df in (1, 2, 5, 10, 29, 30, 45, 90, 120):
                expected = float(stats.t.ppf((1 + confidence) / 2, df))
                # pinned 4-sig-digit tables + 1/df interpolation between
                # table rows: generous but regression-catching tolerance
                assert t_critical(df, confidence) == pytest.approx(
                    expected, rel=5e-3
                )
            for df in (121, 500):
                # beyond the table the normal value stands in for t;
                # the deliberate understatement is below two percent
                expected = float(stats.t.ppf((1 + confidence) / 2, df))
                assert t_critical(df, confidence) == pytest.approx(
                    expected, rel=2e-2
                )
            assert z_critical(confidence) == pytest.approx(
                float(stats.norm.ppf((1 + confidence) / 2)), rel=1e-3
            )
