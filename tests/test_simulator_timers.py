"""Regression tests for the handle-free, tag-indexed timer facility.

The timer migration replaced per-timer ``EventHandle`` allocation with a
generation-stamped registry (``{tag: stamp}``) checked by the engine at
the deadline.  These tests guard the invariants that migration must keep:
cancelled timers never fire (and never advance the clock), a re-armed tag
fires exactly once, and the live-event accounting stays exact.
"""

from __future__ import annotations

import numpy as np

from repro.simulator.engine import Simulator
from repro.simulator.network import WirelessMedium
from repro.simulator.process import Process, ProcessHost

from conftest import make_deployment


class RecorderProcess(Process):
    """Records every on_timer invocation as (time, tag)."""

    def __init__(self):
        super().__init__()
        self.fired = []

    def on_timer(self, tag):
        self.fired.append((self.now, tag))


def make_host():
    net = make_deployment(side=2, n_random=12, seed=3)
    sim = Simulator()
    medium = WirelessMedium(sim, net, rng=np.random.default_rng(3))
    host = ProcessHost(sim, medium)
    nid = net.alive_ids()[0]
    proc = host.add(nid, RecorderProcess())
    return sim, proc


class TestCancellation:
    def test_cancelled_timer_never_fires(self):
        sim, proc = make_host()
        proc.set_timer(2.0, "beat")
        assert proc.cancel_timer("beat")
        sim.run_until_quiet()
        assert proc.fired == []

    def test_cancel_unknown_tag_is_noop(self):
        sim, proc = make_host()
        assert not proc.cancel_timer("never-set")
        proc.set_timer(1.0, "beat")
        sim.run_until_quiet()
        assert proc.fired == [(1.0, "beat")]

    def test_cancel_timers_cancels_everything(self):
        sim, proc = make_host()
        proc.set_timer(1.0, "a")
        proc.set_timer(2.0, "b")
        proc.set_timer(3.0)  # default tag
        proc.cancel_timers()
        sim.run_until_quiet()
        assert proc.fired == []
        assert sim.pending == 0

    def test_cancelled_timer_does_not_advance_clock(self):
        sim, proc = make_host()
        proc.set_timer(50.0, "late")
        proc.cancel_timer("late")
        proc.set_timer(1.0, "early")
        sim.run_until_quiet()
        # the stale deadline at t=50 must not drag the clock forward
        assert sim.now == 1.0
        assert proc.fired == [(1.0, "early")]

    def test_pending_excludes_cancelled_timers(self):
        sim, proc = make_host()
        proc.set_timer(1.0, "a")
        proc.set_timer(2.0, "b")
        assert sim.pending == 2
        proc.cancel_timer("a")
        assert sim.pending == 1
        sim.run_until_quiet()
        assert sim.pending == 0


class TestRearm:
    def test_rearm_same_tag_fires_exactly_once(self):
        sim, proc = make_host()
        proc.set_timer(1.0, "beat")
        proc.set_timer(5.0, "beat")  # supersedes: only the later deadline
        sim.run_until_quiet()
        assert proc.fired == [(5.0, "beat")]

    def test_rearm_after_cancel_fires_exactly_once(self):
        sim, proc = make_host()
        proc.set_timer(4.0, "beat")
        proc.cancel_timer("beat")
        proc.set_timer(2.0, "beat")
        sim.run_until_quiet()
        # the new arm fires; the old cancelled deadline stays dead even
        # though its heap entry outlives the re-arm (stamp monotonicity)
        assert proc.fired == [(2.0, "beat")]
        assert sim.pending == 0

    def test_rearm_from_inside_on_timer(self):
        sim, proc = make_host()
        ticks = []

        def on_timer(tag):
            ticks.append(proc.now)
            if len(ticks) < 3:
                proc.set_timer(1.0, tag)

        proc.on_timer = on_timer
        proc.set_timer(1.0, "beat")
        sim.run_until_quiet()
        assert ticks == [1.0, 2.0, 3.0]

    def test_distinct_tags_are_independent(self):
        sim, proc = make_host()
        proc.set_timer(1.0, "a")
        proc.set_timer(2.0, "b")
        proc.cancel_timer("a")
        sim.run_until_quiet()
        assert proc.fired == [(2.0, "b")]


class TestLiveness:
    def test_timer_on_dead_node_does_not_fire(self):
        sim, proc = make_host()
        proc.set_timer(1.0, "beat")
        proc.medium.network.node(proc.node_id).kill()
        sim.run_until_quiet()
        assert proc.fired == []


class TestEngineTimerPrimitive:
    def test_stale_stamp_is_skipped(self):
        sim = Simulator()
        fired = []
        armed = {"k": 1}
        sim.schedule_timer(5.0, armed, "k", 1, fired.append, "k")
        # supersede by hand: bump the stamp, schedule the replacement
        armed["k"] = 2
        sim.discount_cancelled()
        sim.schedule_timer(7.0, armed, "k", 2, fired.append, "k")
        assert sim.pending == 1
        sim.run()
        assert fired == ["k"]
        assert sim.now == 7.0
        assert armed == {}

    def test_negative_delay_rejected(self):
        sim = Simulator()
        try:
            sim.schedule_timer(-1.0, {}, "k", 1, lambda tag: None, "k")
        except ValueError:
            pass
        else:
            raise AssertionError("negative delay accepted")
