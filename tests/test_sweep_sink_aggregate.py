"""Unit tests for the JSONL sink, determinism audit, and aggregation."""

from __future__ import annotations

import json

from repro.sweep import (
    SweepSpec,
    append_record,
    audit_determinism,
    completed_ok_ids,
    load_records,
    point_key,
    summarize,
    write_summary,
)


def record(run_id, status="ok", fingerprint="f0", shard=0, params=None, metrics=None,
           audit=False, spec_hash="h"):
    return {
        "schema": 1, "kind": "run", "run_id": run_id, "spec_hash": spec_hash,
        "name": "t", "workload": "storm", "point": 0, "replicate": 0,
        "audit": audit, "seed": 1, "params": params or {"side": 4},
        "shard": shard, "attempt": 1, "status": status,
        "error": None if status == "ok" else "boom",
        "elapsed_s": 0.1, "metrics": metrics or {"wall_s": 0.1},
        "fingerprint": fingerprint if status == "ok" else None,
    }


class TestSink:
    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        for i in range(3):
            append_record(path, record(f"h/p{i:04d}/r0"))
        loaded = load_records(path)
        assert [r["run_id"] for r in loaded] == [f"h/p{i:04d}/r0" for i in range(3)]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_records(str(tmp_path / "nope.jsonl")) == []

    def test_torn_tail_skipped_and_next_append_survives(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        append_record(path, record("h/p0000/r0"))
        with open(path, "a") as fh:
            fh.write('{"run_id": "h/p0001/r0", "status": "o')  # killed mid-write
        assert [r["run_id"] for r in load_records(path)] == ["h/p0000/r0"]
        append_record(path, record("h/p0002/r0"))
        loaded = load_records(path)
        assert [r["run_id"] for r in loaded] == ["h/p0000/r0", "h/p0002/r0"]

    def test_completed_ok_ids_filters_status_and_spec(self):
        records = [
            record("h/p0000/r0"),
            record("h/p0001/r0", status="failed"),
            record("x/p0000/r0", spec_hash="other"),
        ]
        assert completed_ok_ids(records) == {"h/p0000/r0", "x/p0000/r0"}
        assert completed_ok_ids(records, spec_hash="h") == {"h/p0000/r0"}


class TestAudit:
    def test_matching_pairs_pass(self):
        report = audit_determinism([
            record("h/p0000/r0", fingerprint="aa", shard=0),
            record("h/p0000/r0#audit", fingerprint="aa", shard=1, audit=True),
        ])
        assert report.pairs_checked == 1
        assert report.ok

    def test_mismatch_is_reported_with_both_shards(self):
        report = audit_determinism([
            record("h/p0000/r0", fingerprint="aa", shard=0),
            record("h/p0000/r0#audit", fingerprint="bb", shard=1, audit=True),
        ])
        assert not report.ok
        mismatch = report.mismatches[0]
        assert mismatch["run_id"] == "h/p0000/r0"
        assert (mismatch["primary_shard"], mismatch["audit_shard"]) == (0, 1)

    def test_failed_sides_are_not_counted(self):
        report = audit_determinism([
            record("h/p0000/r0", status="failed"),
            record("h/p0000/r0#audit", fingerprint="aa", audit=True),
        ])
        assert report.pairs_checked == 0
        assert report.ok


class TestAggregate:
    def test_point_key_is_sorted_and_canonical(self):
        assert point_key({"side": 4, "loss": 0.1}) == "loss=0.1,side=4"

    def test_summarize_groups_and_excludes_audits(self):
        records = [
            record("h/p0000/r0", params={"side": 4}, metrics={"wall_s": 1.0}),
            record("h/p0000/r1", params={"side": 4}, metrics={"wall_s": 3.0},
                   fingerprint="f1"),
            record("h/p0000/r0#audit", params={"side": 4}, audit=True),
            record("h/p0001/r0", params={"side": 8}, status="failed"),
        ]
        summary = summarize(records)
        side4 = summary["side=4"]
        assert side4["runs"] == 2
        assert side4["failed"] == 0
        assert side4["distinct_fingerprints"] == 2
        assert side4["metrics"]["wall_s"] == {"mean": 2.0, "min": 1.0, "max": 3.0}
        assert summary["side=8"] == {
            "runs": 0, "failed": 1, "distinct_fingerprints": 0, "metrics": {},
        }

    def test_write_summary_appends_schema2_trajectory(self, tmp_path):
        spec = SweepSpec(name="t", workload="storm", grid={"side": [4]})
        path = str(tmp_path / "SWEEP_t.json")
        doc = write_summary(path, [record("h/p0000/r0")], spec)
        assert doc["bench"] == "sweep:t"
        assert doc["schema"] == 2
        assert len(doc["runs"]) == 1
        entry = doc["runs"][0]
        assert set(entry) >= {"commit", "date", "spec_hash", "workloads"}
        # same-commit rerun replaces, never duplicates
        doc2 = write_summary(path, [record("h/p0000/r0")], spec)
        assert len(doc2["runs"]) == 1
        on_disk = json.loads((tmp_path / "SWEEP_t.json").read_text())
        assert on_disk == doc2
