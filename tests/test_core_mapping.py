"""Unit tests for repro.core.mapping: Figure 3, constraints, mappers."""

from __future__ import annotations

import pytest

from repro.core.coords import morton_encode
from repro.core.groups import CenterLeaderPolicy, HierarchicalGroups
from repro.core.mapping import (
    ConstraintViolation,
    Mapping,
    check_all_constraints,
    check_coverage,
    check_spatial_correlation,
    exhaustive_best_mapping,
    mapping_table,
    recursive_quadrant_mapping,
    sink_rooted_mapping,
)
from repro.core.network_model import OrientedGrid
from repro.core.taskgraph import Task, TaskGraph, TaskId, build_quadtree


@pytest.fixture
def quadtree4():
    return build_quadtree(OrientedGrid(4))


@pytest.fixture
def paper_mapping(quadtree4, groups4):
    return recursive_quadrant_mapping(quadtree4, groups4)


class TestRecursiveQuadrantMapping:
    def test_reproduces_figure3(self, paper_mapping):
        # "The root node is mapped to location 0, and the four level 1
        #  nodes are mapped to locations 0, 4, 8, and 12 respectively."
        assert paper_mapping.location(TaskId(2, 0)) == (0, 0)
        locations = [
            morton_encode(paper_mapping.location(TaskId(1, i)))
            for i in (0, 4, 8, 12)
        ]
        assert locations == [0, 4, 8, 12]

    def test_leaves_on_their_cells(self, paper_mapping, grid4):
        for node in grid4.nodes():
            assert paper_mapping.location(TaskId(0, morton_encode(node))) == node

    def test_satisfies_all_constraints(self, paper_mapping):
        check_all_constraints(paper_mapping)

    def test_complete(self, paper_mapping):
        assert paper_mapping.is_complete()

    def test_colocation_at_root(self, paper_mapping):
        tasks = paper_mapping.tasks_at((0, 0))
        # leaf 0, level-1 leader 0, root
        assert len(tasks) == 3

    def test_with_center_policy(self, quadtree4, grid4):
        groups = HierarchicalGroups(grid4, policy=CenterLeaderPolicy())
        mapping = recursive_quadrant_mapping(quadtree4, groups)
        check_all_constraints(mapping)
        assert mapping.location(TaskId(2, 0)) == (1, 1)


class TestConstraints:
    def test_coverage_rejects_duplicate_leaf_placement(self, quadtree4, grid4):
        mapping = Mapping(graph=quadtree4, grid=grid4)
        for task in quadtree4.tasks():
            mapping.place(task.tid, (0, 0))
        with pytest.raises(ConstraintViolation, match="coverage"):
            check_coverage(mapping)

    def test_coverage_rejects_unmapped_leaf(self, quadtree4, grid4):
        mapping = Mapping(graph=quadtree4, grid=grid4)
        with pytest.raises(ConstraintViolation):
            check_coverage(mapping)

    def test_coverage_rejects_wrong_leaf_count(self, grid4):
        tg = TaskGraph()
        tg.add_task(Task(TaskId(0, 0)))
        mapping = Mapping(graph=tg, grid=grid4)
        mapping.place(TaskId(0, 0), (0, 0))
        with pytest.raises(ConstraintViolation, match="16"):
            check_coverage(mapping)

    def test_spatial_correlation_accepts_paper_mapping(self, paper_mapping):
        check_spatial_correlation(paper_mapping)

    def test_spatial_correlation_rejects_scattered_children(self, grid4):
        # a parent whose two children oversee non-adjacent cells
        tg = TaskGraph()
        a, b, p = TaskId(0, 0), TaskId(0, 1), TaskId(1, 0)
        tg.add_task(Task(a))
        tg.add_task(Task(b))
        tg.add_task(Task(p))
        tg.add_edge(a, p)
        tg.add_edge(b, p)
        mapping = Mapping(graph=tg, grid=grid4)
        mapping.place(a, (0, 0))
        mapping.place(b, (3, 3))
        mapping.place(p, (0, 0))
        with pytest.raises(ConstraintViolation, match="spatial"):
            check_spatial_correlation(mapping)

    def test_swapped_leaves_break_spatial_correlation(self, quadtree4, groups4):
        mapping = recursive_quadrant_mapping(quadtree4, groups4)
        # swap a NW-quadrant leaf with a SE-quadrant leaf
        a, b = TaskId(0, 0), TaskId(0, 15)
        mapping.placement[a], mapping.placement[b] = (
            mapping.placement[b],
            mapping.placement[a],
        )
        check_coverage(mapping)  # still a bijection
        with pytest.raises(ConstraintViolation):
            check_spatial_correlation(mapping)

    def test_check_all_requires_completeness(self, quadtree4, grid4):
        mapping = Mapping(graph=quadtree4, grid=grid4)
        with pytest.raises(ConstraintViolation, match="incomplete"):
            check_all_constraints(mapping)


class TestMappingCosts:
    def test_paper_mapping_cost(self, paper_mapping):
        energy, latency = paper_mapping.communication_cost()
        # unit edges: hop-units 24, tx+rx -> 48; critical path 2+4
        assert energy == 48.0
        assert latency == 6.0

    def test_per_node_energy_total_matches(self, paper_mapping):
        ledger = paper_mapping.per_node_energy()
        energy, _ = paper_mapping.communication_cost()
        assert ledger.total == pytest.approx(energy)

    def test_hotspot_is_column_relay(self, paper_mapping):
        # under x-first XY routing the node south of the root relays the
        # southern and diagonal child messages of every level
        ledger = paper_mapping.per_node_energy()
        per = ledger.per_node()
        assert max(per, key=per.get) == (0, 1)
        assert per[(0, 0)] == 6.0  # root: 3 receptions per level

    def test_sink_mapping_more_energy(self, quadtree4, grid4, groups4):
        sink = sink_rooted_mapping(quadtree4, grid4)
        check_coverage(sink)
        paper = recursive_quadrant_mapping(quadtree4, groups4)
        e_sink, _ = sink.communication_cost()
        e_paper, _ = paper.communication_cost()
        assert e_sink > e_paper

    def test_compute_annotations_charged(self, grid4, groups4):
        tg = build_quadtree(grid4)
        for task in tg.tasks():
            task.annotations["operations"] = 2.0
        mapping = recursive_quadrant_mapping(tg, groups4)
        energy, latency = mapping.communication_cost()
        assert energy == 48.0 + 2.0 * 21
        ledger = mapping.per_node_energy()
        assert ledger.by_category()["compute"] == 42.0


class TestOtherMappers:
    def test_sink_rooted_places_interior_at_sink(self, quadtree4, grid4):
        mapping = sink_rooted_mapping(quadtree4, grid4, sink=(3, 3))
        assert mapping.location(TaskId(2, 0)) == (3, 3)
        assert mapping.location(TaskId(1, 4)) == (3, 3)
        assert mapping.is_complete()

    def test_sink_validates_membership(self, quadtree4, grid4):
        with pytest.raises(ValueError):
            sink_rooted_mapping(quadtree4, grid4, sink=(9, 9))

    def test_exhaustive_on_2x2(self):
        grid = OrientedGrid(2)
        tg = build_quadtree(grid)
        groups = HierarchicalGroups(grid)
        best = exhaustive_best_mapping(tg, grid)
        e_best, _ = best.communication_cost()
        e_paper, _ = recursive_quadrant_mapping(tg, groups).communication_cost()
        # paper mapping is optimal on the 2x2 instance
        assert e_best == pytest.approx(e_paper)

    def test_exhaustive_guards_size(self):
        grid = OrientedGrid(4)
        tg = build_quadtree(grid)
        with pytest.raises(ValueError):
            exhaustive_best_mapping(tg, grid)

    def test_mapping_table_renders(self, paper_mapping):
        text = mapping_table(paper_mapping)
        assert "level 0" in text and "level 2" in text
        assert "0->0@(0, 0)" in text
