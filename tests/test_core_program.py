"""Unit tests for repro.core.program: the reactive rule engine."""

from __future__ import annotations

import pytest

from repro.core.program import (
    EXFILTRATE,
    LOG,
    SEND,
    Context,
    Effect,
    Message,
    NodeProgram,
    Rule,
)


def make_counter_program():
    """Counts deliveries; exfiltrates when count reaches 3."""
    rules = [
        Rule(
            "count",
            condition=lambda ctx: ctx.message is not None,
            action=lambda ctx: ctx.state.__setitem__(
                "count", ctx.state["count"] + 1
            ),
            consumes_message=True,
        ),
        Rule(
            "emit",
            condition=lambda ctx: ctx.state["count"] >= 3 and not ctx.state["done"],
            action=lambda ctx: (
                ctx.state.__setitem__("done", True),
                ctx.exfiltrate(ctx.state["count"]),
            ),
        ),
    ]
    return NodeProgram(rules, {"count": 0, "done": False, "start": False})


class TestRuleEngine:
    def test_deliver_fires_consuming_rule_once(self):
        prog = make_counter_program()
        prog.deliver(Message("m", (0, 0)))
        assert prog.state["count"] == 1
        # the message is consumed; a second evaluation pass must not recount
        prog.settle()
        assert prog.state["count"] == 1

    def test_cascade_within_stimulus(self):
        prog = make_counter_program()
        prog.deliver(Message("m", (0, 0)))
        prog.deliver(Message("m", (0, 0)))
        effects = prog.deliver(Message("m", (0, 0)))
        kinds = [e.kind for e in effects]
        assert EXFILTRATE in kinds
        assert prog.state["done"]

    def test_start_sets_flag(self):
        fired = []
        prog = NodeProgram(
            [
                Rule(
                    "on-start",
                    condition=lambda ctx: ctx.state["start"],
                    action=lambda ctx: (
                        ctx.state.__setitem__("start", False),
                        fired.append(True),
                    ),
                )
            ],
            {"start": False},
        )
        prog.start()
        assert fired == [True]

    def test_rule_priority_is_list_order(self):
        order = []
        rules = [
            Rule(
                "first",
                condition=lambda ctx: not ctx.state.get("a"),
                action=lambda ctx: (ctx.state.__setitem__("a", True), order.append("first")),
            ),
            Rule(
                "second",
                condition=lambda ctx: not ctx.state.get("b"),
                action=lambda ctx: (ctx.state.__setitem__("b", True), order.append("second")),
            ),
        ]
        NodeProgram(rules, {"start": False}).settle()
        assert order == ["first", "second"]

    def test_runaway_rules_detected(self):
        prog = NodeProgram(
            [Rule("loop", condition=lambda ctx: True, action=lambda ctx: None)],
            {},
            max_firings=100,
        )
        with pytest.raises(RuntimeError, match="exceeded"):
            prog.settle()

    def test_firing_log(self):
        prog = make_counter_program()
        prog.deliver(Message("m", (0, 0)))
        assert prog.firing_log == ["count"]

    def test_snapshot_is_copy(self):
        prog = make_counter_program()
        snap = prog.snapshot()
        snap["count"] = 99
        assert prog.state["count"] == 0


class TestEffects:
    def test_send_effect(self):
        def act(ctx):
            ctx.send((1, 1), Message("m", (0, 0), payload="hi", size_units=2.0))

        prog = NodeProgram(
            [Rule("sender", condition=lambda ctx: ctx.state["start"], action=lambda ctx: (
                ctx.state.__setitem__("start", False), act(ctx)))],
            {"start": False},
        )
        effects = prog.start()
        assert len(effects) == 1
        assert effects[0].kind == SEND
        assert effects[0].destination == (1, 1)
        assert effects[0].message.size_units == 2.0

    def test_log_and_charge(self):
        def act(ctx):
            ctx.state["start"] = False
            ctx.log("note")
            ctx.charge(5.0)

        prog = NodeProgram(
            [Rule("r", condition=lambda ctx: ctx.state["start"], action=act)],
            {"start": False},
        )
        effects = prog.start()
        assert [e.kind for e in effects] == [LOG, LOG]
        assert sum(e.operations for e in effects) == 5.0

    def test_message_defaults(self):
        m = Message("mGraph", (2, 3))
        assert m.payload is None
        assert m.level == 0
        assert m.size_units == 1.0
