"""Unit tests for the logical naming service."""

from __future__ import annotations

import pytest

from repro.core import OrientedGrid
from repro.core.naming import LogicalNamingService, UnknownNameError
from repro.core.primitives import PrimitiveEnvironment


@pytest.fixture
def service(grid4):
    return LogicalNamingService(grid4)


class TestBindings:
    def test_bind_and_resolve(self, service):
        service.bind("west-half", lambda c: c[0] < 2)
        members = service.resolve("west-half")
        assert len(members) == 8
        assert all(c[0] < 2 for c in members)

    def test_bind_region(self, service):
        service.bind_region("nw-block", 0, 0, 2, 2)
        assert sorted(service.resolve("nw-block")) == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]

    def test_region_validation(self, service):
        with pytest.raises(ValueError):
            service.bind_region("bad", 0, 0, 0, 2)

    def test_empty_name_rejected(self, service):
        with pytest.raises(ValueError):
            service.bind("", lambda c: True)

    def test_unknown_name(self, service):
        with pytest.raises(UnknownNameError):
            service.resolve("ghost")
        with pytest.raises(UnknownNameError):
            service.unbind("ghost")

    def test_rebinding_replaces(self, service):
        service.bind("g", lambda c: True)
        assert service.member_count("g") == 16
        service.bind("g", lambda c: False)
        assert service.member_count("g") == 0

    def test_unbind(self, service):
        service.bind("g", lambda c: True)
        service.unbind("g")
        assert "g" not in service

    def test_names_sorted(self, service):
        service.bind("b", lambda c: True)
        service.bind("a", lambda c: True)
        assert service.names() == ["a", "b"]


class TestDynamicMembership:
    def test_runtime_membership_changes(self, service):
        # the paper's "membership determined at run time": the predicate
        # reads mutable state
        readings = {c: 0.0 for c in service.grid.nodes()}
        service.bind("feature-nodes", lambda c: readings[c] > 0.5)
        assert service.member_count("feature-nodes") == 0
        readings[(1, 1)] = 1.0
        readings[(3, 2)] = 0.9
        assert sorted(service.resolve("feature-nodes")) == [(1, 1), (3, 2)]


class TestLogicalCommunication:
    def test_send_to_group(self, service, grid4):
        env = PrimitiveEnvironment(grid4)
        service.bind_region("east-col", 3, 0, 1, 4)
        report = service.send_to_group(env, (0, 0), "east-col", payload="cmd")
        assert report.messages == 4
        for y in range(4):
            assert env.receive((3, y)).payload == "cmd"

    def test_send_excludes_self(self, service, grid4):
        env = PrimitiveEnvironment(grid4)
        service.bind("all", lambda c: True)
        report = service.send_to_group(env, (1, 1), "all", payload=None)
        assert report.messages == 15

    def test_gather_from_group(self, service, grid4):
        env = PrimitiveEnvironment(grid4)
        service.bind_region("nw", 0, 0, 2, 2)
        values, report = service.gather_from_group(
            env, (0, 0), "nw", value_of=lambda c: c[0] + c[1]
        )
        assert sorted(values) == [0, 1, 1, 2]
        assert report.messages == 3  # collector is a member

    def test_gather_cost_proportional(self, service, grid4):
        env = PrimitiveEnvironment(grid4)
        service.bind("corner", lambda c: c == (3, 3))
        _, report = service.gather_from_group(
            env, (0, 0), "corner", value_of=lambda c: 1
        )
        assert report.energy == 2.0 * 6  # one member at 6 hops
