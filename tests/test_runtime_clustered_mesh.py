"""Unit tests for the clustered-mesh topology alternative."""

from __future__ import annotations

import pytest

from repro.runtime import bind_processes
from repro.runtime.clustered_mesh import build_leader_mesh

from conftest import make_deployment


@pytest.fixture(scope="module")
def mesh4():
    net = make_deployment(side=4, n_random=150, seed=7)
    binding = bind_processes(net).binding
    return net, binding, build_leader_mesh(net, binding)


class TestMeshConstruction:
    def test_verify_clean(self, mesh4):
        _, _, result = mesh4
        assert result.mesh.verify() == []

    def test_all_adjacencies_routed(self, mesh4):
        net, binding, result = mesh4
        # 4x4 grid: 24 undirected cell adjacencies = 48 directed routes
        assert len(result.mesh.routes) == 48

    def test_routes_connect_heads(self, mesh4):
        net, binding, result = mesh4
        for (src, dst), path in result.mesh.routes.items():
            assert path[0] == binding.leader_of(src)
            assert path[-1] == binding.leader_of(dst)

    def test_route_hops_are_links(self, mesh4):
        net, _, result = mesh4
        for path in result.mesh.routes.values():
            for a, b in zip(path, path[1:]):
                assert b in net.neighbors(a)

    def test_route_accessor(self, mesh4):
        _, binding, result = mesh4
        path = result.mesh.route((0, 0), (1, 0))
        assert path[0] == binding.leader_of((0, 0))
        with pytest.raises(KeyError):
            result.mesh.route((0, 0), (3, 3))  # not adjacent

    def test_deterministic(self):
        net1 = make_deployment(side=4, n_random=150, seed=9)
        net2 = make_deployment(side=4, n_random=150, seed=9)
        b1 = bind_processes(net1).binding
        b2 = bind_processes(net2).binding
        r1 = build_leader_mesh(net1, b1)
        r2 = build_leader_mesh(net2, b2)
        assert r1.mesh.routes == r2.mesh.routes
        assert r1.messages == r2.messages

    def test_costs_positive(self, mesh4):
        _, _, result = mesh4
        assert result.messages > 0
        assert result.energy > 0
        assert result.mesh.mean_route_length() >= 1.0

    def test_multi_hop_cells(self):
        # short radio range: heads are several hops apart
        net = make_deployment(side=4, n_random=300, range_cells=0.7, seed=5)
        assert net.validate_protocol_preconditions() == []
        binding = bind_processes(net).binding
        result = build_leader_mesh(net, binding)
        assert result.mesh.verify() == []
        assert result.mesh.mean_route_length() > 1.5


class TestMeshVsCellTables:
    def test_mesh_routes_shorter_than_transport(self, mesh4):
        # the flood's first-arriving advertisement traces (approximately)
        # the shortest head-to-head path, while the cell-table transport
        # follows id-deterministic RT chains plus the gradient detour to
        # the destination head — so mesh routes are never longer in total
        net, binding, result = mesh4
        from repro.runtime import emulate_topology, trace_route

        topology = emulate_topology(net).topology
        mesh_total = 0
        transport_total = 0
        for (src, dst), path in result.mesh.routes.items():
            mesh_total += len(path) - 1
            transport_total += len(trace_route(topology, binding, src, dst)) - 1
        assert mesh_total <= transport_total
