"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    HierarchicalGroups,
    OrientedGrid,
    UniformCostModel,
    VirtualArchitecture,
)
from repro.deployment import (
    CellGrid,
    Terrain,
    build_network,
    ensure_coverage,
    uniform_random,
)


@pytest.fixture
def grid4() -> OrientedGrid:
    """The paper's 4x4 example grid."""
    return OrientedGrid(4)


@pytest.fixture
def grid8() -> OrientedGrid:
    return OrientedGrid(8)


@pytest.fixture
def groups4(grid4) -> HierarchicalGroups:
    return HierarchicalGroups(grid4)


@pytest.fixture
def va4() -> VirtualArchitecture:
    return VirtualArchitecture(4)


@pytest.fixture
def va8() -> VirtualArchitecture:
    return VirtualArchitecture(8)


@pytest.fixture
def uniform_cost() -> UniformCostModel:
    return UniformCostModel()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_deployment(
    side: int = 4,
    n_random: int = 60,
    terrain_side: float = 100.0,
    range_cells: float = 2.3,
    seed: int = 7,
):
    """A covered, connected deployment over a ``side x side`` cell grid.

    ``range_cells`` is the transmission range in cell-side multiples;
    values >= sqrt(5) guarantee single-hop cell adjacency, smaller values
    exercise the multi-hop discovery path.
    """
    terrain = Terrain(terrain_side)
    cells = CellGrid(terrain, side)
    r = np.random.default_rng(seed)
    positions = ensure_coverage(uniform_random(n_random, terrain, r), cells, r)
    return build_network(positions, cells, tx_range=cells.cell_side * range_cells)


@pytest.fixture
def deployment4():
    """Standard 4x4-cell deployment with comfortable radio range."""
    net = make_deployment(side=4)
    assert net.validate_protocol_preconditions() == []
    return net


@pytest.fixture
def dense_deployment8():
    """Denser 8x8-cell deployment for integration tests."""
    net = make_deployment(side=8, n_random=400, seed=11)
    assert net.validate_protocol_preconditions() == []
    return net
