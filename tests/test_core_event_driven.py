"""Unit tests for the event-driven (probabilistic activation) extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CountAggregation,
    EventDrivenAggregation,
    HierarchicalGroups,
    OrientedGrid,
    execute_round,
    expected_quadtree_cost,
    simulate_event_activations,
    synthesize_quadtree_program,
)
from repro.core.analysis import estimate_quadtree


def run_with_active(side, active_set):
    groups = HierarchicalGroups(OrientedGrid(side))
    agg = EventDrivenAggregation(
        CountAggregation(lambda c: True), active=lambda c: c in active_set
    )
    spec = synthesize_quadtree_program(groups, agg)
    return execute_round(spec, charge_compute=False)


class TestExpectedCost:
    def test_p1_equals_deterministic(self):
        for side in (2, 4, 8, 16):
            exp = expected_quadtree_cost(side, 1.0)
            det = estimate_quadtree(side)
            assert exp.expected_messages == det.messages
            assert exp.expected_hop_units == pytest.approx(det.hop_units)
            assert exp.expected_energy == pytest.approx(det.total_energy)

    def test_p0_is_free(self):
        exp = expected_quadtree_cost(8, 0.0)
        assert exp.expected_messages == 0.0
        assert exp.expected_energy == 0.0

    def test_monotone_in_p(self):
        costs = [expected_quadtree_cost(16, p).expected_energy
                 for p in (0.01, 0.05, 0.2, 0.5, 1.0)]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_quadtree_cost(6, 0.5)
        with pytest.raises(ValueError):
            expected_quadtree_cost(8, 1.5)

    def test_expectation_matches_monte_carlo(self):
        side, p = 8, 0.15
        rng = np.random.default_rng(5)
        exp = expected_quadtree_cost(side, p)
        trials = 120
        total_energy = 0.0
        for _ in range(trials):
            active = {
                (x, y)
                for x in range(side)
                for y in range(side)
                if rng.random() < p
            }
            result = run_with_active(side, active)
            # count only energy of non-empty payloads: size-0 messages
            total_energy += result.ledger.total
        mean = total_energy / trials
        assert mean == pytest.approx(exp.expected_energy, rel=0.15)


class TestEventDrivenAggregation:
    def test_all_active_matches_plain(self):
        side = 8
        active = {(x, y) for x in range(side) for y in range(side)}
        result = run_with_active(side, active)
        assert result.root_payload == side * side

    def test_counts_only_active(self):
        active = {(0, 0), (3, 3), (7, 1)}
        result = run_with_active(8, active)
        assert result.root_payload == 3

    def test_no_events_yields_none(self):
        result = run_with_active(8, set())
        assert result.root_payload is None
        assert result.ledger.total == 0.0  # all messages size 0

    def test_silent_subtrees_cost_nothing(self):
        # one active corner: only its spine to the root carries data
        result_one = run_with_active(8, {(7, 7)})
        result_all = run_with_active(
            8, {(x, y) for x in range(8) for y in range(8)}
        )
        assert 0 < result_one.ledger.total < result_all.ledger.total / 4

    def test_size_zero_for_inactive_payload(self):
        agg = EventDrivenAggregation(
            CountAggregation(lambda c: True), active=lambda c: False
        )
        assert agg.size_of(None) == 0.0
        assert agg.local_operations((0, 0)) == 0.0
        assert agg.merge_operations(None) == 0.0


class TestEventSimulation:
    def test_vicinity_activation(self):
        active = simulate_event_activations(16, n_events=1, vicinity_radius=2.0, rng=1)
        assert 0 < len(active) <= 16 * 16
        # activated cells cluster: bounding box is small
        xs = [c[0] for c in active]
        ys = [c[1] for c in active]
        assert max(xs) - min(xs) <= 4
        assert max(ys) - min(ys) <= 4

    def test_zero_events(self):
        assert simulate_event_activations(8, 0, 2.0, rng=1) == set()

    def test_zero_radius(self):
        # radius 0: only cells whose centre coincides with a target (a.s. none)
        active = simulate_event_activations(8, 3, 0.0, rng=2)
        assert len(active) <= 3

    def test_deterministic(self):
        a = simulate_event_activations(16, 2, 1.5, rng=7)
        b = simulate_event_activations(16, 2, 1.5, rng=7)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_event_activations(8, -1, 1.0)
        with pytest.raises(ValueError):
            simulate_event_activations(8, 1, -1.0)

    def test_tracking_round_counts_vicinity(self):
        side = 16
        active = simulate_event_activations(side, 2, 2.0, rng=3)
        result = run_with_active(side, active)
        assert result.root_payload == len(active)


class TestRegionLabelingUnderPartialActivation:
    def test_feature_predicate_composition(self):
        # the documented route for region labeling with inactive leaves:
        # fold activation into the feature predicate, no wrapper needed
        import numpy as np

        from repro.apps import RegionAggregation, count_regions
        from repro.core import VirtualArchitecture

        side = 8
        rng = np.random.default_rng(4)
        reading_above = {
            (x, y): bool(rng.random() < 0.6)
            for x in range(side)
            for y in range(side)
        }
        active = simulate_event_activations(side, 2, 2.0, rng=5)
        agg = RegionAggregation(
            lambda c: (c in active) and reading_above[c]
        )
        va = VirtualArchitecture(side)
        result = va.execute(agg)
        feat = np.zeros((side, side), dtype=bool)
        for (x, y) in active:
            feat[y, x] = reading_above[(x, y)]
        assert result.root_payload.total_regions() == count_regions(feat)
