"""Unit tests for synthetic fields and the reference oracles."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps.fields import (
    CompositeField,
    GaussianBlobField,
    GradientField,
    NoisyField,
    PlateauField,
    StripeField,
    UniformField,
    feature_function,
    random_feature_matrix,
    sample_grid,
    threshold_features,
)
from repro.apps.reference import (
    boundary_cell_count,
    count_regions,
    feature_fraction,
    label_components,
    region_areas,
)


class TestFields:
    def test_uniform(self):
        f = UniformField(3.0)
        assert f.value(0.2, 0.9) == 3.0

    def test_gaussian_peak_at_center(self):
        f = GaussianBlobField([(0.5, 0.5, 0.1, 2.0)])
        assert f.value(0.5, 0.5) == pytest.approx(2.0)
        assert f.value(0.0, 0.0) < 0.01

    def test_gaussian_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            GaussianBlobField([(0.5, 0.5, 0.0, 1.0)])

    def test_gradient_monotone(self):
        f = GradientField(0.0, 1.0, angle=0.0)
        assert f.value(0.0, 0.5) < f.value(0.5, 0.5) < f.value(1.0, 0.5)
        assert f.value(1.0, 0.3) == pytest.approx(1.0)

    def test_gradient_diagonal(self):
        f = GradientField(0.0, 1.0, angle=math.pi / 4)
        assert f.value(1.0, 1.0) == pytest.approx(1.0)
        assert f.value(0.0, 0.0) == pytest.approx(0.0)

    def test_plateau_override(self):
        f = PlateauField(
            [(0.0, 0.0, 0.5, 0.5, 1.0), (0.25, 0.25, 0.5, 0.5, 2.0)],
            background=0.1,
        )
        assert f.value(0.9, 0.9) == 0.1
        assert f.value(0.1, 0.1) == 1.0
        assert f.value(0.3, 0.3) == 2.0

    def test_stripes(self):
        f = StripeField(period=0.5, level=1.0, vertical=True)
        assert f.value(0.1, 0.0) == 1.0
        assert f.value(0.3, 0.0) == 0.0

    def test_composite_sum(self):
        f = CompositeField([UniformField(1.0), UniformField(2.0)])
        assert f.value(0.5, 0.5) == 3.0
        g = UniformField(1.0) + UniformField(0.5)
        assert g.value(0, 0) == 1.5

    def test_noise_repeatable(self):
        f = NoisyField(UniformField(0.0), amplitude=0.5, seed=3)
        assert f.value(0.25, 0.75) == f.value(0.25, 0.75)
        assert abs(f.value(0.25, 0.75)) <= 0.5

    def test_noise_rejects_negative_amplitude(self):
        with pytest.raises(ValueError):
            NoisyField(UniformField(0.0), amplitude=-1.0)


class TestSampling:
    def test_sample_grid_shape(self):
        readings = sample_grid(UniformField(2.0), 8)
        assert readings.shape == (8, 8)
        assert np.all(readings == 2.0)

    def test_sample_grid_orientation(self):
        # gradient along +x: readings[y, x] grows with x
        readings = sample_grid(GradientField(0.0, 1.0, angle=0.0), 4)
        assert np.all(np.diff(readings, axis=1) > 0)

    def test_sample_rejects_bad_side(self):
        with pytest.raises(ValueError):
            sample_grid(UniformField(0.0), 0)

    def test_threshold(self):
        readings = np.array([[0.2, 0.8], [0.5, 0.4]])
        feat = threshold_features(readings, 0.5)
        assert feat.tolist() == [[False, True], [True, False]]

    def test_feature_function_adapter(self):
        feat = np.array([[False, True], [False, False]])
        fn = feature_function(feat)
        assert fn((1, 0)) is True  # x=1, y=0 -> feat[0, 1]
        assert fn((0, 1)) is False

    def test_random_feature_matrix(self):
        m = random_feature_matrix(16, 0.3, rng=5)
        assert m.shape == (16, 16)
        assert 0.1 < m.mean() < 0.5

    def test_random_density_validation(self):
        with pytest.raises(ValueError):
            random_feature_matrix(4, 1.5)


class TestReferenceLabeling:
    def test_empty(self):
        feat = np.zeros((4, 4), dtype=bool)
        labels, count = label_components(feat)
        assert count == 0
        assert labels.sum() == 0

    def test_full(self):
        feat = np.ones((4, 4), dtype=bool)
        _, count = label_components(feat)
        assert count == 1

    def test_two_regions(self):
        feat = np.zeros((4, 4), dtype=bool)
        feat[0, 0] = True
        feat[3, 3] = True
        labels, count = label_components(feat)
        assert count == 2
        assert labels[0, 0] != labels[3, 3]

    def test_diagonal_is_separate(self):
        feat = np.eye(4, dtype=bool)
        assert count_regions(feat) == 4

    def test_l_shape_connected(self):
        feat = np.zeros((3, 3), dtype=bool)
        feat[0, :] = True
        feat[:, 0] = True
        assert count_regions(feat) == 1

    def test_region_areas(self):
        feat = np.zeros((4, 4), dtype=bool)
        feat[0, 0:2] = True
        feat[3, 3] = True
        assert region_areas(feat) == [1, 2]

    def test_matches_scipy(self):
        from scipy import ndimage

        rng = np.random.default_rng(9)
        for _ in range(25):
            feat = rng.random((12, 12)) < 0.5
            _, ours = label_components(feat)
            _, theirs = ndimage.label(feat)  # default structure = 4-conn
            assert ours == theirs

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            label_components(np.zeros(4, dtype=bool))

    def test_feature_fraction(self):
        feat = np.zeros((2, 2), dtype=bool)
        feat[0, 0] = True
        assert feature_fraction(feat) == 0.25

    def test_boundary_cell_count_solid(self):
        feat = np.ones((4, 4), dtype=bool)
        assert boundary_cell_count(feat) == 12  # the ring

    def test_boundary_cell_count_single(self):
        feat = np.zeros((4, 4), dtype=bool)
        feat[1, 1] = True
        assert boundary_cell_count(feat) == 1
