"""Unit tests for the VirtualArchitecture facade."""

from __future__ import annotations

import pytest

from repro.core import (
    CenterLeaderPolicy,
    CountAggregation,
    UniformCostModel,
    VirtualArchitecture,
)


class TestFacade:
    def test_basic_properties(self, va4):
        assert va4.side == 4
        assert va4.num_nodes == 16
        assert va4.groups.max_level == 2

    def test_repr(self, va4):
        text = repr(va4)
        assert "4x4" in text and "UniformCostModel" in text

    def test_design_environment_fresh(self, va4):
        env1 = va4.design_environment()
        env2 = va4.design_environment()
        env1.send((0, 0), (1, 0), payload=None)
        assert env2.ledger.total == 0.0
        assert env1.groups is va4.groups

    def test_synthesize_defaults_to_full_reduction(self, va4):
        spec = va4.synthesize(CountAggregation(lambda c: True))
        assert spec.max_level == 2

    def test_execute_roundtrip(self, va4):
        result = va4.execute(CountAggregation(lambda c: c[0] == 0))
        assert result.root_payload == 4

    def test_execute_with_custom_cost_model(self):
        va = VirtualArchitecture(4, cost_model=UniformCostModel(energy_per_unit=10.0))
        result = va.execute(CountAggregation(lambda c: True), charge_compute=False)
        assert result.ledger.total == 480.0

    def test_custom_policy_propagates(self):
        va = VirtualArchitecture(4, leader_policy=CenterLeaderPolicy())
        result = va.execute(CountAggregation(lambda c: True))
        # center policy roots the reduction at (1, 1)
        assert list(result.exfiltrated) == [(1, 1)]
        assert result.root_payload == 16

    def test_non_power_of_two_rejected_at_synthesis(self):
        va = VirtualArchitecture(6)
        assert va.num_nodes == 36  # construction is fine
        spec = va.synthesize(CountAggregation(lambda c: True))
        # 6x6 supports a 2-level hierarchy; execution still reduces
        assert spec.max_level == va.groups.max_level
