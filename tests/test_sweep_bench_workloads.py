"""The bench workloads ported onto the sweep scheduler.

``repro.bench``'s micro workloads (timer storm, unicast ping-pong, the
wire-codec round-trip, ...) are runnable as sweep workloads so
``--workers N`` parallelizes a full bench run.  These tests pin the
contract that makes that safe: for every ported workload, a sharded run
produces the same fingerprints as the in-process serial run, and
``run_micro(workers=N)`` reproduces the serial rows' fingerprints.
"""

from __future__ import annotations

import pytest

from repro import bench
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.workloads import WORKLOADS

#: name -> params kept tiny so each sharded test stays in the seconds range.
PORTED = {
    "storm": {"side": 4, "n_random": 70, "rounds": 2, "loss": 0.1},
    "timer_storm": {"ops": 3_000},
    "pingpong": {"count": 2_000},
    "bench_micro": {"variant": "timer_storm", "scale": 0.05},
}


def fingerprints(records):
    return {r["run_id"]: r["fingerprint"] for r in records}


class TestPortedWorkloads:
    @pytest.mark.parametrize("name", sorted(PORTED))
    def test_serial_vs_sharded_fingerprints_match(self, name):
        spec = SweepSpec(
            name=f"bench-port-{name}",
            workload=name,
            grid={},
            fixed=PORTED[name],
            replicates=2,
        )
        serial = run_sweep(spec, workers=1)
        assert all(r["status"] == "ok" for r in serial)
        sharded = run_sweep(spec, workers=2, timeout_s=180, retries=1)
        assert fingerprints(sharded) == fingerprints(serial)

    def test_timer_storm_legacy_flag_changes_the_work_not_the_result(self):
        fast = WORKLOADS["timer_storm"]({"ops": 2_000}, seed=3)
        legacy = WORKLOADS["timer_storm"]({"ops": 2_000, "legacy_handles": True}, seed=3)
        assert fast.metrics["timer_ops"] == legacy.metrics["timer_ops"]

    def test_bench_micro_unknown_variant_is_a_loud_error(self):
        with pytest.raises(KeyError, match="unknown bench_micro variant"):
            WORKLOADS["bench_micro"]({"variant": "nope"}, seed=1)

    def test_bench_micro_covers_every_variant(self):
        """Every bench variant must be dispatchable through the sweep
        scheduler — a new variant without sweep coverage fails here."""
        for variant in bench.micro_variants(scale=1.0):
            outcome = WORKLOADS["bench_micro"](
                {"variant": variant, "scale": 0.02}, seed=bench.MICRO_SEED
            )
            assert outcome.fingerprint


class TestRunMicroWorkers:
    def test_parallel_run_micro_matches_serial_fingerprints(self):
        serial = bench.run_micro(smoke=True)
        parallel = bench.run_micro(smoke=True, workers=2)
        for variant, row in serial.items():
            assert bench.micro_fingerprint(variant, parallel[variant]) == (
                bench.micro_fingerprint(variant, row)
            ), f"variant {variant!r} diverged between serial and sharded bench"
