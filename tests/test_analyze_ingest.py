"""Ingest and memoization edge cases for `repro.analyze` (DESIGN.md §15).

The failure modes the analysis boundary must surface instead of absorb:

* a torn sink tail (killed writer) is repaired and *counted* all the way
  through the memoized aggregation path, never silently dropped;
* an unknown record schema version is a named error
  (:class:`UnknownSchemaError`), never a guess — a sink full of records
  this code cannot interpret must not summarize as empty;
* resumed/re-run ``(point, replicate)`` duplicates are deduplicated and
  reported, never double-counted; the same run in two different sink
  files is a hard :class:`DuplicateRecordError`;
* the disk memo re-reads **zero** records for an unchanged campaign and
  only the changed file for a grown one (the CacheStats contract).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analyze import (
    DuplicateRecordError,
    GroupQuery,
    MemoizedAggregator,
    UnknownSchemaError,
    ingest_jsonl,
)
from repro.sweep.sink import append_record
from repro.sweep.spec import SweepSpec
from repro.sweep.worker import base_record


def make_spec(name: str = "ingest-test", replicates: int = 3) -> SweepSpec:
    return SweepSpec(
        name=name,
        workload="storm",
        grid={"loss": [0.0, 0.1]},
        replicates=replicates,
        audit_duplicates=1,
    )


def ok_records(spec: SweepSpec, shard: int = 0):
    """Fabricated ok-records in the real worker record shape."""
    records = []
    for run in spec.expand():
        record = base_record(run, shard=shard, attempt=1)
        record.update(
            {
                "status": "ok",
                "error": None,
                "elapsed_s": 0.01,
                "metrics": {
                    "deliveries": 100.0 + (run.seed % 97),
                    "energy": 40.0 + (run.seed % 13),
                },
                "fingerprint": f"fp-{run.primary_id.replace('/', '-')}",
            }
        )
        records.append(record)
    return records


def write_sink(path, records) -> None:
    for record in records:
        append_record(str(path), record)


class TestIngest:
    def test_typed_round_trip(self, tmp_path):
        sink = tmp_path / "a.jsonl"
        spec = make_spec()
        write_sink(sink, ok_records(spec))
        report = ingest_jsonl(str(sink))
        runs = spec.expand()
        assert len(report.records) == len(runs)
        assert report.clean and not report.duplicates
        first = report.ok_records[0]
        assert first.param_dict() == runs[0].params
        assert first.metric_dict()["deliveries"] == pytest.approx(
            100.0 + (runs[0].seed % 97)
        )
        assert first.source == str(sink)

    def test_unknown_schema_rejected_by_name(self, tmp_path):
        sink = tmp_path / "future.jsonl"
        records = ok_records(make_spec())
        write_sink(sink, records[:1])
        append_record(str(sink), {**records[1], "schema": 99})
        with pytest.raises(UnknownSchemaError) as exc:
            ingest_jsonl(str(sink))
        message = str(exc.value)
        assert "schema 99" in message
        assert "future.jsonl:2" in message
        assert records[1]["run_id"] in message

    def test_missing_required_field_is_schema_error(self, tmp_path):
        sink = tmp_path / "broken.jsonl"
        record = dict(ok_records(make_spec())[0])
        del record["seed"]
        append_record(str(sink), record)
        with pytest.raises(UnknownSchemaError, match="malformed"):
            ingest_jsonl(str(sink))

    def test_duplicates_counted_once_and_reported(self, tmp_path):
        sink = tmp_path / "resumed.jsonl"
        records = ok_records(make_spec())
        write_sink(sink, records)
        append_record(str(sink), records[0])  # resumed shard re-emits run 0
        report = ingest_jsonl(str(sink))
        assert len(report.records) == len(records)
        assert report.duplicates == [
            {
                "run_id": records[0]["run_id"],
                "count": 2,
                "fingerprints_agree": True,
            }
        ]

    def test_ok_supersedes_failure_without_duplicate_report(self, tmp_path):
        sink = tmp_path / "retried.jsonl"
        records = ok_records(make_spec())
        failed = dict(records[0])
        failed.update(
            {"status": "failed", "error": "boom", "metrics": {}, "fingerprint": None}
        )
        write_sink(sink, [failed] + records)
        report = ingest_jsonl(str(sink))
        assert not report.duplicates  # failure + retry is the sink working
        kept = [r for r in report.records if r.run_id == records[0]["run_id"]]
        assert len(kept) == 1 and kept[0].ok

    def test_audit_mismatch_surfaced(self, tmp_path):
        sink = tmp_path / "audited.jsonl"
        records = ok_records(make_spec())
        audit = next(r for r in records if r["audit"])
        audit["fingerprint"] = "fp-DIVERGED"
        write_sink(sink, records)
        report = ingest_jsonl(str(sink))
        assert not report.clean
        assert report.audit_mismatches[0]["audit_fingerprint"] == "fp-DIVERGED"


class TestTornTailThroughAnalyze:
    def test_torn_tail_repaired_and_counted_in_aggregate(self, tmp_path):
        sink = tmp_path / "torn.jsonl"
        spec = make_spec()
        write_sink(sink, ok_records(spec))
        with open(sink, "a") as fh:
            fh.write('{"schema": 1, "kind": "run", "run_id": "torn-mid-wri')
        aggregator = MemoizedAggregator(cache_dir=str(tmp_path / "cache"))
        result = aggregator.aggregate([str(sink)], GroupQuery(by=("loss",)))
        assert result.torn_lines == 1
        total_ok = sum(g.runs for g in result.groups.values())
        primaries = [r for r in spec.expand() if not r.audit]
        assert total_ok == len(primaries)

    def test_torn_count_survives_the_memo(self, tmp_path):
        """The warm (fully cached) pass still discloses the repair."""
        sink = tmp_path / "torn.jsonl"
        write_sink(sink, ok_records(make_spec()))
        with open(sink, "a") as fh:
            fh.write('{"half a rec')
        cache = str(tmp_path / "cache")
        query = GroupQuery(by=("loss",))
        cold = MemoizedAggregator(cache_dir=cache).aggregate([str(sink)], query)
        warm = MemoizedAggregator(cache_dir=cache).aggregate([str(sink)], query)
        assert warm.stats.records_read == 0
        assert warm.torn_lines == cold.torn_lines == 1


class TestMemoization:
    def test_unchanged_campaign_reads_zero_records(self, tmp_path):
        sinks = []
        for shard in range(2):
            sink = tmp_path / f"shard{shard}.jsonl"
            write_sink(sink, ok_records(make_spec(f"memo-{shard}"), shard=shard))
            sinks.append(str(sink))
        cache = str(tmp_path / "cache")
        query = GroupQuery(by=("loss",))
        cold = MemoizedAggregator(cache_dir=cache).aggregate(sinks, query)
        assert cold.stats.misses == 2 and cold.stats.records_read > 0
        warm = MemoizedAggregator(cache_dir=cache).aggregate(sinks, query)
        assert warm.stats.hits == 2
        assert warm.stats.misses == 0
        assert warm.stats.records_read == 0
        assert {k: g.to_dict() for k, g in warm.groups.items()} == {
            k: g.to_dict() for k, g in cold.groups.items()
        }

    def test_grown_campaign_rereads_only_the_new_shard(self, tmp_path):
        first = tmp_path / "shard0.jsonl"
        write_sink(first, ok_records(make_spec("grow-0"), shard=0))
        cache = str(tmp_path / "cache")
        query = GroupQuery(by=("loss",))
        MemoizedAggregator(cache_dir=cache).aggregate([str(first)], query)

        second = tmp_path / "shard1.jsonl"
        new_records = ok_records(make_spec("grow-1"), shard=1)
        write_sink(second, new_records)
        grown = MemoizedAggregator(cache_dir=cache).aggregate(
            [str(first), str(second)], query
        )
        assert grown.stats.hits == 1 and grown.stats.misses == 1
        assert grown.stats.records_read == len(new_records)

    def test_appending_to_a_file_invalidates_its_memo(self, tmp_path):
        sink = tmp_path / "appended.jsonl"
        spec_a, spec_b = make_spec("app-0"), make_spec("app-1")
        write_sink(sink, ok_records(spec_a))
        cache = str(tmp_path / "cache")
        query = GroupQuery(by=("loss",))
        MemoizedAggregator(cache_dir=cache).aggregate([str(sink)], query)
        write_sink(sink, ok_records(spec_b))  # the sha256 key changed
        regrown = MemoizedAggregator(cache_dir=cache).aggregate([str(sink)], query)
        assert regrown.stats.misses == 1 and regrown.stats.records_read > 0

    def test_cross_file_duplicate_is_a_hard_error(self, tmp_path):
        records = ok_records(make_spec("dup"))
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_sink(a, records)
        write_sink(b, records[:2])
        with pytest.raises(DuplicateRecordError, match="already ingested"):
            MemoizedAggregator(cache_dir=str(tmp_path / "cache")).aggregate(
                [str(a), str(b)], GroupQuery()
            )

    def test_torn_memo_entry_is_a_miss_not_an_error(self, tmp_path):
        sink = tmp_path / "a.jsonl"
        write_sink(sink, ok_records(make_spec("torn-memo")))
        cache = tmp_path / "cache"
        query = GroupQuery(by=("loss",))
        MemoizedAggregator(cache_dir=str(cache)).aggregate([str(sink)], query)
        (entry,) = list(cache.iterdir())
        entry.write_text(entry.read_text()[: len(entry.read_text()) // 2])
        recovered = MemoizedAggregator(cache_dir=str(cache)).aggregate(
            [str(sink)], query
        )
        assert recovered.stats.misses == 1 and recovered.stats.records_read > 0
        # and the memo was rewritten whole
        json.loads(entry.read_text())

    def test_no_cache_dir_always_rereads(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # prove no stray .analyze_cache appears
        sink = tmp_path / "a.jsonl"
        records = ok_records(make_spec("nocache"))
        write_sink(sink, records)
        query = GroupQuery()
        MemoizedAggregator(cache_dir=None).aggregate([str(sink)], query)
        again = MemoizedAggregator(cache_dir=None).aggregate([str(sink)], query)
        assert again.stats.records_read == len(records)
        assert not os.path.exists(".analyze_cache")
