"""Unit tests for repro.deployment.topology: the real network graph G_R."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.deployment.node import SensorNode
from repro.deployment.placement import one_per_cell, uniform_random, ensure_coverage
from repro.deployment.terrain import CellGrid, Terrain
from repro.deployment.topology import RealNetwork, build_network

from conftest import make_deployment


def line_network(positions, tx_range=1.5, cells=None):
    cells = cells or CellGrid(Terrain(10.0), 2)
    nodes = [
        SensorNode(i, p, tx_range=tx_range) for i, p in enumerate(positions)
    ]
    return RealNetwork(nodes, cells)


class TestAdjacency:
    def test_unit_disk_edges(self):
        net = line_network([(0.5, 0.5), (1.5, 0.5), (3.5, 0.5)])
        assert net.neighbors(0) == (1,)
        assert net.neighbors(1) == (0,)
        assert net.neighbors(2) == ()

    def test_adjacency_symmetric(self):
        net = make_deployment(side=4)
        for nid in net.node_ids():
            for nbr in net.neighbors(nid):
                assert nid in net.neighbors(nbr)

    def test_adjacency_matches_brute_force(self):
        terrain = Terrain(50.0)
        cells = CellGrid(terrain, 2)
        rng = np.random.default_rng(3)
        pts = uniform_random(60, terrain, rng)
        net = build_network(pts, cells, tx_range=12.0)
        for i in range(60):
            expected = sorted(
                j
                for j in range(60)
                if j != i
                and math.hypot(pts[i][0] - pts[j][0], pts[i][1] - pts[j][1])
                <= 12.0
            )
            assert net.neighbors(i) == tuple(expected)

    def test_duplicate_ids_rejected(self):
        cells = CellGrid(Terrain(10.0), 2)
        nodes = [
            SensorNode(0, (1.0, 1.0), 1.0),
            SensorNode(0, (2.0, 2.0), 1.0),
        ]
        with pytest.raises(ValueError):
            RealNetwork(nodes, cells)

    def test_edge_count_and_degree(self):
        net = line_network([(0.5, 0.5), (1.5, 0.5), (2.5, 0.5)])
        assert net.edge_count() == 2
        assert net.average_degree() == pytest.approx(4 / 3)

    def test_dead_nodes_filtered(self):
        net = line_network([(0.5, 0.5), (1.5, 0.5), (2.5, 0.5)])
        net.node(1).kill()
        assert net.neighbors(0) == ()
        assert net.neighbors(0, alive_only=False) == (1,)
        assert net.alive_ids() == [0, 2]


class TestCells:
    def test_cell_assignment(self):
        net = make_deployment(side=4)
        for nid in net.node_ids():
            node = net.node(nid)
            assert net.cells.cell_of(node.position) == net.cell_of(nid)

    def test_members_partition_nodes(self):
        net = make_deployment(side=4)
        total = sum(
            len(net.members_of_cell(c, alive_only=False))
            for c in net.cells.cells()
        )
        assert total == len(net)

    def test_members_sorted(self):
        net = make_deployment(side=4)
        for cell in net.cells.cells():
            members = net.members_of_cell(cell)
            assert list(members) == sorted(members)

    def test_members_alive_view_tracks_liveness(self):
        net = make_deployment(side=4)
        cell = next(
            c for c in net.cells.cells() if len(net.members_of_cell(c)) >= 2
        )
        before = net.members_of_cell(cell)
        victim = before[0]
        # cached view is reused while liveness is unchanged
        assert net.members_of_cell(cell) is before
        net.node(victim).kill()
        after = net.members_of_cell(cell)
        assert victim not in after
        assert set(after) == set(before) - {victim}
        net.node(victim).revive(energy=1.0)
        assert set(net.members_of_cell(cell)) == set(before)
        # the full (alive_only=False) view never changes
        assert victim in net.members_of_cell(cell, alive_only=False)

    def test_intra_cell_links_match_bruteforce_and_track_liveness(self):
        net = make_deployment(side=4)
        nid = next(
            n for n in net.node_ids()
            if any(net.cell_of(m) == net.cell_of(n) for m in net.neighbors(n))
        )
        links = net.intra_cell_links(nid)
        cell = net.cell_of(nid)
        assert links == tuple(
            (nid, m) for m in net.neighbors(nid) if net.cell_of(m) == cell
        )
        assert links  # chosen to have at least one in-cell neighbor
        # severing every returned link isolates the node from its cell
        peers = {m for _, m in links}
        assert peers <= set(net.members_of_cell(cell))
        # a dead peer drops out of the alive view, stays in the full one
        victim = links[0][1]
        net.node(victim).kill()
        assert victim not in {m for _, m in net.intra_cell_links(nid)}
        assert victim in {
            m for _, m in net.intra_cell_links(nid, alive_only=False)
        }
        net.node(victim).revive(energy=1.0)


class TestConnectivity:
    def test_connected_deployment(self):
        net = make_deployment(side=4)
        assert net.is_connected()

    def test_disconnected_detected(self):
        net = line_network([(0.5, 0.5), (9.5, 9.5)], tx_range=1.0)
        assert not net.is_connected()

    def test_single_node_connected(self):
        net = line_network([(0.5, 0.5)])
        assert net.is_connected()

    def test_cell_subgraph_connected(self):
        net = make_deployment(side=4)
        assert net.all_cell_subgraphs_connected()

    def test_cell_subgraph_disconnected(self):
        # two nodes in cell (0,0), out of range of each other, plus a
        # relay in another cell: globally connected, cell-locally not
        cells = CellGrid(Terrain(10.0), 2)
        net = line_network(
            [(0.5, 0.5), (4.5, 4.5), (5.5, 1.5)], tx_range=5.2, cells=cells
        )
        assert net.cell_of(0) == (0, 0) and net.cell_of(1) == (0, 0)
        assert net.cell_of(2) == (1, 0)
        assert not net.cell_subgraph_connected((0, 0))
        assert net.is_connected()

    def test_empty_cell_not_connected(self):
        cells = CellGrid(Terrain(10.0), 2)
        net = line_network([(0.5, 0.5)], cells=cells)
        assert not net.cell_subgraph_connected((1, 1))

    def test_all_cells_covered(self):
        net = make_deployment(side=4)
        assert net.all_cells_covered()
        net_sparse = line_network([(0.5, 0.5)])
        assert not net_sparse.all_cells_covered()

    def test_validate_preconditions_reports(self):
        net = line_network([(0.5, 0.5)])
        problems = net.validate_protocol_preconditions()
        assert any("cells" in p for p in problems)

    def test_validate_good_deployment_empty(self):
        assert make_deployment(side=4).validate_protocol_preconditions() == []


class TestPaths:
    def test_shortest_hop_path(self):
        net = line_network([(0.5, 0.5), (1.5, 0.5), (2.5, 0.5), (3.5, 0.5)])
        assert net.shortest_hop_path(0, 3) == [0, 1, 2, 3]

    def test_path_to_self(self):
        net = line_network([(0.5, 0.5)])
        assert net.shortest_hop_path(0, 0) == [0]

    def test_unreachable_returns_none(self):
        net = line_network([(0.5, 0.5), (9.5, 9.5)], tx_range=1.0)
        assert net.shortest_hop_path(0, 1) is None

    def test_path_avoids_dead_nodes(self):
        # square: 0-1-3 and 0-2-3
        net = line_network(
            [(0.5, 0.5), (1.5, 0.5), (0.5, 1.5), (1.5, 1.5)], tx_range=1.1
        )
        net.node(1).kill()
        path = net.shortest_hop_path(0, 3)
        assert path == [0, 2, 3]

    def test_distance(self):
        net = line_network([(0.0, 0.0), (3.0, 4.0)], tx_range=10.0)
        assert net.distance(0, 1) == pytest.approx(5.0)
