"""Unit tests for repro.core.primitives: node and collective primitives."""

from __future__ import annotations

import pytest

from repro.core.cost_model import UniformCostModel
from repro.core.groups import HierarchicalGroups
from repro.core.network_model import OrientedGrid
from repro.core.primitives import PrimitiveEnvironment


@pytest.fixture
def env4(grid4):
    return PrimitiveEnvironment(grid4)


class TestSendReceive:
    def test_send_delivers(self, env4):
        env4.send((0, 0), (2, 1), payload="hello")
        envelope = env4.receive((2, 1))
        assert envelope is not None
        assert envelope.sender == (0, 0)
        assert envelope.payload == "hello"

    def test_receive_empty_returns_none(self, env4):
        assert env4.receive((3, 3)) is None

    def test_receive_fifo(self, env4):
        env4.send((0, 0), (1, 0), payload=1)
        env4.send((2, 0), (1, 0), payload=2)
        assert env4.receive((1, 0)).payload == 1
        assert env4.receive((1, 0)).payload == 2

    def test_send_charges_path(self, env4):
        env4.send((0, 0), (3, 0), payload=None, size_units=2.0)
        # 3 hops x (tx + rx) x 2 units
        assert env4.ledger.total == 12.0

    def test_send_returns_latency(self, env4):
        latency = env4.send((0, 0), (2, 2), payload=None)
        assert latency == 4.0

    def test_send_to_self_free(self, env4):
        latency = env4.send((1, 1), (1, 1), payload="x")
        assert latency == 0.0
        assert env4.ledger.total == 0.0
        assert env4.receive((1, 1)).payload == "x"

    def test_send_validates_membership(self, env4):
        with pytest.raises(ValueError):
            env4.send((0, 0), (9, 9), payload=None)

    def test_send_rejects_negative_size(self, env4):
        with pytest.raises(ValueError):
            env4.send((0, 0), (1, 0), payload=None, size_units=-1.0)

    def test_pending(self, env4):
        env4.send((0, 0), (1, 0), payload=None)
        env4.send((0, 0), (1, 0), payload=None)
        assert env4.pending((1, 0)) == 2
        assert env4.pending((0, 0)) == 0

    def test_messages_sent_counter(self, env4):
        env4.send((0, 0), (1, 0), payload=None)
        env4.send_to_leader((3, 3), 1, payload=None)
        assert env4.messages_sent == 2


class TestLeaderAddressing:
    def test_send_to_leader_level1(self, env4):
        env4.send_to_leader((3, 3), 1, payload="up")
        envelope = env4.receive((2, 2))
        assert envelope.payload == "up"

    def test_send_to_leader_cost_proportional_to_hops(self, env4):
        # Section 4.2's contract
        before = env4.ledger.total
        env4.send_to_leader((3, 3), 2, payload=None)
        hops = env4.groups.follower_to_leader_hops((3, 3), 2)
        assert env4.ledger.total - before == 2.0 * hops

    def test_mismatched_groups_rejected(self, grid4):
        other = HierarchicalGroups(OrientedGrid(8))
        with pytest.raises(ValueError):
            PrimitiveEnvironment(grid4, groups=other)


class TestCollectives:
    def test_gather_to_leader(self, env4):
        values = {m: str(m) for m in env4.groups.members((0, 0), 1)}
        envelopes, report = env4.gather_to_leader(
            (1, 1), 1, value_of=lambda m: values[m]
        )
        assert len(envelopes) == 4  # 3 followers + leader's own (free)
        assert report.messages == 3
        assert report.energy == 2.0 * 4  # hop distances 1+1+2, tx+rx
        assert report.latency == 2.0

    def test_gather_clears_inbox(self, env4):
        env4.gather_to_leader((1, 1), 1, value_of=lambda m: 0)
        assert env4.pending((0, 0)) == 0

    def test_broadcast_from_leader(self, env4):
        report = env4.broadcast_from_leader((0, 0), 1, payload="cmd")
        assert report.messages == 3
        for member in env4.groups.followers((0, 0), 1):
            assert env4.receive(member).payload == "cmd"

    def test_reduce_to_leader_value(self, env4):
        value, report = env4.reduce_to_leader(
            (0, 0), 2, value_of=lambda m: 1.0, combine=lambda a, b: a + b
        )
        assert value == 16.0

    def test_reduce_message_count(self, env4):
        _, report = env4.reduce_to_leader(
            (0, 0), 2, value_of=lambda m: 1.0, combine=lambda a, b: a + b
        )
        # 3 per level-1 group (4 groups) + 3 at level 2
        assert report.messages == 15

    def test_reduce_cheaper_than_flat_gather(self):
        grid = OrientedGrid(8)
        env_flat = PrimitiveEnvironment(grid)
        env_tree = PrimitiveEnvironment(grid)
        _, flat = env_flat.gather_to_leader((0, 0), 3, value_of=lambda m: 1.0)
        _, tree = env_tree.reduce_to_leader(
            (0, 0), 3, value_of=lambda m: 1.0, combine=lambda a, b: a + b
        )
        assert tree.energy < flat.energy

    def test_reduce_matches_quadtree_energy(self, env4):
        # the hierarchical reduce IS the quad-tree communication pattern
        _, report = env4.reduce_to_leader(
            (0, 0), 2, value_of=lambda m: 1.0, combine=lambda a, b: a + b
        )
        assert report.energy == 48.0
        assert report.latency == 6.0

    def test_reduce_max(self, env4):
        value, _ = env4.reduce_to_leader(
            (0, 0),
            1,
            value_of=lambda m: float(m[0] * 10 + m[1]),
            combine=max,
        )
        assert value == 11.0


class TestBarrier:
    def test_barrier_cost_symmetric(self, env4):
        report = env4.barrier((0, 0), 1)
        # up: 3 tokens at hops 1,1,2 (energy 8); down: same paths back
        assert report.energy == 16.0
        assert report.messages == 6

    def test_barrier_latency_round_trip(self, env4):
        report = env4.barrier((0, 0), 2)
        # farthest member of the 4x4 group is 6 hops out: 6 up + 6 down
        assert report.latency == 12.0

    def test_barrier_leaves_inboxes_clean(self, env4):
        env4.barrier((0, 0), 1)
        for member in env4.groups.members((0, 0), 1):
            assert env4.pending(member) == 0

    def test_barrier_level_zero_trivial(self, env4):
        report = env4.barrier((2, 2), 0)
        assert report.energy == 0.0
        assert report.messages == 0
