"""Coverage of secondary paths: drop callbacks, latency-objective mapping,
medium detach, report adapters, and error guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import GradientField, TopographicQueryApp
from repro.core import OrientedGrid, VirtualArchitecture
from repro.core.mapping import exhaustive_best_mapping, recursive_quadrant_mapping
from repro.core.groups import HierarchicalGroups
from repro.core.taskgraph import build_quadtree
from repro.runtime import deploy
from repro.runtime.routing import TransportEnvelope, TransportProcess
from repro.simulator import Simulator, WirelessMedium

from conftest import make_deployment


class TestExhaustiveLatencyObjective:
    def test_latency_objective_on_2x2(self):
        grid = OrientedGrid(2)
        tg = build_quadtree(grid)
        best = exhaustive_best_mapping(tg, grid, objective="latency")
        _, latency = best.communication_cost()
        paper = recursive_quadrant_mapping(tg, HierarchicalGroups(grid))
        _, paper_latency = paper.communication_cost()
        assert latency <= paper_latency


class TestExecutionToReport:
    def test_custom_executor_report(self):
        va = VirtualArchitecture(8)
        app = TopographicQueryApp(va, GradientField(), threshold=0.5)
        raw = va.execute(app.aggregation)
        report = app.execution_to_report(raw)
        assert report.correct


class TestTransportDropCallback:
    def test_on_drop_invoked(self):
        net = make_deployment(side=4, seed=7)
        stack = deploy(net)
        drops = []

        sim = Simulator()
        medium = WirelessMedium(sim, net)
        proc = TransportProcess(
            stack.topology,
            stack.binding,
            on_drop=lambda p, env, reason: drops.append(reason),
        )
        proc.sim = sim
        proc.medium = medium
        # install on a node at the west edge and ask it to go further west
        west_node = next(
            nid for nid in net.node_ids() if net.cell_of(nid) == (0, 0)
        )
        proc.node_id = west_node
        proc.originate((-1, 0), inner="x")  # off-grid: no routing entry
        assert proc.drops == 1
        assert "no routing entry" in drops[0]

    def test_envelope_defaults(self):
        env = TransportEnvelope(src_cell=(0, 0), dst_cell=(1, 1), inner="p")
        assert env.hops == 0
        assert env.size_units == 1.0


class TestMediumDetach:
    def test_detach_stops_delivery(self):
        net = make_deployment(side=4, seed=7)
        sim = Simulator()
        medium = WirelessMedium(sim, net)
        got = []
        src = net.node_ids()[0]
        nbr = net.neighbors(src)[0]
        medium.attach(nbr, lambda pkt: got.append(pkt))
        medium.unicast(src, nbr, "k", None)
        sim.run()
        assert len(got) == 1
        medium.detach(nbr)
        medium.unicast(src, nbr, "k", None)
        sim.run()
        assert len(got) == 1  # energy still drawn, handler gone

    def test_attach_unknown_node_rejected(self):
        net = make_deployment(side=4, seed=7)
        medium = WirelessMedium(Simulator(), net)
        with pytest.raises(KeyError):
            medium.attach(10**9, lambda pkt: None)


class TestStackGuards:
    def test_run_application_caps_events(self):
        from repro.core import CountAggregation

        net = make_deployment(side=4, seed=7)
        stack = deploy(net)
        va = VirtualArchitecture(4)
        spec = va.synthesize(CountAggregation(lambda c: True))
        # tiny budget: the run is cut off but returns cleanly
        run = stack.run_application(spec, max_events=5)
        assert run.exfiltrated == {}

    def test_setup_report_properties(self):
        net = make_deployment(side=4, seed=7)
        stack = deploy(net)
        assert stack.setup.total_energy == pytest.approx(
            stack.setup.emulation.energy + stack.setup.binding.energy
        )
