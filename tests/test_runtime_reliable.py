"""Unit tests for the reliable (hop-by-hop ARQ) transport mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    count_regions,
    feature_matrix_aggregation,
    random_feature_matrix,
)
from repro.core import CountAggregation, VirtualArchitecture
from repro.runtime import deploy

from conftest import make_deployment


@pytest.fixture(scope="module")
def stack4():
    net = make_deployment(side=4, seed=3)
    return net, deploy(net)


class TestReliableTransport:
    def test_lossless_reliable_equals_unreliable_result(self, stack4):
        _, stack = stack4
        va = VirtualArchitecture(4)
        agg = CountAggregation(lambda c: True)
        plain = stack.run_application(va.synthesize(agg))
        reliable = stack.run_application(va.synthesize(agg), reliable=True)
        assert plain.root_payload == reliable.root_payload == 16

    def test_reliable_adds_ack_traffic(self, stack4):
        _, stack = stack4
        va = VirtualArchitecture(4)
        agg = CountAggregation(lambda c: True)
        plain = stack.run_application(va.synthesize(agg))
        reliable = stack.run_application(va.synthesize(agg), reliable=True)
        # one ack per forwarded hop: transmissions roughly double
        assert reliable.transmissions > 1.5 * plain.transmissions

    @pytest.mark.parametrize("loss", [0.05, 0.15, 0.3])
    def test_completes_correctly_under_loss(self, stack4, loss):
        _, stack = stack4
        va = VirtualArchitecture(4)
        feat = random_feature_matrix(4, 0.5, rng=4)
        truth = count_regions(feat)
        completed = 0
        for i in range(4):
            run = stack.run_application(
                va.synthesize(feature_matrix_aggregation(feat)),
                loss_rate=loss,
                rng=np.random.default_rng(1000 + i),
                reliable=True,
                max_retries=6,
            )
            if run.exfiltrated:
                assert run.root_payload.total_regions() == truth
                completed += 1
        assert completed >= 3  # ARQ nearly always completes

    def test_unreliable_stalls_where_reliable_succeeds(self, stack4):
        _, stack = stack4
        va = VirtualArchitecture(4)
        agg = CountAggregation(lambda c: True)
        rng_seed = 5
        plain = stack.run_application(
            va.synthesize(agg), loss_rate=0.15, rng=np.random.default_rng(rng_seed)
        )
        reliable = stack.run_application(
            va.synthesize(agg),
            loss_rate=0.15,
            rng=np.random.default_rng(rng_seed),
            reliable=True,
        )
        assert not plain.exfiltrated  # the stall E8 documents
        assert reliable.root_payload == 16

    def test_retry_budget_exhaustion_drops(self, stack4):
        _, stack = stack4
        va = VirtualArchitecture(4)
        agg = CountAggregation(lambda c: True)
        # absurd loss: even ARQ gives up within its retry budget,
        # recording drops rather than looping forever
        run = stack.run_application(
            va.synthesize(agg),
            loss_rate=0.9,
            rng=np.random.default_rng(2),
            reliable=True,
            max_retries=2,
        )
        assert run.drops > 0
        assert not run.exfiltrated

    def test_duplicate_suppression(self, stack4):
        # lost acks cause retransmissions; dedup keeps the merge exact
        _, stack = stack4
        va = VirtualArchitecture(4)
        feat = random_feature_matrix(4, 0.6, rng=6)
        truth = count_regions(feat)
        run = stack.run_application(
            va.synthesize(feature_matrix_aggregation(feat)),
            loss_rate=0.25,
            rng=np.random.default_rng(7),
            reliable=True,
            max_retries=8,
        )
        if run.exfiltrated:
            # duplicates would double-merge a child and corrupt the count
            assert run.root_payload.total_regions() == truth
