"""Unit tests for runtime maintenance: churn, recovery, leader rotation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CountAggregation, VirtualArchitecture
from repro.runtime import (
    deploy,
    kill_leaders,
    kill_random_nodes,
    recover,
    rotate_leaders,
)

from conftest import make_deployment


class TestFailureInjection:
    def test_kill_random_fraction(self):
        net = make_deployment(side=4, n_random=200, seed=3)
        n_alive = len(net.alive_ids())
        killed = kill_random_nodes(net, 0.25, rng=1)
        assert len(killed) == round(0.25 * n_alive)
        assert all(not net.node(k).alive for k in killed)

    def test_kill_respects_spare(self):
        net = make_deployment(side=4, n_random=100, seed=3)
        spare = net.node_ids()[:10]
        killed = kill_random_nodes(net, 1.0, rng=1, spare=spare)
        assert not set(killed) & set(spare)
        assert all(net.node(s).alive for s in spare)

    def test_kill_fraction_validation(self):
        net = make_deployment(side=4)
        with pytest.raises(ValueError):
            kill_random_nodes(net, 1.5)

    def test_kill_leaders(self):
        net = make_deployment(side=4, seed=5)
        stack = deploy(net)
        killed = kill_leaders(net, stack.binding, cells=[(0, 0), (1, 1)])
        assert len(killed) == 2
        assert not net.node(stack.binding.leaders[(0, 0)]).alive

    def test_kill_all_leaders(self):
        net = make_deployment(side=4, seed=5)
        stack = deploy(net)
        killed = kill_leaders(net, stack.binding)
        assert len(killed) == 16


class TestRecovery:
    def test_recover_after_leader_death(self):
        net = make_deployment(side=4, n_random=200, seed=7)
        stack = deploy(net)
        kill_leaders(net, stack.binding, cells=[(2, 2)])
        report = recover(net, previous=stack)
        assert report.recovered
        assert report.reelected_cells >= 1
        new_leader = report.stack.binding.leaders[(2, 2)]
        assert net.node(new_leader).alive

    def test_recovered_stack_runs_application(self):
        net = make_deployment(side=4, n_random=200, seed=7)
        stack = deploy(net)
        kill_leaders(net, stack.binding)
        report = recover(net, previous=stack)
        assert report.recovered
        va = VirtualArchitecture(4)
        run = report.stack.run_application(
            va.synthesize(CountAggregation(lambda c: True))
        )
        assert run.root_payload == 16

    def test_recovery_fails_when_cell_emptied(self):
        net = make_deployment(side=4, n_random=0, seed=7)  # one node per cell
        stack = deploy(net)
        kill_leaders(net, stack.binding, cells=[(3, 3)])
        report = recover(net, previous=stack)
        assert not report.recovered
        assert any("cells" in p for p in report.precondition_problems)
        assert report.stack is None

    def test_recovery_counts_setup_costs(self):
        net = make_deployment(side=4, seed=7)
        report = recover(net)
        assert report.recovered
        assert report.setup_messages > 0
        assert report.setup_energy > 0


class TestLeaderRotation:
    def test_rotation_prefers_full_batteries(self):
        net = make_deployment(side=4, n_random=200, seed=11)
        stack = deploy(net)
        # drain the current leaders heavily
        for leader in stack.binding.leaders.values():
            net.node(leader).draw(1000.0)
        rotated = rotate_leaders(net)
        moved = sum(
            1
            for cell in net.cells.cells()
            if rotated.binding.leaders[cell] != stack.binding.leaders[cell]
        )
        assert moved >= 12  # nearly all cells rotate away from drained nodes

    def test_rotation_balances_drain_over_rounds(self):
        net = make_deployment(side=4, n_random=150, seed=13)
        va = VirtualArchitecture(4)
        stack = deploy(net)
        leaders_seen = {cell: set() for cell in net.cells.cells()}
        for _ in range(3):
            for cell, leader in stack.binding.leaders.items():
                leaders_seen[cell].add(leader)
            run = stack.run_application(
                va.synthesize(CountAggregation(lambda c: True))
            )
            assert run.root_payload == 16
            # emulate heavy leader drain, then rotate
            for leader in stack.binding.leaders.values():
                net.node(leader).draw(500.0)
            stack = rotate_leaders(net)
        multi_leader_cells = [
            cell for cell, seen in leaders_seen.items() if len(seen) > 1
        ]
        assert len(multi_leader_cells) >= 8
