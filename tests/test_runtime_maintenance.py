"""Unit tests for runtime maintenance: churn, recovery, leader rotation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import CountAggregation, VirtualArchitecture
from repro.runtime import (
    deploy,
    kill_leaders,
    kill_random_nodes,
    recover,
    rotate_leaders,
)
from repro.sweep import SweepSpec, run_sweep

from conftest import make_deployment


class TestFailureInjection:
    def test_kill_random_fraction(self):
        net = make_deployment(side=4, n_random=200, seed=3)
        n_alive = len(net.alive_ids())
        killed = kill_random_nodes(net, 0.25, rng=1)
        assert len(killed) == math.floor(0.25 * n_alive + 0.5)
        assert all(not net.node(k).alive for k in killed)

    @pytest.mark.parametrize(
        "fraction,n,expected",
        [
            # round-half-up at every .5 boundary — the seed used round(),
            # whose banker's rounding gave 1.5 -> 2 but 2.5 -> 2
            (0.15, 10, 2),
            (0.25, 10, 3),
            (0.35, 10, 4),
            (0.5, 5, 3),
            (0.0, 10, 0),
            (1.0, 10, 10),
        ],
    )
    def test_kill_count_rounds_half_up(self, fraction, n, expected):
        net = make_deployment(side=4, n_random=200, seed=3)
        spare = net.alive_ids()[n:]  # leave exactly n candidates
        killed = kill_random_nodes(net, fraction, rng=1, spare=spare)
        assert len(killed) == expected

    def test_kill_count_monotonic_in_fraction(self):
        counts = []
        for fraction in np.linspace(0.0, 1.0, 41):
            net = make_deployment(side=4, n_random=200, seed=3)
            spare = net.alive_ids()[10:]
            counts.append(len(kill_random_nodes(net, float(fraction), rng=1,
                                                spare=spare)))
        assert counts == sorted(counts), (
            f"victim count not monotonic in fraction: {counts}"
        )

    def test_kill_respects_spare(self):
        net = make_deployment(side=4, n_random=100, seed=3)
        spare = net.node_ids()[:10]
        killed = kill_random_nodes(net, 1.0, rng=1, spare=spare)
        assert not set(killed) & set(spare)
        assert all(net.node(s).alive for s in spare)

    def test_kill_fraction_validation(self):
        net = make_deployment(side=4)
        with pytest.raises(ValueError):
            kill_random_nodes(net, 1.5)

    def test_kill_leaders(self):
        net = make_deployment(side=4, seed=5)
        stack = deploy(net)
        killed = kill_leaders(net, stack.binding, cells=[(0, 0), (1, 1)])
        assert len(killed) == 2
        assert not net.node(stack.binding.leaders[(0, 0)]).alive

    def test_kill_all_leaders(self):
        net = make_deployment(side=4, seed=5)
        stack = deploy(net)
        killed = kill_leaders(net, stack.binding)
        assert len(killed) == 16


class TestRecovery:
    def test_recover_after_leader_death(self):
        net = make_deployment(side=4, n_random=200, seed=7)
        stack = deploy(net)
        kill_leaders(net, stack.binding, cells=[(2, 2)])
        report = recover(net, previous=stack)
        assert report.recovered
        assert report.reelected_cells >= 1
        new_leader = report.stack.binding.leaders[(2, 2)]
        assert net.node(new_leader).alive

    def test_recovered_stack_runs_application(self):
        net = make_deployment(side=4, n_random=200, seed=7)
        stack = deploy(net)
        kill_leaders(net, stack.binding)
        report = recover(net, previous=stack)
        assert report.recovered
        va = VirtualArchitecture(4)
        run = report.stack.run_application(
            va.synthesize(CountAggregation(lambda c: True))
        )
        assert run.root_payload == 16

    def test_recovery_fails_when_cell_emptied(self):
        net = make_deployment(side=4, n_random=0, seed=7)  # one node per cell
        stack = deploy(net)
        kill_leaders(net, stack.binding, cells=[(3, 3)])
        report = recover(net, previous=stack)
        assert not report.recovered
        assert any("cells" in p for p in report.precondition_problems)
        assert report.stack is None

    def test_recovery_counts_setup_costs(self):
        net = make_deployment(side=4, seed=7)
        report = recover(net)
        assert report.recovered
        assert report.setup_messages > 0
        assert report.setup_energy > 0


class TestLeaderRotation:
    def test_rotation_prefers_full_batteries(self):
        net = make_deployment(side=4, n_random=200, seed=11)
        stack = deploy(net)
        # drain the current leaders heavily
        for leader in stack.binding.leaders.values():
            net.node(leader).draw(1000.0)
        rotated = rotate_leaders(net)
        moved = sum(
            1
            for cell in net.cells.cells()
            if rotated.binding.leaders[cell] != stack.binding.leaders[cell]
        )
        assert moved >= 12  # nearly all cells rotate away from drained nodes

    def test_rotation_balances_drain_over_rounds(self):
        net = make_deployment(side=4, n_random=150, seed=13)
        va = VirtualArchitecture(4)
        stack = deploy(net)
        leaders_seen = {cell: set() for cell in net.cells.cells()}
        for _ in range(3):
            for cell, leader in stack.binding.leaders.items():
                leaders_seen[cell].add(leader)
            run = stack.run_application(
                va.synthesize(CountAggregation(lambda c: True))
            )
            assert run.root_payload == 16
            # emulate heavy leader drain, then rotate
            for leader in stack.binding.leaders.values():
                net.node(leader).draw(500.0)
            stack = rotate_leaders(net)
        multi_leader_cells = [
            cell for cell, seen in leaders_seen.items() if len(seen) > 1
        ]
        assert len(multi_leader_cells) >= 8


class TestChurnUnderSweep:
    """Drive kill_leaders / recover / rotate_leaders through the churn
    workload across a sweep grid, so the maintenance paths are exercised
    with many parameter regimes and independent derived seeds."""

    def sweep(self, grid, fixed=None, replicates=1):
        spec = SweepSpec(
            name="maint",
            workload="churn",
            grid=grid,
            fixed={"side": 4, "n_random": 150, **(fixed or {})},
            replicates=replicates,
        )
        records = run_sweep(spec, workers=1)
        assert all(r["status"] == "ok" for r in records), [
            r["error"] for r in records if r["status"] != "ok"
        ]
        return records

    def test_churn_grid_recovers_and_reelects(self):
        records = self.sweep({"churn": [0.0, 0.25, 0.5, 1.0]})
        by_churn = {r["params"]["churn"]: r["metrics"] for r in records}
        for churn, metrics in by_churn.items():
            assert metrics["killed_leaders"] == round(churn * 16)
            assert metrics["recovered"] == 1.0
            # every emptied leadership slot was re-elected, and the
            # recovered stack still counts all 16 cells
            assert metrics["reelected_cells"] >= metrics["killed_leaders"]
            assert metrics["app_count"] == 16.0
        assert by_churn[1.0]["reelected_cells"] == 16.0

    def test_node_churn_composes_with_leader_churn(self):
        records = self.sweep(
            {"node_churn": [0.0, 0.1, 0.2]}, fixed={"churn": 0.25},
        )
        for r in records:
            metrics = r["metrics"]
            assert metrics["killed_leaders"] == 4.0
            expected_extra = r["params"]["node_churn"] > 0
            assert (metrics["killed_random"] > 0) == expected_extra
            assert metrics["recovered"] == 1.0
            assert metrics["app_count"] == 16.0

    def test_rotation_after_recovery(self):
        records = self.sweep(
            {"rotate": [False, True]}, fixed={"churn": 0.5}, replicates=2,
        )
        for r in records:
            metrics = r["metrics"]
            assert metrics["recovered"] == 1.0
            assert metrics["app_count"] == 16.0
            if r["params"]["rotate"]:
                assert "rotated_cells" in metrics
            else:
                assert "rotated_cells" not in metrics

    def test_unrecoverable_deployment_is_a_measured_outcome(self):
        # one node per cell: killing any leader empties its cell, so
        # recovery must report failure (not raise) and skip the app run
        records = self.sweep(
            {"churn": [0.25, 1.0]}, fixed={"n_random": 0},
        )
        for r in records:
            metrics = r["metrics"]
            assert metrics["recovered"] == 0.0
            assert "app_count" not in metrics

    def test_churn_workload_is_seed_deterministic(self):
        a = self.sweep({"churn": [0.5]}, fixed={"node_churn": 0.1})
        b = self.sweep({"churn": [0.5]}, fixed={"node_churn": 0.1})
        assert [r["fingerprint"] for r in a] == [r["fingerprint"] for r in b]

    def test_churn_rejects_out_of_range_fraction(self):
        spec = SweepSpec(
            name="bad", workload="churn", grid={"churn": [1.5]},
            fixed={"side": 4, "n_random": 150},
        )
        records = run_sweep(spec, workers=1)
        assert records[0]["status"] == "failed"
        assert "churn must be in [0, 1]" in records[0]["error"]
