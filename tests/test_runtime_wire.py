"""Conformance suite for the transport wire format (`repro.runtime.wire`).

Three layers, in increasing integration depth:

1. **Golden vectors** — byte-for-byte frames checked into
   ``tests/data/wire_vectors.json``.  Any encoding change trips these;
   the fix is a *conscious* ``WIRE_VERSION`` bump plus a vector
   regeneration (``python tests/test_runtime_wire.py --regen``), never a
   silent drift.
2. **Properties** (hypothesis) — encode∘decode is the identity for
   arbitrary cells/uids/payloads, and truncated or corrupted buffers
   raise :class:`WireDecodeError` rather than mis-decoding.
3. **Differential** — seeded end-to-end deployed runs (counting app,
   regions aggregation, churn workload, query round) produce identical
   fingerprints and transport stats with ``wire_format`` on and off, in
   process and across sweep shards.
"""

from __future__ import annotations

import ast
import json
import os
import sys

import numpy as np
import pytest

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - baked into the test image
    HAVE_HYPOTHESIS = False

from repro.core import CountAggregation, VirtualArchitecture
from repro.core.program import Message
from repro.runtime import deploy, run_deployed_query, wire
from repro.runtime.routing import TransportEnvelope

from conftest import make_deployment

VECTORS_PATH = os.path.join(os.path.dirname(__file__), "data", "wire_vectors.json")

BUMP_HINT = (
    "the wire encoding changed: if intentional, bump WIRE_VERSION in "
    "src/repro/runtime/wire.py and regenerate the golden vectors with "
    "`python tests/test_runtime_wire.py --regen`"
)


# ---------------------------------------------------------------------------
# golden vectors
# ---------------------------------------------------------------------------

#: The canonical conformance cases.  Only payloads with order-stable,
#: version-independent encodings belong here (no pickle fallback).
def vector_cases():
    return [
        (
            "minimal-no-uid",
            TransportEnvelope(src_cell=(0, 0), dst_cell=(0, 0), inner=None),
        ),
        (
            "scalar-with-uid",
            TransportEnvelope(
                src_cell=(1, 2), dst_cell=(3, 0), inner=7,
                size_units=1.0, hops=2, uid=(7, 42),
            ),
        ),
        (
            "query-request-tuple",
            TransportEnvelope(
                src_cell=(5, 5), dst_cell=(0, 7), inner=("qreq", (5, 5)),
                size_units=1.0, hops=0, uid=(12, 0),
            ),
        ),
        (
            "unicode-string",
            TransportEnvelope(
                src_cell=(0, 1), dst_cell=(1, 0), inner="héllo ✓ wire",
                size_units=2.5,
            ),
        ),
        (
            "big-int-and-negative",
            TransportEnvelope(
                src_cell=(0, 0), dst_cell=(15, 15),
                inner=[2**80, -3, 0, -(2**70)],
            ),
        ),
        (
            "nested-structures",
            TransportEnvelope(
                src_cell=(8, 8), dst_cell=(9, 9),
                inner={"areas": [1, 2, 3], "meta": (True, False, None),
                       "tags": {"a", "b"}, "raw": b"\x00\xff"},
                size_units=4.0, hops=11, uid=(3, 2**40),
            ),
        ),
        (
            "extreme-header-fields",
            TransportEnvelope(
                src_cell=(65535, 0), dst_cell=(0, 65535), inner=0.125,
                size_units=1e-9, hops=65535, uid=(2**32 - 1, 2**64 - 1),
            ),
        ),
        (
            "message-mgraph",
            TransportEnvelope(
                src_cell=(2, 2), dst_cell=(0, 0),
                inner=Message(
                    kind="mGraph", sender=(2, 2), payload=4,
                    level=1, size_units=1.0,
                ),
                size_units=1.0, hops=3, uid=(17, 5),
            ),
        ),
        (
            "message-nested-payload",
            TransportEnvelope(
                src_cell=(0, 3), dst_cell=(3, 3),
                inner=Message(
                    kind="summary", sender=(0, 3),
                    payload={"count": 12, "areas": (4.5, 7.0)},
                    level=2, size_units=3.25,
                ),
            ),
        ),
        ("ack-small", (5, 9)),
        ("ack-extreme", (2**32 - 1, 2**64 - 1)),
    ]


def _encode_case(obj):
    if isinstance(obj, TransportEnvelope):
        return wire.encode_envelope(obj)
    return wire.encode_ack(obj)


def _case_to_json(name, obj):
    if isinstance(obj, TransportEnvelope):
        doc = {
            "name": name,
            "kind": "envelope",
            "src_cell": list(obj.src_cell),
            "dst_cell": list(obj.dst_cell),
            "hops": obj.hops,
            "size_units": obj.size_units,
            "uid": list(obj.uid) if obj.uid else None,
        }
        if isinstance(obj.inner, Message):
            doc["message"] = {
                "kind": obj.inner.kind,
                "sender": list(obj.inner.sender),
                "payload": repr(obj.inner.payload),
                "level": obj.inner.level,
                "size_units": obj.inner.size_units,
            }
        else:
            doc["inner"] = repr(obj.inner)
    else:
        doc = {"name": name, "kind": "ack", "uid": list(obj)}
    doc["hex"] = _encode_case(obj).hex()
    return doc


def _case_from_json(doc):
    if doc["kind"] == "ack":
        return tuple(doc["uid"])
    if "message" in doc:
        m = doc["message"]
        inner = Message(
            kind=m["kind"],
            sender=tuple(m["sender"]),
            payload=ast.literal_eval(m["payload"]),
            level=m["level"],
            size_units=m["size_units"],
        )
    else:
        inner = ast.literal_eval(doc["inner"])
    return TransportEnvelope(
        src_cell=tuple(doc["src_cell"]),
        dst_cell=tuple(doc["dst_cell"]),
        inner=inner,
        size_units=doc["size_units"],
        hops=doc["hops"],
        uid=tuple(doc["uid"]) if doc["uid"] else None,
    )


def regenerate_vectors() -> None:
    doc = {
        "wire_version": wire.WIRE_VERSION,
        "comment": "Golden conformance vectors; regenerate only alongside "
        "a conscious WIRE_VERSION bump "
        "(python tests/test_runtime_wire.py --regen).",
        "vectors": [_case_to_json(name, obj) for name, obj in vector_cases()],
    }
    with open(VECTORS_PATH, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def load_vectors():
    # Tolerate a missing file at import time so `--regen` can bootstrap;
    # the coverage tests below fail loudly if the vectors are absent.
    if not os.path.exists(VECTORS_PATH):
        return {"wire_version": None, "vectors": []}
    with open(VECTORS_PATH) as fh:
        return json.load(fh)


class TestGoldenVectors:
    def test_vectors_match_wire_version(self):
        assert load_vectors()["wire_version"] == wire.WIRE_VERSION, BUMP_HINT

    def test_every_case_has_a_committed_vector(self):
        committed = {v["name"] for v in load_vectors()["vectors"]}
        expected = {name for name, _ in vector_cases()}
        assert committed == expected, (
            f"vector cases and committed vectors diverged "
            f"(missing: {sorted(expected - committed)}, "
            f"stale: {sorted(committed - expected)}); {BUMP_HINT}"
        )

    @pytest.mark.parametrize(
        "doc", load_vectors()["vectors"], ids=lambda d: d["name"]
    )
    def test_encode_is_byte_stable(self, doc):
        obj = _case_from_json(doc)
        got = _encode_case(obj).hex()
        assert got == doc["hex"], (
            f"golden vector {doc['name']!r} no longer encodes to its "
            f"committed bytes; {BUMP_HINT}"
        )

    @pytest.mark.parametrize(
        "doc", load_vectors()["vectors"], ids=lambda d: d["name"]
    )
    def test_committed_bytes_decode_to_the_object(self, doc):
        expected = _case_from_json(doc)
        raw = bytes.fromhex(doc["hex"])
        if doc["kind"] == "ack":
            assert wire.decode_ack(raw) == expected, BUMP_HINT
        else:
            decoded = wire.decode_envelope(raw)
            assert decoded == expected, BUMP_HINT
            # round-trip through re-encode pins types, not just equality
            assert wire.encode_envelope(decoded).hex() == doc["hex"], BUMP_HINT


# ---------------------------------------------------------------------------
# decode hardening (deterministic)
# ---------------------------------------------------------------------------


class TestDecodeHardening:
    def frame(self):
        return wire.encode_envelope(
            TransportEnvelope((1, 2), (3, 4), inner=("x", 9), uid=(5, 6))
        )

    def test_every_truncation_raises(self):
        frame = self.frame()
        for cut in range(len(frame)):
            with pytest.raises(wire.WireDecodeError):
                wire.decode_envelope(frame[:cut])

    def test_every_single_byte_corruption_raises(self):
        frame = self.frame()
        for i in range(len(frame)):
            corrupt = bytearray(frame)
            corrupt[i] ^= 0x41
            with pytest.raises(wire.WireDecodeError):
                wire.decode_envelope(bytes(corrupt))

    def test_trailing_garbage_raises(self):
        with pytest.raises(wire.WireDecodeError):
            wire.decode_envelope(self.frame() + b"\x00")

    def test_unknown_version_raises_with_both_versions(self):
        frame = bytearray(self.frame())
        frame[2] = wire.WIRE_VERSION + 1
        with pytest.raises(wire.WireDecodeError, match="version"):
            wire.decode_envelope(bytes(frame))

    def test_bad_magic_raises(self):
        frame = bytearray(self.frame())
        frame[0:2] = b"ZZ"
        with pytest.raises(wire.WireDecodeError, match="magic"):
            wire.decode_envelope(bytes(frame))

    def test_ack_and_envelope_are_not_confusable(self):
        ack = wire.encode_ack((1, 2))
        env = self.frame()
        with pytest.raises(wire.WireDecodeError):
            wire.decode_envelope(ack)
        with pytest.raises(wire.WireDecodeError):
            wire.decode_ack(env)

    def test_non_bytes_input_raises(self):
        with pytest.raises(wire.WireDecodeError):
            wire.decode_envelope("not bytes")  # type: ignore[arg-type]

    def test_out_of_range_header_fields_raise_on_encode(self):
        for bad in (
            TransportEnvelope((-1, 0), (0, 0), inner=None),
            TransportEnvelope((0, 0), (70000, 0), inner=None),
            TransportEnvelope((0, 0), (0, 0), inner=None, hops=-1),
            TransportEnvelope((0, 0), (0, 0), inner=None, uid=(-1, 0)),
            TransportEnvelope((0, 0), (0, 0), inner=None, uid=(0, 2**64)),
        ):
            with pytest.raises(wire.WireEncodeError):
                wire.encode_envelope(bad)


# ---------------------------------------------------------------------------
# payload registry + fallback
# ---------------------------------------------------------------------------


class _Unregistered:
    """Picklable but unknown to the registry: exercises the fallback."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return type(other) is _Unregistered and other.value == self.value

    def __hash__(self):
        return hash(self.value)


class TestPayloadRegistry:
    def test_unregistered_type_falls_back_to_pickle(self):
        env = TransportEnvelope((0, 0), (1, 1), inner=_Unregistered(13))
        tag, _raw = wire.encode_payload(env.inner)
        assert tag == wire.PAYLOAD_PICKLE
        assert wire.decode_envelope(wire.encode_envelope(env)) == env

    def test_message_with_unencodable_payload_falls_back_whole(self):
        message = Message(kind="k", sender=(0, 0), payload=_Unregistered(4))
        tag, _raw = wire.encode_payload(message)
        assert tag == wire.PAYLOAD_PICKLE
        env = TransportEnvelope((0, 0), (1, 1), inner=message)
        assert wire.decode_envelope(wire.encode_envelope(env)) == env

    def test_unpicklable_payload_raises_encode_error(self):
        with pytest.raises(wire.WireEncodeError):
            wire.encode_payload(lambda: None)

    def test_registered_codec_wins_over_pickle(self):
        tag = wire.USER_TAG_FIRST
        wire.register_payload_codec(
            tag,
            _Unregistered,
            lambda obj: wire.encode_value(obj.value),
            lambda raw: _Unregistered(wire.decode_value(raw)),
        )
        try:
            got_tag, raw = wire.encode_payload(_Unregistered(99))
            assert got_tag == tag
            assert wire.decode_payload(got_tag, raw) == _Unregistered(99)
        finally:
            wire.unregister_payload_codec(tag)

    def test_tag_collisions_and_bad_tags_rejected(self):
        tag = wire.USER_TAG_FIRST + 1
        wire.register_payload_codec(tag, _Unregistered, repr, ast.literal_eval)
        try:
            with pytest.raises(ValueError, match="already registered"):
                wire.register_payload_codec(tag, dict, repr, ast.literal_eval)
            with pytest.raises(ValueError, match="already registered"):
                wire.register_payload_codec(
                    tag + 1, _Unregistered, repr, ast.literal_eval
                )
        finally:
            wire.unregister_payload_codec(tag)
        with pytest.raises(ValueError, match="user payload tags"):
            wire.register_payload_codec(wire.PAYLOAD_VALUE, set, repr, ast.literal_eval)

    def test_unknown_payload_tag_raises_on_decode(self):
        with pytest.raises(wire.WireDecodeError, match="payload tag"):
            wire.decode_payload(wire.USER_TAG_LAST, b"")


# ---------------------------------------------------------------------------
# properties (hypothesis)
# ---------------------------------------------------------------------------

if HAVE_HYPOTHESIS:
    _scalars = (
        st.none()
        | st.booleans()
        | st.integers()
        | st.floats(allow_nan=False)
        | st.text(max_size=24)
        | st.binary(max_size=24)
    )
    _values = st.recursive(
        _scalars,
        lambda children: (
            st.lists(children, max_size=4)
            | st.lists(children, max_size=4).map(tuple)
            | st.dictionaries(st.text(max_size=8), children, max_size=4)
            | st.sets(st.integers(), max_size=4)
            | st.frozensets(st.text(max_size=4), max_size=4)
        ),
        max_leaves=12,
    )
    _cells = st.tuples(st.integers(0, 65535), st.integers(0, 65535))
    _envelopes = st.builds(
        TransportEnvelope,
        src_cell=_cells,
        dst_cell=_cells,
        inner=_values,
        size_units=st.floats(allow_nan=False),
        hops=st.integers(0, 65535),
        uid=st.none() | st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 2**64 - 1)),
    )


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestRoundTripProperties:
    @given(envelope=_envelopes if HAVE_HYPOTHESIS else st.nothing())
    @settings(max_examples=120, deadline=None)
    def test_encode_decode_is_identity(self, envelope):
        frame = wire.encode_envelope(envelope)
        decoded = wire.decode_envelope(frame)
        assert decoded == envelope
        # byte-identical re-encode pins types (1 vs True, () vs []):
        # different tags would produce different bytes
        assert wire.encode_envelope(decoded) == frame

    @given(
        envelope=_envelopes if HAVE_HYPOTHESIS else st.nothing(),
        cut=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_truncation_never_misdecodes(self, envelope, cut):
        frame = wire.encode_envelope(envelope)
        with pytest.raises(wire.WireDecodeError):
            wire.decode_envelope(frame[: cut % len(frame)])

    @given(
        envelope=_envelopes if HAVE_HYPOTHESIS else st.nothing(),
        index=st.integers(min_value=0, max_value=10_000),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_byte_corruption_never_misdecodes(self, envelope, index, flip):
        frame = bytearray(wire.encode_envelope(envelope))
        frame[index % len(frame)] ^= flip
        with pytest.raises(wire.WireDecodeError):
            wire.decode_envelope(bytes(frame))

    @given(
        uid=st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 2**64 - 1))
        if HAVE_HYPOTHESIS
        else st.nothing()
    )
    @settings(max_examples=40, deadline=None)
    def test_ack_round_trip(self, uid):
        assert wire.decode_ack(wire.encode_ack(uid)) == uid


# ---------------------------------------------------------------------------
# differential: end-to-end runs with and without the codec
# ---------------------------------------------------------------------------


def _deployed_fingerprint(result, medium_free=False):
    return (
        result.ledger.fingerprint(),
        result.transmissions,
        result.drops,
        result.delivered_envelopes,
        result.latency,
        result.events_processed,
    )


class TestDifferentialConformance:
    @pytest.fixture(scope="class")
    def stack4(self):
        net = make_deployment(side=4, n_random=100, seed=5)
        return net, deploy(net)

    def _count_round(self, stack, wire_format, loss=0.15):
        va = VirtualArchitecture(4)
        spec = va.synthesize(CountAggregation(lambda c: True))
        result = stack.run_application(
            spec,
            loss_rate=loss,
            rng=np.random.default_rng(11),
            reliable=True,
            max_retries=6,
            wire_format=wire_format,
        )
        return result

    def test_counting_round_identical_with_codec(self, stack4):
        _net, stack = stack4
        plain = self._count_round(stack, wire_format=False)
        wired = self._count_round(stack, wire_format=True)
        assert wired.root_payload == plain.root_payload == 16
        assert _deployed_fingerprint(wired) == _deployed_fingerprint(plain)

    def test_regions_aggregation_identical_with_codec(self, stack4):
        """RegionSummary payloads ride the documented pickle fallback; the
        deployed regions round must still be codec-invariant."""
        from repro.apps.regions import feature_matrix_aggregation

        _net, stack = stack4
        rng = np.random.default_rng(3)
        matrix = rng.random((4, 4)) > 0.5
        results = []
        for wire_format in (False, True):
            va = VirtualArchitecture(4)
            spec = va.synthesize(feature_matrix_aggregation(matrix))
            run = stack.run_application(
                spec,
                loss_rate=0.1,
                rng=np.random.default_rng(7),
                reliable=True,
                max_retries=6,
                wire_format=wire_format,
            )
            results.append((run.root_payload, _deployed_fingerprint(run)))
        assert results[0] == results[1]

    def test_query_round_identical_with_codec(self, stack4):
        _net, stack = stack4
        storage = {(0, 0): 3, (3, 3): 4, (0, 3): 5}
        outcomes = []
        for wire_format in (False, True):
            res = run_deployed_query(
                stack,
                storage,
                query_cell=(1, 1),
                reduce_fn=sum,
                loss_rate=0.1,
                rng=np.random.default_rng(13),
                reliable=True,
                wire_format=wire_format,
            )
            outcomes.append(
                (res.value, res.responses, res.latency, res.energy,
                 res.transmissions, res.drops)
            )
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] == 12

    def test_churn_workload_fingerprint_codec_invariant(self):
        from repro.sweep.workloads import WORKLOADS

        params = {"side": 4, "n_random": 100, "churn": 0.25, "rotate": True}
        plain = WORKLOADS["churn"]({**params, "wire": False}, seed=21)
        wired = WORKLOADS["churn"]({**params, "wire": True}, seed=21)
        assert plain.fingerprint == wired.fingerprint
        assert plain.metrics == wired.metrics

    def test_cross_shard_audit_matches_codec_on_vs_off(self):
        """One sweep, grid wire=[off, on], pinned seed, audit duplicates on
        a different shard: all four fingerprints must be the same digest."""
        from repro.sweep import SweepSpec, run_sweep

        spec = SweepSpec(
            name="wire-audit",
            workload="e1",
            grid={"wire": [False, True]},
            fixed={"seed": 9, "side": 4, "n_random": 100},
            audit_duplicates=2,
        )
        records = run_sweep(spec, out_path=None, workers=2, progress=None)
        assert len(records) == 4
        assert all(r["status"] == "ok" for r in records)
        fingerprints = {r["fingerprint"] for r in records}
        assert len(fingerprints) == 1, (
            f"codec-on vs codec-off runs diverged across shards: {records}"
        )
        assert sum(r["audit"] for r in records) == 2


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate_vectors()
        print(f"wrote {VECTORS_PATH}")
    else:
        sys.exit(pytest.main([__file__, "-v"]))
