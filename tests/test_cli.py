"""Unit tests for the ``python -m repro`` demo entry point."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_default_run_succeeds(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "MATCH" in out
        assert "labeled regions" in out

    def test_custom_side(self, capsys):
        assert main(["8"]) == 0
        out = capsys.readouterr().out
        assert "8x8" in out

    def test_custom_threshold(self, capsys):
        assert main(["8", "99.0"]) == 0  # no regions, still correct
        out = capsys.readouterr().out
        assert "0 regions" in out

    def test_rejects_non_power_of_two(self, capsys):
        assert main(["6"]) == 2
        err = capsys.readouterr().err
        assert "power of two" in err

    @pytest.mark.parametrize("side", ["0", "-1", "-4"])
    def test_rejects_non_positive_side(self, side, capsys):
        # 0 & -1 == 0 would slip a bare power-of-two check
        assert main([side]) == 2
        err = capsys.readouterr().err
        assert "power of two" in err
        assert f"got {side}" in err

    def test_sweep_subcommand_dispatches(self, capsys):
        assert main(["sweep", "--list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out
        assert "storm" in out

    def test_serve_subcommand_runs_demo(self, capsys):
        assert main(["serve", "4", "6"]) == 0
        out = capsys.readouterr().out
        assert "deployed stack" in out
        assert "served 6 queries (6 complete)" in out
        assert "engine fingerprint" in out

    def test_serve_demo_is_deterministic(self, capsys):
        assert main(["serve", "4", "6"]) == 0
        first = capsys.readouterr().out
        assert main(["serve", "4", "6"]) == 0
        assert capsys.readouterr().out == first
