"""Unit tests for repro.core.analysis: closed-form estimates vs execution."""

from __future__ import annotations

import pytest

from repro.core.analysis import (
    crossover_side,
    estimate_centralized,
    estimate_quadtree,
    group_communication_cost_table,
    quadtree_step_count,
)
from repro.core.cost_model import UniformCostModel
from repro.core.executor import execute_round
from repro.core.groups import HierarchicalGroups
from repro.core.network_model import OrientedGrid
from repro.core.synthesis import CountAggregation, synthesize_quadtree_program


class TestQuadtreeEstimate:
    @pytest.mark.parametrize("side", [2, 4, 8, 16, 32])
    def test_matches_execution_exactly(self, side):
        # The promise of the methodology: theoretical analysis corresponds
        # to measured performance.
        est = estimate_quadtree(side)
        groups = HierarchicalGroups(OrientedGrid(side))
        spec = synthesize_quadtree_program(groups, CountAggregation(lambda c: True))
        result = execute_round(spec, charge_compute=False)
        assert result.latency == pytest.approx(est.latency_steps)
        assert result.ledger.total == pytest.approx(est.total_energy)
        assert result.messages == est.messages
        assert result.hop_units == pytest.approx(est.hop_units)

    @pytest.mark.parametrize("side", [2, 4, 8, 16])
    def test_max_node_matches_execution(self, side):
        est = estimate_quadtree(side)
        groups = HierarchicalGroups(OrientedGrid(side))
        spec = synthesize_quadtree_program(groups, CountAggregation(lambda c: True))
        result = execute_round(spec, charge_compute=False)
        measured_max = max(result.ledger.per_node().values())
        assert measured_max == pytest.approx(est.max_node_energy)

    def test_step_count_formula(self):
        assert quadtree_step_count(2) == 2
        assert quadtree_step_count(4) == 6
        assert quadtree_step_count(8) == 14
        # O(sqrt(N)): steps / side -> 2
        assert quadtree_step_count(1024) / 1024 == pytest.approx(2.0, abs=0.01)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            estimate_quadtree(6)
        with pytest.raises(ValueError):
            quadtree_step_count(10)

    def test_custom_message_sizes(self):
        flat = estimate_quadtree(8)
        growing = estimate_quadtree(8, units_at_level=lambda k: float(2**k))
        assert growing.total_energy > flat.total_energy
        assert growing.latency_steps > flat.latency_steps


class TestCentralizedEstimate:
    def test_hop_units_corner_sink(self):
        # sum of manhattan distances to (0,0) on n x n = n^2 (n-1)
        est = estimate_centralized(4)
        assert est.hop_units == 16 * 3
        assert est.total_energy == 2 * est.hop_units

    def test_messages(self):
        assert estimate_centralized(4).messages == 15

    def test_serial_sink_latency(self):
        est = estimate_centralized(8)
        assert est.latency_steps == 63.0  # N-1 dominates the max route (14)

    def test_parallel_sink_latency(self):
        est = estimate_centralized(8, serial_sink=False)
        assert est.latency_steps == 14.0

    def test_center_sink_cheaper(self):
        corner = estimate_centralized(8, sink=(0, 0))
        center = estimate_centralized(8, sink=(4, 4))
        assert center.hop_units < corner.hop_units

    def test_funnel_hotspot(self):
        # (0,1) relays side*(side-1) - 1 = 11 messages plus its own tx
        est = estimate_centralized(4)
        assert est.max_node_energy == 23.0

    def test_hotspot_matches_measured(self):
        import numpy as np

        from repro.apps.centralized import run_centralized

        for side in (2, 4, 8):
            measured = max(
                run_centralized(np.zeros((side, side), dtype=bool))
                .ledger.per_node()
                .values()
            )
            assert estimate_centralized(side).max_node_energy == measured


class TestComparison:
    def test_designs_coincide_on_2x2(self):
        # on a 2x2 grid the quad-tree *is* direct collection at the corner
        q = estimate_quadtree(2)
        c = estimate_centralized(2)
        assert q.total_energy == c.total_energy

    @pytest.mark.parametrize("side", [4, 8, 16, 32, 64])
    def test_quadtree_wins_energy_beyond_2x2(self, side):
        q = estimate_quadtree(side)
        c = estimate_centralized(side)
        assert q.total_energy < c.total_energy

    def test_energy_ratio_grows_like_sqrt_n(self):
        r8 = (
            estimate_centralized(8).total_energy
            / estimate_quadtree(8).total_energy
        )
        r32 = (
            estimate_centralized(32).total_energy
            / estimate_quadtree(32).total_energy
        )
        # ratio ~ side/4, so growing by ~4x when side grows 4x
        assert r32 / r8 == pytest.approx(4.0, rel=0.15)

    def test_crossover_exists_and_small(self):
        side = crossover_side()
        assert side is not None
        assert side <= 4  # serial sink loses early

    def test_quadtree_hotspot_smaller(self):
        q = estimate_quadtree(16)
        c = estimate_centralized(16)
        assert q.max_node_energy < c.max_node_energy


class TestGroupCostTable:
    def test_table_levels(self):
        table = group_communication_cost_table(8)
        assert set(table) == {1, 2, 3}

    def test_max_hops_follows_block_diameter(self):
        # farthest follower of a 2^k block is 2*(2^k - 1) hops from the NW
        # corner; the cost is proportional to hop distance (Section 4.2)
        table = group_communication_cost_table(16)
        for level in (1, 2, 3, 4):
            assert table[level]["max_hops"] == 2 * (2**level - 1)

    def test_level1_values(self):
        table = group_communication_cost_table(4)
        assert table[1]["max_hops"] == 2.0
        assert table[1]["total_hops"] == 16.0  # 4 groups x (1+1+2)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            group_communication_cost_table(12)
