"""In-run fault injection and self-healing (``repro.runtime.faults``).

Covers the DESIGN.md §10 contract end to end: plan validation and
serialization, exact-virtual-time injection, the acceptance scenario
(mid-round leader kills under reliable transport still complete the
quad-tree query, with the failovers reported and the fingerprint
byte-reproducible), partition/restore, frame corruption (the
``rejected_frames`` bugfix with a single-byte-flipped golden vector),
graceful degradation without ARQ, and the healing machinery's corner
cases (deposed ex-leaders, route repair).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CountAggregation, VirtualArchitecture
from repro.core.program import Message
from repro.runtime import (
    CorruptedFrame,
    FaultEvent,
    FaultPlan,
    FaultReport,
    HealingConfig,
    deploy,
    kill_random_nodes,
    plan_leader_storm,
)
from repro.runtime import wire
from repro.runtime.routing import TRANSPORT_KIND, TransportEnvelope, TransportProcess
from repro.simulator.network import Packet

from conftest import make_deployment

SIDE = 4


def fresh_stack(seed: int = 7, n_random: int = 140):
    net = make_deployment(side=SIDE, n_random=n_random, seed=seed)
    return net, deploy(net)


def count_spec():
    return VirtualArchitecture(SIDE).synthesize(CountAggregation(lambda c: True))


def run_with_plan(plan, seed=7, loss=0.05, reliable=True, wire_format=False, **kw):
    net, stack = fresh_stack(seed)
    result = stack.run_application(
        count_spec(),
        loss_rate=loss,
        rng=np.random.default_rng(seed + 2),
        reliable=reliable,
        max_retries=8,
        wire_format=wire_format,
        fault_plan=plan,
        **kw,
    )
    return net, stack, result


class TestPlanValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultEvent(time=1.0, action="reboot")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time must be >= 0"):
            FaultEvent(time=-0.1, action="kill_node", node=3)

    def test_action_specific_requirements(self):
        with pytest.raises(ValueError, match="kill_node requires"):
            FaultEvent(time=1.0, action="kill_node")
        with pytest.raises(ValueError, match="kill_leader requires"):
            FaultEvent(time=1.0, action="kill_leader")
        with pytest.raises(ValueError, match="partition_links requires"):
            FaultEvent(time=1.0, action="partition_links")
        with pytest.raises(ValueError, match="count must be >= 1"):
            FaultEvent(time=1.0, action="corrupt_frame", count=0)

    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=5.0, action="kill_node", node=1),
                FaultEvent(time=1.0, action="kill_node", node=2),
            )
        )
        assert [e.time for e in plan.events] == [1.0, 5.0]

    def test_dict_roundtrip_preserves_fingerprint(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=0.5, action="kill_leader", cell=(1, 2)),
                FaultEvent(time=0.4, action="partition_links", links=((3, 4),)),
                FaultEvent(time=0.0, action="corrupt_frame", count=3),
                FaultEvent(time=9.0, action="restore", node=7),
            )
        )
        again = FaultPlan.from_dicts(plan.to_dicts())
        assert again == plan
        assert again.fingerprint() == plan.fingerprint()

    def test_plan_leader_storm_is_seed_deterministic(self):
        cells = [(x, y) for x in range(4) for y in range(4)]
        p1 = plan_leader_storm(cells, kills=3, seed=5)
        p2 = plan_leader_storm(cells, kills=3, seed=5)
        assert p1 == p2
        assert p1 != plan_leader_storm(cells, kills=3, seed=6)
        assert len([e for e in p1.events if e.action == "kill_leader"]) == 3
        with pytest.raises(ValueError, match="cannot kill"):
            plan_leader_storm(cells[:2], kills=3)


class TestInjection:
    def test_kill_fires_at_exact_virtual_time(self):
        net, stack = fresh_stack()
        victim = stack.binding.leaders[(0, 0)]
        plan = FaultPlan(
            events=(FaultEvent(time=3.25, action="kill_node", node=victim),)
        )
        assert net.node(victim).alive
        result = stack.run_application(
            count_spec(), rng=np.random.default_rng(9),
            reliable=True, max_retries=8, fault_plan=plan,
        )
        assert not net.node(victim).alive
        report = result.fault_report
        assert report is not None
        assert (3.25, "kill_node", victim) in report.injected

    def test_kill_leader_resolves_target_at_fire_time(self):
        net, stack = fresh_stack()
        leader = stack.binding.leaders[(2, 2)]
        plan = FaultPlan(events=(FaultEvent(time=0.5, action="kill_leader", cell=(2, 2)),))
        result = stack.run_application(
            count_spec(), rng=np.random.default_rng(9),
            reliable=True, max_retries=8, fault_plan=plan,
        )
        assert not net.node(leader).alive
        assert (0.5, "kill_leader", ((2, 2), leader)) in result.fault_report.injected


class TestAcceptance:
    """The ISSUE acceptance scenario: >= 2 leader kills mid-round."""

    def run_storm(self, wire_format=False):
        _, stack0 = fresh_stack()
        plan = plan_leader_storm(
            sorted(stack0.binding.leaders), kills=2, at=0.5, seed=3
        )
        return plan, run_with_plan(plan, wire_format=wire_format)

    def test_query_completes_with_correct_payload_and_failovers(self):
        plan, (net, stack, result) = self.run_storm()
        assert result.root_payload == SIDE * SIDE
        report = result.fault_report
        assert report is not None
        killed = {t for _, a, t in report.injected if a == "kill_leader"}
        assert len(killed) == 2
        # every killed leader's cell failed over to a new alive leader
        failed_cells = {cell for _, cell, _, _ in report.failovers}
        assert {cell for cell, _ in killed} <= failed_cells
        for _, cell, old, new in report.failovers:
            assert new != old
            assert net.node(new).alive
            assert stack.binding.leaders[cell] == new

    def test_fingerprint_reproduces_exactly(self):
        plan, (_, _, r1) = self.run_storm()
        _, (_, _, r2) = self.run_storm()
        assert r1.fingerprint() == r2.fingerprint()
        assert r1.fault_report.fingerprint() == r2.fault_report.fingerprint()

    def test_wire_format_round_also_recovers(self):
        plan, (_, _, result) = self.run_storm(wire_format=True)
        assert result.root_payload == SIDE * SIDE
        assert len(result.fault_report.failovers) >= 2

    def test_successor_is_the_binding_metric_argmin(self):
        from repro.runtime.binding import distance_to_center_metric

        plan, (net, stack, result) = self.run_storm()
        for _, cell, old, new in result.fault_report.failovers:
            members = net.members_of_cell(cell)
            best = min(
                members, key=lambda m: (distance_to_center_metric(net, m), m)
            )
            assert new == best


class TestPartition:
    def test_partition_then_restore_completes_reliably(self):
        net, stack = fresh_stack()
        # sever every link of the (0,0) leader, then heal mid-round
        leader = stack.binding.leaders[(0, 0)]
        links = tuple((leader, n) for n in net.neighbors(leader))
        plan = FaultPlan(
            events=(
                FaultEvent(time=0.2, action="partition_links", links=links),
                FaultEvent(time=30.0, action="restore"),
            )
        )
        result = stack.run_application(
            count_spec(), loss_rate=0.0, rng=np.random.default_rng(1),
            reliable=True, max_retries=10, fault_plan=plan,
        )
        assert result.root_payload == SIDE * SIDE
        injected = [a for _, a, _ in result.fault_report.injected]
        assert injected == ["partition_links", "restore"]


class TestFrameCorruption:
    """The satellite bugfix: undecodable frames are counted and dropped."""

    def golden_frame(self):
        envelope = TransportEnvelope(
            src_cell=(0, 0), dst_cell=(3, 3),
            inner=Message(kind="mGraph", sender=(0, 0), payload=2, level=1),
            size_units=1.0, hops=1, uid=(9, 4),
        )
        return wire.encode_envelope(envelope)

    def make_transport(self, **kw):
        net, stack = fresh_stack()
        return TransportProcess(stack.topology, stack.binding, **kw)

    def test_single_byte_flip_is_rejected_not_raised(self):
        frame = self.golden_frame()
        wire.decode_envelope(frame)  # golden vector is valid as-is
        proc = self.make_transport(wire_format=True, reliable=True)
        for i in range(len(frame)):
            flipped = bytearray(frame)
            flipped[i] ^= 0x01
            packet = Packet(src=2, kind=TRANSPORT_KIND, payload=bytes(flipped))
            before = proc.rejected_frames
            # must never propagate WireDecodeError into the event loop
            proc.on_packet(packet)
            assert proc.rejected_frames == before + 1
        assert proc.forwarded == 0 and proc.drops == 0

    def test_truncated_frame_is_rejected(self):
        frame = self.golden_frame()
        proc = self.make_transport(wire_format=True)
        proc.on_packet(Packet(src=2, kind=TRANSPORT_KIND, payload=frame[:5]))
        assert proc.rejected_frames == 1

    def test_corrupted_ack_is_rejected(self):
        from repro.runtime.routing import ACK_KIND

        ack = bytearray(wire.encode_ack((3, 1)))
        ack[0] ^= 0xFF
        proc = self.make_transport(wire_format=True, reliable=True)
        proc.on_packet(Packet(src=2, kind=ACK_KIND, payload=bytes(ack)))
        assert proc.rejected_frames == 1

    def test_corrupted_frame_sentinel_rejected_without_wire(self):
        proc = self.make_transport(wire_format=False)
        env = TransportEnvelope(src_cell=(0, 0), dst_cell=(1, 1), inner="x")
        proc.on_packet(Packet(src=2, kind=TRANSPORT_KIND, payload=CorruptedFrame(env)))
        assert proc.rejected_frames == 1

    @pytest.mark.parametrize("wire_format", [False, True], ids=["plain", "wire"])
    def test_injected_corruption_counts_match_lossless(self, wire_format):
        plan = FaultPlan(
            events=(FaultEvent(time=0.0, action="corrupt_frame", count=4),)
        )
        _, _, result = run_with_plan(plan, loss=0.0, wire_format=wire_format)
        report = result.fault_report
        # lossless channel: every corrupted frame reaches a receiver and
        # is rejected there, in both codec modes
        assert report.frames_corrupted == 4
        assert report.frames_rejected == 4
        assert result.rejected_frames == 4
        # ARQ retransmits around the corruption: the round still completes
        assert result.root_payload == SIDE * SIDE


class TestDegradation:
    def test_unreliable_round_survives_leader_kill_without_crash(self):
        _, stack0 = fresh_stack()
        plan = plan_leader_storm(sorted(stack0.binding.leaders), kills=2, at=0.5, seed=3)
        _, _, result = run_with_plan(plan, reliable=False)
        # no ARQ: deliveries into the dead window are lost, but the run
        # terminates cleanly and deterministically
        _, _, again = run_with_plan(plan, reliable=False)
        assert result.fingerprint() == again.fingerprint()

    def test_healing_without_plan_keeps_result_identical(self):
        """Arming healing on a fault-free round must not change outcomes
        (heartbeats add traffic but never perturb the application)."""
        _, _, plain = run_with_plan(None, loss=0.0)
        net, stack = fresh_stack()
        healed = stack.run_application(
            count_spec(), loss_rate=0.0, rng=np.random.default_rng(9),
            reliable=True, max_retries=8, healing=HealingConfig(),
        )
        assert healed.root_payload == SIDE * SIDE
        assert healed.fault_report is not None
        assert healed.fault_report.failovers == []


class TestMaintenanceSpare:
    def test_spare_nodes_survive_full_kill(self):
        net = make_deployment(side=SIDE, n_random=80, seed=11)
        spare = net.alive_ids()[::3]
        killed = kill_random_nodes(
            net, fraction=1.0, rng=np.random.default_rng(0), spare=spare
        )
        assert set(killed).isdisjoint(spare)
        for nid in spare:
            assert net.node(nid).alive
        # everything else died
        assert sorted(net.alive_ids()) == sorted(spare)


class TestReportFingerprint:
    def test_report_fingerprint_covers_every_counter(self):
        base = FaultReport().fingerprint()
        for mutate in (
            lambda r: r.injected.append((1.0, "kill_node", 3)),
            lambda r: setattr(r, "detected_failures", 1),
            lambda r: r.failovers.append((1.0, (0, 0), 1, 2)),
            lambda r: setattr(r, "reroutes", 1),
            lambda r: setattr(r, "redirected_retransmissions", 1),
            lambda r: setattr(r, "frames_corrupted", 1),
            lambda r: setattr(r, "frames_rejected", 1),
            lambda r: setattr(r, "orphaned_deliveries", 1),
        ):
            report = FaultReport()
            mutate(report)
            assert report.fingerprint() != base
