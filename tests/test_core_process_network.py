"""Unit tests for the Kahn process-network model of computation."""

from __future__ import annotations

import pytest

from repro.core import OrientedGrid
from repro.core.process_network import DeadlockError, ProcessNetwork


def build_pipeline(n_tokens=5, grid=None, placements=None):
    """source -> double -> sink pipeline; returns (network, results list)."""
    net = ProcessNetwork(grid=grid)
    a = net.add_channel("a")
    b = net.add_channel("b")
    results = []

    def source():
        for i in range(n_tokens):
            yield ("write", a, i)

    def double():
        for _ in range(n_tokens):
            v = yield ("read", a)
            yield ("compute", 1.0)
            yield ("write", b, v * 2)

    def sink():
        for _ in range(n_tokens):
            v = yield ("read", b)
            results.append(v)

    placements = placements or {}
    net.add_process("source", source, node=placements.get("source"))
    net.add_process("double", double, node=placements.get("double"))
    net.add_process("sink", sink, node=placements.get("sink"))
    net.connect("a", "source", "double")
    net.connect("b", "double", "sink")
    return net, results


class TestPipeline:
    def test_tokens_flow_in_order(self):
        net, results = build_pipeline()
        net.run()
        assert results == [0, 2, 4, 6, 8]

    def test_finish_times_returned(self):
        net, _ = build_pipeline()
        times = net.run()
        assert set(times) == {"source", "double", "sink"}
        assert times["double"] >= 5 * 1.0  # five unit computations

    def test_deterministic(self):
        net1, r1 = build_pipeline()
        net2, r2 = build_pipeline()
        t1, t2 = net1.run(), net2.run()
        assert r1 == r2
        assert t1 == t2

    def test_channel_counters(self):
        net, _ = build_pipeline()
        net.run()
        assert net.channel("a").tokens_transferred == 5
        assert net.channel("b").tokens_transferred == 5


class TestBoundedChannels:
    def test_capacity_throttles_but_completes(self):
        net = ProcessNetwork()
        ch = net.add_channel("c", capacity=1)
        seen = []

        def producer():
            for i in range(4):
                yield ("write", ch, i)

        def consumer():
            for _ in range(4):
                v = yield ("read", ch)
                seen.append(v)

        net.add_process("p", producer)
        net.add_process("c", consumer)
        net.connect("c", "p", "c")
        net.run()
        assert seen == [0, 1, 2, 3]

    def test_capacity_validation(self):
        net = ProcessNetwork()
        with pytest.raises(ValueError):
            net.add_channel("c", capacity=0)


class TestDeadlock:
    def test_read_on_never_written_channel(self):
        net = ProcessNetwork()
        ch = net.add_channel("c")

        def victim():
            yield ("read", ch)

        def writer():
            return
            yield  # never writes

        net.add_process("victim", victim)
        net.add_process("writer", writer)
        net.connect("c", "writer", "victim")
        with pytest.raises(DeadlockError, match="victim"):
            net.run()

    def test_mutual_wait(self):
        net = ProcessNetwork()
        x = net.add_channel("x")
        y = net.add_channel("y")

        def p1():
            v = yield ("read", y)
            yield ("write", x, v)

        def p2():
            v = yield ("read", x)
            yield ("write", y, v)

        net.add_process("p1", p1)
        net.add_process("p2", p2)
        net.connect("x", "p1", "p2")
        net.connect("y", "p2", "p1")
        with pytest.raises(DeadlockError):
            net.run()


class TestStructure:
    def test_duplicate_names_rejected(self):
        net = ProcessNetwork()
        net.add_channel("c")
        with pytest.raises(ValueError):
            net.add_channel("c")
        net.add_process("p", lambda: iter(()))
        with pytest.raises(ValueError):
            net.add_process("p", lambda: iter(()))

    def test_channel_single_writer_reader(self):
        net = ProcessNetwork()
        net.add_channel("c")
        net.add_process("a", lambda: iter(()))
        net.add_process("b", lambda: iter(()))
        net.connect("c", "a", "b")
        with pytest.raises(ValueError):
            net.connect("c", "a", "b")

    def test_placement_requires_grid(self):
        net = ProcessNetwork()
        with pytest.raises(ValueError):
            net.add_process("p", lambda: iter(()), node=(0, 0))

    def test_unknown_request_rejected(self):
        net = ProcessNetwork()

        def bad():
            yield ("jump", None)

        net.add_process("bad", bad)
        with pytest.raises(ValueError, match="unknown request"):
            net.run()


class TestGridMappedCosts:
    def test_token_transfers_charged(self):
        grid = OrientedGrid(4)
        net, results = build_pipeline(
            n_tokens=3,
            grid=grid,
            placements={"source": (0, 0), "double": (3, 0), "sink": (3, 3)},
        )
        net.run()
        assert results == [0, 2, 4]
        # channel traffic: 3 tokens x 2 legs x 3 hops x (tx+rx) = 36,
        # plus 3 unit computations at (3,0)
        assert net.ledger.total == pytest.approx(36.0 + 3.0)
        assert net.ledger.by_category()["compute"] == 3.0

    def test_colocated_processes_free(self):
        grid = OrientedGrid(2)
        net, _ = build_pipeline(
            n_tokens=2,
            grid=grid,
            placements={"source": (0, 0), "double": (0, 0), "sink": (0, 0)},
        )
        net.run()
        assert net.ledger.by_category().get("tx", 0.0) == 0.0

    def test_latency_respects_hops(self):
        grid = OrientedGrid(4)
        net, _ = build_pipeline(
            n_tokens=1,
            grid=grid,
            placements={"source": (0, 0), "double": (3, 0), "sink": (3, 3)},
        )
        times = net.run()
        # one token: 3 hops + 1 compute + 3 hops
        assert times["sink"] == pytest.approx(7.0)
