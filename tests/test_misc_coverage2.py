"""Second edge-case sweep: corrupted-structure guards, deployed
event-driven rounds, report error paths, and a larger-scale stack run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CountAggregation,
    EventDrivenAggregation,
    VirtualArchitecture,
    simulate_event_activations,
)
from repro.core.coords import Direction
from repro.runtime import deploy
from repro.runtime.binding import Binding
from repro.runtime.topology_emulation import EmulatedTopology

from conftest import make_deployment


class TestCorruptedStructureGuards:
    def test_gateway_chain_detects_cycle(self):
        net = make_deployment(side=4, seed=7)
        # hand-build a cyclic table between two same-cell nodes
        members = next(
            net.members_of_cell(c)
            for c in net.cells.cells()
            if len(net.members_of_cell(c)) >= 2
        )
        a, b = members[0], members[1]
        tables = {
            nid: {d: None for d in Direction} for nid in net.node_ids()
        }
        tables[a][Direction.EAST] = b
        tables[b][Direction.EAST] = a
        topo = EmulatedTopology(net, tables)
        with pytest.raises(RuntimeError, match="cycle"):
            topo.gateway_chain(a, Direction.EAST)

    def test_gateway_chain_detects_stray(self):
        net = make_deployment(side=4, seed=7)
        # point "NORTH" at a node in the wrong (eastern) cell
        a = net.members_of_cell((1, 1))[0]
        wrong = net.members_of_cell((2, 1))[0]
        tables = {
            nid: {d: None for d in Direction} for nid in net.node_ids()
        }
        tables[a][Direction.NORTH] = wrong
        topo = EmulatedTopology(net, tables)
        with pytest.raises(RuntimeError, match="strayed"):
            topo.gateway_chain(a, Direction.NORTH)

    def test_binding_gradient_cycle_detected(self):
        net = make_deployment(side=4, seed=7)
        members = next(
            net.members_of_cell(c)
            for c in net.cells.cells()
            if len(net.members_of_cell(c)) >= 3
        )
        a, b, leader = members[0], members[1], members[2]
        binding = Binding(
            network=net,
            leaders={net.cell_of(leader): leader},
            toward_leader={a: b, b: a},
        )
        with pytest.raises(RuntimeError, match="cycle"):
            binding.path_to_leader(a)

    def test_binding_missing_pointer_detected(self):
        net = make_deployment(side=4, seed=7)
        members = next(
            net.members_of_cell(c)
            for c in net.cells.cells()
            if len(net.members_of_cell(c)) >= 2
        )
        a, leader = members[0], members[1]
        binding = Binding(
            network=net,
            leaders={net.cell_of(leader): leader},
            toward_leader={},
        )
        with pytest.raises(RuntimeError, match="no gradient pointer"):
            binding.path_to_leader(a)


class TestDeployedEventDriven:
    def test_tracking_round_on_physical_stack(self):
        net = make_deployment(side=4, seed=11)
        stack = deploy(net)
        va = VirtualArchitecture(4)
        active = simulate_event_activations(4, n_events=1, vicinity_radius=1.2, rng=3)
        agg = EventDrivenAggregation(
            CountAggregation(lambda c: True), active=lambda c: c in active
        )
        run = stack.run_application(va.synthesize(agg))
        assert run.root_payload == (len(active) if active else None)

    def test_silent_round_cheapest(self):
        net = make_deployment(side=4, seed=11)
        stack = deploy(net)
        va = VirtualArchitecture(4)
        silent = EventDrivenAggregation(
            CountAggregation(lambda c: True), active=lambda c: False
        )
        loud = CountAggregation(lambda c: True)
        silent_run = stack.run_application(va.synthesize(silent))
        loud_run = stack.run_application(va.synthesize(loud))
        # size-0 payloads still traverse the transport, but cost nothing
        assert silent_run.ledger.total < loud_run.ledger.total


class TestReportErrorPaths:
    def test_partial_reduction_rejected_by_app_report(self):
        from repro.apps import GradientField, TopographicQueryApp

        va = VirtualArchitecture(8)
        app = TopographicQueryApp(va, GradientField(), threshold=0.5)
        result = va.execute(app.aggregation, max_level=1)
        with pytest.raises(ValueError, match="exactly one"):
            app.execution_to_report(result)

    def test_wrong_payload_type_rejected(self):
        from repro.apps import GradientField, TopographicQueryApp

        va = VirtualArchitecture(4)
        app = TopographicQueryApp(va, GradientField(), threshold=0.5)
        bogus = va.execute(CountAggregation(lambda c: True))
        with pytest.raises(TypeError):
            app.execution_to_report(bogus)


class TestLargerScaleStack:
    def test_8x8_deployed_round_trip(self):
        from repro.apps import (
            count_regions,
            feature_matrix_aggregation,
            random_feature_matrix,
        )

        net = make_deployment(side=8, n_random=420, seed=11)
        assert net.validate_protocol_preconditions() == []
        stack = deploy(net)
        va = VirtualArchitecture(8)
        feat = random_feature_matrix(8, 0.4, rng=5)
        run = stack.run_application(va.synthesize(feature_matrix_aggregation(feat)))
        assert run.root_payload.total_regions() == count_regions(feat)
        assert run.drops == 0
