"""Property-based tests for the runtime protocols over random deployments.

Every randomly generated deployment that satisfies the Section 5
preconditions must yield: a converged emulation matching the oracle, a
unique optimal leader per cell, and correct end-to-end labeling through
the full physical stack.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import (
    count_regions,
    feature_matrix_aggregation,
    random_feature_matrix,
)
from repro.core import VirtualArchitecture
from repro.deployment import (
    CellGrid,
    Terrain,
    build_network,
    ensure_coverage,
    uniform_random,
)
from repro.runtime import (
    bind_processes,
    deploy,
    emulate_topology,
    oracle_binding,
)

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_deployment(seed: int, side: int = 4, n: int = 90, range_cells: float = 2.3):
    terrain = Terrain(100.0)
    cells = CellGrid(terrain, side)
    rng = np.random.default_rng(seed)
    positions = ensure_coverage(uniform_random(n, terrain, rng), cells, rng)
    return build_network(positions, cells, tx_range=cells.cell_side * range_cells)


class TestEmulationProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_converged_tables_match_oracle(self, seed):
        net = random_deployment(seed)
        if net.validate_protocol_preconditions():
            return  # precondition violated: out of protocol scope
        result = emulate_topology(net)
        assert result.topology.verify() == []

    @given(st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_table_entries_local(self, seed):
        # property (ii): entries only point within the cell or one cell over
        net = random_deployment(seed)
        if net.validate_protocol_preconditions():
            return
        result = emulate_topology(net)
        for nid, table in result.topology.tables.items():
            cell = net.cell_of(nid)
            for d, entry in table.items():
                if entry is not None:
                    assert net.cell_of(entry) in (cell, d.step(cell))


class TestBindingProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_unique_optimal_leader(self, seed):
        net = random_deployment(seed)
        if net.validate_protocol_preconditions():
            return
        result = bind_processes(net)
        assert result.binding.leaders == oracle_binding(net)

    @given(st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_gradients_reach_leader(self, seed):
        net = random_deployment(seed)
        if net.validate_protocol_preconditions():
            return
        result = bind_processes(net)
        for nid in net.node_ids():
            path = result.binding.path_to_leader(nid)
            assert result.binding.is_leader(path[-1])


class TestFullStackProperties:
    @given(
        st.integers(min_value=0, max_value=1_000),
        st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(
        max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_deployed_labeling_correct(self, seed, density):
        net = random_deployment(seed)
        if net.validate_protocol_preconditions():
            return
        stack = deploy(net)
        feat = random_feature_matrix(4, density, rng=seed)
        va = VirtualArchitecture(4)
        run = stack.run_application(va.synthesize(feature_matrix_aggregation(feat)))
        assert run.root_payload.total_regions() == count_regions(feat)
        assert run.drops == 0
