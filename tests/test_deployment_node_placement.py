"""Unit tests for sensor nodes and deployment generators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.deployment.node import NodeDeadError, SensorNode
from repro.deployment.placement import (
    clustered,
    density_per_cell,
    ensure_coverage,
    one_per_cell,
    perturbed_grid,
    poisson_disk,
    uniform_random,
)
from repro.deployment.terrain import CellGrid, Terrain


class TestSensorNode:
    def test_construction(self):
        n = SensorNode(0, (1.0, 2.0), tx_range=5.0)
        assert n.x == 1.0 and n.y == 2.0
        assert n.alive
        assert n.residual_energy == n.initial_energy

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorNode(-1, (0, 0), tx_range=1.0)
        with pytest.raises(ValueError):
            SensorNode(0, (0, 0), tx_range=0.0)
        with pytest.raises(ValueError):
            SensorNode(0, (0, 0), tx_range=1.0, initial_energy=0.0)

    def test_draw_accumulates(self):
        n = SensorNode(0, (0, 0), tx_range=1.0, initial_energy=10.0)
        n.draw(3.0)
        n.draw(2.0)
        assert n.consumed_energy == 5.0
        assert n.residual_energy == 5.0

    def test_depletion_kills(self):
        n = SensorNode(0, (0, 0), tx_range=1.0, initial_energy=5.0)
        n.draw(5.0)
        assert not n.alive
        assert n.residual_energy == 0.0

    def test_draw_from_dead_raises(self):
        n = SensorNode(0, (0, 0), tx_range=1.0, initial_energy=1.0)
        n.kill()
        with pytest.raises(NodeDeadError):
            n.draw(0.1)

    def test_draw_rejects_negative(self):
        n = SensorNode(0, (0, 0), tx_range=1.0)
        with pytest.raises(ValueError):
            n.draw(-1.0)

    def test_revive(self):
        n = SensorNode(0, (0, 0), tx_range=1.0, initial_energy=5.0)
        n.draw(5.0)
        n.revive(energy=20.0)
        assert n.alive
        assert n.residual_energy == 20.0

    def test_revive_rejects_nonpositive_energy(self):
        n = SensorNode(0, (0, 0), tx_range=1.0)
        with pytest.raises(ValueError):
            n.revive(energy=0.0)


class TestGenerators:
    terrain = Terrain(100.0)

    def test_uniform_random_count_and_bounds(self):
        pts = uniform_random(200, self.terrain, rng=1)
        assert len(pts) == 200
        assert all(self.terrain.contains(p) for p in pts)

    def test_uniform_random_seeded(self):
        assert uniform_random(10, self.terrain, rng=5) == uniform_random(
            10, self.terrain, rng=5
        )

    def test_uniform_random_zero(self):
        assert uniform_random(0, self.terrain, rng=1) == []

    def test_uniform_random_rejects_negative(self):
        with pytest.raises(ValueError):
            uniform_random(-1, self.terrain, rng=1)

    def test_perturbed_grid(self):
        pts = perturbed_grid(5, self.terrain, jitter_fraction=0.1, rng=2)
        assert len(pts) == 25
        assert all(self.terrain.contains(p) for p in pts)

    def test_perturbed_grid_zero_jitter_is_lattice(self):
        pts = perturbed_grid(4, self.terrain, jitter_fraction=0.0, rng=2)
        assert pts[0] == (12.5, 12.5)
        assert pts[-1] == (87.5, 87.5)

    def test_poisson_disk_separation(self):
        pts = poisson_disk(self.terrain, min_separation=15.0, rng=3)
        assert len(pts) > 5
        for i, a in enumerate(pts):
            for b in pts[i + 1 :]:
                assert math.hypot(a[0] - b[0], a[1] - b[1]) >= 15.0 - 1e-9

    def test_poisson_disk_rejects_bad_separation(self):
        with pytest.raises(ValueError):
            poisson_disk(self.terrain, min_separation=0.0, rng=1)

    def test_clustered_counts(self):
        pts = clustered(3, 10, self.terrain, cluster_spread=5.0, rng=4)
        assert len(pts) == 30
        assert all(self.terrain.contains(p) for p in pts)

    def test_clustered_rejects_bad_params(self):
        with pytest.raises(ValueError):
            clustered(0, 5, self.terrain, cluster_spread=1.0)
        with pytest.raises(ValueError):
            clustered(2, 5, self.terrain, cluster_spread=0.0)


class TestCoverage:
    terrain = Terrain(100.0)
    cells = CellGrid(terrain, 4)

    def test_one_per_cell(self):
        pts = one_per_cell(self.cells, rng=1)
        assert len(pts) == 16
        counts = density_per_cell(pts, self.cells)
        assert all(c == 1 for c in counts)

    def test_ensure_coverage_fills_empty_cells(self):
        sparse = [(1.0, 1.0)]  # only cell (0, 0) covered
        full = ensure_coverage(sparse, self.cells, rng=1)
        assert len(full) == 1 + 15
        counts = density_per_cell(full, self.cells)
        assert all(c >= 1 for c in counts)

    def test_ensure_coverage_keeps_existing(self):
        pts = one_per_cell(self.cells, rng=1)
        out = ensure_coverage(pts, self.cells, rng=2)
        assert out == list(pts)  # nothing added

    def test_ensure_coverage_patch_stays_in_cell(self):
        full = ensure_coverage([], self.cells, rng=3)
        for p, cell in zip(full, self.cells.cells()):
            assert self.cells.cell_of(p) == cell

    def test_density_per_cell_total(self):
        pts = uniform_random(100, self.terrain, rng=9)
        counts = density_per_cell(pts, self.cells)
        assert sum(counts) == 100


class TestPunchHole:
    terrain = Terrain(100.0)
    cells = CellGrid(terrain, 4)

    def test_hole_empties_cells(self):
        from repro.deployment.placement import punch_hole

        pts = one_per_cell(self.cells, rng=1)
        out = punch_hole(pts, self.cells, [(1, 1), (2, 2)])
        counts = density_per_cell(out, self.cells)
        by_cell = dict(zip(self.cells.cells(), counts))
        assert by_cell[(1, 1)] == 0 and by_cell[(2, 2)] == 0
        assert sum(counts) == 14

    def test_hole_breaks_preconditions(self):
        from repro.deployment import build_network
        from repro.deployment.placement import punch_hole

        pts = punch_hole(one_per_cell(self.cells, rng=1), self.cells, [(0, 0)])
        net = build_network(pts, self.cells, tx_range=60.0)
        problems = net.validate_protocol_preconditions()
        assert any("cells" in p for p in problems)

    def test_deploy_refuses_holed_network(self):
        from repro.deployment import build_network
        from repro.deployment.placement import punch_hole
        from repro.runtime import deploy

        pts = punch_hole(one_per_cell(self.cells, rng=1), self.cells, [(3, 3)])
        net = build_network(pts, self.cells, tx_range=60.0)
        with pytest.raises(RuntimeError, match="preconditions"):
            deploy(net)

    def test_invalid_hole_cell(self):
        from repro.deployment.placement import punch_hole

        with pytest.raises(ValueError):
            punch_hole([], self.cells, [(9, 9)])
