"""The batched broadcast fan-out must be observationally identical to the
legacy per-receiver path: same :class:`MediumStats`, same energy ledger,
same handler invocation order — only ``Simulator.events_processed`` may
(and should) shrink."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.engine import Simulator
from repro.simulator.network import WirelessMedium

from conftest import make_deployment


def run_storm(batch_fanout, loss_rate=0.0, jitter=0.0, rounds=3, seed=5):
    """Every alive node broadcasts each round; capture all observables."""
    net = make_deployment(side=4, seed=5)
    sim = Simulator()
    medium = WirelessMedium(
        sim, net, loss_rate=loss_rate, jitter=jitter,
        rng=np.random.default_rng(seed), batch_fanout=batch_fanout,
    )
    arrivals = []  # (time, receiver, src) in handler order
    for nid in net.alive_ids():
        medium.attach(
            nid, lambda pkt, nid=nid: arrivals.append((sim.now, nid, pkt.src))
        )
    for r in range(rounds):
        for nid in net.alive_ids():
            medium.broadcast(nid, "storm", r)
        sim.run()
    stats = medium.stats.fingerprint()
    ledger = medium.ledger.fingerprint()
    return stats, ledger, arrivals, sim.events_processed


@pytest.mark.parametrize(
    "loss_rate,jitter",
    [(0.0, 0.0), (0.25, 0.0), (0.0, 0.4), (0.25, 0.4)],
    ids=["clean", "loss", "jitter", "loss+jitter"],
)
def test_batch_fanout_matches_legacy_path(loss_rate, jitter):
    batched = run_storm(True, loss_rate, jitter)
    legacy = run_storm(False, loss_rate, jitter)
    assert batched[0] == legacy[0], "MediumStats diverged"
    assert batched[1] == legacy[1], "energy ledger diverged"
    assert batched[2] == legacy[2], "handler order/timing diverged"


def test_batch_fanout_processes_fewer_events():
    batched = run_storm(True)
    legacy = run_storm(False)
    # lossless, jitter-free: one delivery event per broadcast vs one per
    # receiver — the whole point of the fast path
    assert batched[3] < legacy[3]
    assert batched[0] == legacy[0]


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    loss_rate=st.one_of(st.just(0.0), st.floats(0.01, 0.9)),
    jitter=st.one_of(st.just(0.0), st.floats(0.01, 2.0)),
)
def test_property_batched_byte_identical_to_legacy(seed, loss_rate, jitter):
    """Across random seeds and every (loss, jitter) regime — including the
    interleaved loss+jitter stream — the batched path must reproduce the
    legacy path's MediumStats, energy ledger, and delivery timestamps
    byte for byte."""
    batched = run_storm(True, loss_rate, jitter, rounds=2, seed=seed)
    legacy = run_storm(False, loss_rate, jitter, rounds=2, seed=seed)
    assert batched[0] == legacy[0], "MediumStats fingerprint diverged"
    assert batched[1] == legacy[1], "energy ledger fingerprint diverged"
    assert batched[2] == legacy[2], "delivery order/timestamps diverged"


def test_same_seed_same_mode_identical():
    for mode in (True, False):
        assert run_storm(mode, 0.2, 0.3) == run_storm(mode, 0.2, 0.3)
