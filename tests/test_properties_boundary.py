"""Property-based tests (hypothesis) for the boundary-merge core.

The divide-and-conquer labeling must agree with plain connected-component
labeling on *every* input, under *every* merge order — these are the
paper's implicit correctness claims for the case-study algorithm.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.boundary import MergeAccumulator, cell_summary
from repro.apps.reference import count_regions, region_areas
from repro.apps.regions import feature_matrix_aggregation, label_regions_quadtree
from repro.core import VirtualArchitecture


def feature_matrices(max_exp=4):
    """Random square boolean matrices with power-of-two sides."""

    @st.composite
    def build(draw):
        exp = draw(st.integers(min_value=0, max_value=max_exp))
        side = 2**exp
        bits = draw(
            st.lists(
                st.booleans(), min_size=side * side, max_size=side * side
            )
        )
        return np.array(bits, dtype=bool).reshape(side, side)

    return build()


class TestLabelingProperties:
    @given(feature_matrices())
    @settings(max_examples=120, deadline=None)
    def test_region_count_matches_reference(self, feat):
        summary = label_regions_quadtree(feat)
        assert summary.total_regions() == count_regions(feat)

    @given(feature_matrices())
    @settings(max_examples=120, deadline=None)
    def test_areas_match_reference(self, feat):
        summary = label_regions_quadtree(feat)
        assert summary.all_areas() == region_areas(feat)

    @given(feature_matrices())
    @settings(max_examples=60, deadline=None)
    def test_total_area_is_feature_count(self, feat):
        summary = label_regions_quadtree(feat)
        assert sum(summary.all_areas()) == int(feat.sum())

    @given(feature_matrices())
    @settings(max_examples=60, deadline=None)
    def test_perimeter_cells_are_features_on_ring(self, feat):
        side = feat.shape[0]
        summary = label_regions_quadtree(feat)
        for (x, y), _ in summary.perimeter:
            assert feat[y, x]
            assert x in (0, side - 1) or y in (0, side - 1)

    @given(feature_matrices())
    @settings(max_examples=60, deadline=None)
    def test_summary_size_bounded_by_ring_plus_regions(self, feat):
        side = feat.shape[0]
        summary = label_regions_quadtree(feat)
        ring = 4 * side - 4 if side > 1 else 1
        assert summary.size_units <= ring + summary.closed_count + 1


class TestMergeOrderIndependence:
    @given(feature_matrices(max_exp=2), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_shuffled_quadrant_merge_is_canonical(self, feat, rand):
        side = feat.shape[0]
        if side < 2:
            return
        half = side // 2
        children = []
        for y0 in (0, half):
            for x0 in (0, half):
                acc = MergeAccumulator((x0, y0, half, half))
                for dy in range(half):
                    for dx in range(half):
                        acc.add(
                            cell_summary(
                                (x0 + dx, y0 + dy), bool(feat[y0 + dy, x0 + dx])
                            )
                        )
                children.append(acc.finalize())
        baseline = None
        for _ in range(4):
            rand.shuffle(children)
            acc = MergeAccumulator((0, 0, side, side))
            for c in children:
                acc.add(c)
            result = acc.finalize()
            if baseline is None:
                baseline = result
            assert result == baseline


class TestDistributedEqualsRecursive:
    @given(feature_matrices(max_exp=3))
    @settings(max_examples=40, deadline=None)
    def test_executor_output_equals_pure_recursion(self, feat):
        side = feat.shape[0]
        va = VirtualArchitecture(side)
        result = va.execute(feature_matrix_aggregation(feat))
        assert result.root_payload == label_regions_quadtree(feat)
