"""Unit tests for repro.core.executor: design-time execution."""

from __future__ import annotations

import pytest

from repro.core.cost_model import UniformCostModel
from repro.core.executor import VirtualGridExecutor, execute_round
from repro.core.groups import HierarchicalGroups
from repro.core.network_model import OrientedGrid
from repro.core.synthesis import (
    CountAggregation,
    SumAggregation,
    synthesize_quadtree_program,
)


def make_spec(side, feature=lambda c: True, max_level=None):
    groups = HierarchicalGroups(OrientedGrid(side))
    return synthesize_quadtree_program(
        groups, CountAggregation(feature), max_level=max_level
    )


class TestExecutionBasics:
    def test_root_payload_full_reduction(self):
        result = execute_round(make_spec(4))
        assert result.root_payload == 16
        assert list(result.exfiltrated) == [(0, 0)]

    def test_message_count_matches_tree(self):
        # 3 external messages per group: 4 groups at level 1 + 1 at level 2
        result = execute_round(make_spec(4))
        assert result.messages == 15

    def test_events_processed(self):
        result = execute_round(make_spec(4))
        # 16 starts + 15 deliveries
        assert result.events == 31

    def test_energy_without_compute(self):
        result = execute_round(make_spec(4), charge_compute=False)
        assert result.ledger.total == 48.0
        assert result.hop_units == 24.0

    def test_latency_without_compute(self):
        result = execute_round(make_spec(4), charge_compute=False)
        assert result.latency == 6.0  # 2 * (side - 1)

    def test_compute_increases_costs(self):
        free = execute_round(make_spec(4), charge_compute=False)
        charged = execute_round(make_spec(4), charge_compute=True)
        assert charged.ledger.total > free.ledger.total
        assert charged.latency >= free.latency

    def test_trivial_grid(self):
        result = execute_round(make_spec(1))
        assert result.root_payload == 1
        assert result.messages == 0

    def test_2x2_grid(self):
        result = execute_round(make_spec(2), charge_compute=False)
        assert result.root_payload == 4
        assert result.messages == 3
        assert result.latency == 2.0


class TestPartialReduction:
    def test_level1_storage(self):
        result = execute_round(make_spec(4, max_level=1))
        assert len(result.exfiltrated) == 4
        assert set(result.exfiltrated) == {(0, 0), (2, 0), (0, 2), (2, 2)}
        assert all(v == 4 for v in result.exfiltrated.values())

    def test_level0_no_messages(self):
        result = execute_round(make_spec(4, max_level=0))
        assert len(result.exfiltrated) == 16
        assert result.messages == 0

    def test_root_payload_raises_on_multiple(self):
        result = execute_round(make_spec(4, max_level=1))
        with pytest.raises(ValueError):
            result.root_payload


class TestCostModelInteraction:
    def test_scaled_energy(self):
        cm = UniformCostModel(energy_per_unit=3.0)
        result = execute_round(make_spec(4), cost_model=cm, charge_compute=False)
        assert result.ledger.total == 3 * 48.0

    def test_bandwidth_scales_latency(self):
        cm = UniformCostModel(bandwidth=2.0)
        result = execute_round(make_spec(4), cost_model=cm, charge_compute=False)
        assert result.latency == 3.0

    def test_ledger_charges_relays(self):
        # message from (2,0) to (0,0) relays through (1,0)
        result = execute_round(make_spec(4), charge_compute=False)
        assert result.ledger.consumed((1, 0)) > 0

    def test_per_category_breakdown(self):
        result = execute_round(make_spec(4), charge_compute=True)
        cats = result.ledger.by_category()
        assert cats["tx"] == cats["rx"]
        assert "compute" in cats

    def test_report_shape(self):
        result = execute_round(make_spec(4), charge_compute=False)
        report = result.report()
        assert report.latency == result.latency
        assert report.total_energy == result.ledger.total
        assert 0 < report.energy_balance <= 1

    def test_executor_reusable_spec(self):
        spec = make_spec(4)
        r1 = VirtualGridExecutor(spec, charge_compute=False).run()
        r2 = VirtualGridExecutor(spec, charge_compute=False).run()
        assert r1.root_payload == r2.root_payload
        assert r1.ledger.total == r2.ledger.total


class TestDeterminism:
    def test_identical_runs(self):
        a = execute_round(make_spec(8))
        b = execute_round(make_spec(8))
        assert a.latency == b.latency
        assert a.ledger.per_node() == b.ledger.per_node()
        assert a.messages == b.messages

    def test_sum_aggregation_exact(self):
        groups = HierarchicalGroups(OrientedGrid(8))
        spec = synthesize_quadtree_program(
            groups, SumAggregation(lambda c: c[0] * 1.0)
        )
        result = execute_round(spec)
        expected = sum(x for x in range(8)) * 8.0
        assert result.root_payload == expected
