"""Unit tests for repro.deployment.terrain: terrain and cell geometry."""

from __future__ import annotations

import math

import pytest

from repro.deployment.terrain import (
    CellGrid,
    Terrain,
    max_cell_side_for_range,
)


class TestTerrain:
    def test_contains(self):
        t = Terrain(10.0)
        assert t.contains((0.0, 0.0))
        assert t.contains((10.0, 10.0))
        assert not t.contains((10.1, 5.0))
        assert not t.contains((-0.1, 5.0))

    def test_area(self):
        assert Terrain(5.0).area == 25.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Terrain(0.0)
        with pytest.raises(ValueError):
            Terrain(-3.0)


class TestCellSideRule:
    def test_sqrt5_constant(self):
        assert max_cell_side_for_range(math.sqrt(5.0)) == pytest.approx(1.0)

    def test_adjacent_cell_worst_case_within_range(self):
        # opposite corners of a 1x2 cell pair are exactly c*sqrt(5) apart
        c = max_cell_side_for_range(10.0)
        assert c * math.sqrt(5.0) == pytest.approx(10.0)

    def test_rejects_nonpositive_range(self):
        with pytest.raises(ValueError):
            max_cell_side_for_range(0.0)


class TestCellGrid:
    @pytest.fixture
    def cells(self):
        return CellGrid(Terrain(100.0), 4)

    def test_cell_side(self, cells):
        assert cells.cell_side == 25.0
        assert cells.num_cells == 16

    def test_cell_of_interior(self, cells):
        assert cells.cell_of((10.0, 10.0)) == (0, 0)
        assert cells.cell_of((30.0, 10.0)) == (1, 0)
        assert cells.cell_of((10.0, 80.0)) == (0, 3)

    def test_cell_of_clamps_far_edge(self, cells):
        assert cells.cell_of((100.0, 100.0)) == (3, 3)

    def test_cell_of_boundary_between_cells(self, cells):
        # boundary point belongs to the higher cell (floor semantics)
        assert cells.cell_of((25.0, 0.0)) == (1, 0)

    def test_cell_of_outside_raises(self, cells):
        with pytest.raises(ValueError):
            cells.cell_of((101.0, 0.0))

    def test_center(self, cells):
        assert cells.center((0, 0)) == (12.5, 12.5)
        assert cells.center((3, 3)) == (87.5, 87.5)

    def test_center_validates(self, cells):
        with pytest.raises(ValueError):
            cells.center((4, 0))

    def test_bounds(self, cells):
        assert cells.bounds((1, 2)) == (25.0, 50.0, 50.0, 75.0)

    def test_cells_enumeration(self, cells):
        all_cells = list(cells.cells())
        assert len(all_cells) == 16
        assert all_cells[0] == (0, 0)
        assert all_cells[-1] == (3, 3)

    def test_distance_to_center(self, cells):
        assert cells.distance_to_center((12.5, 12.5), (0, 0)) == 0.0
        assert cells.distance_to_center((0.0, 12.5), (0, 0)) == pytest.approx(12.5)

    def test_single_hop_guarantee(self, cells):
        # cell side 25 needs range >= 25*sqrt(5)
        assert cells.guarantees_single_hop_adjacency(25.0 * math.sqrt(5.0) + 0.1)
        assert not cells.guarantees_single_hop_adjacency(40.0)

    def test_cell_containment_invariant(self, cells):
        # every cell centre maps back to its own cell
        for cell in cells.cells():
            assert cells.cell_of(cells.center(cell)) == cell

    def test_rejects_nonpositive_cells(self):
        with pytest.raises(ValueError):
            CellGrid(Terrain(10.0), 0)
