"""Unit tests for repro.core.cost_model: cost functions, ledger, metrics."""

from __future__ import annotations

import math

import pytest

from repro.core.cost_model import (
    EnergyLedger,
    FirstOrderRadioCostModel,
    PerformanceReport,
    UniformCostModel,
    energy_balance,
    energy_stddev,
    max_node_energy,
    system_lifetime,
    total_energy,
)


class TestUniformCostModel:
    def test_unit_costs(self):
        cm = UniformCostModel()
        assert cm.tx_energy(1.0) == 1.0
        assert cm.rx_energy(1.0) == 1.0
        assert cm.compute_energy(1.0) == 1.0
        assert cm.tx_latency(1.0) == 1.0
        assert cm.compute_latency(1.0) == 1.0

    def test_scaling(self):
        cm = UniformCostModel(energy_per_unit=2.0, processing_speed=4.0, bandwidth=8.0)
        assert cm.tx_energy(3.0) == 6.0
        assert cm.compute_latency(8.0) == 2.0
        assert cm.tx_latency(8.0) == 1.0

    def test_hop_energy_is_tx_plus_rx(self):
        cm = UniformCostModel()
        assert cm.hop_energy(5.0) == 10.0

    def test_path_costs(self):
        cm = UniformCostModel()
        assert cm.path_energy(2.0, 3) == 12.0
        assert cm.path_latency(2.0, 3) == 6.0
        assert cm.path_energy(2.0, 0) == 0.0

    def test_path_rejects_negative_hops(self):
        cm = UniformCostModel()
        with pytest.raises(ValueError):
            cm.path_energy(1.0, -1)
        with pytest.raises(ValueError):
            cm.path_latency(1.0, -2)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            UniformCostModel(energy_per_unit=0)
        with pytest.raises(ValueError):
            UniformCostModel(bandwidth=-1)


class TestFirstOrderRadioModel:
    def test_tx_exceeds_rx(self):
        cm = FirstOrderRadioCostModel()
        assert cm.tx_energy(1.0) > cm.rx_energy(1.0)

    def test_rx_is_electronics_only(self):
        cm = FirstOrderRadioCostModel(e_elec=10.0, e_amp=1.0, tx_range=3.0)
        assert cm.rx_energy(2.0) == 20.0

    def test_tx_includes_amplifier(self):
        cm = FirstOrderRadioCostModel(
            e_elec=10.0, e_amp=1.0, tx_range=3.0, path_loss_exponent=2.0
        )
        assert cm.tx_energy(1.0) == pytest.approx(19.0)

    def test_path_loss_exponent(self):
        cm2 = FirstOrderRadioCostModel(e_elec=0, e_amp=1, tx_range=2, path_loss_exponent=2)
        cm4 = FirstOrderRadioCostModel(e_elec=0, e_amp=1, tx_range=2, path_loss_exponent=4)
        assert cm4.tx_energy(1.0) == cm2.tx_energy(1.0) ** 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FirstOrderRadioCostModel(e_elec=-1)


class TestEnergyLedger:
    def test_charge_and_query(self):
        ledger = EnergyLedger()
        ledger.charge("a", 2.0, "tx")
        ledger.charge("a", 3.0, "rx")
        ledger.charge("b", 1.0)
        assert ledger.consumed("a") == 5.0
        assert ledger.consumed("b") == 1.0
        assert ledger.consumed("c") == 0.0
        assert ledger.total == 6.0
        assert len(ledger) == 2

    def test_categories(self):
        ledger = EnergyLedger()
        ledger.charge("a", 2.0, "tx")
        ledger.charge("b", 3.0, "tx")
        ledger.charge("a", 1.0, "compute")
        cats = ledger.by_category()
        assert cats["tx"] == 5.0
        assert cats["compute"] == 1.0

    def test_rejects_negative(self):
        ledger = EnergyLedger()
        with pytest.raises(ValueError):
            ledger.charge("a", -1.0)

    def test_merge(self):
        a, b = EnergyLedger(), EnergyLedger()
        a.charge("x", 1.0, "tx")
        b.charge("x", 2.0, "rx")
        b.charge("y", 3.0, "tx")
        a.merge(b)
        assert a.consumed("x") == 3.0
        assert a.consumed("y") == 3.0
        assert a.by_category()["tx"] == 4.0

    def test_per_node_is_copy(self):
        ledger = EnergyLedger()
        ledger.charge("a", 1.0)
        snapshot = ledger.per_node()
        snapshot["a"] = 999.0
        assert ledger.consumed("a") == 1.0


class TestMetrics:
    def _ledger(self, values):
        ledger = EnergyLedger()
        for node, v in values.items():
            ledger.charge(node, v)
        return ledger

    def test_total_energy(self):
        assert total_energy(self._ledger({"a": 1, "b": 2})) == 3.0

    def test_max_node_energy(self):
        assert max_node_energy(self._ledger({"a": 1, "b": 5, "c": 2})) == 5.0
        assert max_node_energy(EnergyLedger()) == 0.0

    def test_energy_balance_perfect(self):
        assert energy_balance(self._ledger({"a": 2, "b": 2})) == 1.0

    def test_energy_balance_skewed(self):
        # mean 2, max 4 -> 0.5
        assert energy_balance(self._ledger({"a": 4, "b": 0})) == pytest.approx(0.5)

    def test_energy_balance_with_population(self):
        ledger = self._ledger({"a": 4})
        # counting two idle nodes: mean 4/3, max 4
        assert energy_balance(ledger, ["a", "b", "c"]) == pytest.approx(1 / 3)

    def test_energy_balance_empty(self):
        assert energy_balance(EnergyLedger()) == 1.0

    def test_energy_stddev(self):
        assert energy_stddev(self._ledger({"a": 2, "b": 2})) == 0.0
        assert energy_stddev(self._ledger({"a": 0, "b": 4})) == pytest.approx(2.0)

    def test_system_lifetime(self):
        ledger = self._ledger({"a": 2, "b": 5})
        assert system_lifetime(ledger, initial_energy=100.0) == pytest.approx(20.0)

    def test_system_lifetime_no_drain(self):
        assert system_lifetime(EnergyLedger(), 10.0) == math.inf

    def test_system_lifetime_rejects_bad_energy(self):
        with pytest.raises(ValueError):
            system_lifetime(EnergyLedger(), 0.0)


class TestPerformanceReport:
    def test_from_ledger(self):
        ledger = EnergyLedger()
        ledger.charge("a", 4.0)
        ledger.charge("b", 2.0)
        report = PerformanceReport.from_ledger(
            ledger, latency=7.0, messages=3, data_units=5.0
        )
        assert report.latency == 7.0
        assert report.total_energy == 6.0
        assert report.max_node_energy == 4.0
        assert report.energy_balance == pytest.approx(0.75)
        assert report.messages == 3

    def test_row_shape(self):
        ledger = EnergyLedger()
        ledger.charge("a", 1.0)
        report = PerformanceReport.from_ledger(ledger, latency=1.0)
        row = report.row()
        assert len(row) == 5
        assert row[0] == 1.0

    def test_extra_fields(self):
        report = PerformanceReport.from_ledger(
            EnergyLedger(), latency=0.0, rounds=3.0
        )
        assert report.extra["rounds"] == 3.0
