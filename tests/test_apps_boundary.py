"""Unit tests for boundary summaries and the merge accumulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.boundary import (
    MergeAccumulator,
    RegionSummary,
    cell_summary,
    empty_summary,
    extent_cells_on_perimeter,
    extent_contains,
    extents_disjoint,
)
from repro.apps.regions import label_regions_quadtree


class TestExtentHelpers:
    def test_perimeter_of_1x1(self):
        assert extent_cells_on_perimeter((2, 3, 1, 1)) == {(2, 3)}

    def test_perimeter_of_3x3(self):
        ring = extent_cells_on_perimeter((0, 0, 3, 3))
        assert len(ring) == 8
        assert (1, 1) not in ring

    def test_perimeter_of_row(self):
        ring = extent_cells_on_perimeter((0, 0, 4, 1))
        assert len(ring) == 4

    def test_contains(self):
        assert extent_contains((1, 1, 2, 2), (2, 2))
        assert not extent_contains((1, 1, 2, 2), (3, 1))

    def test_disjoint(self):
        assert extents_disjoint((0, 0, 2, 2), (2, 0, 2, 2))
        assert not extents_disjoint((0, 0, 2, 2), (1, 1, 2, 2))


class TestCellSummary:
    def test_feature_cell(self):
        s = cell_summary((3, 1), True)
        assert s.total_regions() == 1
        assert s.open_count == 1
        assert s.all_areas() == [1]
        assert s.perimeter == (((3, 1), 0),)

    def test_non_feature_cell(self):
        s = cell_summary((3, 1), False)
        assert s.total_regions() == 0
        assert s.size_units == 1.0  # header only

    def test_empty_summary(self):
        s = empty_summary((0, 0, 4, 4))
        assert s.total_regions() == 0
        assert s.perimeter == ()


class TestSummaryValidation:
    def test_closed_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RegionSummary(
                extent=(0, 0, 1, 1),
                perimeter=(),
                open_areas=(),
                closed_count=1,
                closed_areas=(),
            )

    def test_non_canonical_labels_rejected(self):
        with pytest.raises(ValueError):
            RegionSummary(
                extent=(0, 0, 1, 1),
                perimeter=(((0, 0), 5),),
                open_areas=(1,),
                closed_count=0,
                closed_areas=(),
            )

    def test_size_units(self):
        s = RegionSummary(
            extent=(0, 0, 2, 2),
            perimeter=(((0, 0), 0), ((1, 0), 0)),
            open_areas=(2,),
            closed_count=0,
            closed_areas=(),
        )
        assert s.size_units == 3.0

    def test_label_of(self):
        s = cell_summary((0, 0), True)
        assert s.label_of((0, 0)) == 0
        assert s.label_of((1, 1)) is None


class TestMergeAccumulator:
    def _quad(self, pattern):
        """Merge four 1x1 children given a 2x2 bool pattern[y][x]."""
        acc = MergeAccumulator((0, 0, 2, 2))
        for y in (0, 1):
            for x in (0, 1):
                acc.add(cell_summary((x, y), pattern[y][x]))
        return acc.finalize()

    def test_horizontal_stitch(self):
        s = self._quad([[True, True], [False, False]])
        assert s.total_regions() == 1
        assert s.all_areas() == [2]

    def test_vertical_stitch(self):
        s = self._quad([[True, False], [True, False]])
        assert s.total_regions() == 1

    def test_diagonal_not_connected(self):
        s = self._quad([[True, False], [False, True]])
        assert s.total_regions() == 2

    def test_full_block(self):
        s = self._quad([[True, True], [True, True]])
        assert s.total_regions() == 1
        assert s.all_areas() == [4]

    def test_empty_block(self):
        s = self._quad([[False, False], [False, False]])
        assert s.total_regions() == 0

    def test_any_arrival_order_same_result(self):
        import itertools

        children = [cell_summary((x, y), (x + y) % 2 == 0) for x in (0, 1) for y in (0, 1)]
        results = set()
        for perm in itertools.permutations(children):
            acc = MergeAccumulator((0, 0, 2, 2))
            for c in perm:
                acc.add(c)
            results.add(acc.finalize())
        assert len(results) == 1  # canonical summary is order-independent

    def test_finalize_requires_complete_tiling(self):
        acc = MergeAccumulator((0, 0, 2, 2))
        acc.add(cell_summary((0, 0), True))
        assert not acc.is_complete()
        with pytest.raises(ValueError, match="cannot finalize"):
            acc.finalize()

    def test_overlapping_child_rejected(self):
        acc = MergeAccumulator((0, 0, 2, 2))
        acc.add(cell_summary((0, 0), True))
        with pytest.raises(ValueError, match="overlaps"):
            acc.add(cell_summary((0, 0), False))

    def test_out_of_extent_child_rejected(self):
        acc = MergeAccumulator((0, 0, 2, 2))
        with pytest.raises(ValueError, match="not contained"):
            acc.add(cell_summary((5, 5), True))

    def test_degenerate_extent_rejected(self):
        with pytest.raises(ValueError):
            MergeAccumulator((0, 0, 0, 2))

    def test_hierarchical_merge_of_quadrant_summaries(self):
        # merge four 2x2 summaries into a 4x4: a ring around the border
        feat = np.ones((4, 4), dtype=bool)
        feat[1:3, 1:3] = False
        quadrants = []
        for y0 in (0, 2):
            for x0 in (0, 2):
                acc = MergeAccumulator((x0, y0, 2, 2))
                for dy in (0, 1):
                    for dx in (0, 1):
                        acc.add(
                            cell_summary(
                                (x0 + dx, y0 + dy), bool(feat[y0 + dy, x0 + dx])
                            )
                        )
                quadrants.append(acc.finalize())
        top = MergeAccumulator((0, 0, 4, 4))
        for q in quadrants:
            top.add(q)
        s = top.finalize()
        assert s.total_regions() == 1
        assert s.all_areas() == [12]

    def test_interior_region_closes(self):
        # a plus-shape inside 4x4 that never touches the outer ring
        feat = np.zeros((4, 4), dtype=bool)
        feat[1, 1] = feat[1, 2] = feat[2, 1] = feat[2, 2] = True
        s = label_regions_quadtree(feat)
        assert s.closed_count == 1
        assert s.open_count == 0
        assert s.closed_areas == (4,)

    def test_region_touching_border_stays_open(self):
        feat = np.zeros((4, 4), dtype=bool)
        feat[0, 0] = True
        s = label_regions_quadtree(feat)
        assert s.closed_count == 0
        assert s.open_count == 1


class TestCompression:
    def test_summary_smaller_than_raw_for_blobs(self):
        # a big solid blob: perimeter grows like side, area like side^2
        side = 16
        feat = np.ones((side, side), dtype=bool)
        s = label_regions_quadtree(feat)
        assert s.size_units < side * side  # compressed vs raw collection
        assert s.size_units == 4 * side - 4 + 1  # ring + header

    def test_checkerboard_is_incompressible(self):
        side = 8
        feat = (np.indices((side, side)).sum(axis=0) % 2 == 0)
        s = label_regions_quadtree(feat)
        # every boundary cell of the grid ring that is a feature appears
        assert s.open_count + s.closed_count == 32
