"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.simulator.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        final = sim.run()
        assert seen == [2.5]
        assert final == 2.5

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            log.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)


class TestRunControl:
    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_not_reentrant(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(RuntimeError, match="reentrant"):
            sim.run()

    def test_run_until_quiet_detects_livelock(self):
        sim = Simulator()

        def respawn():
            sim.schedule(1.0, respawn)

        sim.schedule(0.0, respawn)
        with pytest.raises(RuntimeError, match="quiesce"):
            sim.run_until_quiet(max_events=50)

    def test_run_until_quiet_returns_final_time(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        assert sim.run_until_quiet() == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        sim.run()
        handle.cancel()
        assert fired == [1]

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        live = sim.schedule(2.0, lambda: None)
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1  # only the live event counts
        sim.run()
        assert sim.pending == 0
        assert sim.events_processed == 1
        live.cancel()  # cancel after fire: no effect on bookkeeping
        assert sim.pending == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0
        assert not keep.cancelled

    def test_run_until_quiet_ignores_cancelled_tail(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until_quiet()
        tail = sim.schedule(9.0, lambda: None)
        tail.cancel()
        # only a cancelled event remains: that's quiescent
        assert sim.run_until_quiet() >= 1.0


class TestRunUntilClock:
    """Regression tests for the run(until=...) clock bugs."""

    def test_until_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        # the seed silently moved the clock BACKWARD to `until` here
        with pytest.raises(ValueError, match="backward"):
            sim.run(until=1.0)
        assert sim.now == 5.0

    def test_clock_advances_to_until_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0

    def test_repeated_run_until_forms_consistent_timeline(self):
        sim = Simulator()
        ticks = []
        sim.schedule(2.5, lambda: ticks.append(sim.now))
        for t in (1.0, 2.0, 3.0, 4.0):
            assert sim.run(until=float(t)) == t
            assert sim.now == t
        assert ticks == [2.5]
        # scheduling relative to the advanced clock lands where expected
        sim.schedule(1.0, lambda: ticks.append(sim.now))
        sim.run()
        assert ticks == [2.5, 5.0]

    def test_empty_queue_run_until_advances_clock(self):
        sim = Simulator()
        assert sim.run(until=7.0) == 7.0
        assert sim.now == 7.0


class TestScheduleWithArgs:
    def test_args_passed_positionally(self):
        sim = Simulator()
        got = []
        sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "x")
        sim.schedule_at(2.0, got.append, "tail")
        sim.run()
        assert got == [(1, "x"), "tail"]
