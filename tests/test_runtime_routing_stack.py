"""Unit tests for the transport layer and the deployed full stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    count_regions,
    feature_matrix_aggregation,
    random_feature_matrix,
)
from repro.core import (
    CountAggregation,
    SumAggregation,
    VirtualArchitecture,
)
from repro.core.coords import Direction
from repro.runtime import deploy, next_direction, trace_route
from repro.runtime.stack import DeployedStack

from conftest import make_deployment


@pytest.fixture(scope="module")
def stack4():
    net = make_deployment(side=4)
    return net, deploy(net)


class TestNextDirection:
    def test_x_first(self):
        assert next_direction((0, 0), (2, 2)) is Direction.EAST
        assert next_direction((3, 0), (1, 2)) is Direction.WEST

    def test_y_when_aligned(self):
        assert next_direction((2, 0), (2, 3)) is Direction.SOUTH
        assert next_direction((2, 3), (2, 0)) is Direction.NORTH

    def test_same_cell_rejected(self):
        with pytest.raises(ValueError):
            next_direction((1, 1), (1, 1))


class TestTraceRoute:
    def test_route_endpoints_are_leaders(self, stack4):
        net, stack = stack4
        path = trace_route(stack.topology, stack.binding, (0, 0), (3, 3))
        assert path[0] == stack.binding.leader_of((0, 0))
        assert path[-1] == stack.binding.leader_of((3, 3))

    def test_route_hops_are_radio_links(self, stack4):
        net, stack = stack4
        path = trace_route(stack.topology, stack.binding, (0, 3), (3, 0))
        for a, b in zip(path, path[1:]):
            assert b in net.neighbors(a)

    def test_route_cells_follow_xy(self, stack4):
        net, stack = stack4
        path = trace_route(stack.topology, stack.binding, (0, 0), (2, 1))
        cells = []
        for nid in path:
            c = net.cell_of(nid)
            if not cells or cells[-1] != c:
                cells.append(c)
        # XY over cells: x ascends first, then y
        assert cells == [(0, 0), (1, 0), (2, 0), (2, 1)]

    def test_route_to_same_cell(self, stack4):
        net, stack = stack4
        path = trace_route(stack.topology, stack.binding, (1, 1), (1, 1))
        assert path == [stack.binding.leader_of((1, 1))]

    def test_all_pairs_routable(self, stack4):
        net, stack = stack4
        cells = list(net.cells.cells())
        for src in cells:
            for dst in cells:
                path = trace_route(stack.topology, stack.binding, src, dst)
                assert net.cell_of(path[-1]) == dst


class TestSetupReport:
    def test_setup_totals(self, stack4):
        _, stack = stack4
        assert stack.setup.total_messages == (
            stack.setup.emulation.messages + stack.setup.binding.messages
        )
        assert stack.setup.total_energy > 0

    def test_strict_precondition_check(self):
        from repro.deployment import CellGrid, Terrain, build_network

        cells = CellGrid(Terrain(100.0), 4)
        net = build_network([(1.0, 1.0)], cells, tx_range=10.0)
        with pytest.raises(RuntimeError, match="preconditions"):
            deploy(net)


class TestDeployedApplication:
    def test_count_aggregation_correct(self, stack4):
        _, stack = stack4
        va = VirtualArchitecture(4)
        spec = va.synthesize(CountAggregation(lambda c: c[0] < 2))
        run = stack.run_application(spec)
        assert run.root_payload == 8
        assert run.drops == 0

    def test_region_labeling_matches_oracle(self, stack4):
        _, stack = stack4
        rng = np.random.default_rng(31)
        va = VirtualArchitecture(4)
        for _ in range(5):
            feat = random_feature_matrix(4, float(rng.uniform(0.2, 0.8)), rng)
            spec = va.synthesize(feature_matrix_aggregation(feat))
            run = stack.run_application(spec)
            assert run.root_payload.total_regions() == count_regions(feat)

    def test_partial_reduction_storage(self, stack4):
        _, stack = stack4
        va = VirtualArchitecture(4)
        spec = va.synthesize(CountAggregation(lambda c: True), max_level=1)
        run = stack.run_application(spec)
        assert len(run.exfiltrated) == 4
        assert all(v == 4 for v in run.exfiltrated.values())

    def test_grid_mismatch_rejected(self, stack4):
        _, stack = stack4
        va8 = VirtualArchitecture(8)
        spec = va8.synthesize(CountAggregation(lambda c: True))
        with pytest.raises(ValueError, match="does not match"):
            stack.run_application(spec)

    def test_energy_drawn_from_batteries(self, stack4):
        net, stack = stack4
        va = VirtualArchitecture(4)
        before = {nid: net.node(nid).consumed_energy for nid in net.node_ids()}
        spec = va.synthesize(SumAggregation(lambda c: 1.0))
        run = stack.run_application(spec)
        drained = sum(
            net.node(nid).consumed_energy - before[nid] for nid in net.node_ids()
        )
        assert drained == pytest.approx(run.ledger.total)
        assert drained > 0

    def test_physical_cost_exceeds_virtual(self, stack4):
        # the deployed run pays real multi-hop forwarding; the virtual
        # executor's grid-hop costs are a lower-level idealization
        _, stack = stack4
        va = VirtualArchitecture(4)
        agg = CountAggregation(lambda c: True)
        virtual = va.execute(agg, charge_compute=False)
        deployed = stack.run_application(va.synthesize(agg))
        assert deployed.transmissions >= virtual.messages

    def test_repeated_rounds_accumulate(self, stack4):
        net, stack = stack4
        va = VirtualArchitecture(4)
        spec = va.synthesize(CountAggregation(lambda c: True))
        r1 = stack.run_application(spec)
        spec2 = va.synthesize(CountAggregation(lambda c: True))
        r2 = stack.run_application(spec2)
        assert r1.root_payload == r2.root_payload == 16

    def test_message_loss_degrades_gracefully(self):
        net = make_deployment(side=4, seed=41)
        stack = deploy(net)
        va = VirtualArchitecture(4)
        spec = va.synthesize(CountAggregation(lambda c: True))
        run = stack.run_application(
            spec, loss_rate=0.4, rng=np.random.default_rng(2)
        )
        # under heavy loss the round may not complete, but must terminate
        assert len(run.exfiltrated) <= 1
