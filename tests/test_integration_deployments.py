"""Integration: the full stack across deployment patterns.

The paper targets "arbitrarily deployed" networks; the protocols must not
care *how* the nodes landed.  Runs the complete pipeline (preconditions →
emulation → binding → synthesized application → correctness) over every
placement generator in the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    count_regions,
    feature_matrix_aggregation,
    random_feature_matrix,
)
from repro.core import VirtualArchitecture
from repro.deployment import (
    CellGrid,
    Terrain,
    build_network,
    clustered,
    ensure_coverage,
    one_per_cell,
    perturbed_grid,
    poisson_disk,
    uniform_random,
)
from repro.runtime import deploy

SIDE = 4
TERRAIN = Terrain(100.0)
CELLS = CellGrid(TERRAIN, SIDE)


def _deploy(positions, range_cells=2.3, rng=None):
    positions = ensure_coverage(positions, CELLS, rng or 0)
    net = build_network(positions, CELLS, tx_range=CELLS.cell_side * range_cells)
    assert net.validate_protocol_preconditions() == []
    return net


DEPLOYMENTS = {
    "uniform": lambda: _deploy(uniform_random(90, TERRAIN, 1), rng=1),
    "perturbed-grid": lambda: _deploy(
        perturbed_grid(10, TERRAIN, jitter_fraction=0.3, rng=2), rng=2
    ),
    "poisson-disk": lambda: _deploy(
        poisson_disk(TERRAIN, min_separation=8.0, rng=3), rng=3
    ),
    "clustered": lambda: _deploy(
        clustered(6, 20, TERRAIN, cluster_spread=12.0, rng=4), rng=4
    ),
    "one-per-cell": lambda: _deploy(one_per_cell(CELLS, rng=5), rng=5),
}


class TestAllDeploymentPatterns:
    @pytest.mark.parametrize("name", list(DEPLOYMENTS))
    def test_full_pipeline(self, name):
        net = DEPLOYMENTS[name]()
        stack = deploy(net)
        assert stack.topology.verify() == []
        assert stack.binding.verify() == []

        feat = random_feature_matrix(SIDE, 0.5, rng=7)
        va = VirtualArchitecture(SIDE)
        run = stack.run_application(
            va.synthesize(feature_matrix_aggregation(feat))
        )
        assert run.root_payload.total_regions() == count_regions(feat)
        assert run.drops == 0

    @pytest.mark.parametrize("name", list(DEPLOYMENTS))
    def test_setup_cost_recorded(self, name):
        net = DEPLOYMENTS[name]()
        stack = deploy(net)
        assert stack.setup.total_messages > 0
        assert stack.setup.total_energy > 0

    def test_minimal_deployment_one_node_per_cell(self):
        # the extreme sparse case: each cell's single node is its own
        # leader, and all routing is cell-to-cell direct
        net = DEPLOYMENTS["one-per-cell"]()
        stack = deploy(net)
        for cell in net.cells.cells():
            members = net.members_of_cell(cell)
            assert len(members) == 1
            assert stack.binding.leader_of(cell) == members[0]
