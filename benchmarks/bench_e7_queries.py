"""E7 — Section 3.1: topographic queries over distributed storage.

"Processing and responding to queries could be in most cases decoupled
from the actual data gathering and boundary estimation process."
Measures the cost of count/enumerate/area queries against level-L storage
and compares with the gathering round that produced the storage.
"""

from __future__ import annotations

import pytest

from repro.apps import (
    DistributedStorage,
    count_regions_exact,
    count_regions_fast,
    enumerate_region_areas,
    feature_area_total,
    feature_matrix_aggregation,
    largest_region,
    random_feature_matrix,
)
from repro.core import VirtualArchitecture

from conftest import print_table

SIDE = 16
LEVEL = 2


def build_storage():
    feat = random_feature_matrix(SIDE, 0.35, rng=5)
    va = VirtualArchitecture(SIDE)
    result = va.execute(
        feature_matrix_aggregation(feat), max_level=LEVEL, charge_compute=False
    )
    storage = DistributedStorage.from_execution(va.grid, LEVEL, result)
    return feat, storage, result


@pytest.fixture(scope="module")
def storage_fixture():
    return build_storage()


def test_gathering_round(benchmark):
    benchmark(build_storage)


def test_query_count_fast(benchmark, storage_fixture):
    _, storage, _ = storage_fixture
    result = benchmark(count_regions_fast, storage)
    assert result.value >= 1


def test_query_count_exact(benchmark, storage_fixture):
    _, storage, _ = storage_fixture
    result = benchmark(count_regions_exact, storage)
    assert result.value >= 1


def test_query_enumerate(benchmark, storage_fixture):
    _, storage, _ = storage_fixture
    result = benchmark(enumerate_region_areas, storage)
    assert len(result.value) >= 1


def test_query_report(benchmark, storage_fixture):
    feat, storage, gather = storage_fixture

    def run():
        return {
            "count (sum of local counts)": count_regions_fast(storage),
            "count (merge summaries)": count_regions_exact(storage),
            "enumerate areas": enumerate_region_areas(storage),
            "largest region": largest_region(storage),
            "total feature area": feature_area_total(storage),
        }

    results = benchmark(run)
    from repro.apps import count_regions

    truth = count_regions(feat)
    table = []
    for name, q in results.items():
        value = q.value if not isinstance(q.value, list) else f"{len(q.value)} regions"
        table.append(
            [name, value, f"{q.energy:.0f}", f"{q.latency:.0f}", q.messages]
        )
    table.append(
        ["(gathering round)", "-", f"{gather.ledger.total:.0f}",
         f"{gather.latency:.0f}", gather.messages]
    )
    print_table(
        f"E7: queries over level-{LEVEL} storage (16x16, truth={truth} regions)",
        ["query", "answer", "energy", "latency", "messages"],
        table,
    )
    assert results["count (merge summaries)"].value == truth
    assert results["count (sum of local counts)"].value >= truth
    # decoupling: scalar queries (one unit per storage leader) are far
    # cheaper than the gathering round; full-summary queries pay for the
    # boundary data they ship and may approach it.
    for name in ("count (sum of local counts)", "total feature area"):
        assert results[name].energy < gather.ledger.total / 2
