"""A1 — model ablations: async vs TDMA execution; event-driven activation.

Section 2 says the network model "could support synchronous algorithms
(e.g., TDMA), purely asynchronous message-passing paradigms, or a
combination"; Section 4.1 sketches the probabilistic-activation extension
for event-driven applications.  This bench quantifies both:

* the asynchronous executor vs the slot-synchronous one on identical
  programs (identical answers and energy; latency quantization);
* expected vs measured cost under Bernoulli leaf activation, and the
  target-tracking vicinity model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CountAggregation,
    EventDrivenAggregation,
    HierarchicalGroups,
    OrientedGrid,
    execute_round,
    execute_round_sync,
    expected_quadtree_cost,
    simulate_event_activations,
    synthesize_quadtree_program,
)

from conftest import print_table

SIDE = 16


def make_spec(agg=None):
    groups = HierarchicalGroups(OrientedGrid(SIDE))
    return synthesize_quadtree_program(
        groups, agg or CountAggregation(lambda c: True)
    )


def test_async_round(benchmark):
    result = benchmark(lambda: execute_round(make_spec()))
    assert result.root_payload == SIDE * SIDE


def test_sync_round(benchmark):
    result = benchmark(lambda: execute_round_sync(make_spec()))
    assert result.root_payload == SIDE * SIDE


def test_model_equivalence_report(benchmark):
    def run():
        async_ = execute_round(make_spec())
        sync = execute_round_sync(make_spec())
        return async_, sync

    async_, sync = benchmark(run)
    print_table(
        "A1: asynchronous vs TDMA execution (16x16 unit reduction)",
        ["model", "result", "latency", "energy", "messages"],
        [
            ["asynchronous", async_.root_payload, f"{async_.latency:.1f}",
             f"{async_.ledger.total:.0f}", async_.messages],
            ["TDMA slots", sync.root_payload, f"{sync.latency:.1f}",
             f"{sync.ledger.total:.0f}", sync.messages],
        ],
    )
    assert async_.root_payload == sync.root_payload
    assert async_.ledger.total == pytest.approx(sync.ledger.total)
    assert sync.messages == async_.messages


@pytest.mark.parametrize("p", [0.05, 0.2, 0.5])
def test_event_driven_round(benchmark, p):
    rng = np.random.default_rng(11)
    active = {
        (x, y) for x in range(SIDE) for y in range(SIDE) if rng.random() < p
    }
    agg = EventDrivenAggregation(
        CountAggregation(lambda c: True), active=lambda c: c in active
    )
    result = benchmark(lambda: execute_round(make_spec(agg), charge_compute=False))
    assert result.root_payload == (len(active) if active else None)


def test_activation_sweep_report(benchmark):
    def run():
        rows = []
        rng = np.random.default_rng(11)
        for p in (0.02, 0.1, 0.3, 1.0):
            active = {
                (x, y)
                for x in range(SIDE)
                for y in range(SIDE)
                if rng.random() < p
            }
            agg = EventDrivenAggregation(
                CountAggregation(lambda c: True), active=lambda c: c in active
            )
            measured = execute_round(make_spec(agg), charge_compute=False)
            expected = expected_quadtree_cost(SIDE, p)
            rows.append([p, len(active), f"{measured.ledger.total:.0f}",
                         f"{expected.expected_energy:.0f}"])
        return rows

    rows = benchmark(run)
    print_table(
        "A1: event-driven activation sweep (16x16)",
        ["p", "active leaves", "measured energy", "expected energy"],
        rows,
    )
    energies = [float(r[2]) for r in rows]
    assert energies == sorted(energies)  # cost grows with activation


def test_tracking_scenario_report(benchmark):
    def run():
        rows = []
        for n_targets in (1, 2, 4):
            active = simulate_event_activations(
                SIDE, n_targets, vicinity_radius=2.0, rng=5
            )
            agg = EventDrivenAggregation(
                CountAggregation(lambda c: True), active=lambda c: c in active
            )
            result = execute_round(make_spec(agg), charge_compute=False)
            rows.append(
                [n_targets, len(active), result.root_payload,
                 f"{result.ledger.total:.0f}"]
            )
        return rows

    rows = benchmark(run)
    print_table(
        "A1: target-tracking activation (vicinity radius 2 cells)",
        ["targets", "active leaves", "in-network count", "energy"],
        rows,
    )
    for row in rows:
        assert row[2] == row[1]  # the reduction counts exactly the vicinity
