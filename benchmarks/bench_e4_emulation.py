"""E4 — Section 5.1: topology-emulation efficiency properties (i)-(iii).

(i)  path setup in all cells occurs in parallel,
(ii) messages cross at most one cell boundary before being suppressed,
(iii) latency proportional to the maximum intra-cell path length.

Measures protocol setup time, message counts, and energy across node
density and radio range, and checks each property explicitly.
"""

from __future__ import annotations

import pytest

from repro.core.coords import ALL_DIRECTIONS
from repro.runtime import emulate_topology, max_intra_cell_path_length

from conftest import make_deployment, print_table


@pytest.mark.parametrize("n_random", [60, 120, 240])
def test_setup_cost_vs_density(benchmark, n_random):
    net = make_deployment(side=4, n_random=n_random, seed=7)
    result = benchmark(emulate_topology, net)
    assert result.topology.verify() == []


@pytest.mark.parametrize("range_cells", [0.8, 1.2, 2.3])
def test_setup_cost_vs_range(benchmark, range_cells):
    net = make_deployment(side=4, n_random=260, range_cells=range_cells, seed=6)
    result = benchmark(emulate_topology, net)
    assert result.topology.verify() == []


def test_properties_report(benchmark):
    def run():
        rows = []
        for n_random, range_cells, seed in (
            (60, 2.3, 7), (120, 2.3, 7), (240, 2.3, 7),
            (260, 0.8, 6), (260, 1.2, 6),
        ):
            net = make_deployment(
                side=4, n_random=n_random, range_cells=range_cells, seed=seed
            )
            result = emulate_topology(net)
            bound = max_intra_cell_path_length(net)
            rows.append(
                (net, result, bound, len(net), range_cells)
            )
        return rows

    rows = benchmark(run)
    table = []
    for net, result, bound, n, range_cells in rows:
        table.append(
            [
                n,
                range_cells,
                f"{result.setup_time:.1f}",
                bound,
                result.messages,
                f"{result.energy:.0f}",
            ]
        )
        # property (iii): setup latency bounded by the intra-cell path bound
        assert result.setup_time <= bound + 1
        # property (ii): entries never reach beyond the adjacent cell
        for nid, tbl in result.topology.tables.items():
            cell = net.cell_of(nid)
            for d in ALL_DIRECTIONS:
                entry = tbl[d]
                if entry is not None:
                    assert net.cell_of(entry) in (cell, d.step(cell))
    print_table(
        "E4: topology emulation setup (4x4 cells)",
        ["nodes", "range (cells)", "setup time", "max intra-cell path",
         "messages", "energy"],
        table,
    )


def test_mesh_alternative_report(benchmark):
    """The clustered-mesh alternative [17] vs the cell-based tables."""
    from repro.runtime import bind_processes, build_leader_mesh, trace_route

    def run():
        rows = []
        for n_random, range_cells, seed in ((150, 2.3, 7), (300, 0.7, 5)):
            net = make_deployment(
                side=4, n_random=n_random, range_cells=range_cells, seed=seed
            )
            binding = bind_processes(net).binding
            tables = emulate_topology(net)
            mesh = build_leader_mesh(net, binding)
            mesh_hops = sum(len(p) - 1 for p in mesh.mesh.routes.values())
            table_hops = sum(
                len(trace_route(tables.topology, binding, s, d)) - 1
                for (s, d) in mesh.mesh.routes
            )
            rows.append(
                [
                    len(net),
                    range_cells,
                    tables.messages,
                    mesh.messages,
                    f"{table_hops / len(mesh.mesh.routes):.2f}",
                    f"{mesh_hops / len(mesh.mesh.routes):.2f}",
                ]
            )
            assert mesh.mesh.verify() == []
        return rows

    rows = benchmark(run)
    print_table(
        "E4+: cell-based tables vs clustered leader mesh [17]",
        ["nodes", "range", "table setup msgs", "mesh setup msgs",
         "mean route (tables)", "mean route (mesh)"],
        rows,
    )


def test_parallel_setup_property(benchmark):
    """Property (i): setup time is independent of the number of cells
    (all cells converge in parallel), holding density constant."""
    def run():
        times = []
        for side, n in ((2, 64), (4, 256), (8, 1024)):
            net = make_deployment(side=side, n_random=n, range_cells=0.9, seed=8)
            result = emulate_topology(net)
            times.append(result.setup_time)
        return times

    times = benchmark(run)
    print(f"\nE4(i): setup times across 4, 16, 64 cells: {times}")
    # parallel setup: no blow-up with cell count (within one hop-round)
    assert max(times) <= min(times) + 2.0
