"""Micro-benchmarks of the core data structures and kernels.

Not a paper artifact — the throughput baseline a performance regression
would show up against: Morton indexing, the boundary merge, the rule
engine, the executor's event rate, and the unit-disk graph construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import label_regions_quadtree, random_feature_matrix
from repro.apps.boundary import MergeAccumulator, cell_summary
from repro.core import (
    CountAggregation,
    HierarchicalGroups,
    OrientedGrid,
    execute_round,
    morton_decode,
    morton_encode,
    synthesize_quadtree_program,
)
from repro.core.program import Message
from repro.deployment import CellGrid, Terrain, build_network, uniform_random


def test_morton_encode_throughput(benchmark):
    coords = [(x, y) for x in range(64) for y in range(64)]

    def run():
        return [morton_encode(c) for c in coords]

    out = benchmark(run)
    assert len(out) == 4096


def test_morton_roundtrip_throughput(benchmark):
    indices = list(range(4096))
    out = benchmark(lambda: [morton_decode(i) for i in indices])
    assert out[5] == (3, 0)


def test_boundary_merge_kernel(benchmark):
    """One 2x2 quadrant merge — the inner loop of the whole case study."""
    children = [cell_summary((x, y), (x + y) % 2 == 0) for x in (0, 1) for y in (0, 1)]

    def run():
        acc = MergeAccumulator((0, 0, 2, 2))
        for c in children:
            acc.add(c)
        return acc.finalize()

    summary = benchmark(run)
    assert summary.total_regions() == 2


@pytest.mark.parametrize("side", [16, 32, 64])
def test_recursive_labeling_scales(benchmark, side):
    feat = random_feature_matrix(side, 0.4, rng=1)
    summary = benchmark(label_regions_quadtree, feat)
    assert summary.total_regions() > 0


def test_rule_engine_delivery_rate(benchmark):
    groups = HierarchicalGroups(OrientedGrid(4))
    spec = synthesize_quadtree_program(groups, CountAggregation(lambda c: True))

    def run():
        prog = spec.program_for((0, 0))
        prog.start()
        for s in ((1, 0), (0, 1), (1, 1)):
            prog.deliver(Message("mGraph", s, payload=1, level=1))
        return prog

    prog = benchmark(run)
    assert prog.state["recLevel"] == 2


def test_executor_event_rate(benchmark):
    groups = HierarchicalGroups(OrientedGrid(32))
    agg = CountAggregation(lambda c: True)

    def run():
        return execute_round(
            synthesize_quadtree_program(groups, agg), charge_compute=False
        )

    result = benchmark(run)
    assert result.root_payload == 1024


def test_unit_disk_graph_construction(benchmark):
    terrain = Terrain(100.0)
    cells = CellGrid(terrain, 8)
    positions = uniform_random(1000, terrain, rng=3)

    def run():
        return build_network(positions, cells, tx_range=8.0)

    net = benchmark(run)
    assert len(net) == 1000
