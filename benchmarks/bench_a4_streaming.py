"""A4 — streaming model of computation: KPN pipeline vs repeated reductions.

Figure 1 lists process networks among the candidate formalisms.  For a
continuous monitoring loop (the paper: *"the application essentially
executes in an infinite loop"*), the same per-round data flow can be
expressed either as R independent synthesized-reduction rounds or as one
Kahn process network streaming R tokens.  This bench compares the two on
identical placement: per-round energy is what matters (it is identical by
construction — same routes, same data), while the pipeline overlaps rounds
in time.
"""

from __future__ import annotations

import pytest

from repro.core import (
    CountAggregation,
    HierarchicalGroups,
    OrientedGrid,
    execute_round,
    synthesize_quadtree_program,
)
from repro.core.process_network import ProcessNetwork

from conftest import print_table

SIDE = 4
ROUNDS = 8


def run_repeated_reductions():
    groups = HierarchicalGroups(OrientedGrid(SIDE))
    total_energy = 0.0
    total_latency = 0.0
    for _ in range(ROUNDS):
        spec = synthesize_quadtree_program(groups, CountAggregation(lambda c: True))
        result = execute_round(spec, charge_compute=False)
        total_energy += result.ledger.total
        total_latency += result.latency
    return total_energy, total_latency


def build_streaming_network():
    """Quadrant leaders stream per-round counts to the root."""
    grid = OrientedGrid(SIDE)
    net = ProcessNetwork(grid=grid)
    corners = [(0, 0), (2, 0), (0, 2), (2, 2)]
    for i, _ in enumerate(corners):
        net.add_channel(f"q{i}", capacity=2, token_units=1.0)

    def make_source(i):
        def source():
            ch = net.channel(f"q{i}")
            for _ in range(ROUNDS):
                yield ("write", ch, 4)  # the quadrant's count

        return source

    totals = []

    def root():
        channels = [net.channel(f"q{i}") for i in range(4)]
        for _ in range(ROUNDS):
            total = 0
            for ch in channels:
                v = yield ("read", ch)
                total += v
            totals.append(total)

    for i, corner in enumerate(corners):
        net.add_process(f"src{i}", make_source(i), node=corner)
    net.add_process("root", root, node=(0, 0))
    for i in range(4):
        net.connect(f"q{i}", f"src{i}", "root")
    return net, totals


def test_repeated_reductions(benchmark):
    energy, latency = benchmark(run_repeated_reductions)
    assert energy == ROUNDS * 48.0


def test_streaming_pipeline(benchmark):
    def run():
        net, totals = build_streaming_network()
        times = net.run()
        return net, totals, times

    net, totals, times = benchmark(run)
    assert totals == [16] * ROUNDS


def test_streaming_report(benchmark):
    def run():
        reduction_energy, reduction_latency = run_repeated_reductions()
        net, totals, = build_streaming_network()[:2]
        times = net.run()
        return reduction_energy, reduction_latency, net, totals, times

    reduction_energy, reduction_latency, net, totals, times = benchmark(run)
    stream_latency = max(times.values())
    print_table(
        f"A4: {ROUNDS} monitoring rounds — repeated reductions vs KPN stream (4x4)",
        ["model", "total energy", "completion time", "result"],
        [
            ["repeated quad-tree reductions", f"{reduction_energy:.0f}",
             f"{reduction_latency:.0f}", "16 per round"],
            ["KPN pipeline (leaders stream)", f"{net.ledger.total:.0f}",
             f"{stream_latency:.0f}", f"{totals[0]} per round"],
        ],
    )
    # the pipeline moves only leader->root tokens (it assumes quadrant
    # counts are locally available), so it bounds the reduction below;
    # its *overlap* is the point: completion well under sequential rounds
    assert stream_latency < reduction_latency
    assert all(t == 16 for t in totals)
