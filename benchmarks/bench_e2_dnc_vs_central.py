"""E2 — Section 2's design-flow example: divide-and-conquer vs centralized.

The paper's methodology exists so a designer can make exactly this call
from the virtual architecture's cost model.  Regenerates the comparison
table: total latency, total energy, hot-spot load, winner per metric, and
the crossover point.
"""

from __future__ import annotations

import pytest

from repro.apps import compare_designs, random_feature_matrix, run_centralized
from repro.core import VirtualArchitecture
from repro.core.analysis import crossover_side, estimate_centralized, estimate_quadtree

from conftest import print_table

SIDES = [4, 8, 16, 32]


@pytest.mark.parametrize("side", SIDES)
def test_dnc_round(benchmark, side):
    from repro.apps import feature_matrix_aggregation

    feat = random_feature_matrix(side, 0.4, rng=1)
    va = VirtualArchitecture(side)
    agg = feature_matrix_aggregation(feat)
    result = benchmark(va.execute, agg)
    assert len(result.exfiltrated) == 1


@pytest.mark.parametrize("side", SIDES)
def test_centralized_round(benchmark, side):
    feat = random_feature_matrix(side, 0.4, rng=1)
    result = benchmark(run_centralized, feat)
    assert result.regions >= 0


def test_comparison_report(benchmark):
    rows = benchmark(
        lambda: [
            compare_designs(random_feature_matrix(side, 0.4, rng=1))
            for side in SIDES
        ]
    )
    table = [
        [
            r["side"] ** 2,
            f"{r['dnc_latency']:.0f}",
            f"{r['central_latency']:.0f}",
            f"{r['dnc_energy']:.0f}",
            f"{r['central_energy']:.0f}",
            f"{r['energy_ratio']:.1f}x",
            r["energy_winner"],
        ]
        for r in rows
    ]
    print_table(
        "E2: divide-and-conquer vs centralized (measured, data-dependent)",
        ["N", "dnc latency", "central latency", "dnc energy",
         "central energy", "energy ratio", "winner"],
        table,
    )
    # shape: dnc wins energy everywhere, ratio grows with N
    assert all(r["energy_winner"] == "divide-and-conquer" for r in rows)
    ratios = [r["energy_ratio"] for r in rows]
    assert ratios == sorted(ratios)


def test_three_way_report(benchmark):
    """Quad-tree vs centralized vs the flood-fill local baseline."""
    from repro.apps import compare_three_designs

    side = 16
    feat = random_feature_matrix(side, 0.4, rng=1)
    rows = benchmark(compare_three_designs, feat)
    table = [
        [
            name,
            f"{v['latency']:.0f}",
            f"{v['total_energy']:.0f}",
            f"{v['max_node_energy']:.0f}",
            f"{v['messages']:.0f}",
            f"{v['regions']:.0f}",
        ]
        for name, v in rows.items()
    ]
    print_table(
        "E2+: three designs on the same 16x16 field",
        ["design", "latency", "total energy", "hot spot", "messages", "regions"],
        table,
    )
    print(
        "note: flood-fill labels stay distributed (no node knows the count); "
        "quad-tree\nand centralized deliver the full answer to one node — "
        "add a collection round\nto flood-fill for a like-for-like query."
    )
    regions = {v["regions"] for v in rows.values()}
    assert len(regions) == 1  # all three agree
    # among the designs that deliver the answer, quad-tree wins energy
    assert (
        rows["quad-tree"]["total_energy"] < rows["centralized"]["total_energy"]
    )
    # flood-fill's hot spot is the smallest: purely local communication
    assert rows["flood-fill"]["max_node_energy"] == min(
        v["max_node_energy"] for v in rows.values()
    )


def test_analytic_crossover_report(benchmark):
    """The closed-form version of the same decision (unit messages)."""
    def build():
        rows = []
        for exp in range(1, 7):
            side = 2**exp
            q = estimate_quadtree(side)
            c = estimate_centralized(side)
            rows.append(
                [
                    side * side,
                    f"{q.latency_steps:.0f}",
                    f"{c.latency_steps:.0f}",
                    f"{q.total_energy:.0f}",
                    f"{c.total_energy:.0f}",
                    "dnc" if q.latency_steps < c.latency_steps else "central",
                ]
            )
        return rows, crossover_side()

    rows, cross = benchmark(build)
    print_table(
        "E2: analytic estimates (unit messages, serialized sink)",
        ["N", "dnc steps", "central steps", "dnc energy", "central energy",
         "latency winner"],
        rows,
    )
    print(f"latency crossover at side = {cross} (dnc wins at and beyond)")
    assert cross is not None and cross <= 4
