"""F1 — Figure 1: the full design-flow pipeline, timed stage by stage.

Regenerates the methodology walk of Figure 1 (application → algorithm →
analysis → synthesis → runtime) on an 8x8 topographic-query instance and
reports the cost of each stage.
"""

from __future__ import annotations

import pytest

from repro.apps import GaussianBlobField, TopographicQueryApp
from repro.core import (
    VirtualArchitecture,
    build_quadtree,
    check_all_constraints,
    recursive_quadrant_mapping,
)
from repro.runtime import deploy

from conftest import make_deployment, print_table

SIDE = 8
FIELD = GaussianBlobField([(0.3, 0.3, 0.12, 1.0), (0.75, 0.7, 0.08, 1.0)])


def test_stage_application_model(benchmark):
    """Task-graph construction (Figure 1: 'architecture-independent
    algorithm specification')."""
    va = VirtualArchitecture(SIDE)
    tg = benchmark(build_quadtree, va.grid)
    assert len(tg) == 85


def test_stage_mapping(benchmark):
    """Role assignment with constraint checks."""
    va = VirtualArchitecture(SIDE)
    tg = build_quadtree(va.grid)

    def run():
        mapping = recursive_quadrant_mapping(tg, va.groups)
        check_all_constraints(mapping)
        return mapping

    mapping = benchmark(run)
    assert mapping.is_complete()


def test_stage_synthesis(benchmark):
    """Program synthesis: Figure 4 rule programs for every node."""
    va = VirtualArchitecture(SIDE)
    app = TopographicQueryApp(va, FIELD, threshold=0.5)

    def run():
        spec = app.synthesize()
        return [spec.program_for(coord) for coord in va.grid.nodes()]

    programs = benchmark(run)
    assert len(programs) == SIDE * SIDE


def test_stage_design_time_execution(benchmark):
    """One round on the virtual architecture."""
    va = VirtualArchitecture(SIDE)
    app = TopographicQueryApp(va, FIELD, threshold=0.5)
    report = benchmark(app.run_virtual)
    assert report.correct


def test_stage_runtime_setup(benchmark):
    """Section 5 protocols: topology emulation + binding."""
    def run():
        net = make_deployment(side=4, seed=7)
        return deploy(net)

    stack = benchmark(run)
    assert stack.binding.verify() == []


def test_pipeline_report(benchmark):
    """End-to-end walk; prints the Figure 1 stage table."""
    def run():
        va = VirtualArchitecture(SIDE)
        app = TopographicQueryApp(va, FIELD, threshold=0.5)
        tg = build_quadtree(va.grid)
        mapping = recursive_quadrant_mapping(tg, va.groups)
        check_all_constraints(mapping)
        report = app.run_virtual()
        return app, mapping, report

    app, mapping, report = benchmark(run)
    map_energy, map_latency = mapping.communication_cost()
    print_table(
        "F1: design-flow stages (8x8 topographic query)",
        ["stage", "output", "metric"],
        [
            ["application model", "quad-tree, 85 tasks", "arity 4"],
            ["mapping", "constraints OK", f"unit-cost energy {map_energy:.0f}"],
            ["synthesis", "Figure 4 programs", "4 rules/node"],
            [
                "design-time run",
                f"{report.regions} regions (correct={report.correct})",
                f"latency {report.performance.latency:.1f}, "
                f"energy {report.performance.total_energy:.1f}",
            ],
        ],
    )
    assert report.correct
