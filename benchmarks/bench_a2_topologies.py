"""A2 — topology ablation: grid quad-tree vs dedicated tree reduction.

Section 3.2 chooses the oriented grid for uniform deployments and points
at trees for non-uniform ones.  This bench quantifies the trade at equal
leaf counts: the grid pays hop distance between block leaders (physical
locality); a dedicated tree topology pays only its depth, but a real
emulation of it on a terrain would stretch its upper edges — the grid's
hop costs are honest about geography, the tree's are not.  Both reductions
compute identical results.
"""

from __future__ import annotations

import pytest

from repro.core import (
    CountAggregation,
    HierarchicalGroups,
    OrientedGrid,
    VirtualTree,
    execute_round,
    execute_tree_round,
    synthesize_quadtree_program,
    synthesize_tree_program,
)

from conftest import print_table

#: (grid side, matching 4-ary tree depth) at equal leaf count side**2 = 4**depth
PAIRS = [(4, 2), (8, 3), (16, 4), (32, 5)]


def run_grid(side):
    spec = synthesize_quadtree_program(
        HierarchicalGroups(OrientedGrid(side)), CountAggregation(lambda c: True)
    )
    return execute_round(spec, charge_compute=False)


def run_tree(depth):
    spec = synthesize_tree_program(
        VirtualTree(4, depth), CountAggregation(lambda a: True)
    )
    return execute_tree_round(spec, charge_compute=False)


@pytest.mark.parametrize("side,depth", PAIRS)
def test_grid_reduction(benchmark, side, depth):
    result = benchmark(run_grid, side)
    assert result.root_payload == side * side


@pytest.mark.parametrize("side,depth", PAIRS)
def test_tree_reduction(benchmark, side, depth):
    result = benchmark(run_tree, depth)
    assert result.root_payload == 4**depth


def test_topology_report(benchmark):
    def run():
        return [(run_grid(side), run_tree(depth), side) for side, depth in PAIRS]

    rows = benchmark(run)
    table = []
    for grid, tree, side in rows:
        table.append(
            [
                side * side,
                f"{grid.latency:.0f}",
                f"{tree.latency:.0f}",
                f"{grid.ledger.total:.0f}",
                f"{tree.ledger.total:.0f}",
                grid.messages,
                tree.messages,
            ]
        )
        assert grid.root_payload == tree.root_payload
    print_table(
        "A2: grid quad-tree vs dedicated 4-ary tree (equal leaves)",
        ["leaves", "grid latency", "tree latency", "grid energy",
         "tree energy", "grid msgs", "tree msgs"],
        table,
    )
    # tree latency is log(N); grid is sqrt(N): tree wins latency, and the
    # gap widens with N
    gaps = [g.latency - t.latency for g, t, _ in rows]
    assert all(g > 0 for g in gaps)
    assert gaps == sorted(gaps)
