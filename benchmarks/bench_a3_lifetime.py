"""A3 — system-lifetime simulation (Section 2's lifetime metric).

"Total energy, energy balance, total latency of a set of operations,
system lifetime, etc., are various performance metrics that can be
calculated from the cost model."  E6 computes lifetime from one round's
ledger; this bench *simulates* it: repeated rounds with varying workloads
drain per-node batteries until the first virtual node dies, under the
paper's NW leader policy and the centre-policy ablation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import feature_matrix_aggregation, random_feature_matrix
from repro.core import (
    CenterLeaderPolicy,
    CountAggregation,
    EventDrivenAggregation,
    VirtualArchitecture,
    simulate_event_activations,
)

from conftest import print_table

SIDE = 8
CAPACITY = 1_500.0


def simulate_lifetime(policy, workload, max_rounds=3_000):
    """Rounds until some virtual node's cumulative drain exceeds CAPACITY."""
    va = VirtualArchitecture(SIDE, leader_policy=policy)
    consumed = {}
    for round_no in range(1, max_rounds + 1):
        agg = workload(round_no)
        result = va.execute(agg, charge_compute=False)
        for node, amount in result.ledger.per_node().items():
            consumed[node] = consumed.get(node, 0.0) + amount
            if consumed[node] >= CAPACITY:
                return round_no, consumed
    return max_rounds, consumed


def periodic_workload(round_no):
    return CountAggregation(lambda c: True)


def region_workload_factory(seed):
    rng = np.random.default_rng(seed)

    def workload(round_no):
        return feature_matrix_aggregation(random_feature_matrix(SIDE, 0.4, rng))

    return workload


def tracking_workload_factory(seed):
    rng = np.random.default_rng(seed)

    def workload(round_no):
        active = simulate_event_activations(SIDE, 2, 1.5, rng=rng)
        return EventDrivenAggregation(
            CountAggregation(lambda c: True), active=lambda c: c in active
        )

    return workload


def test_lifetime_periodic_nw(benchmark):
    rounds, _ = benchmark(simulate_lifetime, None, periodic_workload)
    assert rounds > 10


def test_lifetime_periodic_centre(benchmark):
    rounds, _ = benchmark(simulate_lifetime, CenterLeaderPolicy(), periodic_workload)
    assert rounds > 10


def test_lifetime_report(benchmark):
    def run():
        rows = []
        for policy_name, policy in (("north-west (paper)", None),
                                    ("centre", CenterLeaderPolicy())):
            for workload_name, factory in (
                ("periodic count", lambda: periodic_workload),
                ("region labeling", lambda: region_workload_factory(1)),
                ("target tracking", lambda: tracking_workload_factory(1)),
            ):
                rounds, consumed = simulate_lifetime(policy, factory())
                hot = max(consumed, key=consumed.get)
                rows.append(
                    [policy_name, workload_name, rounds, str(hot),
                     f"{consumed[hot]:.0f}"]
                )
        return rows

    rows = benchmark(run)
    print_table(
        f"A3: simulated lifetime (8x8, capacity {CAPACITY:.0f}/node)",
        ["policy", "workload", "rounds to first death", "first casualty",
         "its drain"],
        rows,
    )
    by_key = {(r[0], r[1]): r[2] for r in rows}
    # centre policy outlives NW on the periodic workload (smaller hot spot)
    assert by_key[("centre", "periodic count")] >= by_key[
        ("north-west (paper)", "periodic count")
    ]
    # event-driven tracking outlives always-on periodic operation
    assert by_key[("north-west (paper)", "target tracking")] > by_key[
        ("north-west (paper)", "periodic count")
    ]
