"""F3 — Figure 3: the recursive-quadrant mapping.

Regenerates the published task-to-node assignment (root at location 0,
level-1 tasks at 0, 4, 8, 12), verifies the two design-time constraints,
and times mapping + verification across grid sizes.
"""

from __future__ import annotations

import pytest

from repro.core import (
    HierarchicalGroups,
    OrientedGrid,
    build_quadtree,
    check_all_constraints,
    morton_encode,
    recursive_quadrant_mapping,
)
from repro.core.taskgraph import TaskId

from conftest import print_table


def test_figure3_regeneration(benchmark):
    grid = OrientedGrid(4)
    tg = build_quadtree(grid)
    groups = HierarchicalGroups(grid)
    mapping = benchmark(recursive_quadrant_mapping, tg, groups)

    # the printed 4x4 location table of Figure 3 (Morton labels)
    rows = []
    for y in range(4):
        rows.append([morton_encode((x, y)) for x in range(4)])
    print_table("F3: grid locations (paper Figure 3 labels)", ["c0", "c1", "c2", "c3"], rows)

    level1 = [morton_encode(mapping.location(TaskId(1, i))) for i in (0, 4, 8, 12)]
    print_table(
        "F3: interior-task placement",
        ["task", "location label"],
        [["root", morton_encode(mapping.location(TaskId(2, 0)))]]
        + [[f"level1 task {i}", loc] for i, loc in zip((0, 4, 8, 12), level1)],
    )
    assert morton_encode(mapping.location(TaskId(2, 0))) == 0
    assert level1 == [0, 4, 8, 12]
    check_all_constraints(mapping)


@pytest.mark.parametrize("side", [8, 16, 32])
def test_mapping_and_constraint_check_scale(benchmark, side):
    grid = OrientedGrid(side)
    tg = build_quadtree(grid)
    groups = HierarchicalGroups(grid)

    def run():
        mapping = recursive_quadrant_mapping(tg, groups)
        check_all_constraints(mapping)
        return mapping

    mapping = benchmark(run)
    assert mapping.is_complete()


def test_automatic_mapping_report(benchmark):
    """The 'automatic mapping tool' slot of the design flow: simulated
    annealing vs the paper's hand mapping (Figure 3)."""
    from repro.core.auto_mapping import anneal_mapping

    grid = OrientedGrid(4)
    tg = build_quadtree(grid)
    groups = HierarchicalGroups(grid)
    paper = recursive_quadrant_mapping(tg, groups)
    paper_energy, paper_latency = paper.communication_cost()

    result = benchmark(anneal_mapping, tg, grid, None, None, 3000, 10.0, 0.995, 5)
    energy, latency = result.mapping.communication_cost()
    print_table(
        "F3+: hand mapping (paper) vs simulated annealing (4x4)",
        ["mapping", "total energy", "latency"],
        [
            ["recursive quadrant (Figure 3)", f"{paper_energy:.0f}",
             f"{paper_latency:.0f}"],
            ["simulated annealing", f"{energy:.0f}", f"{latency:.0f}"],
        ],
    )
    print(
        "the hand mapping trades ~17% energy for structural nesting "
        "(leaders lead all\nlower levels, enabling the Figure 4 "
        "self-message); the annealer prefers centroids."
    )
    check_all_constraints(result.mapping)
    assert energy <= paper_energy


def test_mapping_cost_evaluation(benchmark):
    """Cost of evaluating a candidate mapping (the inner loop of any
    search-based mapper)."""
    grid = OrientedGrid(16)
    tg = build_quadtree(grid)
    groups = HierarchicalGroups(grid)
    mapping = recursive_quadrant_mapping(tg, groups)
    energy, latency = benchmark(mapping.communication_cost)
    assert energy > 0 and latency > 0
