"""E3 — Section 4.2: group-communication cost proportional to hop distance.

The middleware contract: "the latency and energy of transmitting a data
packet from a level i follower to the level i leader is proportional to the
minimum number of hops separating them in the virtual network graph".
Measures member->leader costs at every hierarchy level and checks exact
proportionality.
"""

from __future__ import annotations

import pytest

from repro.core import HierarchicalGroups, OrientedGrid, UniformCostModel
from repro.core.analysis import group_communication_cost_table
from repro.core.primitives import PrimitiveEnvironment

from conftest import print_table

SIDE = 16


def test_cost_table(benchmark):
    table = benchmark(group_communication_cost_table, SIDE)
    rows = [
        [level, f"{v['max_hops']:.0f}", f"{v['mean_hops']:.2f}", f"{v['total_hops']:.0f}"]
        for level, v in sorted(table.items())
    ]
    print_table(
        "E3: member->leader hop profile per hierarchy level (16x16)",
        ["level", "max hops", "mean hops", "total hops"],
        rows,
    )
    # max hops = block diameter to the NW corner: 2 (2^k - 1)
    for level, v in table.items():
        assert v["max_hops"] == 2 * (2**level - 1)


def test_measured_cost_proportional_to_hops(benchmark):
    """Send from every follower to its leader; energy / hops is constant."""
    grid = OrientedGrid(8)
    groups = HierarchicalGroups(grid)

    def run():
        env = PrimitiveEnvironment(grid, groups=groups)
        samples = []
        for level in range(1, groups.max_level + 1):
            for member in grid.nodes():
                hops = groups.follower_to_leader_hops(member, level)
                if hops == 0:
                    continue
                before = env.ledger.total
                latency = env.send_to_leader(member, level, payload=None)
                energy = env.ledger.total - before
                samples.append((hops, energy, latency))
        return samples

    samples = benchmark(run)
    for hops, energy, latency in samples:
        assert energy == 2.0 * hops  # tx + rx per hop
        assert latency == 1.0 * hops


@pytest.mark.parametrize("level", [1, 2, 3, 4])
def test_gather_round_cost(benchmark, level):
    """A full level-gather round via the collective primitive."""
    grid = OrientedGrid(16)
    groups = HierarchicalGroups(grid)

    def run():
        env = PrimitiveEnvironment(grid, groups=groups)
        _, report = env.gather_to_leader((0, 0), level, value_of=lambda m: 1.0)
        return report

    report = benchmark(run)
    assert report.messages == 4**level - 1
