"""E1 — Section 4.1's headline claim: the algorithm runs in O(sqrt(N)) steps.

Measures rounds-to-completion (unit messages, free compute — the paper's
"step" measure) across grid sizes and fits the scaling exponent against N;
the closed form is ``2 * (sqrt(N) - 1)``, exponent 0.5.
"""

from __future__ import annotations

import math

import pytest

from repro.core import CountAggregation, VirtualArchitecture
from repro.core.analysis import quadtree_step_count

from conftest import print_table

SIDES = [4, 8, 16, 32, 64]


def measure(side: int) -> float:
    va = VirtualArchitecture(side)
    result = va.execute(CountAggregation(lambda c: True), charge_compute=False)
    return result.latency


@pytest.mark.parametrize("side", SIDES)
def test_round_latency(benchmark, side):
    latency = benchmark(measure, side)
    assert latency == quadtree_step_count(side)


def test_scaling_series_report(benchmark):
    latencies = benchmark(lambda: [measure(s) for s in SIDES])
    rows = []
    for side, lat in zip(SIDES, latencies):
        n = side * side
        rows.append(
            [n, side, f"{lat:.0f}", quadtree_step_count(side), f"{lat / math.sqrt(n):.2f}"]
        )
    print_table(
        "E1: steps vs N (paper: O(sqrt N), closed form 2(sqrt(N)-1))",
        ["N", "sqrt(N)", "measured steps", "closed form", "steps/sqrt(N)"],
        rows,
    )
    # fit exponent of steps ~ N^alpha
    xs = [math.log(s * s) for s in SIDES]
    ys = [math.log(l) for l in latencies]
    n = len(xs)
    slope = (n * sum(x * y for x, y in zip(xs, ys)) - sum(xs) * sum(ys)) / (
        n * sum(x * x for x in xs) - sum(xs) ** 2
    )
    print(f"fitted exponent alpha = {slope:.3f} (paper claim: 0.5)")
    assert abs(slope - 0.5) < 0.05
