"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one paper artifact (figure) or claim
(experiment id in DESIGN.md).  Benchmarks both *time* the relevant stage
with pytest-benchmark and *print* the regenerated table/series (visible
with ``pytest benchmarks/ --benchmark-only -s``); shape assertions keep the
regeneration honest even when output is captured.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.deployment import (
    CellGrid,
    Terrain,
    build_network,
    ensure_coverage,
    uniform_random,
)


def make_deployment(
    side: int = 4,
    n_random: int = 90,
    terrain_side: float = 100.0,
    range_cells: float = 2.3,
    seed: int = 7,
):
    """A covered, connected deployment over a ``side x side`` cell grid."""
    terrain = Terrain(terrain_side)
    cells = CellGrid(terrain, side)
    rng = np.random.default_rng(seed)
    positions = ensure_coverage(uniform_random(n_random, terrain, rng), cells, rng)
    net = build_network(positions, cells, tx_range=cells.cell_side * range_cells)
    assert net.validate_protocol_preconditions() == []
    return net


def print_table(title: str, headers, rows) -> None:
    """Render one regenerated paper table to stdout."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
