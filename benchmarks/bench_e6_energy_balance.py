"""E6 — ablation: leader-placement policy vs energy metrics.

Section 4.2 lets the mapping optimize "new performance metrics such as
total energy and/or energy balance"; the middleware's leader policy is the
knob.  Compares the paper's NW-corner policy against centre and random
placement on total energy, hot-spot load, balance, and system lifetime.
"""

from __future__ import annotations

import pytest

from repro.core import (
    CenterLeaderPolicy,
    CountAggregation,
    NorthWestLeaderPolicy,
    RandomLeaderPolicy,
    VirtualArchitecture,
)
from repro.core.cost_model import system_lifetime

from conftest import print_table

SIDE = 16

POLICIES = {
    "north-west (paper)": None,  # default
    "centre": CenterLeaderPolicy(),
    "random": RandomLeaderPolicy(seed=3),
}


def run_policy(policy):
    va = VirtualArchitecture(SIDE, leader_policy=policy)
    result = va.execute(CountAggregation(lambda c: True), charge_compute=False)
    report = result.report()
    lifetime = system_lifetime(result.ledger, initial_energy=10_000.0)
    return result, report, lifetime


@pytest.mark.parametrize("name", list(POLICIES))
def test_policy_round(benchmark, name):
    result, report, _ = benchmark(run_policy, POLICIES[name])
    assert result.root_payload == SIDE * SIDE  # correctness under any policy


def test_ablation_report(benchmark):
    rows = benchmark(
        lambda: {name: run_policy(p) for name, p in POLICIES.items()}
    )
    table = []
    for name, (result, report, lifetime) in rows.items():
        table.append(
            [
                name,
                f"{report.total_energy:.0f}",
                f"{report.max_node_energy:.0f}",
                f"{report.energy_balance:.3f}",
                f"{lifetime:.0f}",
                f"{report.latency:.0f}",
            ]
        )
    print_table(
        "E6: leader-policy ablation (16x16, unit count reduction)",
        ["policy", "total energy", "hot-spot energy", "balance",
         "lifetime (rounds)", "latency"],
        table,
    )
    nw = rows["north-west (paper)"][1]
    centre = rows["centre"][1]
    # centre placement shortens member->leader paths: lower total energy
    assert centre.total_energy <= nw.total_energy
    # every policy yields the same correct answer; the trade is cost shape
    assert all(r[0].root_payload == SIDE * SIDE for r in rows.values())
