"""E5 — Section 5.2: binding virtual processes to physical nodes.

Measures the leader-election protocol's convergence time, message count,
and energy across density and radio range; checks correctness (unique
leader = argmin distance-to-centre per cell) and the quality of the
alignment between problem geometry and network geometry.
"""

from __future__ import annotations

import pytest

from repro.runtime import bind_processes, oracle_binding, residual_energy_metric

from conftest import make_deployment, print_table


@pytest.mark.parametrize("n_random", [60, 120, 240])
def test_election_cost_vs_density(benchmark, n_random):
    net = make_deployment(side=4, n_random=n_random, seed=9)
    result = benchmark(bind_processes, net)
    assert result.binding.verify() == []


@pytest.mark.parametrize("range_cells", [0.8, 1.2, 2.3])
def test_election_cost_vs_range(benchmark, range_cells):
    net = make_deployment(side=4, n_random=260, range_cells=range_cells, seed=6)
    result = benchmark(bind_processes, net)
    assert result.binding.verify() == []


def test_binding_report(benchmark):
    def run():
        rows = []
        for n_random, range_cells in ((60, 2.3), (120, 2.3), (240, 2.3), (260, 1.0)):
            net = make_deployment(
                side=4, n_random=n_random, range_cells=range_cells, seed=6
            )
            result = bind_processes(net)
            # geometry alignment: mean leader distance-to-centre, relative
            # to the cell half-diagonal
            import math

            half_diag = net.cells.cell_side * math.sqrt(2) / 2
            dists = [
                net.cells.distance_to_center(
                    net.node(leader).position, cell
                ) / half_diag
                for cell, leader in result.binding.leaders.items()
            ]
            rows.append(
                [
                    len(net),
                    range_cells,
                    f"{result.setup_time:.1f}",
                    result.messages,
                    f"{result.energy:.0f}",
                    f"{sum(dists) / len(dists):.3f}",
                ]
            )
        return rows

    rows = benchmark(run)
    print_table(
        "E5: process binding (leader election), 4x4 cells",
        ["nodes", "range (cells)", "converge time", "messages", "energy",
         "mean dist-to-centre (rel.)"],
        rows,
    )
    # denser deployments find leaders closer to the geometric centre
    rel = [float(r[5]) for r in rows[:3]]
    assert rel[0] >= rel[-1]


def test_alternative_metric(benchmark):
    """Election under the residual-energy criterion (leader rotation).

    Note: each benchmark round drains batteries (the election itself costs
    energy), so the winner legitimately shifts between rounds — exactly
    the rotation behaviour the metric exists for.  Assert structure only.
    """
    net = make_deployment(side=4, n_random=200, seed=10)
    result = benchmark(bind_processes, net, residual_energy_metric)
    assert len(result.binding.leaders) == 16
    for cell, leader in result.binding.leaders.items():
        assert leader in net.members_of_cell(cell, alive_only=False)
