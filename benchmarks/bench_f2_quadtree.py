"""F2 — Figure 2: the quad-tree task-graph representation.

Regenerates the published figure (node labels 0..15 at level 0, {0, 4, 8,
12} at level 1, {0} at level 2 for the 4x4 grid) and times construction
across grid sizes.
"""

from __future__ import annotations

import pytest

from repro.core import OrientedGrid, build_quadtree, quadtree_ascii
from repro.core.taskgraph import TaskId

from conftest import print_table


def test_figure2_regeneration(benchmark):
    """Build the exact Figure 2 graph and print it."""
    grid = OrientedGrid(4)
    tg = benchmark(build_quadtree, grid)

    levels = tg.levels()
    rows = [
        [f"level {lv[0].tid.level}", sorted(t.tid.index for t in lv)]
        for lv in levels
    ]
    print_table("F2: quad-tree node labels (paper Figure 2)", ["level", "labels"], rows)
    print(quadtree_ascii(tg))

    assert sorted(t.tid.index for t in levels[0]) == list(range(16))
    assert sorted(t.tid.index for t in levels[1]) == [0, 4, 8, 12]
    assert [t.tid.index for t in levels[2]] == [0]
    assert sorted(t.index for t in tg.predecessors(TaskId(2, 0))) == [0, 4, 8, 12]


@pytest.mark.parametrize("side", [8, 16, 32, 64])
def test_construction_scales(benchmark, side):
    """Construction cost grows linearly with task count (4N/3)."""
    grid = OrientedGrid(side)
    tg = benchmark(build_quadtree, grid)
    expected = sum((side // 2**k) ** 2 for k in range(grid.max_level + 1))
    assert len(tg) == expected


def test_validation_cost(benchmark):
    """Structural validation of a 32x32 graph."""
    tg = build_quadtree(OrientedGrid(32))
    benchmark(tg.validate)
