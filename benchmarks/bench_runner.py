#!/usr/bin/env python
"""CLI entry for the perf-regression harness (thin wrapper over
``repro.bench`` so it works both as a script and as ``python -m repro.bench``).

Examples::

    PYTHONPATH=src python benchmarks/bench_runner.py                # full run
    PYTHONPATH=src python benchmarks/bench_runner.py --check        # < 60 s gate
    PYTHONPATH=src python benchmarks/bench_runner.py --workers 4    # E1 suite
                                  # sharded across 4 repro.sweep workers
    PYTHONPATH=src python benchmarks/bench_runner.py --profile      # cProfile
                                  # the measurement phase; the pstats dump
                                  # lands next to the BENCH_*.json artifacts

``python -m repro bench ...`` is the same entry point with the same flags.

Larger ad-hoc parameter sweeps (grids over side / loss / jitter / churn /
threshold, replicated seeds, multi-core shards, JSONL results) belong to
the sweep orchestrator instead: ``python -m repro sweep --help``.

The full run appends one per-commit entry to the ``BENCH_micro.json`` and
``BENCH_e1.json`` trajectories (events/sec, wall time per N, determinism
fingerprints, speedup gates) in ``--out-dir`` (default: the current
directory — run from the repo root to grow the committed artifacts), and
gates against the best recorded run plus the >= 2x timer-wheel target.

This file intentionally holds no benchmark logic: the workloads, the
determinism assertions, and the artifact format live in ``repro.bench`` so
tests can import them.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
