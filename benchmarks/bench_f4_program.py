"""F4 — Figure 4: the synthesized reactive program.

Regenerates the program text, then executes one full round of it on the
virtual grid (counting rule firings and messages) and on the deployed
physical stack — the two backends running the *same* program objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import feature_matrix_aggregation, random_feature_matrix
from repro.core import VirtualArchitecture
from repro.core.executor import execute_round
from repro.runtime import deploy

from conftest import make_deployment, print_table


def test_figure4_text_regeneration(benchmark):
    va = VirtualArchitecture(4)
    feat = random_feature_matrix(4, 0.5, rng=1)
    spec = va.synthesize(feature_matrix_aggregation(feat))
    text = benchmark(spec.render_figure4)
    print("\n=== F4: synthesized program specification (paper Figure 4) ===")
    print(text)
    for token in ("start = true", "received mGraph", "transmit = true",
                  "msgsReceived", "exfiltrate"):
        assert token in text


@pytest.mark.parametrize("side", [4, 8, 16])
def test_program_round_virtual(benchmark, side):
    """One round of the Figure 4 program on the virtual grid."""
    va = VirtualArchitecture(side)
    feat = random_feature_matrix(side, 0.4, rng=2)
    agg = feature_matrix_aggregation(feat)

    def run():
        return va.execute(agg)

    result = benchmark(run)
    assert len(result.exfiltrated) == 1


def test_program_round_deployed(benchmark):
    """The same program executed over the physical stack."""
    net = make_deployment(side=4, seed=7)
    stack = deploy(net)
    va = VirtualArchitecture(4)
    feat = random_feature_matrix(4, 0.4, rng=3)

    def run():
        spec = va.synthesize(feature_matrix_aggregation(feat))
        return stack.run_application(spec)

    result = benchmark(run)
    assert result.drops == 0


def test_program_report(benchmark):
    """Print the per-round execution profile of the synthesized program."""
    side = 8
    va = VirtualArchitecture(side)
    feat = random_feature_matrix(side, 0.4, rng=4)
    agg = feature_matrix_aggregation(feat)
    result = benchmark(lambda: execute_round(agg and va.synthesize(agg)))
    print_table(
        "F4: one round of the synthesized program (8x8)",
        ["metric", "value"],
        [
            ["mGraph messages", result.messages],
            ["data units moved", f"{result.data_units:.0f}"],
            ["hop-units", f"{result.hop_units:.0f}"],
            ["stimuli processed", result.events],
            ["latency", f"{result.latency:.1f}"],
            ["total energy", f"{result.ledger.total:.1f}"],
        ],
    )
    # 3 external messages per group: 3 * (16 + 4 + 1) for an 8x8 grid
    assert result.messages == 63
    assert result.events == side * side + result.messages
