"""E8 — Section 7's robustness discussion: behaviour under faults.

The paper's protocols assume periodic re-execution for churn; this
experiment quantifies it: labeling correctness and recovery cost after
node failures, leader failures, and message loss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    count_regions,
    feature_matrix_aggregation,
    random_feature_matrix,
)
from repro.core import VirtualArchitecture
from repro.runtime import deploy, kill_leaders, kill_random_nodes, recover

from conftest import make_deployment, print_table

SIDE = 4


def fresh_stack(seed=7, n_random=240):
    net = make_deployment(side=SIDE, n_random=n_random, seed=seed)
    return net, deploy(net)


def test_recovery_after_leader_loss(benchmark):
    def run():
        net, stack = fresh_stack()
        kill_leaders(net, stack.binding)
        return recover(net, previous=stack)

    report = benchmark(run)
    assert report.recovered
    assert report.reelected_cells == SIDE * SIDE


@pytest.mark.parametrize("fraction", [0.1, 0.3])
def test_recovery_after_random_churn(benchmark, fraction):
    def run():
        net, stack = fresh_stack()
        kill_random_nodes(net, fraction, rng=1)
        return recover(net, previous=stack)

    report = benchmark(run)
    # dense deployments survive these fractions
    assert report.recovered


def test_fault_report(benchmark):
    def run():
        rows = []
        feat = random_feature_matrix(SIDE, 0.5, rng=2)
        va = VirtualArchitecture(SIDE)
        truth = count_regions(feat)

        # baseline: healthy run
        net, stack = fresh_stack()
        healthy = stack.run_application(
            va.synthesize(feature_matrix_aggregation(feat))
        )
        rows.append(["healthy", "-", healthy.root_payload.total_regions() == truth,
                     healthy.transmissions, 0])

        # kill every leader, recover, re-run
        net, stack = fresh_stack()
        kill_leaders(net, stack.binding)
        rec = recover(net, previous=stack)
        rerun = rec.stack.run_application(
            va.synthesize(feature_matrix_aggregation(feat))
        )
        rows.append(
            ["all leaders fail", "re-deploy", rerun.root_payload.total_regions() == truth,
             rerun.transmissions, rec.setup_messages]
        )

        # 30% random churn, recover, re-run
        net, stack = fresh_stack()
        kill_random_nodes(net, 0.3, rng=3)
        rec = recover(net, previous=stack)
        ok = False
        tx = 0
        if rec.recovered:
            rerun = rec.stack.run_application(
                va.synthesize(feature_matrix_aggregation(feat))
            )
            ok = bool(rerun.exfiltrated) and (
                rerun.root_payload.total_regions() == truth
            )
            tx = rerun.transmissions
        rows.append(["30% node churn", "re-deploy", ok, tx, rec.setup_messages])

        # message loss without recovery: may stall, never mislabels
        net, stack = fresh_stack()
        lossy = stack.run_application(
            va.synthesize(feature_matrix_aggregation(feat)),
            loss_rate=0.1,
            rng=np.random.default_rng(4),
        )
        outcome = (
            lossy.root_payload.total_regions() == truth
            if lossy.exfiltrated
            else "stalled (no wrong answer)"
        )
        rows.append(["10% msg loss", "none", outcome, lossy.transmissions, 0])

        # the same loss with hop-by-hop ARQ: completes correctly
        net, stack = fresh_stack()
        arq = stack.run_application(
            va.synthesize(feature_matrix_aggregation(feat)),
            loss_rate=0.1,
            rng=np.random.default_rng(4),
            reliable=True,
            max_retries=6,
        )
        arq_ok = (
            arq.root_payload.total_regions() == truth
            if arq.exfiltrated
            else False
        )
        rows.append(
            ["10% msg loss", "hop-by-hop ARQ", arq_ok, arq.transmissions, 0]
        )
        return rows

    rows = benchmark(run)
    print_table(
        "E8: fault injection on the deployed stack (4x4 cells)",
        ["fault", "mitigation", "correct result", "app transmissions",
         "recovery messages"],
        rows,
    )
    assert rows[0][2] is True
    assert rows[1][2] is True
