"""Conservative-lookahead execution of space-partitioned runs.

The protocol (full spec: DESIGN.md §12) is windowed conservative PDES:

* Every shard owns a full :class:`~repro.simulator.engine.Simulator` /
  :class:`~repro.simulator.network.WirelessMedium` / process slice over a
  *replica* of the deployment, with deliveries to remote nodes diverted
  into egress records instead of local events.
* The driver advances all shards in lockstep windows.  Window ``k`` ends
  at horizon ``H_k = max(H_{k-1} + L, T_min + L)`` where ``L`` is the
  lookahead (the smallest per-hop radio latency in play) and ``T_min`` is
  the earliest pending event or buffered boundary arrival across shards —
  the ``max`` fast-forwards across empty stretches of virtual time
  without ever skipping a region that could emit cross-shard traffic.
* At each barrier the driver routes every egress record to its owning
  shard, which injects it at its exact arrival time before the next
  window.  A shard with nothing to say still answers the barrier — that
  empty reply is the null message that keeps quiet borders deadlock-free.
* The run terminates when every shard is drained and no egress is in
  flight; a wall-clock watchdog and an event budget bound livelock.

Determinism (the serial == partitioned invariant) comes from four rules:
each shard world is built from the *same pickled bytes* whether it runs
in-process or in a worker; per-shard RNG streams are ``spawn``-ed from
the root generator once, in shard order; boundary arrivals are injected
in ``(time, src_shard, emit_seq)`` order; and merged observables are
either commutative sums (stats, energy, counters) or owner-resolved
(exfiltrated values, fault logs, battery write-back).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time as wall_time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.coords import GridCoord
from ..core.cost_model import CostModel, EnergyLedger, UniformCostModel
from ..simulator.engine import Simulator
from ..simulator.network import Packet, PartitionSlice, WirelessMedium
from ..simulator.process import Process, ProcessHost
from ..simulator.trace import MediumStats, stable_digest
from ..runtime.faults import FaultEvent, FaultInjector, FaultPlan, FaultReport, HealingConfig
from ..runtime.wire import decode_packet, encode_packet
from ..scenario import Scenario, ScenarioInjector, ScenarioReport, merge_scenario_reports
from .plan import ShardPlan, plan_stripes

#: Packet kind used by the synthetic broadcast-storm workload.
STORM_KIND = "storm"

#: Environment variable the sweep scheduler exports to its workers so
#: nested partitioned runs can see how many siblings share the machine.
SWEEP_WORKERS_ENV = "REPRO_SWEEP_WORKERS"


# -- lookahead and core budgeting --------------------------------------------------


def default_lookahead(
    cost_model: Optional[CostModel] = None,
    healing: Optional[HealingConfig] = None,
) -> float:
    """The conservative per-hop latency bound for a configuration.

    The medium's delay for a frame of ``s`` data units is
    ``tx_latency(s)``, monotone in ``s``, so the lookahead is the latency
    of the *smallest* frame the runtime can emit: heartbeats/takeovers
    (``heartbeat_size_units``) when healing is enabled, else the unit
    frame (application messages and acks default to 1.0 data units).  The
    medium re-checks the bound on every egress, so an exotic workload
    sending sub-unit frames fails loudly instead of dropping causality.
    """
    cost_model = cost_model or UniformCostModel()
    min_units = healing.heartbeat_size_units if healing is not None else 1.0
    return cost_model.tx_latency(min_units)


@dataclass(frozen=True)
class ProcBudget:
    """Resolved worker-process count for a partitioned run.

    ``procs`` is what the run will actually use; ``requested`` is what the
    caller asked for (defaulting to one process per shard).  When a sweep
    campaign is driving (``REPRO_SWEEP_WORKERS`` exported by the
    scheduler), the per-run budget is ``cpus // sweep_workers`` so K-way
    runs inside an N-way sweep cannot oversubscribe the machine.
    """

    procs: int
    requested: int
    cpu_budget: int
    sweep_workers: int

    @property
    def clamped(self) -> bool:
        """Whether nested-parallelism clamping reduced the requested count."""
        return self.procs < self.requested


def effective_procs(partitions: int, procs: Optional[int] = None) -> ProcBudget:
    """Clamp the worker count for a ``partitions``-shard run.

    The shard count K is part of the run's *semantic* configuration (it
    selects the per-shard RNG streams), so oversubscription is always
    resolved by shrinking the process pool — workers then multiplex
    several shard worlds — never by changing K.

    The cpu budget binds only when ``procs`` is auto-resolved (``None``):
    an explicit ``procs`` is an operator override, clamped just by the
    shard count.  Inside a daemonic process (a sweep shard worker) the
    pool is always pinned to 1 regardless: daemons cannot spawn
    children, so the run executes its shard worlds serially in-process —
    same fingerprint, no fork.
    """
    cpus = os.cpu_count() or 1
    try:
        sweep_workers = max(1, int(os.environ.get(SWEEP_WORKERS_ENV, "1")))
    except ValueError:
        sweep_workers = 1
    budget = max(1, cpus // sweep_workers)
    requested = partitions if procs is None else max(1, min(partitions, int(procs)))
    allowed = min(requested, budget) if procs is None else requested
    if mp.current_process().daemon:
        allowed = 1
    return ProcBudget(
        procs=max(1, allowed),
        requested=requested,
        cpu_budget=budget,
        sweep_workers=sweep_workers,
    )


# -- shard jobs (the pickled construction recipe) ----------------------------------


@dataclass
class _AppJob:
    """Everything a worker needs to build one application-round shard."""

    stack: Any
    spec: Any
    plan: ShardPlan
    lookahead: float
    loss_rate: float
    jitter: float
    reliable: bool
    max_retries: int
    ack_timeout: float
    wire_format: bool
    backoff_factor: float
    backoff_jitter: float
    fault_plan: Optional[FaultPlan]
    healing: Optional[HealingConfig]
    scenario: Optional[Scenario]


@dataclass
class _StormJob:
    """Construction recipe for the synthetic broadcast-storm workload."""

    network: Any
    cost_model: Any
    plan: ShardPlan
    lookahead: float
    loss_rate: float
    jitter: float
    rounds: int
    interval: float
    size_units: float


class _StormProcess(Process):
    """Every node broadcasts ``rounds`` numbered frames, one per interval.

    Fully in-simulation (timer-driven, no external loop touching the
    simulator), so the same process definition runs unchanged inside a
    shard worker — unlike the bench's external-loop storms.
    """

    def __init__(self, rounds: int, interval: float, size_units: float):
        super().__init__()
        self._rounds = rounds
        self._interval = interval
        self._size = size_units
        self._sent = 0

    def on_start(self) -> None:
        self._fire()

    def on_timer(self, tag: Any) -> None:
        self._fire()

    def _fire(self) -> None:
        self.broadcast(STORM_KIND, self._sent, self._size)
        self._sent += 1
        if self._sent < self._rounds:
            self.set_timer(self._interval, "storm")


# -- per-shard world ---------------------------------------------------------------


@dataclass
class _ShardResult:
    """Final observables of one shard, shipped back at the last barrier."""

    shard_id: int
    ledger: EnergyLedger
    stats: MediumStats
    latency: float
    events: int
    overhead: int
    exfiltrated: Dict[GridCoord, Any]
    counters: Dict[str, int]
    rejected_frames: int
    report: Optional[FaultReport]
    # owner-authoritative write-back state: node_id -> (alive, consumed,
    # initial_energy, position), and cell -> leader for cells this shard owns
    node_state: Dict[int, Tuple[bool, float, float, Tuple[float, float]]]
    leaders: Dict[GridCoord, int]
    scenario_report: Optional[ScenarioReport] = None
    # owner-shard slice of the attacker's delivery tap (time, src, receiver)
    delivery_log: Tuple[Tuple[float, int, int], ...] = ()


class _ShardWorld:
    """One shard's simulator, medium, and resident processes."""

    def __init__(self, job_blob: bytes, shard_id: int, rng: np.random.Generator):
        # Unpickling here — even when the world runs in the parent process
        # (serial mode, or several shards multiplexed on one worker) —
        # gives every shard a private replica of the deployment and makes
        # serial and multiprocess construction literally the same code
        # path on the same bytes.
        job = pickle.loads(job_blob)
        self.job = job
        self.shard_id = shard_id
        plan: ShardPlan = job.plan
        self.plan = plan
        part = None
        if plan.partitions > 1:
            part = PartitionSlice(
                shard_id=shard_id,
                local=frozenset(plan.local_nodes[shard_id]),
                shard_of=plan.shard_of_node,
                lookahead=job.lookahead,
            )
        if isinstance(job, _StormJob):
            self.network = job.network
            self.sim = Simulator()
            self.medium = WirelessMedium(
                self.sim,
                job.network,
                cost_model=job.cost_model,
                loss_rate=job.loss_rate,
                rng=rng,
                jitter=job.jitter,
            )
            if part is not None:
                self.medium.configure_partition(part)
            self.host = ProcessHost(self.sim, self.medium)
        else:
            # application rounds go through the stack's single harness
            # construction point, same as the legacy path
            self.network = job.stack.network
            self.sim, self.medium, self.host = job.stack.make_harness(
                loss_rate=job.loss_rate,
                rng=rng,
                jitter=job.jitter,
                partition=part,
            )
        self.results: Dict[GridCoord, Any] = {}
        self.counters = {"delivered": 0, "dropped": 0, "orphaned": 0}
        self.processes: List[Any] = []
        self.report: Optional[FaultReport] = None
        if isinstance(job, _StormJob):
            self._populate_storm(job)
        else:
            self._populate_app(job)
        self.host.start()
        if isinstance(job, _AppJob) and job.fault_plan:
            self._arm_faults(job)
        self.scenario_injector: Optional[ScenarioInjector] = None
        self.scenario_report: Optional[ScenarioReport] = None
        if isinstance(job, _AppJob) and job.scenario is not None:
            self._arm_scenario(job)
        # boundary packets cross shards as wire-codec bytes when the run
        # exercises the wire format end to end
        self.wire_boundary = isinstance(job, _AppJob) and job.wire_format

    # -- construction ------------------------------------------------------------

    def _local_alive_ids(self) -> List[int]:
        owned = set(self.plan.local_nodes[self.shard_id])
        return [nid for nid in self.network.alive_ids() if nid in owned]

    def _populate_storm(self, job: _StormJob) -> None:
        for nid in self._local_alive_ids():
            proc = _StormProcess(job.rounds, job.interval, job.size_units)
            self.processes.append(proc)
            self.host.add(nid, proc)

    def _populate_app(self, job: _AppJob) -> None:
        from ..runtime.stack import _AppProcess

        if job.fault_plan is not None or job.healing is not None:
            self.report = FaultReport()
        stack = job.stack
        for nid in self._local_alive_ids():
            cell = stack.network.cell_of(nid)
            program = (
                job.spec.program_for(cell)
                if stack.binding.leaders.get(cell) == nid
                else None
            )
            proc = _AppProcess(
                stack.topology,
                stack.binding,
                program,
                self.results,
                self.counters,
                reliable=job.reliable,
                max_retries=job.max_retries,
                ack_timeout=job.ack_timeout,
                wire_format=job.wire_format,
                backoff_factor=job.backoff_factor,
                backoff_jitter=job.backoff_jitter,
                healing=job.healing,
                fault_report=self.report,
                spec=job.spec,
            )
            self.processes.append(proc)
            self.host.add(nid, proc)

    def _owns_event(self, event: FaultEvent) -> bool:
        plan, sid = self.plan, self.shard_id
        if event.action == "kill_node":
            return plan.shard_of_node[event.node] == sid
        if event.action == "kill_leader":
            return plan.shard_of_cell(event.cell) == sid
        if event.action == "partition_links":
            return plan.shard_of_node[event.links[0][0]] == sid
        # corrupt_frame / restore act on shared state replicated
        # everywhere; shard 0 reports them
        return sid == 0

    def _arm_faults(self, job: _AppJob) -> None:
        medium = self.medium

        def count_overhead() -> None:
            medium.partition_overhead += 1

        single = self.plan.partitions == 1
        injector = FaultInjector(
            job.fault_plan,
            job.stack.network,
            job.stack.binding,
            self.report,
            owns=None if single else self._owns_event,
            overhead=None if single else count_overhead,
            # shard 0 owns the (globally shared) corruption budget; other
            # shards still fire the event but install no transform
            install_transform=single or self.shard_id == 0,
        )
        injector.arm(self.sim, medium)

    def _owns_node(self, nid: int) -> bool:
        return self.plan.shard_of_node[nid] == self.shard_id

    def _owns_cell(self, cell: GridCoord) -> bool:
        return self.plan.shard_of_cell(cell) == self.shard_id

    def _arm_scenario(self, job: _AppJob) -> None:
        medium = self.medium

        def count_overhead() -> None:
            medium.partition_overhead += 1

        single = self.plan.partitions == 1
        self.scenario_report = ScenarioReport()
        self.scenario_injector = ScenarioInjector(
            job.scenario,
            job.stack.network,
            job.stack.binding,
            self.host,
            self.scenario_report,
            owns_node=None if single else self._owns_node,
            owns_cell=None if single else self._owns_cell,
            overhead=None if single else count_overhead,
        )
        self.scenario_injector.arm(self.sim, medium)

    # -- window protocol ---------------------------------------------------------

    def advance(
        self,
        horizon: float,
        records: List[Tuple[int, float, int, int, Packet, Tuple[int, ...]]],
    ) -> Tuple[int, int, Optional[float], List[Tuple]]:
        """Inject boundary arrivals, drain events up to ``horizon``, and
        report ``(fired, pending, next_event_time, egress)``."""
        if records:
            records.sort(key=lambda rec: (rec[1], rec[2], rec[3]))
            wire = self.wire_boundary
            inject = self.medium.inject_boundary
            for _, time, _, _, packet, receivers in records:
                if wire:
                    packet = decode_packet(packet)
                inject(time, packet, receivers)
        fired = self.sim.run_until_lookahead(horizon)
        egress = self.medium.drain_egress()
        if self.wire_boundary and egress:
            # ship boundary packets as codec bytes, not pickled objects:
            # the same frames the wire-format run puts on the air
            egress = [
                (rec[0], rec[1], rec[2], rec[3], encode_packet(rec[4]), rec[5])
                for rec in egress
            ]
        return (
            fired,
            self.sim.pending,
            self.sim.next_event_time(),
            egress,
        )

    def finalize(self) -> _ShardResult:
        if self.report is not None:
            self.report.orphaned_deliveries = self.counters["orphaned"]
        delivery_log: Tuple[Tuple[float, int, int], ...] = ()
        if self.scenario_injector is not None:
            # no pursuit here: the parent replays it once over the merged tap
            self.scenario_injector.finalize(pursue=False)
            delivery_log = tuple(self.scenario_injector.delivery_log())
        network = self.network
        node_state = {
            nid: (node.alive, node.consumed_energy, node.initial_energy, node.position)
            for nid in self.plan.local_nodes[self.shard_id]
            for node in (network.nodes[nid],)
        }
        leaders: Dict[GridCoord, int] = {}
        if isinstance(self.job, _AppJob):
            leaders = {
                cell: leader
                for cell, leader in self.job.stack.binding.leaders.items()
                if self.plan.shard_of_cell(cell) == self.shard_id
            }
        return _ShardResult(
            shard_id=self.shard_id,
            ledger=self.medium.ledger,
            stats=self.medium.stats,
            latency=self.sim.now,
            events=self.sim.events_processed,
            overhead=self.medium.partition_overhead,
            exfiltrated=self.results,
            counters=self.counters,
            rejected_frames=sum(
                getattr(p, "rejected_frames", 0) for p in self.processes
            ),
            report=self.report,
            node_state=node_state,
            leaders=leaders,
            scenario_report=self.scenario_report,
            delivery_log=delivery_log,
        )


# -- shard transports (serial multiplexer / pipe hub) ------------------------------


class _SerialShards:
    """All shard worlds multiplexed in the calling process."""

    def __init__(self, job_blob: bytes, rngs: List[np.random.Generator]):
        self.worlds = [
            _ShardWorld(job_blob, sid, rng) for sid, rng in enumerate(rngs)
        ]

    def advance_all(self, horizon: float, inbox: Dict[int, List]) -> List[Tuple]:
        return [w.advance(horizon, inbox[w.shard_id]) for w in self.worlds]

    def finalize_all(self) -> List[_ShardResult]:
        return [w.finalize() for w in self.worlds]

    def close(self) -> None:
        pass


def _worker_main(conn, shard_ids: List[int]) -> None:
    """Worker-process loop: build the assigned shard worlds, then serve
    ``advance`` barriers until ``finalize``.  Any exception is shipped to
    the parent (which re-raises) instead of dying silently."""
    try:
        job_blob = conn.recv_bytes()
        rngs = conn.recv()
        worlds = {
            sid: _ShardWorld(job_blob, sid, rng)
            for sid, rng in zip(shard_ids, rngs)
        }
        conn.send(("ready", None))
        while True:
            msg = conn.recv()
            if msg[0] == "advance":
                _, horizon, per_shard = msg
                out = [
                    (sid, worlds[sid].advance(horizon, per_shard.get(sid, [])))
                    for sid in shard_ids
                ]
                conn.send(("ok", out))
            elif msg[0] == "finalize":
                conn.send(("final", [(sid, worlds[sid].finalize()) for sid in shard_ids]))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {msg[0]!r}")
    except EOFError:  # parent died: exit quietly
        pass
    except Exception as exc:  # ship the failure to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


class _PipeShards:
    """Hub-and-spoke multiprocess transport: the parent is the hub.

    Shards are dealt round-robin onto ``procs`` workers; each barrier is
    one request/reply exchange per worker over an ``mp.Pipe``.  The
    parent routes egress between shards, so workers never talk to each
    other — the topology stays a star regardless of K.
    """

    def __init__(
        self,
        job_blob: bytes,
        rngs: List[np.random.Generator],
        procs: int,
        wall_timeout_s: Optional[float],
    ):
        ctx = mp.get_context()
        self._timeout = wall_timeout_s
        self._assignment: List[List[int]] = [[] for _ in range(procs)]
        for sid in range(len(rngs)):
            self._assignment[sid % procs].append(sid)
        self._conns = []
        self._procs = []
        for shard_ids in self._assignment:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(child_conn, shard_ids), daemon=True
            )
            proc.start()
            child_conn.close()
            parent_conn.send_bytes(job_blob)
            parent_conn.send([rngs[sid] for sid in shard_ids])
            self._conns.append(parent_conn)
            self._procs.append(proc)
        for conn in self._conns:
            self._recv(conn)  # ready barrier: construction errors surface here

    def _recv(self, conn):
        if self._timeout is not None and not conn.poll(self._timeout):
            self.close()
            raise RuntimeError(
                f"partition watchdog: no barrier reply within {self._timeout}s "
                "(deadlocked or wedged shard worker)"
            )
        tag, payload = conn.recv()
        if tag == "error":
            self.close()
            raise RuntimeError(f"shard worker failed: {payload}")
        return payload

    def advance_all(self, horizon: float, inbox: Dict[int, List]) -> List[Tuple]:
        for conn, shard_ids in zip(self._conns, self._assignment):
            conn.send(
                ("advance", horizon, {sid: inbox[sid] for sid in shard_ids})
            )
        results: Dict[int, Tuple] = {}
        for conn in self._conns:
            for sid, res in self._recv(conn):
                results[sid] = res
        return [results[sid] for sid in sorted(results)]

    def finalize_all(self) -> List[_ShardResult]:
        for conn in self._conns:
            conn.send(("finalize",))
        finals: Dict[int, _ShardResult] = {}
        for conn in self._conns:
            for sid, res in self._recv(conn):
                finals[sid] = res
        self.close()
        return [finals[sid] for sid in sorted(finals)]

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)


# -- the window driver -------------------------------------------------------------


def _drive_windows(
    shards,
    n_shards: int,
    lookahead: float,
    max_events: int,
    wall_timeout_s: Optional[float],
) -> int:
    """Advance all shards in conservative lockstep windows until drained.

    Returns the number of synchronization windows executed.
    """
    horizon = 0.0
    inbox: Dict[int, List] = {sid: [] for sid in range(n_shards)}
    # process boots are scheduled at t=0, so 0.0 is a valid (conservative)
    # initial lower bound for every shard's next event
    next_times: List[Optional[float]] = [0.0] * n_shards
    total_fired = 0
    windows = 0
    deadline = (
        None if wall_timeout_s is None else wall_time.monotonic() + wall_timeout_s
    )
    while True:
        times = [t for t in next_times if t is not None]
        times.extend(rec[1] for recs in inbox.values() for rec in recs)
        if not times:
            break  # every queue drained and nothing in flight
        # fast-forward rule: never skip a region that could hold an event,
        # but jump straight across provably empty stretches of time
        horizon = max(horizon + lookahead, min(times) + lookahead)
        results = shards.advance_all(horizon, inbox)
        windows += 1
        inbox = {sid: [] for sid in range(n_shards)}
        any_egress = False
        for sid, (fired, _pending, next_t, egress) in enumerate(results):
            total_fired += fired
            next_times[sid] = next_t
            for rec in egress:
                inbox[rec[0]].append(rec)
                any_egress = True
        if total_fired > max_events:
            raise RuntimeError(
                f"partitioned run exceeded max_events={max_events} "
                f"({total_fired} fired over {windows} windows)"
            )
        if deadline is not None and wall_time.monotonic() > deadline:
            raise RuntimeError(
                f"partition watchdog: run exceeded {wall_timeout_s}s wall clock "
                f"after {windows} windows"
            )
        if not any_egress and all(res[1] == 0 for res in results):
            break
    return windows


def _pickle_job(job) -> bytes:
    try:
        return pickle.dumps(job)
    except Exception as exc:
        raise TypeError(
            "partitioned runs ship the deployment and program spec to shard "
            "workers, so every ingredient must pickle — use module-level "
            f"functions instead of lambdas/closures in aggregation specs ({exc})"
        ) from None


def _make_shards(
    job_blob: bytes,
    rngs: List[np.random.Generator],
    procs: int,
    wall_timeout_s: Optional[float],
):
    if procs <= 1:
        return _SerialShards(job_blob, rngs)
    return _PipeShards(job_blob, rngs, procs, wall_timeout_s)


def _spawn_rngs(
    rng: "np.random.Generator | int | None", partitions: int
) -> List[np.random.Generator]:
    root = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if partitions == 1:
        # K=1 must consume the root stream itself: byte-identical to the
        # legacy single-process run
        return [root]
    return list(root.spawn(partitions))


def merge_fault_reports(
    reports: List[FaultReport], shard_count: int
) -> FaultReport:
    """Fold per-shard fault reports into one deterministic record.

    Counters sum; the event log is the shard-order concatenation stably
    re-sorted by ``(time, action)`` (matching the arming order of a
    whole-world run); failovers sort by ``(time, cell)``.
    """
    merged = FaultReport()
    for report in reports:
        merged.injected.extend(report.injected)
        merged.failovers.extend(report.failovers)
        merged.detected_failures += report.detected_failures
        merged.reroutes += report.reroutes
        merged.redirected_retransmissions += report.redirected_retransmissions
        merged.frames_corrupted += report.frames_corrupted
        merged.frames_rejected += report.frames_rejected
        merged.orphaned_deliveries += report.orphaned_deliveries
    if shard_count > 1:
        merged.injected.sort(key=lambda entry: (entry[0], entry[1]))
        merged.failovers.sort(key=lambda entry: (entry[0], entry[1]))
    return merged


# -- public entry points -----------------------------------------------------------


def run_partitioned_application(
    stack,
    spec,
    partitions: int,
    procs: Optional[int] = None,
    loss_rate: float = 0.0,
    rng: "np.random.Generator | int | None" = None,
    max_events: int = 10_000_000,
    reliable: bool = False,
    max_retries: int = 3,
    ack_timeout: float = 4.0,
    wire_format: bool = False,
    backoff_factor: float = 2.0,
    backoff_jitter: float = 0.5,
    fault_plan: Optional[FaultPlan] = None,
    healing: Optional[HealingConfig] = None,
    scenario: Any = None,
    jitter: float = 0.0,
    lookahead: Optional[float] = None,
    wall_timeout_s: Optional[float] = None,
):
    """Space-partitioned equivalent of ``DeployedStack.run_application``.

    Splits the grid into ``partitions`` cell-aligned stripes and runs the
    application round under the conservative window protocol, on
    ``procs`` worker processes (``None`` = one per shard, clamped to the
    core budget; ``1`` = in-process serial execution of the identical
    shard protocol).  Returns a ``DeployedRunResult`` whose fingerprint
    is invariant to ``procs`` and — for K=1 — byte-identical to the
    legacy path.

    Shard count is part of the seeded configuration: runs with different
    ``partitions`` draw loss/jitter from different per-shard RNG streams,
    exactly as sweep shards do.  After the run, owner-shard node state
    (batteries, liveness) and cell leadership are written back to
    ``stack``, preserving the multi-round "same batteries" contract.
    """
    from ..runtime.stack import DeployedRunResult

    side = stack.network.cells.cells_per_side
    grid = spec.groups.grid
    if (grid.width, grid.height) != (side, side):
        raise ValueError(
            f"program grid {grid.width}x{grid.height} does not match "
            f"the {side}x{side} cell decomposition"
        )
    scenario = Scenario.coerce(scenario)
    if scenario is not None and scenario.is_trivial():
        scenario = None
    if healing is None and (
        fault_plan is not None or (scenario is not None and scenario.mobility)
    ):
        healing = HealingConfig()
    plan = plan_stripes(stack.network, partitions)
    if lookahead is None:
        lookahead = default_lookahead(stack.cost_model, healing)
    job = _AppJob(
        stack=stack,
        spec=spec,
        plan=plan,
        lookahead=lookahead,
        loss_rate=loss_rate,
        jitter=jitter,
        reliable=reliable,
        max_retries=max_retries,
        ack_timeout=ack_timeout,
        wire_format=wire_format,
        backoff_factor=backoff_factor,
        backoff_jitter=backoff_jitter,
        fault_plan=fault_plan,
        healing=healing,
        scenario=scenario,
    )
    job_blob = _pickle_job(job)
    rngs = _spawn_rngs(rng, partitions)
    budget = effective_procs(partitions, procs)
    shards = _make_shards(job_blob, rngs, budget.procs, wall_timeout_s)
    try:
        _drive_windows(shards, partitions, lookahead, max_events, wall_timeout_s)
        results = shards.finalize_all()
    finally:
        shards.close()

    ledger = EnergyLedger()
    stats = MediumStats()
    exfiltrated: Dict[GridCoord, Any] = {}
    counters = {"delivered": 0, "dropped": 0, "orphaned": 0}
    events = 0
    latency = 0.0
    rejected = 0
    for res in results:
        ledger.merge(res.ledger)
        stats.merge(res.stats)
        exfiltrated.update(res.exfiltrated)
        for key in counters:
            counters[key] += res.counters[key]
        events += res.events - res.overhead
        latency = max(latency, res.latency)
        rejected += res.rejected_frames
    report = None
    if any(res.report is not None for res in results):
        report = merge_fault_reports(
            [res.report for res in results if res.report is not None], partitions
        )
    scenario_report = None
    if scenario is not None:
        scenario_report = merge_scenario_reports(
            res.scenario_report for res in results if res.scenario_report is not None
        )
    # pursuit endpoints resolve against the *arm-time* binding (what every
    # shard replica saw), so capture them before the post-run write-back
    # replaces leaderships
    attacker_start: Optional[int] = None
    attacker_sources: Tuple[int, ...] = ()
    if scenario is not None and scenario.attacker is not None:
        leaders = stack.binding.leaders
        attacker_start = leaders.get(scenario.attacker.start_cell)
        attacker_sources = tuple(
            sorted(
                {
                    leaders[c]
                    for c in scenario.attacker.source_cells
                    if leaders.get(c) is not None
                }
            )
        )
    _write_back(stack, results)
    if scenario is not None and scenario.attacker is not None:
        # one pursuit over the merged tap, on post-write-back positions —
        # exactly what the serial injector's finalize() computes
        tap = sorted(rec for res in results for rec in res.delivery_log)
        scenario_report.attacker = scenario.attacker.pursue(
            tap, attacker_start, attacker_sources, stack.network
        )
    return DeployedRunResult(
        exfiltrated=exfiltrated,
        ledger=ledger,
        latency=latency,
        transmissions=stats.transmissions,
        drops=counters["dropped"],
        delivered_envelopes=counters["delivered"],
        events_processed=events,
        rejected_frames=rejected,
        fault_report=report,
        scenario_report=scenario_report,
    )


def _write_back(stack, results: List[_ShardResult]) -> None:
    """Copy owner-shard replica state onto the parent stack.

    Batteries drained (and kills suffered) inside shard replicas must
    land on the parent ``RealNetwork`` so successive rounds on one stack
    keep draining the same batteries, and post-failover leadership must
    land on the parent binding so the next round hosts programs where the
    healed run left them.  Gradient/topology healing state intentionally
    stays per-run (a fresh round re-heals), mirroring how each legacy
    round gets a fresh simulator.
    """
    network = stack.network
    for res in results:
        for nid, (alive, consumed, initial, position) in res.node_state.items():
            node = network.nodes[nid]
            if node.position != position:
                # mobility re-homed this node inside its owner replica:
                # replay the move so parent adjacency/cell state match
                network.move_node(nid, position)
            node.initial_energy = initial
            node._consumed = consumed
            node.alive = alive
        if res.leaders:
            stack.binding.leaders.update(res.leaders)
    network._bump_liveness_generation()


@dataclass
class StormOutcome:
    """Merged observables of a (possibly partitioned) broadcast storm."""

    transmissions: int
    deliveries: int
    drops: int
    events_processed: int
    latency: float
    windows: int
    partitions: int
    procs: int
    fingerprint: str


def run_partitioned_storm(
    network,
    rounds: int = 10,
    interval: float = 2.0,
    size_units: float = 1.0,
    partitions: int = 1,
    procs: Optional[int] = None,
    loss_rate: float = 0.0,
    jitter: float = 0.0,
    rng: "np.random.Generator | int | None" = None,
    cost_model: Optional[CostModel] = None,
    max_events: int = 50_000_000,
    lookahead: Optional[float] = None,
    wall_timeout_s: Optional[float] = None,
) -> StormOutcome:
    """Timer-driven broadcast storm, the partition bench/test workload.

    ``partitions=1`` runs the legacy whole-world path (one simulator, no
    window machinery) — the honest serial baseline the bench's speedup
    gate compares against.  With ``loss_rate == jitter == 0`` no RNG is
    consumed, so the outcome fingerprint is invariant across K and the
    bench asserts serial == partitioned on top of timing.
    """
    cost_model = cost_model or UniformCostModel()
    if lookahead is None:
        lookahead = cost_model.tx_latency(size_units)
    plan = plan_stripes(network, partitions)
    job = _StormJob(
        network=network,
        cost_model=cost_model,
        plan=plan,
        lookahead=lookahead,
        loss_rate=loss_rate,
        jitter=jitter,
        rounds=rounds,
        interval=interval,
        size_units=size_units,
    )
    job_blob = _pickle_job(job)
    rngs = _spawn_rngs(rng, partitions)
    if partitions == 1:
        world = _ShardWorld(job_blob, 0, rngs[0])
        world.sim.run(max_events=max_events)
        if world.sim.pending:
            raise RuntimeError("storm did not quiesce within the event budget")
        results = [world.finalize()]
        windows = 0
        used_procs = 1
    else:
        budget = effective_procs(partitions, procs)
        used_procs = budget.procs
        shards = _make_shards(job_blob, rngs, budget.procs, wall_timeout_s)
        try:
            windows = _drive_windows(
                shards, partitions, lookahead, max_events, wall_timeout_s
            )
            results = shards.finalize_all()
        finally:
            shards.close()
    stats = MediumStats()
    ledger = EnergyLedger()
    events = 0
    latency = 0.0
    for res in results:
        stats.merge(res.stats)
        ledger.merge(res.ledger)
        events += res.events - res.overhead
        latency = max(latency, res.latency)
    fingerprint = stable_digest(
        (stats.fingerprint(), ledger.fingerprint(), events, latency)
    )
    return StormOutcome(
        transmissions=stats.transmissions,
        deliveries=stats.deliveries,
        drops=stats.drops,
        events_processed=events,
        latency=latency,
        windows=windows,
        partitions=partitions,
        procs=used_procs,
        fingerprint=fingerprint,
    )
