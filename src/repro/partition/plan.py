"""Shard planning for the space-partitioned simulator (DESIGN.md §12).

The deployment grid is cut into ``K`` contiguous, cell-aligned vertical
stripes (equal widths, so ``K`` must divide the side).  Cell alignment is
what makes partitioning compose with the rest of the runtime: a cell's
members — and therefore its leader, its candidate failover successors,
and every EXFILTRATE sink — all live on one shard, so only *radio*
traffic ever crosses a boundary, never protocol ownership.

The plan is a pure function of the deployment geometry (not of liveness
or traffic), so the same seeded configuration always yields the same
decomposition — a precondition for the serial == partitioned fingerprint
invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.coords import GridCoord
from ..deployment.topology import RealNetwork


@dataclass(frozen=True)
class ShardPlan:
    """The static decomposition of one deployment into ``partitions`` shards.

    ``local_nodes[k]`` is the sorted tuple of node ids shard ``k`` owns;
    ``shard_of_node`` maps every node to its owner.  ``neighbor_shards[k]``
    lists the shards that share at least one radio edge with ``k`` (with a
    long radio range and narrow stripes this can reach beyond ``k±1``);
    ``boundary_cells`` are the cells containing at least one node with a
    remote radio neighbour — where cross-shard egress can originate.
    """

    partitions: int
    side: int
    shard_of_node: Dict[int, int]
    local_nodes: Tuple[Tuple[int, ...], ...]
    neighbor_shards: Tuple[Tuple[int, ...], ...]
    boundary_cells: Tuple[GridCoord, ...]

    def shard_of_cell(self, cell: GridCoord) -> int:
        """Owning shard of a cell: equal-width stripes along the x axis."""
        return cell[0] * self.partitions // self.side


def plan_stripes(network: RealNetwork, partitions: int) -> ShardPlan:
    """Cut ``network`` into ``partitions`` equal vertical cell stripes.

    Raises :class:`ValueError` unless ``1 <= partitions <= side`` and
    ``partitions`` divides the grid side — unequal stripes would make the
    shard of a cell depend on rounding, and the paper's power-of-two grid
    sides make the divisibility requirement free in practice.
    """
    side = network.cells.cells_per_side
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    if partitions > side or side % partitions != 0:
        raise ValueError(
            f"partitions must divide the grid side ({side}), got {partitions}"
        )
    shard_of_node: Dict[int, int] = {}
    local: List[List[int]] = [[] for _ in range(partitions)]
    for nid in sorted(network.nodes):
        shard = network.cell_of(nid)[0] * partitions // side
        shard_of_node[nid] = shard
        local[shard].append(nid)
    neighbors: List[set] = [set() for _ in range(partitions)]
    boundary: List[GridCoord] = []
    boundary_seen = set()
    for nid in sorted(network.nodes):
        shard = shard_of_node[nid]
        for nbr in network.neighbor_set(nid):
            other = shard_of_node[nbr]
            if other != shard:
                neighbors[shard].add(other)
                cell = network.cell_of(nid)
                if cell not in boundary_seen:
                    boundary_seen.add(cell)
                    boundary.append(cell)
    return ShardPlan(
        partitions=partitions,
        side=side,
        shard_of_node=shard_of_node,
        local_nodes=tuple(tuple(ids) for ids in local),
        neighbor_shards=tuple(tuple(sorted(s)) for s in neighbors),
        boundary_cells=tuple(sorted(boundary)),
    )
