"""Space-partitioned parallel simulation (DESIGN.md §12).

Splits a deployment into K contiguous cell-aligned shards, each owning a
simulator/medium/process slice, advanced in conservative-lookahead
windows with boundary traffic exchanged at barriers — multi-core speedup
for a *single* run, with serial == partitioned fingerprints guaranteed
for every seeded configuration.
"""

from .plan import ShardPlan, plan_stripes
from .runner import (
    ProcBudget,
    StormOutcome,
    SWEEP_WORKERS_ENV,
    default_lookahead,
    effective_procs,
    merge_fault_reports,
    run_partitioned_application,
    run_partitioned_storm,
)

__all__ = [
    "ProcBudget",
    "ShardPlan",
    "StormOutcome",
    "SWEEP_WORKERS_ENV",
    "default_lookahead",
    "effective_procs",
    "merge_fault_reports",
    "plan_stripes",
    "run_partitioned_application",
    "run_partitioned_storm",
    "self_check",
]


def self_check(verbose: bool = True) -> bool:
    """CI acceptance matrix; see :func:`repro.partition.selfcheck.self_check`."""
    from .selfcheck import self_check as _impl

    return _impl(verbose=verbose)
