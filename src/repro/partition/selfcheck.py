"""Acceptance matrix for the space-partitioned simulator (DESIGN.md §12).

Run by the ``partition`` CI job via ``python -m repro partition
--self-check``.  Everything here pins the subsystem's one non-negotiable
invariant — **serial == partitioned fingerprints for every seeded
configuration** — plus the operational properties around it:

* K = 1 through the partition entry points is byte-identical to the
  legacy single-simulator run (same RNG stream, same counters);
* for K in {2, 4}: in-process serial shard execution == real
  worker-process execution, across loss / wire / jitter regimes, with a
  worker pool smaller than K (shard multiplexing) included;
* a fault plan whose kill lands on a shard-boundary cell replays
  identically and records its failover exactly once;
* a quiet-border topology (transmission range below the stripe width,
  so shards exchange no boundary traffic) terminates under the
  wall-clock watchdog instead of deadlocking on null messages;
* nested-parallelism clamping: the sweep-worker budget shrinks the
  worker pool, never the shard count, and daemonic callers are pinned
  to one in-process worker.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, List, Tuple

import numpy as np

from .plan import plan_stripes
from .runner import (
    SWEEP_WORKERS_ENV,
    effective_procs,
    run_partitioned_application,
    run_partitioned_storm,
)


def _count_all(cell: Any) -> bool:
    """Module-level predicate: the program spec is pickled into shards."""
    return True


def _build(side: int, n_random: int, seed: int, range_cells: float = 2.3):
    from ..deployment import (
        CellGrid,
        Terrain,
        build_network,
        ensure_coverage,
        uniform_random,
    )

    terrain = Terrain(100.0)
    cells = CellGrid(terrain, side)
    rng = np.random.default_rng(seed)
    positions = ensure_coverage(uniform_random(n_random, terrain, rng), cells, rng)
    return build_network(positions, cells, tx_range=cells.cell_side * range_cells)


def _result_fingerprint(result) -> Tuple[Any, ...]:
    report = result.fault_report
    return (
        result.ledger.fingerprint(),
        result.transmissions,
        result.drops,
        result.latency,
        result.events_processed,
        # exfiltrated rather than root_payload: a lossy round may
        # legitimately exhaust its retries without completing
        tuple(sorted((str(k), v) for k, v in result.exfiltrated.items())),
        None
        if report is None
        else (
            tuple(report.injected),
            tuple(report.failovers),
            report.reroutes,
            report.frames_corrupted,
            report.frames_rejected,
        ),
    )


def _app_run(
    side: int,
    seed: int,
    partitions: int,
    procs: int,
    loss: float = 0.0,
    wire: bool = False,
    plan=None,
) -> Tuple[Any, ...]:
    from ..core import CountAggregation, VirtualArchitecture
    from ..runtime import deploy

    net = _build(side, side * side * 7, seed)
    stack = deploy(net)
    spec = VirtualArchitecture(side).synthesize(CountAggregation(_count_all))
    reliable = loss > 0.0 or plan is not None
    if partitions == 1:
        # the legacy path: run_application only branches on partitions > 1
        result = stack.run_application(
            spec, loss_rate=loss, rng=np.random.default_rng(seed + 1),
            reliable=reliable, max_retries=8, wire_format=wire, fault_plan=plan,
        )
    else:
        result = run_partitioned_application(
            stack, spec, partitions=partitions, procs=procs, loss_rate=loss,
            rng=np.random.default_rng(seed + 1), reliable=reliable,
            max_retries=8, wire_format=wire, fault_plan=plan,
            wall_timeout_s=120.0,
        )
    return _result_fingerprint(result)


def self_check(verbose: bool = True) -> bool:
    """The acceptance matrix; returns False (after running everything)
    if any check failed."""

    def say(msg: str) -> None:
        if verbose:
            print(msg)

    failures: List[str] = []

    def check(name: str, cond: bool) -> None:
        mark = "ok" if cond else "FAIL"
        say(f"  [{mark}] {name}")
        if not cond:
            failures.append(name)

    side, seed = 8, 11

    say("partition: K=1 byte-identity with the legacy simulator")
    legacy = _app_run(side, seed, partitions=1, procs=1)
    via_k1 = _result_fingerprint(
        run_partitioned_application(
            _deployed_stack(side, seed), _count_spec(side), partitions=1,
            procs=1, rng=np.random.default_rng(seed + 1),
        )
    )
    check("K=1 run_partitioned_application == legacy run_application",
          via_k1 == legacy)

    say("partition: serial == worker-process shards across regimes")
    for partitions in (2, 4):
        for loss, wire in ((0.0, False), (0.15, True)):
            serial = _app_run(side, seed, partitions, procs=1,
                              loss=loss, wire=wire)
            parallel = _app_run(side, seed, partitions, procs=partitions,
                                loss=loss, wire=wire)
            check(
                f"K={partitions} loss={loss} wire={wire} serial == partitioned",
                serial == parallel,
            )
    multiplexed = _app_run(side, seed, 4, procs=3, loss=0.15, wire=True)
    check("K=4 on 3 multiplexed workers == serial",
          multiplexed == _app_run(side, seed, 4, procs=1, loss=0.15, wire=True))

    say("partition: fault kill on a shard-boundary cell")
    stack = _deployed_stack(side, seed)
    boundary = sorted(plan_stripes(stack.network, 4).boundary_cells)
    target = next(c for c in boundary if c in stack.binding.leaders)
    plan = _kill_plan(stack, target)
    serial = _app_run(side, seed, 4, procs=1, loss=0.05, wire=True, plan=plan)
    parallel = _app_run(side, seed, 4, procs=4, loss=0.05, wire=True, plan=plan)
    check("boundary-cell kill_leader serial == partitioned", serial == parallel)
    report = serial[-1]
    check("boundary failover recorded exactly once",
          report is not None and len(report[1]) == 1)

    say("partition: quiet-border topology terminates under the watchdog")
    quiet = _build(side, side * side * 7, seed, range_cells=0.9)
    serial_storm = run_partitioned_storm(
        quiet, rounds=4, partitions=1, rng=np.random.default_rng(seed)
    )
    parallel_storm = run_partitioned_storm(
        quiet, rounds=4, partitions=4, procs=4,
        rng=np.random.default_rng(seed), wall_timeout_s=60.0,
    )
    check("quiet-border storm completed with matching fingerprints",
          parallel_storm.fingerprint == serial_storm.fingerprint)
    check("quiet-border storm advanced in windows", parallel_storm.windows > 0)

    say("partition: nested-parallelism clamping")
    prior = os.environ.get(SWEEP_WORKERS_ENV)
    try:
        os.environ[SWEEP_WORKERS_ENV] = str(4 * (os.cpu_count() or 1))
        budget = effective_procs(4)
        check("sweep budget clamps auto procs to 1",
              budget.procs == 1 and budget.clamped)
        check("explicit procs override ignores the cpu budget",
              effective_procs(4, procs=2).procs == 2)
    finally:
        if prior is None:
            os.environ.pop(SWEEP_WORKERS_ENV, None)
        else:
            os.environ[SWEEP_WORKERS_ENV] = prior
    check("procs never exceeds the shard count",
          effective_procs(2, procs=8).procs == 2)
    daemon_probe = mp.get_context("fork").Pool(1)
    try:
        check("daemonic callers are pinned to one in-process worker",
              daemon_probe.apply(_daemon_budget) == 1)
    finally:
        daemon_probe.terminate()
        daemon_probe.join()

    say("partition: shard-plan validation")
    net = _build(side, side * side * 7, seed)
    check("side not divisible by K is rejected", _raises(net, 3))
    check("K above side is rejected", _raises(net, side + 1))

    if failures:
        say(f"partition self-check: {len(failures)} FAILED: {failures}")
        return False
    say("partition self-check: all checks passed")
    return True


def _deployed_stack(side: int, seed: int):
    from ..runtime import deploy

    return deploy(_build(side, side * side * 7, seed))


def _count_spec(side: int):
    from ..core import CountAggregation, VirtualArchitecture

    return VirtualArchitecture(side).synthesize(CountAggregation(_count_all))


def _kill_plan(stack, cell):
    from ..runtime.faults import FaultEvent, FaultPlan

    return FaultPlan(
        events=(FaultEvent(time=0.5, action="kill_leader", cell=cell),)
    )


def _daemon_budget(_arg: Any = None) -> int:
    return effective_procs(4, procs=4).procs


def _raises(net, partitions: int) -> bool:
    try:
        plan_stripes(net, partitions)
    except ValueError:
        return True
    return False
