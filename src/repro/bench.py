"""Perf-regression harness for the simulation stack.

Runs the medium/engine/timer micro-benchmarks and the E1 deployed-scaling
benchmark, appends each run to the ``BENCH_micro.json`` /
``BENCH_e1.json`` trajectory artifacts (one entry per commit, so
regressions are visible over time), and asserts the determinism
invariants the optimization work must preserve:

* same seed, two runs -> identical :class:`MediumStats`, energy ledger,
  and event counts;
* batched broadcast fan-out vs. the legacy per-receiver path -> identical
  :class:`MediumStats` and ledger in EVERY regime, including loss AND
  jitter together (event counts intentionally differ: the batch path
  schedules one delivery event per transmission / distinct arrival time);
* the handle-free timer facility must beat a faithful replica of the
  pre-wheel ``EventHandle`` implementation by >= 2x on the timer-churn
  workload.

Usage::

    python -m repro.bench                  # full run, appends to BENCH_*.json
    python -m repro.bench --check          # < 60 s smoke mode (tier-2 gate)
    python -m repro.bench --workers 4      # micro + E1 suites through the
                                           # repro.sweep shard scheduler on
                                           # 4 worker processes
    python -m repro.bench --baseline FILE  # embed pre-change numbers and
                                           # assert the >= 2x speedup target
    python -m repro.bench --profile        # cProfile the measurement phase,
                                           # dump BENCH_profile.pstats next
                                           # to the BENCH_*.json artifacts

(``python -m repro bench`` and ``benchmarks/bench_runner.py`` forward to
the same entry point, flags included.)

The workloads deliberately use only long-stable public APIs so the same
driver can be pointed at pre-optimization code to record a baseline.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import time
from collections import deque
from typing import Any, Deque, Dict, Hashable, List, Optional, Sequence

import numpy as np

from .core import CountAggregation, VirtualArchitecture
from .deployment import CellGrid, Terrain, build_network, ensure_coverage, uniform_random
from .deployment.topology import RealNetwork
from .runtime import deploy
from .simulator.engine import Simulator
from .simulator.network import WirelessMedium
from .simulator.process import Process, ProcessHost
from .sweep import SweepSpec, run_sweep

#: Version tag of the BENCH_*.json layout (2 = per-commit trajectories).
SCHEMA = 2

#: The headline acceptance target: optimized medium throughput must be at
#: least this multiple of the recorded pre-change baseline, and the timer
#: wheel at least this multiple of the legacy EventHandle replica.
SPEEDUP_TARGET = 2.0

#: Trajectory no-regression gate: already-optimized paths must stay within
#: this fraction of the best recorded run (slack for machine noise).
NO_REGRESSION_FLOOR = 0.85

#: The (workload, rate-metric) pairs whose recorded trajectory is gated —
#: the stable, machine-comparable hot paths.  Shared with
#: :mod:`repro.analyze.regression`, which applies the same floor plus a
#: prediction-interval rule to these series; everything else in the
#: trajectory is recorded and reported but never gated (timer/partition
#: speedups are gated as *ratios* measured on one machine, and the E1
#: wall clocks are too small/noisy to compare across runner hardware).
TRAJECTORY_GATES = (
    ("medium_broadcast_storm", "deliveries_per_s"),
    ("engine_event_pump", "events_per_s"),
    ("wire_codec", "roundtrips_per_s"),
    ("partition_storm", "serial_deliveries_per_s"),
)


def make_deployment(
    side: int = 8,
    n_random: int = 400,
    terrain_side: float = 100.0,
    range_cells: float = 2.3,
    seed: int = 11,
) -> RealNetwork:
    """A covered deployment, identical to the baseline driver's."""
    terrain = Terrain(terrain_side)
    cells = CellGrid(terrain, side)
    rng = np.random.default_rng(seed)
    positions = ensure_coverage(uniform_random(n_random, terrain, rng), cells, rng)
    return build_network(positions, cells, tx_range=cells.cell_side * range_cells)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def medium_broadcast_storm(
    rounds: int = 40,
    loss_rate: float = 0.1,
    seed: int = 11,
    net: Optional[RealNetwork] = None,
    batch_fanout: bool = True,
    jitter: float = 0.0,
) -> Dict[str, Any]:
    """Every alive node broadcasts once per round; pure medium hot path."""
    if net is None:
        net = make_deployment(seed=seed)
    sim = Simulator()
    medium = WirelessMedium(
        sim, net, loss_rate=loss_rate, jitter=jitter,
        rng=np.random.default_rng(seed), batch_fanout=batch_fanout,
    )
    ids = net.alive_ids()
    t0 = time.perf_counter()
    for r in range(rounds):
        for nid in ids:
            medium.broadcast(nid, "storm", r)
        sim.run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "transmissions": medium.stats.transmissions,
        "deliveries": medium.stats.deliveries,
        "drops": medium.stats.drops,
        "events_processed": sim.events_processed,
        "deliveries_per_s": medium.stats.deliveries / wall,
    }


def lossy_jittered_storm(
    rounds: int = 20,
    loss_rate: float = 0.1,
    jitter: float = 0.3,
    seed: int = 11,
    net: Optional[RealNetwork] = None,
    batch_fanout: bool = True,
) -> Dict[str, Any]:
    """The loss-AND-jitter regime: interleaved per-receiver draw stream.

    Until the batched interleaved-draw path landed, this configuration
    always fell back to the per-receiver legacy path; it is tracked as its
    own workload so the trajectory shows that regime's gains separately.
    """
    return medium_broadcast_storm(
        rounds=rounds, loss_rate=loss_rate, seed=seed, net=net,
        batch_fanout=batch_fanout, jitter=jitter,
    )


class _TimerChurnProcess(Process):
    """Relay-node timer churn: a window of in-flight retransmit timeouts.

    Models the transport shape that made the pre-wheel facility
    pathological: a relay forwarding steady traffic keeps one ack-timeout
    armed per in-flight packet (here a ``WINDOW`` of them, above the old
    256-entry prune threshold).  Each heartbeat cycle it acknowledges the
    ``BATCH`` oldest packets (cancelling their timeouts — they never
    fire), forwards a fresh batch (arming new ones), and occasionally
    gossips a routing-refresh broadcast so the medium stays in the loop.
    """

    #: Concurrently armed ack timeouts.  Deliberately above the legacy
    #: prune threshold (256): with that many *live* handles, the old
    #: prune scan ran on every ``set_timer`` and removed nothing.
    WINDOW = 320
    #: Timeouts cancelled + re-armed per heartbeat cycle.
    BATCH = 32

    def __init__(self, cycles: int):
        super().__init__()
        self.cycles_left = cycles
        self.timer_ops = 0
        self._uid = 0
        self._inflight: Deque[int] = deque()

    # the timer backend; the legacy subclass swaps in the pre-wheel one
    def arm(self, delay: float, tag: Hashable) -> None:
        self.set_timer(delay, tag)

    def disarm(self, tag: Hashable) -> None:
        self.cancel_timer(tag)

    def _forward_batch(self, count: int) -> None:
        for _ in range(count):
            self._uid += 1
            self._inflight.append(self._uid)
            self.arm(1000.0, ("ack", self._uid))
        self.timer_ops += count

    def _ack_batch(self, count: int) -> None:
        count = min(count, len(self._inflight))
        for _ in range(count):
            self.disarm(("ack", self._inflight.popleft()))
        self.timer_ops += count

    def on_start(self) -> None:
        self._forward_batch(self.WINDOW)
        self.arm(1.0, "hb")
        self.timer_ops += 1

    def on_timer(self, tag: Hashable) -> None:
        if tag != "hb":
            return
        self.timer_ops += 1  # the heartbeat fire itself
        self._ack_batch(self.BATCH)
        self.cycles_left -= 1
        if self.cycles_left % 16 == 0:
            self.broadcast("refresh", self.cycles_left, 0.25)
        if self.cycles_left > 0:
            self._forward_batch(self.BATCH)
            self.arm(1.0, "hb")
            self.timer_ops += 1
        else:
            self._ack_batch(len(self._inflight))  # drain the window


class _LegacyHandleTimerProcess(_TimerChurnProcess):
    """Same workload through a replica of the pre-wheel timer facility:
    one ``EventHandle`` allocation per timer, handles accumulated in a
    list pruned at 256 entries, tag-addressed cancellation through a side
    dict of live handles — exactly the shape ``Process.set_timer`` and the
    transport layer had before the migration."""

    def __init__(self, cycles: int):
        super().__init__(cycles)
        self._handles: List[Any] = []
        self._by_tag: Dict[Hashable, Any] = {}

    def arm(self, delay: float, tag: Hashable) -> None:
        handle = self.sim.schedule(delay, self._fire_timer, tag)
        self._handles.append(handle)
        if len(self._handles) > 256:
            self._handles = [h for h in self._handles if h.sim is not None]
        self._by_tag[tag] = handle

    def disarm(self, tag: Hashable) -> None:
        handle = self._by_tag.pop(tag, None)
        if handle is not None:
            handle.cancel()


def timer_storm(
    ops: int = 100_000,
    seed: int = 11,
    net: Optional[RealNetwork] = None,
    legacy_handles: bool = False,
) -> Dict[str, Any]:
    """~``ops`` timer set/cancel/fire operations across a protocol stack.

    ``legacy_handles=True`` runs the identical workload through the
    pre-wheel ``EventHandle`` replica; the ratio of the two runs'
    ``timer_ops_per_s`` is the timer-migration speedup recorded in the
    trajectory artifact.
    """
    if net is None:
        net = make_deployment(seed=seed)
    sim = Simulator()
    medium = WirelessMedium(sim, net, rng=np.random.default_rng(seed))
    host = ProcessHost(sim, medium)
    ids = net.alive_ids()[:32]  # the busy relay nodes host the churn
    per_proc = max(1, ops // len(ids))
    ops_per_cycle = 2 + 2 * _TimerChurnProcess.BATCH
    cycles = max(
        2, (per_proc - 2 * _TimerChurnProcess.WINDOW) // ops_per_cycle
    )
    factory = _LegacyHandleTimerProcess if legacy_handles else _TimerChurnProcess
    host.add_all(lambda nid: factory(cycles), node_ids=ids)
    host.start()
    t0 = time.perf_counter()
    sim.run_until_quiet()
    wall = time.perf_counter() - t0
    total_ops = sum(p.timer_ops for p in host.processes.values())  # type: ignore[attr-defined]
    return {
        "wall_s": wall,
        "timer_ops": total_ops,
        "events_processed": sim.events_processed,
        "transmissions": medium.stats.transmissions,
        "timer_ops_per_s": total_ops / wall,
    }


def unicast_pingpong(
    count: int = 20000, seed: int = 11, net: Optional[RealNetwork] = None
) -> Dict[str, Any]:
    """Repeated unicasts between two neighbours: the per-hop overhead path."""
    if net is None:
        net = make_deployment(seed=seed)
    sim = Simulator()
    medium = WirelessMedium(sim, net, rng=np.random.default_rng(seed))
    # highest-degree node: worst case for a linear neighbour-membership scan
    src = max(net.node_ids(), key=lambda n: len(net.neighbors(n, alive_only=False)))
    dst = net.neighbors(src)[0]
    t0 = time.perf_counter()
    for i in range(count):
        medium.unicast(src, dst, "ping", i)
        if i % 64 == 63:
            sim.run()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "transmissions": medium.stats.transmissions,
        "deliveries": medium.stats.deliveries,
        "events_processed": sim.events_processed,
        "unicasts_per_s": count / wall,
    }


def engine_event_pump(events: int = 200000) -> Dict[str, Any]:
    """Timer-chain through the raw engine: scheduling + dispatch overhead."""
    sim = Simulator()
    remaining = [events]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "events_processed": sim.events_processed,
        "events_per_s": sim.events_processed / wall,
    }


def wire_codec_roundtrip(ops: int = 50_000, seed: int = 11) -> Dict[str, Any]:
    """Encode+decode of a 1-unit reliable envelope: the per-hop codec cost
    that ``wire_format=True`` adds to every transport transmission."""
    from .core.program import Message
    from .runtime import wire
    from .runtime.routing import TransportEnvelope

    envelope = TransportEnvelope(
        src_cell=(0, 0),
        dst_cell=(7, 7),
        inner=Message(kind="mGraph", sender=(0, 0), payload=4, level=1),
        size_units=1.0,
        hops=3,
        uid=(42, 7),
    )
    frame = wire.encode_envelope(envelope)
    encode, decode = wire.encode_envelope, wire.decode_envelope
    t0 = time.perf_counter()
    for _ in range(ops):
        decoded = decode(encode(envelope))
    wall = time.perf_counter() - t0
    assert decoded == envelope, "wire round trip diverged inside the benchmark"
    return {
        "wall_s": wall,
        "roundtrips": ops,
        "frame_bytes": len(frame),
        "roundtrips_per_s": ops / wall,
    }


def fault_storm(
    side: int = 4,
    n_random: int = 150,
    kills: int = 2,
    corrupt_frames: int = 4,
    seed: int = 11,
) -> Dict[str, Any]:
    """One self-healing round under a mid-run fault storm (DESIGN.md §10).

    Kills ``kills`` cell leaders at t≈0.5 and corrupts the first
    ``corrupt_frames`` transport frames of a reliable round, then asserts
    the quad-tree query still completes with the correct count — the
    acceptance scenario of the fault model, timed end to end.
    """
    from .runtime import plan_leader_storm

    net = make_deployment(side=side, n_random=n_random, seed=seed)
    stack = deploy(net)
    va = VirtualArchitecture(side)
    spec = va.synthesize(CountAggregation(lambda c: True))
    plan = plan_leader_storm(
        sorted(stack.binding.leaders), kills=kills, at=0.5, seed=seed,
        corrupt_frames=corrupt_frames,
    )
    t0 = time.perf_counter()
    result = stack.run_application(
        spec, loss_rate=0.05, rng=np.random.default_rng(seed),
        reliable=True, max_retries=8, fault_plan=plan,
    )
    wall = time.perf_counter() - t0
    if result.root_payload != side * side:
        raise RuntimeError(
            f"fault_storm count mismatch: got {result.root_payload}, "
            f"want {side * side}"
        )
    report = result.fault_report
    assert report is not None
    return {
        "wall_s": wall,
        "transmissions": result.transmissions,
        "events_processed": result.events_processed,
        "failovers": len(report.failovers),
        "reroutes": report.reroutes,
        "frames_corrupted": report.frames_corrupted,
        "frames_rejected": report.frames_rejected,
        "events_per_s": result.events_processed / wall,
    }


def scenario_storm(
    side: int = 4,
    n_random: int = 150,
    hops: int = 6,
    seed: int = 11,
) -> Dict[str, Any]:
    """One round under the full scenario composition (DESIGN.md §14).

    Log-normal shadowing on every link (the medium hot path now runs the
    admission gate per potential reception), ``hops`` mid-run node
    relocations driving the self-healing re-bind path, duty-cycled source
    emissions, and a pursuit adversary parked at the root — the scenario
    subsystem's end-to-end cost, timed on the same deployment scale as
    ``fault_storm``.  A faded or re-homed world may legitimately fall
    short of the full count, so the row records ``app_count`` instead of
    asserting it.
    """
    from .scenario import (
        Attacker,
        LogNormalShadowing,
        Scenario,
        SourcePeriodModel,
        plan_cell_hops,
    )

    net = make_deployment(side=side, n_random=n_random, seed=seed)
    stack = deploy(net)
    va = VirtualArchitecture(side)
    spec = va.synthesize(CountAggregation(lambda c: True))
    cells = [(x, y) for x in range(side) for y in range(side)]
    scenario = Scenario(
        link=LogNormalShadowing(sigma=3.0, seed=seed),
        mobility=plan_cell_hops(
            sorted(net.node_ids()), cells, hops=hops, at=0.4, spacing=0.1, seed=seed
        ),
        attacker=Attacker(start_cell=(0, 0), source_cells=((side - 1, side - 1),)),
        sources=SourcePeriodModel(
            cells=((side - 1, side - 1), (1, side - 2)),
            period=1.0, first=0.2, count=3, dst_cell=(0, 0),
        ),
    )
    t0 = time.perf_counter()
    result = stack.run_application(
        spec, loss_rate=0.05, rng=np.random.default_rng(seed),
        reliable=True, max_retries=8, scenario=scenario,
    )
    wall = time.perf_counter() - t0
    report = result.scenario_report
    assert report is not None and report.attacker is not None
    row: Dict[str, Any] = {
        "wall_s": wall,
        "transmissions": result.transmissions,
        "events_processed": result.events_processed,
        "app_count": result.root_payload if len(result.exfiltrated) == 1 else -1,
        "events_per_s": result.events_processed / wall,
    }
    row.update(report.metrics())
    # normalized through _row_from_metrics so the row round-trips the
    # sweep metrics layer's float-cast (serial == sharded fingerprints:
    # attacker_capture_time lands on integral floats like -1.0)
    return _row_from_metrics({k: float(v) for k, v in row.items()})


def partition_storm(
    side: int = 32,
    rounds: int = 6,
    partitions: int = 4,
    seed: int = 11,
) -> Dict[str, Any]:
    """Serial vs. space-partitioned broadcast storm (DESIGN.md §12).

    Runs the same seeded storm twice over one ``side x side`` deployment:
    once on the classic single simulator (``partitions=1``) and once on
    the K-shard conservative-lookahead runner with one worker process per
    shard (clamped to the machine's budget).  The fingerprints must be
    identical — at ``loss=0``/``jitter=0`` the shard RNG streams are
    never drawn, so K is fingerprint-neutral and serial == partitioned is
    checked end to end inside the workload itself.  The recorded
    ``speedup`` is only meaningful when ``workers`` real processes ran
    (see the cores-aware gate in :func:`_gate`).
    """
    from .partition import effective_procs, run_partitioned_storm

    net = make_deployment(side=side, n_random=side * side * 6, seed=seed)
    t0 = time.perf_counter()
    serial = run_partitioned_storm(
        net, rounds=rounds, partitions=1, rng=np.random.default_rng(seed)
    )
    serial_wall = time.perf_counter() - t0
    budget = effective_procs(partitions)
    t0 = time.perf_counter()
    parallel = run_partitioned_storm(
        net, rounds=rounds, partitions=partitions, procs=budget.procs,
        rng=np.random.default_rng(seed),
    )
    parallel_wall = time.perf_counter() - t0
    if parallel.fingerprint != serial.fingerprint:
        raise RuntimeError(
            f"partition_storm fingerprint mismatch: serial "
            f"{serial.fingerprint} != partitioned {parallel.fingerprint} "
            f"(K={partitions}, procs={parallel.procs})"
        )
    return {
        "wall_s": serial_wall + parallel_wall,
        "serial_wall_s": serial_wall,
        "partitioned_wall_s": parallel_wall,
        # machine-dependent: excluded from micro_fingerprint
        "speedup": serial_wall / parallel_wall,
        "workers": parallel.procs,
        "side": side,
        "rounds": rounds,
        "partitions": partitions,
        "windows": parallel.windows,
        "transmissions": serial.transmissions,
        "deliveries": serial.deliveries,
        "events_processed": serial.events_processed,
        # serial == partitioned is asserted above; the digest itself is a
        # hex string, which the sweep metrics layer cannot carry
        "fingerprint_match": 1,
        "serial_deliveries_per_s": serial.deliveries / serial_wall,
        "deliveries_per_s": parallel.deliveries / parallel_wall,
    }


def query_serve(
    side: int = 16,
    storage_level: int = 2,
    n_queries: int = 8,
    seed: int = 11,
) -> Dict[str, Any]:
    """Cold-vs-warm query serving through one persistent engine.

    Brings up a :class:`repro.serve.QueryEngine` over a ``side x side``
    deployment with level-``storage_level`` distributed storage, then
    serves the same ``n_queries`` query cells twice: a cold pass (every
    aggregate fetched over the radio) and a warm pass (every aggregate in
    the freshness-epoch cache).  The recorded cold/warm energy and wall
    splits are the cache's headline numbers; the warm pass must be at
    least :data:`SERVE_CACHE_SPEEDUP_TARGET` x cheaper on both axes.
    """
    from .serve import QueryEngine

    net = make_deployment(side=side, n_random=side * side * 7, seed=seed)
    stack = deploy(net)
    va = VirtualArchitecture(side)
    gather = stack.run_application(
        va.synthesize(CountAggregation(lambda c: True), max_level=storage_level)
    )
    engine = QueryEngine(stack, storage=dict(gather.exfiltrated))
    leaders = sorted(stack.binding.leaders)
    step = max(1, len(leaders) // n_queries)
    query_cells = leaders[::step][:n_queries]

    def serve_pass() -> Dict[str, float]:
        energy0 = engine.medium.ledger.total
        tx0 = engine.medium.stats.transmissions
        t0 = time.perf_counter()
        for cell in query_cells:
            engine.query(cell, reduce_fn=sum)
        return {
            "wall_s": time.perf_counter() - t0,
            "energy": engine.medium.ledger.total - energy0,
            "transmissions": float(engine.medium.stats.transmissions - tx0),
        }

    cold = serve_pass()
    warm = serve_pass()
    hits = engine.stats.cache_hits
    misses = engine.stats.cache_misses
    # normalized through _row_from_metrics so the row round-trips the
    # sweep metrics layer's float-cast (serial == sharded fingerprints
    # even when the energy ledger lands on an integral value)
    return _row_from_metrics({
        "cold_wall_s": cold["wall_s"],
        "warm_wall_s": warm["wall_s"],
        "queries": len(query_cells) * 2,
        "storage_cells": len(gather.exfiltrated),
        "cold_energy": cold["energy"],
        "warm_energy": warm["energy"],
        "cold_transmissions": int(cold["transmissions"]),
        "warm_transmissions": int(warm["transmissions"]),
        "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "events_processed": engine.sim.events_processed,
        "wall_s": cold["wall_s"] + warm["wall_s"],
        "queries_per_s": len(query_cells) / warm["wall_s"],
    })


def serve_degraded(
    side: int = 8,
    storage_level: int = 1,
    n_queries: int = 6,
    seed: int = 11,
) -> Dict[str, Any]:
    """Warm-cache serving through a mid-campaign leader kill.

    The degraded-mode companion to :func:`query_serve`: brings up a
    :class:`repro.serve.QueryEngine` with healing enabled, runs a cold
    then a warm pass, kills the leader of one storage cell via an armed
    :class:`~repro.runtime.faults.FaultPlan`, lets failover detection run
    in one :meth:`~repro.serve.QueryEngine.tick`, then serves the same
    query cells again.  The recovered pass must stay *complete* (the
    failed-over leader answers from adopted storage) and — because the
    fault dirties exactly one cache cell — still beat the cold pass by
    :data:`SERVE_DEGRADED_SPEEDUP_TARGET` x on query-attributable energy.

    With healing enabled every serving round also carries heartbeat
    keep-alive traffic, which is paid whether or not any query runs, so
    the row first measures one idle tick's energy and reports each pass
    net of ``rounds x idle`` — otherwise the constant heartbeat floor
    would swamp the cache signal the gate is after.
    """
    from .runtime.faults import FaultEvent, FaultPlan, HealingConfig
    from .serve import QueryEngine, ServeConfig

    net = make_deployment(side=side, n_random=side * side * 7, seed=seed)
    stack = deploy(net)
    va = VirtualArchitecture(side)
    gather = stack.run_application(
        va.synthesize(CountAggregation(lambda c: True), max_level=storage_level)
    )
    engine = QueryEngine(
        stack,
        storage=dict(gather.exfiltrated),
        config=ServeConfig(
            healing=HealingConfig(heartbeat_interval=1.0, miss_threshold=2),
            healing_headroom=6.0,
        ),
    )
    leaders = sorted(stack.binding.leaders)
    step = max(1, len(leaders) // n_queries)
    query_cells = leaders[::step][:n_queries]

    def idle_tick() -> float:
        energy0 = engine.medium.ledger.total
        engine.tick()  # one empty round: the pure keep-alive floor
        return engine.medium.ledger.total - energy0

    def serve_pass(idle_energy: float) -> Dict[str, float]:
        energy0 = engine.medium.ledger.total
        t0 = time.perf_counter()
        outcomes = [engine.query(cell, reduce_fn=sum) for cell in query_cells]
        raw = engine.medium.ledger.total - energy0
        return {
            "wall_s": time.perf_counter() - t0,
            "energy": max(raw - len(query_cells) * idle_energy, 0.0),
            "complete": float(sum(o.complete for o in outcomes)),
        }

    idle_energy = idle_tick()
    cold = serve_pass(idle_energy)
    warm = serve_pass(idle_energy)
    victim = sorted(engine.storage_cells)[-1]
    engine.arm_faults(
        FaultPlan((FaultEvent(time=0.5, action="kill_leader", cell=victim),))
    )
    engine.tick()  # the kill fires; heartbeat loss detected; cell fails over
    # the floor shifts with the dead node (no rx spend): re-baseline
    idle_after = idle_tick()
    recovered = serve_pass(idle_after)
    report = engine._fault_report
    return _row_from_metrics({
        "cold_wall_s": cold["wall_s"],
        "warm_wall_s": warm["wall_s"],
        "recovered_wall_s": recovered["wall_s"],
        "queries": len(query_cells) * 3,
        "storage_cells": len(gather.exfiltrated),
        "idle_energy": idle_energy,
        "idle_energy_after": idle_after,
        "cold_energy": cold["energy"],
        "warm_energy": warm["energy"],
        "recovered_energy": recovered["energy"],
        "cold_complete": cold["complete"],
        "warm_complete": warm["complete"],
        "recovered_complete": recovered["complete"],
        "failovers": float(len(report.failovers)) if report else 0.0,
        "events_processed": engine.sim.events_processed,
        "wall_s": cold["wall_s"] + warm["wall_s"] + recovered["wall_s"],
        "queries_per_s": len(query_cells) / recovered["wall_s"]
        if recovered["wall_s"] > 0 else 0.0,
    })


#: Pinned seed of the micro suite (the historical trajectory seed).
MICRO_SEED = 11

#: Warm-cache queries must be at least this many times cheaper than cold
#: ones (energy and wall-clock) in the ``query_serve`` micro workload.
SERVE_CACHE_SPEEDUP_TARGET = 5.0

#: After a leader kill + failover, the recovered warm pass (exactly one
#: cache cell dirtied) must still be at least this many times cheaper on
#: energy than the cold pass in the ``serve_degraded`` micro workload.
SERVE_DEGRADED_SPEEDUP_TARGET = 2.0


def micro_variants(scale: float = 1.0) -> Dict[str, Any]:
    """The micro suite as named thunks of ``seed``, scale-resolved.

    This is the single source of truth for what one "full micro run"
    contains; :func:`run_micro` executes it serially, and the
    ``bench_micro`` sweep workload executes one named variant per run so
    ``--workers N`` can shard the suite across processes.
    """
    rounds = max(4, int(40 * scale))
    lj_rounds = max(4, int(20 * scale))
    timer_ops = max(20_000, int(100_000 * scale))
    pp_count = max(2000, int(20000 * scale))
    pump_events = max(20000, int(200000 * scale))
    codec_ops = max(5_000, int(50_000 * scale))
    return {
        "medium_broadcast_storm": lambda seed: medium_broadcast_storm(
            rounds=rounds, seed=seed, net=make_deployment(seed=seed)
        ),
        "medium_broadcast_storm_legacy_fanout": lambda seed: medium_broadcast_storm(
            rounds=rounds, seed=seed, net=make_deployment(seed=seed), batch_fanout=False
        ),
        "lossy_jittered_storm": lambda seed: lossy_jittered_storm(
            rounds=lj_rounds, seed=seed, net=make_deployment(seed=seed)
        ),
        "lossy_jittered_storm_legacy_fanout": lambda seed: lossy_jittered_storm(
            rounds=lj_rounds, seed=seed, net=make_deployment(seed=seed),
            batch_fanout=False,
        ),
        "timer_storm": lambda seed: timer_storm(
            ops=timer_ops, seed=seed, net=make_deployment(seed=seed)
        ),
        "timer_storm_legacy_handles": lambda seed: timer_storm(
            ops=timer_ops, seed=seed, net=make_deployment(seed=seed),
            legacy_handles=True,
        ),
        "unicast_pingpong": lambda seed: unicast_pingpong(
            count=pp_count, seed=seed, net=make_deployment(seed=seed)
        ),
        "engine_event_pump": lambda seed: engine_event_pump(events=pump_events),
        "wire_codec": lambda seed: wire_codec_roundtrip(ops=codec_ops, seed=seed),
        "fault_storm": lambda seed: fault_storm(seed=seed),
        "scenario_storm": lambda seed: scenario_storm(seed=seed),
        "partition_storm": lambda seed: partition_storm(
            side=32 if scale >= 1.0 else 8,
            rounds=6 if scale >= 1.0 else 3,
            partitions=4 if scale >= 1.0 else 2,
            seed=seed,
        ),
        "query_serve": lambda seed: query_serve(
            side=16 if scale >= 1.0 else (8 if scale >= 0.2 else 4),
            storage_level=1 if scale < 0.2 else 2,
            seed=seed,
        ),
        "serve_degraded": lambda seed: serve_degraded(
            side=8 if scale >= 0.2 else 4,
            n_queries=6 if scale >= 0.2 else 4,
            seed=seed,
        ),
    }


def micro_fingerprint(variant: str, row: Dict[str, Any]) -> str:
    """Digest of a micro row's deterministic counters (wall times and
    rates excluded): what serial-vs-sharded dispatch must agree on.

    ``speedup`` and ``workers`` are also excluded: they depend on wall
    clocks and on the worker-process budget of the dispatching machine
    (a sweep shard pins the partition budget to 1), not on the seed.
    """
    from .simulator.trace import stable_digest

    deterministic = tuple(
        sorted(
            (k, v) for k, v in row.items()
            if not k.endswith("_s") and not k.endswith("_per_s")
            and k not in ("speedup", "workers")
        )
    )
    return stable_digest((variant, deterministic))


def e1_deployed_scaling(
    sides: Sequence[int] = (4, 8), seed: int = 11, workers: int = 1
) -> List[Dict[str, Any]]:
    """End-to-end ``run_application`` wall time across deployment sizes.

    The rows are produced by dispatching the ``e1`` workload through the
    :mod:`repro.sweep` shard scheduler — serial and in-process with
    ``workers=1`` (the historical path), multi-core with ``workers>=2``
    for near-linear wall-clock speedup across sides.  ``seed`` is pinned
    via the spec's fixed params so every side replays the exact
    deployment the trajectory artifacts have always recorded, and the
    per-seed fingerprints are byte-identical in both modes.
    """
    spec = SweepSpec(
        name="bench-e1",
        workload="e1",
        grid={"side": [int(s) for s in sides]},
        fixed={"seed": int(seed)},
    )
    records = run_sweep(spec, out_path=None, workers=workers, progress=None)
    failures = [r for r in records if r["status"] != "ok"]
    if failures:
        raise RuntimeError(
            "E1 sweep runs failed: "
            + "; ".join(f"{r['run_id']}: {r['error']}" for r in failures)
        )
    by_side = {int(r["params"]["side"]): r["metrics"] for r in records}
    return [
        {
            "side": int(side),
            "n_nodes": int(by_side[int(side)]["n_nodes"]),
            "wall_s": by_side[int(side)]["wall_s"],
            "transmissions": int(by_side[int(side)]["transmissions"]),
            "tx_per_s": by_side[int(side)]["tx_per_s"],
        }
        for side in sides
    ]


def e1_partitioned_scaling(
    side: int = 32, partitions: Sequence[int] = (1, 4), seed: int = 11
) -> List[Dict[str, Any]]:
    """The E1 kernel at one large ``side``, serial vs. space-partitioned.

    Dispatches the ``e1`` sweep workload once per shard count and asserts
    every row's fingerprint matches the serial one (the workload runs at
    ``loss=0``, where K is fingerprint-neutral).  The recorded wall times
    track how much of a full deployed round the partitioned runner can
    parallelize; the headline speedup gate lives in ``partition_storm``,
    which isolates the simulation hot path from deployment construction.
    """
    spec = SweepSpec(
        name="bench-e1-partitioned",
        workload="e1",
        grid={"partitions": [int(p) for p in partitions]},
        fixed={"seed": int(seed), "side": int(side)},
    )
    records = run_sweep(spec, out_path=None, workers=1, progress=None)
    failures = [r for r in records if r["status"] != "ok"]
    if failures:
        raise RuntimeError(
            "E1 partitioned sweep runs failed: "
            + "; ".join(f"{r['run_id']}: {r['error']}" for r in failures)
        )
    records.sort(key=lambda r: int(r["params"]["partitions"]))
    fingerprints = {
        int(r["params"]["partitions"]): r["fingerprint"] for r in records
    }
    base = fingerprints[min(fingerprints)]
    diverged = {k: fp for k, fp in fingerprints.items() if fp != base}
    if diverged:
        raise RuntimeError(
            f"E1 partitioned fingerprints diverged from serial {base}: {diverged}"
        )
    rows = []
    for record in records:
        metrics = record["metrics"]
        row = {
            "side": int(side),
            "partitions": int(record["params"]["partitions"]),
            "n_nodes": int(metrics["n_nodes"]),
            "wall_s": metrics["wall_s"],
            "transmissions": int(metrics["transmissions"]),
            "tx_per_s": metrics["tx_per_s"],
            "fingerprint": record["fingerprint"],
        }
        if "partition_procs" in metrics:
            row["partition_procs"] = int(metrics["partition_procs"])
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Determinism assertions
# ---------------------------------------------------------------------------


def _storm_fingerprint(
    batch_fanout: bool, rounds: int, seed: int = 11, jitter: float = 0.0
):
    net = make_deployment(seed=seed)
    sim = Simulator()
    medium = WirelessMedium(
        sim, net, loss_rate=0.1, jitter=jitter,
        rng=np.random.default_rng(seed), batch_fanout=batch_fanout,
    )
    for r in range(rounds):
        for nid in net.alive_ids():
            medium.broadcast(nid, "storm", r)
        sim.run()
    return (
        medium.stats.fingerprint(),
        medium.ledger.fingerprint(),
        sim.events_processed,
    )


def _reliable_fingerprint(seed: int):
    net = make_deployment(side=4, n_random=90, seed=7)
    stack = deploy(net)
    va = VirtualArchitecture(4)
    spec = va.synthesize(CountAggregation(lambda c: True))
    result = stack.run_application(
        spec, loss_rate=0.15, rng=np.random.default_rng(seed),
        reliable=True, max_retries=6,
    )
    return (
        dict(sorted((str(k), v) for k, v in result.ledger.per_node().items())),
        result.transmissions,
        result.drops,
        result.latency,
    )


def check_determinism(rounds: int = 5) -> Dict[str, Any]:
    """Assert the invariants; returns a summary dict for the artifact."""
    a = _storm_fingerprint(batch_fanout=True, rounds=rounds)
    b = _storm_fingerprint(batch_fanout=True, rounds=rounds)
    assert a == b, "same-seed storm runs diverged (stats/ledger/event count)"

    legacy = _storm_fingerprint(batch_fanout=False, rounds=rounds)
    legacy2 = _storm_fingerprint(batch_fanout=False, rounds=rounds)
    assert legacy == legacy2, "legacy-path runs are not seed-stable"
    assert a[0] == legacy[0], "batched fan-out changed MediumStats vs legacy path"
    assert a[1] == legacy[1], "batched fan-out changed the energy ledger vs legacy path"

    # the loss-AND-jitter regime: the interleaved per-receiver draw stream
    # must replay byte-identically through the vectorized path
    lj = _storm_fingerprint(batch_fanout=True, rounds=rounds, jitter=0.3)
    lj_legacy = _storm_fingerprint(batch_fanout=False, rounds=rounds, jitter=0.3)
    assert lj[0] == lj_legacy[0], (
        "batched loss+jitter fan-out changed MediumStats vs legacy path"
    )
    assert lj[1] == lj_legacy[1], (
        "batched loss+jitter fan-out changed the energy ledger vs legacy path"
    )

    r1 = _reliable_fingerprint(seed=42)
    r2 = _reliable_fingerprint(seed=42)
    assert r1 == r2, "same-seed reliable runs diverged"
    return {
        "storm_same_seed_identical": True,
        "batch_vs_legacy_stats_identical": True,
        "batch_vs_legacy_loss_jitter_identical": True,
        "reliable_same_seed_identical": True,
        "events_batched": a[2],
        "events_legacy": legacy[2],
    }


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def _row_from_metrics(metrics: Dict[str, float]) -> Dict[str, Any]:
    """Undo the float-cast the sweep metrics layer applies to counters."""
    return {
        k: int(v)
        if isinstance(v, float) and v.is_integer()
        and not k.endswith("_s") and not k.endswith("_per_s")
        else v
        for k, v in metrics.items()
    }


def run_micro(smoke: bool = False, workers: int = 1) -> Dict[str, Any]:
    """The micro suite; ``workers >= 2`` shards it through ``repro.sweep``.

    Both paths execute the exact same :func:`micro_variants` thunks with
    the pinned :data:`MICRO_SEED`, so the deterministic counters (and
    hence :func:`micro_fingerprint`) are identical — only wall times
    differ.  Sharded rows come back through the scheduler's metrics
    layer, with integral counters restored to ints.
    """
    scale = 0.2 if smoke else 1.0
    variants = micro_variants(scale)
    if workers <= 1:
        return {name: thunk(MICRO_SEED) for name, thunk in variants.items()}
    spec = SweepSpec(
        name="bench-micro",
        workload="bench_micro",
        grid={"variant": list(variants)},
        fixed={"seed": MICRO_SEED, "scale": scale},
    )
    records = run_sweep(spec, out_path=None, workers=workers, progress=None)
    failures = [r for r in records if r["status"] != "ok"]
    if failures:
        raise RuntimeError(
            "micro sweep runs failed: "
            + "; ".join(f"{r['run_id']}: {r['error']}" for r in failures)
        )
    by_variant = {r["params"]["variant"]: r["metrics"] for r in records}
    return {name: _row_from_metrics(by_variant[name]) for name in variants}


def run_e1(smoke: bool = False, workers: int = 1) -> Dict[str, Any]:
    sides = (4, 8) if smoke else (4, 8, 16)
    return {
        "e1_deployed_scaling": e1_deployed_scaling(sides=sides, workers=workers),
        "e1_partitioned": e1_partitioned_scaling(
            side=8 if smoke else 32, partitions=(1, 2) if smoke else (1, 4)
        ),
    }


# ---------------------------------------------------------------------------
# Trajectory artifacts
# ---------------------------------------------------------------------------


def _git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_trajectory(path: str, bench: str) -> List[Dict[str, Any]]:
    """Existing trajectory of ``path``; migrates schema-1 snapshots.

    The public read accessor of the ``BENCH_*.json`` layout (used by
    :mod:`repro.analyze` as well as this module's own gates): a schema-1
    document was a single run with an optionally embedded pre-change
    ``baseline`` block; both become trajectory entries so the full
    history survives the migration.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return []
    if doc.get("bench") != bench:
        return []
    if doc.get("schema", 1) >= 2 and isinstance(doc.get("runs"), list):
        return doc["runs"]
    # schema-1 migration
    runs: List[Dict[str, Any]] = []
    if "baseline" in doc:
        base = doc["baseline"]
        workloads = (
            base if bench == "micro"
            else {"e1_deployed_scaling": base.get("e1_deployed_scaling", base)}
        )
        runs.append({"commit": "pre-pr1-baseline", "date": None,
                     "workloads": workloads})
    workloads = (
        doc.get("workloads")
        if bench == "micro"
        else {"e1_deployed_scaling": doc.get("e1_deployed_scaling", [])}
    )
    if workloads:
        entry: Dict[str, Any] = {"commit": "pr1", "date": None,
                                 "workloads": workloads}
        if "determinism" in doc:
            entry["determinism"] = doc["determinism"]
        if "speedup_vs_baseline" in doc:
            entry["speedup_vs_baseline"] = doc["speedup_vs_baseline"]
        runs.append(entry)
    return runs


#: Backward-compatible alias of the pre-public accessor name.
_load_runs = load_trajectory


def trajectory_series(
    runs: Sequence[Dict[str, Any]], workload: str, key: str
) -> List[Dict[str, Any]]:
    """The recorded ``(commit, date, value)`` series of one workload metric.

    Schema accessor for dict-valued workload rows (the micro suite);
    entries missing the workload or the metric are skipped, so a series
    starts at the commit that introduced the workload.
    """
    series: List[Dict[str, Any]] = []
    for run in runs:
        row = run.get("workloads", {}).get(workload, {})
        value = row.get(key) if isinstance(row, dict) else None
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            series.append(
                {
                    "commit": run.get("commit", "unknown"),
                    "date": run.get("date"),
                    "value": float(value),
                }
            )
    return series


def _best_recorded(
    runs: Sequence[Dict[str, Any]], workload: str, key: str
) -> Optional[float]:
    """Best value of ``workloads[workload][key]`` across recorded runs."""
    values = [point["value"] for point in trajectory_series(runs, workload, key)]
    return max(values) if values else None


def _gate(
    micro: Dict[str, Any], prior_runs: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """The acceptance gates; returns the numbers for the run entry.

    * handle-free timers >= SPEEDUP_TARGET x the legacy-handle replica;
    * the space-partitioned storm >= SPEEDUP_TARGET x the serial run —
      enforced only when the machine actually granted the requested
      worker processes (``partition_gate_enforced``): on a box with
      fewer cores than shards the speedup is recorded but not gated;
    * already-optimized hot paths (broadcast storm, event pump) within
      NO_REGRESSION_FLOOR of the best recorded trajectory run.
    """
    timer_speedup = (
        micro["timer_storm"]["timer_ops_per_s"]
        / micro["timer_storm_legacy_handles"]["timer_ops_per_s"]
    )
    batch_speedup = (
        micro["lossy_jittered_storm"]["deliveries_per_s"]
        / micro["lossy_jittered_storm_legacy_fanout"]["deliveries_per_s"]
    )
    regressions: Dict[str, float] = {}
    for workload, key in TRAJECTORY_GATES:
        if workload not in micro:
            continue
        best = _best_recorded(prior_runs, workload, key)
        if best:
            regressions[f"{workload}.{key}"] = micro[workload][key] / best
    serve = micro["query_serve"]
    serve_energy_speedup = (
        serve["cold_energy"] / serve["warm_energy"]
        if serve["warm_energy"] > 0 else float("inf")
    )
    serve_wall_speedup = (
        serve["cold_wall_s"] / serve["warm_wall_s"]
        if serve["warm_wall_s"] > 0 else float("inf")
    )
    degraded = micro["serve_degraded"]
    degraded_energy_speedup = (
        degraded["cold_energy"] / degraded["recovered_energy"]
        if degraded["recovered_energy"] > 0 else float("inf")
    )
    partition = micro["partition_storm"]
    # the >= 2x gate needs the requested 4-way pool to have actually run:
    # with fewer granted workers (or fewer cores) the number is recorded
    # for the trajectory but cannot honestly be asserted
    partition_enforced = (
        int(partition["workers"]) >= int(partition["partitions"])
        and (os.cpu_count() or 1) >= int(partition["partitions"])
    )
    return {
        "timer_speedup_vs_legacy_handles": timer_speedup,
        "lossy_jittered_speedup_vs_legacy_fanout": batch_speedup,
        "serve_cache_energy_speedup": serve_energy_speedup,
        "serve_cache_wall_speedup": serve_wall_speedup,
        "serve_degraded_energy_speedup": degraded_energy_speedup,
        "serve_degraded_complete": degraded["recovered_complete"]
        == degraded["queries"] / 3,
        "serve_degraded_failovers": degraded["failovers"],
        "partition_speedup_vs_serial": partition["speedup"],
        "partition_workers": int(partition["workers"]),
        "partition_gate_enforced": partition_enforced,
        "vs_best_recorded": regressions,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__.split("\n")[0]
    )
    parser.add_argument(
        "--check", action="store_true",
        help="smoke mode: reduced workloads + determinism assertions, "
        "no artifacts written (< 60 s; the tier-2 gate)",
    )
    parser.add_argument(
        "--out-dir", default=".", help="directory for BENCH_*.json artifacts"
    )
    parser.add_argument(
        "--baseline", default=None,
        help="JSON file of pre-change micro numbers to embed as an extra "
        "trajectory entry (legacy interface; the trajectory itself is now "
        "the baseline)",
    )
    parser.add_argument(
        "--no-assert-speedup", action="store_true",
        help="record speedups/regressions without gating on them "
        "(noisy machines)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="dispatch the micro suite and the E1 scaling suite through "
        "the repro.sweep shard scheduler on N worker processes "
        "(default 1 = serial in-process)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the measurement phase under cProfile and dump the "
        "pstats profile to BENCH_profile.pstats next to the BENCH_*.json "
        "artifacts (child worker processes are not profiled)",
    )
    args = parser.parse_args(argv)

    determinism = check_determinism(rounds=3 if args.check else 5)
    print("determinism: OK "
          f"(batched {determinism['events_batched']} events vs "
          f"legacy {determinism['events_legacy']})")

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    micro = run_micro(smoke=args.check, workers=args.workers)
    e1 = run_e1(smoke=args.check, workers=args.workers)
    if profiler is not None:
        import pstats

        profiler.disable()
        os.makedirs(args.out_dir, exist_ok=True)
        profile_path = f"{args.out_dir}/BENCH_profile.pstats"
        profiler.dump_stats(profile_path)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(15)
        print(f"wrote {profile_path}")
    for name, row in micro.items():
        rate = {k: v for k, v in row.items() if k.endswith("_per_s")}
        print(f"{name}: wall={row['wall_s']:.3f}s {rate}")
    for row in e1["e1_deployed_scaling"]:
        print(f"e1 side={row['side']} n={row['n_nodes']}: wall={row['wall_s']:.4f}s")
    for row in e1["e1_partitioned"]:
        print(f"e1 side={row['side']} partitions={row['partitions']}"
              f" procs={row.get('partition_procs', 1)}:"
              f" wall={row['wall_s']:.4f}s fp={row['fingerprint']}")

    micro_runs = load_trajectory(f"{args.out_dir}/BENCH_micro.json", "micro")
    gates = _gate(micro, micro_runs)
    print(f"timer wheel vs legacy handles: "
          f"{gates['timer_speedup_vs_legacy_handles']:.2f}x")
    print(f"batched loss+jitter vs legacy fanout: "
          f"{gates['lossy_jittered_speedup_vs_legacy_fanout']:.2f}x")
    print(f"serve warm cache vs cold: "
          f"{gates['serve_cache_energy_speedup']:.1f}x energy, "
          f"{gates['serve_cache_wall_speedup']:.1f}x wall")
    print(f"serve degraded (post-failover) vs cold: "
          f"{gates['serve_degraded_energy_speedup']:.1f}x energy, "
          f"complete={gates['serve_degraded_complete']}, "
          f"failovers={gates['serve_degraded_failovers']:.0f}")
    print(f"partitioned storm vs serial: "
          f"{gates['partition_speedup_vs_serial']:.2f}x on "
          f"{gates['partition_workers']} workers "
          f"({'gated' if gates['partition_gate_enforced'] else 'recorded only'})")
    for metric, ratio in gates["vs_best_recorded"].items():
        print(f"{metric}: {ratio:.2f}x best recorded")
    # smoke workloads are too short for stable ratios; --check gates only
    # on the determinism assertions above
    if not args.no_assert_speedup and not args.check:
        assert gates["timer_speedup_vs_legacy_handles"] >= SPEEDUP_TARGET, (
            f"timer wheel only "
            f"{gates['timer_speedup_vs_legacy_handles']:.2f}x the legacy "
            f"EventHandle replica (target {SPEEDUP_TARGET}x)"
        )
        for axis in ("energy", "wall"):
            speedup = gates[f"serve_cache_{axis}_speedup"]
            assert speedup >= SERVE_CACHE_SPEEDUP_TARGET, (
                f"warm-cache serving only {speedup:.2f}x cheaper than cold "
                f"on {axis} (target {SERVE_CACHE_SPEEDUP_TARGET}x)"
            )
        assert gates["serve_degraded_complete"], (
            "post-failover serving lost completeness: the recovered pass "
            "must answer every query from adopted storage"
        )
        assert gates["serve_degraded_failovers"] >= 1, (
            "serve_degraded saw no failover: the armed leader kill never "
            "triggered healing"
        )
        degraded_speedup = gates["serve_degraded_energy_speedup"]
        assert degraded_speedup >= SERVE_DEGRADED_SPEEDUP_TARGET, (
            f"post-failover warm serving only {degraded_speedup:.2f}x "
            f"cheaper than cold on energy "
            f"(target {SERVE_DEGRADED_SPEEDUP_TARGET}x)"
        )
        if gates["partition_gate_enforced"]:
            assert gates["partition_speedup_vs_serial"] >= SPEEDUP_TARGET, (
                f"partitioned storm only "
                f"{gates['partition_speedup_vs_serial']:.2f}x the serial "
                f"simulator on {gates['partition_workers']} workers "
                f"(target {SPEEDUP_TARGET}x)"
            )
        for metric, ratio in gates["vs_best_recorded"].items():
            assert ratio >= NO_REGRESSION_FLOOR, (
                f"{metric} at {ratio:.2f}x of the best recorded run "
                f"(floor {NO_REGRESSION_FLOOR}x)"
            )

    if args.check:
        print("smoke mode: artifacts not written")
        return 0

    commit = _git_commit()
    today = datetime.date.today().isoformat()
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        micro_runs.append({"commit": "external-baseline", "date": today,
                           "workloads": baseline})

    run_entry = {
        "commit": commit,
        "date": today,
        "workloads": micro,
        "determinism": determinism,
        "gates": gates,
    }
    micro_runs = [r for r in micro_runs if r.get("commit") != commit]
    micro_runs.append(run_entry)
    micro_doc = {"bench": "micro", "schema": SCHEMA, "runs": micro_runs}

    e1_runs = load_trajectory(f"{args.out_dir}/BENCH_e1.json", "e1")
    e1_runs = [r for r in e1_runs if r.get("commit") != commit]
    e1_runs.append({"commit": commit, "date": today, "workloads": e1})
    e1_doc = {"bench": "e1", "schema": SCHEMA, "runs": e1_runs}

    for name, doc in (("BENCH_micro.json", micro_doc), ("BENCH_e1.json", e1_doc)):
        path = f"{args.out_dir}/{name}"
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
