"""Perf-regression harness for the simulation stack.

Runs the medium/engine micro-benchmarks and the E1 deployed-scaling
benchmark, writes ``BENCH_micro.json`` / ``BENCH_e1.json`` trajectory
artifacts, and asserts the determinism invariants the optimization work
must preserve:

* same seed, two runs -> identical :class:`MediumStats`, energy ledger,
  and event counts;
* batched broadcast fan-out vs. the legacy per-receiver path -> identical
  :class:`MediumStats` and ledger (event counts intentionally differ: the
  batch path schedules one delivery event per transmission).

Usage::

    python -m repro.bench                  # full run, writes BENCH_*.json
    python -m repro.bench --check          # < 60 s smoke mode (tier-2 gate)
    python -m repro.bench --baseline FILE  # embed pre-change numbers and
                                           # assert the >= 2x speedup target

The workloads deliberately use only long-stable public APIs so the same
driver can be pointed at pre-optimization code to record a baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .core import CountAggregation, VirtualArchitecture
from .deployment import CellGrid, Terrain, build_network, ensure_coverage, uniform_random
from .deployment.topology import RealNetwork
from .runtime import deploy
from .simulator.engine import Simulator
from .simulator.network import WirelessMedium

#: Version tag of the BENCH_*.json layout.
SCHEMA = 1

#: The headline acceptance target: optimized medium throughput must be at
#: least this multiple of the recorded pre-change baseline.
SPEEDUP_TARGET = 2.0


def make_deployment(
    side: int = 8,
    n_random: int = 400,
    terrain_side: float = 100.0,
    range_cells: float = 2.3,
    seed: int = 11,
) -> RealNetwork:
    """A covered deployment, identical to the baseline driver's."""
    terrain = Terrain(terrain_side)
    cells = CellGrid(terrain, side)
    rng = np.random.default_rng(seed)
    positions = ensure_coverage(uniform_random(n_random, terrain, rng), cells, rng)
    return build_network(positions, cells, tx_range=cells.cell_side * range_cells)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def medium_broadcast_storm(
    rounds: int = 40,
    loss_rate: float = 0.1,
    seed: int = 11,
    net: Optional[RealNetwork] = None,
    batch_fanout: bool = True,
) -> Dict[str, Any]:
    """Every alive node broadcasts once per round; pure medium hot path."""
    if net is None:
        net = make_deployment(seed=seed)
    sim = Simulator()
    medium = WirelessMedium(
        sim, net, loss_rate=loss_rate,
        rng=np.random.default_rng(seed), batch_fanout=batch_fanout,
    )
    ids = net.alive_ids()
    t0 = time.perf_counter()
    for r in range(rounds):
        for nid in ids:
            medium.broadcast(nid, "storm", r)
        sim.run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "transmissions": medium.stats.transmissions,
        "deliveries": medium.stats.deliveries,
        "drops": medium.stats.drops,
        "events_processed": sim.events_processed,
        "deliveries_per_s": medium.stats.deliveries / wall,
    }


def unicast_pingpong(
    count: int = 20000, seed: int = 11, net: Optional[RealNetwork] = None
) -> Dict[str, Any]:
    """Repeated unicasts between two neighbours: the per-hop overhead path."""
    if net is None:
        net = make_deployment(seed=seed)
    sim = Simulator()
    medium = WirelessMedium(sim, net, rng=np.random.default_rng(seed))
    # highest-degree node: worst case for a linear neighbour-membership scan
    src = max(net.node_ids(), key=lambda n: len(net.neighbors(n, alive_only=False)))
    dst = net.neighbors(src)[0]
    t0 = time.perf_counter()
    for i in range(count):
        medium.unicast(src, dst, "ping", i)
        if i % 64 == 63:
            sim.run()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "transmissions": medium.stats.transmissions,
        "deliveries": medium.stats.deliveries,
        "events_processed": sim.events_processed,
        "unicasts_per_s": count / wall,
    }


def engine_event_pump(events: int = 200000) -> Dict[str, Any]:
    """Timer-chain through the raw engine: scheduling + dispatch overhead."""
    sim = Simulator()
    remaining = [events]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "events_processed": sim.events_processed,
        "events_per_s": sim.events_processed / wall,
    }


def e1_deployed_scaling(
    sides: Sequence[int] = (4, 8), seed: int = 11
) -> List[Dict[str, Any]]:
    """End-to-end ``run_application`` wall time across deployment sizes."""
    rows = []
    for side in sides:
        net = make_deployment(side=side, n_random=side * side * 7, seed=seed)
        stack = deploy(net)
        va = VirtualArchitecture(side)
        spec = va.synthesize(CountAggregation(lambda c: True))
        t0 = time.perf_counter()
        result = stack.run_application(spec)
        wall = time.perf_counter() - t0
        assert result.root_payload == side * side
        rows.append(
            {
                "side": side,
                "n_nodes": len(net),
                "wall_s": wall,
                "transmissions": result.transmissions,
                "tx_per_s": result.transmissions / wall,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Determinism assertions
# ---------------------------------------------------------------------------


def _storm_fingerprint(batch_fanout: bool, rounds: int, seed: int = 11):
    net = make_deployment(seed=seed)
    sim = Simulator()
    medium = WirelessMedium(
        sim, net, loss_rate=0.1,
        rng=np.random.default_rng(seed), batch_fanout=batch_fanout,
    )
    for r in range(rounds):
        for nid in net.alive_ids():
            medium.broadcast(nid, "storm", r)
        sim.run()
    stats = {
        **medium.stats.summary(),
        "by_kind_tx": dict(medium.stats.by_kind_tx),
        "by_kind_rx": dict(medium.stats.by_kind_rx),
        "by_kind_drop": dict(medium.stats.by_kind_drop),
    }
    ledger = {str(k): v for k, v in sorted(medium.ledger.per_node().items())}
    return stats, ledger, sim.events_processed


def _reliable_fingerprint(seed: int):
    net = make_deployment(side=4, n_random=90, seed=7)
    stack = deploy(net)
    va = VirtualArchitecture(4)
    spec = va.synthesize(CountAggregation(lambda c: True))
    result = stack.run_application(
        spec, loss_rate=0.15, rng=np.random.default_rng(seed),
        reliable=True, max_retries=6,
    )
    return (
        dict(sorted((str(k), v) for k, v in result.ledger.per_node().items())),
        result.transmissions,
        result.drops,
        result.latency,
    )


def check_determinism(rounds: int = 5) -> Dict[str, Any]:
    """Assert the invariants; returns a summary dict for the artifact."""
    a = _storm_fingerprint(batch_fanout=True, rounds=rounds)
    b = _storm_fingerprint(batch_fanout=True, rounds=rounds)
    assert a == b, "same-seed storm runs diverged (stats/ledger/event count)"

    legacy = _storm_fingerprint(batch_fanout=False, rounds=rounds)
    legacy2 = _storm_fingerprint(batch_fanout=False, rounds=rounds)
    assert legacy == legacy2, "legacy-path runs are not seed-stable"
    assert a[0] == legacy[0], "batched fan-out changed MediumStats vs legacy path"
    assert a[1] == legacy[1], "batched fan-out changed the energy ledger vs legacy path"

    r1 = _reliable_fingerprint(seed=42)
    r2 = _reliable_fingerprint(seed=42)
    assert r1 == r2, "same-seed reliable runs diverged"
    return {
        "storm_same_seed_identical": True,
        "batch_vs_legacy_stats_identical": True,
        "reliable_same_seed_identical": True,
        "events_batched": a[2],
        "events_legacy": legacy[2],
    }


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def run_micro(smoke: bool = False) -> Dict[str, Any]:
    scale = 0.2 if smoke else 1.0
    net = make_deployment()
    storm = medium_broadcast_storm(rounds=max(4, int(40 * scale)), net=net)
    storm_legacy = medium_broadcast_storm(
        rounds=max(4, int(40 * scale)), net=make_deployment(), batch_fanout=False
    )
    return {
        "medium_broadcast_storm": storm,
        "medium_broadcast_storm_legacy_fanout": storm_legacy,
        "unicast_pingpong": unicast_pingpong(count=max(2000, int(20000 * scale))),
        "engine_event_pump": engine_event_pump(events=max(20000, int(200000 * scale))),
    }


def run_e1(smoke: bool = False) -> Dict[str, Any]:
    return {"e1_deployed_scaling": e1_deployed_scaling(sides=(4, 8))}


def _speedups(current: Dict[str, Any], baseline: Dict[str, Any]) -> Dict[str, float]:
    """Throughput ratios current/baseline for every shared rate metric."""
    out: Dict[str, float] = {}
    for workload, metrics in current.items():
        base = baseline.get(workload)
        if not isinstance(base, dict) or not isinstance(metrics, dict):
            continue
        for key, value in metrics.items():
            if key.endswith("_per_s") and isinstance(base.get(key), (int, float)):
                out[f"{workload}.{key}"] = value / base[key]
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__.split("\n")[0]
    )
    parser.add_argument(
        "--check", action="store_true",
        help="smoke mode: reduced workloads + determinism assertions, "
        "no artifacts written (< 60 s; the tier-2 gate)",
    )
    parser.add_argument(
        "--out-dir", default=".", help="directory for BENCH_*.json artifacts"
    )
    parser.add_argument(
        "--baseline", default=None,
        help="JSON file of pre-change micro numbers to embed; enables the "
        f">= {SPEEDUP_TARGET}x medium-storm speedup assertion",
    )
    parser.add_argument(
        "--no-assert-speedup", action="store_true",
        help="record speedups without gating on them (noisy machines)",
    )
    args = parser.parse_args(argv)

    determinism = check_determinism(rounds=3 if args.check else 5)
    print("determinism: OK "
          f"(batched {determinism['events_batched']} events vs "
          f"legacy {determinism['events_legacy']})")

    micro = run_micro(smoke=args.check)
    e1 = run_e1(smoke=args.check)
    for name, row in micro.items():
        rate = {k: v for k, v in row.items() if k.endswith("_per_s")}
        print(f"{name}: wall={row['wall_s']:.3f}s {rate}")
    for row in e1["e1_deployed_scaling"]:
        print(f"e1 side={row['side']} n={row['n_nodes']}: wall={row['wall_s']:.4f}s")

    baseline = None
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)

    if args.check:
        print("smoke mode: artifacts not written")
        return 0

    micro_doc: Dict[str, Any] = {
        "bench": "micro",
        "schema": SCHEMA,
        "workloads": micro,
        "determinism": determinism,
    }
    if baseline is not None:
        micro_doc["baseline"] = {
            k: v for k, v in baseline.items() if k != "e1_deployed_scaling"
        }
        micro_doc["speedup_vs_baseline"] = _speedups(micro, micro_doc["baseline"])
        headline = micro_doc["speedup_vs_baseline"].get(
            "medium_broadcast_storm.deliveries_per_s"
        )
        print(f"speedups: {micro_doc['speedup_vs_baseline']}")
        if not args.no_assert_speedup:
            assert headline is not None and headline >= SPEEDUP_TARGET, (
                f"medium storm speedup {headline} below target {SPEEDUP_TARGET}x"
            )
    e1_doc: Dict[str, Any] = {"bench": "e1", "schema": SCHEMA, **e1}
    if baseline is not None and "e1_deployed_scaling" in baseline:
        e1_doc["baseline"] = {"e1_deployed_scaling": baseline["e1_deployed_scaling"]}

    for name, doc in (("BENCH_micro.json", micro_doc), ("BENCH_e1.json", e1_doc)):
        path = f"{args.out_dir}/{name}"
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
