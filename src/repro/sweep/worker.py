"""Worker-side execution: one run -> one structured result record.

:func:`execute_run` is the single choke point through which every run of a
sweep passes, in the parent (serial mode) and in shard worker processes
alike — so a record looks the same no matter where it was produced.  A
workload exception becomes a ``status="failed"`` record with the error
attached; it never takes the sweep down.

:func:`shard_main` is the entry point of one shard process: it executes
its assigned runs sequentially and streams ``begin`` / ``done`` / ``fin``
messages back over a queue.  The parent is the only JSONL writer, so shard
output never interleaves.

Fault injection for tests and the CI smoke job: setting the
``REPRO_SWEEP_CRASH_RUN`` environment variable to a run id makes the shard
process hard-exit (``os._exit(3)``) when it reaches that run, for attempts
``<= REPRO_SWEEP_CRASH_ATTEMPTS`` (default 1).  Only worker processes
honor it, so a serial sweep in the parent is never killed.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Any, Dict, List, Tuple

from .spec import RunSpec
from .workloads import get_workload

#: Version tag of the JSONL result-record layout.
RECORD_SCHEMA = 1

#: Env var naming a run id on which worker processes hard-exit (tests/CI).
CRASH_ENV = "REPRO_SWEEP_CRASH_RUN"
#: Env var bounding how many attempts of that run crash (default 1).
CRASH_ATTEMPTS_ENV = "REPRO_SWEEP_CRASH_ATTEMPTS"


def base_record(run: RunSpec, shard: int, attempt: int) -> Dict[str, Any]:
    """The identity portion shared by success and failure records."""
    record = {"schema": RECORD_SCHEMA, "kind": "run"}
    record.update(run.record_fields())
    record["shard"] = shard
    record["attempt"] = attempt
    return record


def failure_record(
    run: RunSpec, shard: int, attempt: int, error: str, elapsed_s: float = 0.0
) -> Dict[str, Any]:
    """A structured failure: the run is accounted for, never lost."""
    record = base_record(run, shard, attempt)
    record.update(
        {
            "status": "failed",
            "error": error,
            "elapsed_s": elapsed_s,
            "metrics": {},
            "fingerprint": None,
        }
    )
    return record


def execute_run(
    run: RunSpec, attempt: int = 1, shard: int = -1, in_worker: bool = False
) -> Dict[str, Any]:
    """Execute one run and return its result record (never raises)."""
    if (
        in_worker
        and os.environ.get(CRASH_ENV) == run.run_id
        and attempt <= int(os.environ.get(CRASH_ATTEMPTS_ENV, "1"))
    ):
        os._exit(3)
    t0 = time.perf_counter()
    try:
        outcome = get_workload(run.workload)(dict(run.params), run.seed)
    except Exception as exc:  # noqa: BLE001 - a failed point must not lose the sweep
        tail = traceback.format_exc(limit=3).strip().splitlines()[-1]
        return failure_record(
            run,
            shard,
            attempt,
            error=f"{type(exc).__name__}: {exc} ({tail})",
            elapsed_s=time.perf_counter() - t0,
        )
    record = base_record(run, shard, attempt)
    record.update(
        {
            "status": "ok",
            "error": None,
            "elapsed_s": time.perf_counter() - t0,
            "metrics": dict(outcome.metrics),
            "fingerprint": outcome.fingerprint,
        }
    )
    return record


def shard_main(
    shard_id: int, assignments: List[Tuple[RunSpec, int]], queue: Any
) -> None:
    """Shard process entry point: run the assignment, stream results."""
    for run, attempt in assignments:
        queue.put(("begin", shard_id, (run.run_id, attempt)))
        record = execute_run(run, attempt=attempt, shard=shard_id, in_worker=True)
        queue.put(("done", shard_id, record))
    queue.put(("fin", shard_id, None))
