"""The sweep workload registry: named, seed-pure experiment kernels.

Every workload is a function ``(params, seed) -> WorkloadOutcome`` that
builds its whole world (deployment, simulator, stack) from the params and
the seed, runs one experiment, and returns flat numeric metrics plus a
fingerprint digest.  Purity is the contract the scheduler relies on: given
the same ``(params, seed)`` a workload must produce the same fingerprint in
any process on any shard, which is what makes the cross-shard determinism
audit and serial-vs-sharded equivalence meaningful.

Registered workloads:

``e1``      deployed quad-tree scaling (the E1 benchmark kernel): build a
            covered deployment of ``side**2 * 7`` nodes, run the Section 5
            protocols, execute one synthesized counting round.
``storm``   medium broadcast storm over ``loss`` / ``jitter`` regimes —
            the channel hot path in isolation.
``regions`` the paper's topographic-query case study on the virtual
            architecture, sweeping ``side`` / ``threshold``.
``churn``   maintenance under failure: kill a ``churn`` fraction of cell
            leaders (plus optional ``node_churn`` random nodes), run the
            Section 5.1 recovery path, optionally rotate leaders, and
            re-run the application on the recovered stack.
``serve``   persistent query serving: one :class:`repro.serve.QueryEngine`
            answers a seed-deterministic arrival stream over the deployed
            stack, with optional mid-stream field updates exercising
            epoch-based cache invalidation.

Names starting with ``_`` are internal fault-injection workloads used by
the scheduler's own tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

import numpy as np

from ..core import CountAggregation, VirtualArchitecture
from ..deployment import CellGrid, Terrain, build_network, ensure_coverage, uniform_random
from ..deployment.topology import RealNetwork
from ..partition import effective_procs
from ..runtime import (
    FaultPlan,
    deploy,
    kill_leaders,
    kill_random_nodes,
    plan_leader_storm,
    recover,
    rotate_leaders,
)
from ..scenario import Scenario
from ..simulator.engine import Simulator
from ..simulator.network import WirelessMedium
from ..simulator.trace import stable_digest


@dataclass
class WorkloadOutcome:
    """What one workload run reports back to the scheduler."""

    metrics: Dict[str, float] = field(default_factory=dict)
    fingerprint: str = ""


WorkloadFn = Callable[[Dict[str, Any], int], WorkloadOutcome]

#: Registry of named workloads; extend with :func:`workload`.
WORKLOADS: Dict[str, WorkloadFn] = {}


def workload(name: str) -> Callable[[WorkloadFn], WorkloadFn]:
    """Decorator registering a sweep workload under ``name``."""

    def register(fn: WorkloadFn) -> WorkloadFn:
        WORKLOADS[name] = fn
        return fn

    return register


def get_workload(name: str) -> WorkloadFn:
    """Look up a workload; raises with the known names on a miss."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(k for k in WORKLOADS if not k.startswith("_")))
        raise KeyError(f"unknown workload {name!r} (known: {known})") from None


def public_workloads() -> List[str]:
    """The user-facing workload names (internal ``_``-prefixed ones hidden)."""
    return sorted(k for k in WORKLOADS if not k.startswith("_"))


def _make_deployment(
    side: int, n_random: int, seed: int, range_cells: float = 2.3
) -> RealNetwork:
    """A covered deployment over ``side x side`` cells (the bench layout)."""
    terrain = Terrain(100.0)
    cells = CellGrid(terrain, side)
    rng = np.random.default_rng(seed)
    positions = ensure_coverage(uniform_random(n_random, terrain, rng), cells, rng)
    return build_network(positions, cells, tx_range=cells.cell_side * range_cells)


def _count_all_cells(cell: Any) -> bool:
    """Module-level counting predicate: partitioned runs pickle the
    program spec into shard workers, which a lambda would break."""
    return True


@workload("e1")
def e1_scaling(params: Dict[str, Any], seed: int) -> WorkloadOutcome:
    """One deployed quad-tree counting round at ``side`` (the E1 kernel).

    ``wire=True`` runs the identical round with every transport hop
    encoded through the :mod:`repro.runtime.wire` codec; the fingerprint
    is codec-independent by design, which is what the differential
    conformance tests pin.

    ``faultplan`` (a list of event dicts, the
    :meth:`~repro.runtime.faults.FaultPlan.to_dicts` shape) arms mid-run
    fault injection; the plan and the resulting
    :class:`~repro.runtime.faults.FaultReport` fold into the fingerprint,
    so seeded fault runs shard deterministically like fault-free ones.
    With a plan the round defaults to ``reliable=True`` and
    ``max_retries=8`` (self-healing needs the ARQ to redirect).

    ``partitions=K`` (K > 1) runs the round on the space-partitioned
    simulator (``repro.partition``).  K is part of the configuration
    identity (per-shard RNG streams), while the worker-process count is
    resolved at run time — clamped against the sweep's own parallelism
    via ``REPRO_SWEEP_WORKERS`` — and recorded in the metrics
    (``partition_procs`` / ``partition_procs_clamped``) without touching
    the fingerprint.

    ``scenario`` (the :meth:`~repro.scenario.Scenario.to_dict` shape)
    plugs in the world models of :mod:`repro.scenario` — radio link
    model, mobility schedule, pursuit adversary, duty-cycled sources —
    as a sweep axis.  The scenario and its
    :class:`~repro.scenario.ScenarioReport` fold into the fingerprint,
    and the report's flat metrics (``link_faded``, ``relocations``,
    ``attacker_*``, ``source_*``) land in the sweep record.  Scenario
    rounds default to ``reliable=True`` and report ``app_count`` instead
    of asserting the exact total: a faded or re-homed world may
    legitimately fall short of the full count.
    """
    side = int(params.get("side", 8))
    n_random = int(params.get("n_random", side * side * 7))
    loss = float(params.get("loss", 0.0))
    wire = bool(params.get("wire", False))
    partitions = int(params.get("partitions", 1))
    plan_spec = params.get("faultplan")
    plan = FaultPlan.from_dicts(plan_spec) if plan_spec else None
    scenario = Scenario.coerce(params.get("scenario"))
    if scenario is not None and scenario.is_trivial():
        scenario = None
    reliable = bool(
        params.get("reliable", loss > 0.0 or plan is not None or scenario is not None)
    )
    max_retries = int(
        params.get("max_retries", 8 if (plan is not None or scenario is not None) else 3)
    )
    net = _make_deployment(side, n_random, seed)
    stack = deploy(net)
    va = VirtualArchitecture(side)
    spec = va.synthesize(CountAggregation(_count_all_cells))
    budget = effective_procs(partitions) if partitions > 1 else None
    t0 = time.perf_counter()
    result = stack.run_application(
        spec, loss_rate=loss, rng=np.random.default_rng(seed),
        reliable=reliable, max_retries=max_retries, wire_format=wire,
        fault_plan=plan, partitions=partitions,
        partition_procs=None if budget is None else budget.procs,
        scenario=scenario,
    )
    wall = time.perf_counter() - t0
    if scenario is None and result.root_payload != side * side:
        raise RuntimeError(
            f"E1 count mismatch: got {result.root_payload}, want {side * side}"
        )
    metrics = {
        "side": float(side),
        "n_nodes": float(len(net)),
        "wall_s": wall,
        "transmissions": float(result.transmissions),
        "tx_per_s": result.transmissions / wall,
        "latency": result.latency,
        "events_processed": float(result.events_processed),
    }
    if budget is not None:
        metrics["partitions"] = float(partitions)
        metrics["partition_procs"] = float(budget.procs)
        metrics["partition_procs_clamped"] = 1.0 if budget.clamped else 0.0
    fp_parts: List[Any] = [
        result.ledger.fingerprint(),
        result.transmissions,
        result.drops,
        result.latency,
        result.events_processed,
    ]
    if plan is not None:
        report = result.fault_report
        assert report is not None
        metrics["failovers"] = float(len(report.failovers))
        metrics["reroutes"] = float(report.reroutes)
        metrics["frames_rejected"] = float(report.frames_rejected)
        fp_parts.extend([plan.fingerprint(), report.fingerprint()])
    if scenario is not None:
        scn_report = result.scenario_report
        assert scn_report is not None
        metrics["app_count"] = float(
            result.root_payload if len(result.exfiltrated) == 1 else -1
        )
        metrics.update(scn_report.metrics())
        fp_parts.extend([scenario.fingerprint(), scn_report.fingerprint()])
    return WorkloadOutcome(metrics=metrics, fingerprint=stable_digest(tuple(fp_parts)))


@workload("storm")
def broadcast_storm(params: Dict[str, Any], seed: int) -> WorkloadOutcome:
    """Every alive node broadcasts once per round; pure medium hot path."""
    side = int(params.get("side", 8))
    n_random = int(params.get("n_random", side * side * 6))
    rounds = int(params.get("rounds", 10))
    loss = float(params.get("loss", 0.0))
    jitter = float(params.get("jitter", 0.0))
    net = _make_deployment(side, n_random, seed)
    sim = Simulator()
    medium = WirelessMedium(
        sim, net, loss_rate=loss, jitter=jitter, rng=np.random.default_rng(seed)
    )
    ids = net.alive_ids()
    t0 = time.perf_counter()
    for r in range(rounds):
        for nid in ids:
            medium.broadcast(nid, "storm", r)
        sim.run()
    wall = time.perf_counter() - t0
    return WorkloadOutcome(
        metrics={
            "wall_s": wall,
            "transmissions": float(medium.stats.transmissions),
            "deliveries": float(medium.stats.deliveries),
            "drops": float(medium.stats.drops),
            "events_processed": float(sim.events_processed),
            "deliveries_per_s": medium.stats.deliveries / wall,
        },
        fingerprint=stable_digest(
            (
                medium.stats.fingerprint(),
                medium.ledger.fingerprint(),
                sim.events_processed,
            )
        ),
    )


@workload("regions")
def topographic_regions(params: Dict[str, Any], seed: int) -> WorkloadOutcome:
    """The case study on the virtual architecture: sweep side x threshold."""
    from ..apps import GaussianBlobField, TopographicQueryApp

    side = int(params.get("side", 16))
    threshold = float(params.get("threshold", 0.5))
    blobs = params.get(
        "blobs", [(0.28, 0.32, 0.11, 1.0), (0.72, 0.66, 0.08, 0.9)]
    )
    va = VirtualArchitecture(side)
    app = TopographicQueryApp(va, GaussianBlobField([tuple(b) for b in blobs]), threshold)
    t0 = time.perf_counter()
    report = app.run_virtual()
    wall = time.perf_counter() - t0
    perf = report.performance
    return WorkloadOutcome(
        metrics={
            "wall_s": wall,
            "regions": float(report.regions),
            "correct": float(report.correct),
            "latency": perf.latency,
            "total_energy": perf.total_energy,
            "messages": float(perf.messages),
            "events_processed": float(perf.messages),
        },
        fingerprint=stable_digest(
            (
                report.regions,
                report.expected_regions,
                report.correct,
                perf.latency,
                perf.total_energy,
                perf.messages,
            )
        ),
    )


@workload("churn")
def leader_churn(params: Dict[str, Any], seed: int) -> WorkloadOutcome:
    """Failure/recovery cycle: kill leaders, recover, optionally rotate.

    ``churn`` is the fraction of cells whose bound leader is killed;
    ``node_churn`` additionally kills a uniform fraction of remaining
    nodes.  An unrecoverable deployment (emptied cell) is *not* an error —
    it is the measured outcome (``recovered = 0``), matching E8.

    ``midrun_kill`` > 0 additionally kills that many leaders *during* the
    post-recovery application round (in-run faults, DESIGN.md §10) —
    distinguishing the offline churn path above from the online
    self-healing one; the round then runs reliable with healing and the
    fault report folds into the fingerprint.
    """
    side = int(params.get("side", 4))
    n_random = int(params.get("n_random", 150))
    churn = float(params.get("churn", 0.25))
    node_churn = float(params.get("node_churn", 0.0))
    rotate = bool(params.get("rotate", False))
    wire = bool(params.get("wire", False))
    midrun_kill = int(params.get("midrun_kill", 0))
    if not 0.0 <= churn <= 1.0:
        raise ValueError(f"churn must be in [0, 1], got {churn}")
    net = _make_deployment(side, n_random, seed)
    stack = deploy(net)
    rng = np.random.default_rng(seed)
    cells = sorted(stack.binding.leaders)
    k = int(round(churn * len(cells)))
    victims = (
        [cells[i] for i in sorted(rng.choice(len(cells), size=k, replace=False))]
        if k
        else []
    )
    killed = kill_leaders(net, stack.binding, cells=victims)
    extra = kill_random_nodes(net, node_churn, rng=rng) if node_churn > 0 else []
    report = recover(net, previous=stack)
    metrics: Dict[str, float] = {
        "killed_leaders": float(len(killed)),
        "killed_random": float(len(extra)),
        "recovered": float(report.recovered),
        "reelected_cells": float(report.reelected_cells),
        "setup_messages": float(report.setup_messages),
        "setup_energy": report.setup_energy,
        "events_processed": 0.0,
    }
    fp_parts: List[Any] = [
        tuple(sorted(killed)),
        tuple(sorted(extra)),
        report.recovered,
        report.reelected_cells,
        report.setup_messages,
        report.setup_energy,
        tuple(report.precondition_problems),
    ]
    if report.recovered:
        live = rotate_leaders(net) if rotate else report.stack
        if rotate:
            moved = sum(
                1
                for cell in cells
                if live.binding.leaders.get(cell) != report.stack.binding.leaders.get(cell)
            )
            metrics["rotated_cells"] = float(moved)
            fp_parts.append(tuple(sorted((str(c), n) for c, n in live.binding.leaders.items())))
        va = VirtualArchitecture(side)
        plan = None
        if midrun_kill > 0:
            plan = plan_leader_storm(
                sorted(live.binding.leaders), kills=midrun_kill, at=0.5, seed=seed
            )
        run = live.run_application(
            va.synthesize(CountAggregation(lambda c: True)),
            wire_format=wire,
            reliable=plan is not None,
            max_retries=8 if plan is not None else 3,
            fault_plan=plan,
        )
        metrics["app_count"] = float(run.root_payload)
        metrics["app_latency"] = run.latency
        metrics["events_processed"] = float(run.events_processed)
        fp_parts.extend([run.ledger.fingerprint(), run.transmissions, run.latency])
        if plan is not None:
            report = run.fault_report
            assert report is not None
            metrics["midrun_failovers"] = float(len(report.failovers))
            fp_parts.extend([plan.fingerprint(), report.fingerprint()])
    return WorkloadOutcome(metrics=metrics, fingerprint=stable_digest(tuple(fp_parts)))


@workload("serve")
def query_serving(params: Dict[str, Any], seed: int) -> WorkloadOutcome:
    """Persistent query serving over one deployed stack.

    Builds the deployment, populates level-1 distributed storage with one
    gathering round, then brings up a :class:`repro.serve.QueryEngine`
    and serves ``n_queries`` synthesized arrivals through admission
    batching.  ``updates`` > 0 splits the stream in half and mutates that
    many storage cells between the halves, so the sweep measures the
    cache's incremental-invalidation regime, not just all-hit/all-miss.
    The fingerprint folds the engine's full serving history, making
    serial-vs-sharded and wire-on/off equivalence checkable.

    Resilience axes (all default off, preserving legacy fingerprints):
    ``deadline`` bounds every query in virtual time with seeded retries,
    ``tenant_budget`` throttles each tenant's token bucket (with
    ``overload`` choosing shed vs defer), ``max_staleness`` lets tenants
    accept that many epochs of cache lag, and ``kill_leaders`` > 0 arms a
    mid-stream leader-kill chaos plan with healing so the sweep covers
    the degraded serving regime.  Outcome-taxonomy counts (DESIGN.md §16)
    are always emitted so analyze ingests shed/expired queries as named
    outcomes, never as failures.
    """
    from ..serve import QueryEngine, ServeConfig, TenantPolicy, synthesize_arrivals

    side = int(params.get("side", 4))
    n_random = int(params.get("n_random", side * side * 8))
    n_queries = int(params.get("n_queries", 16))
    tenants = int(params.get("tenants", 2))
    updates = int(params.get("updates", 0))
    loss = float(params.get("loss", 0.0))
    wire = bool(params.get("wire", False))
    reliable = bool(params.get("reliable", loss > 0.0))
    cache = bool(params.get("cache", True))
    mean_interarrival = float(params.get("mean_interarrival", 1.0))
    round_interval = float(params.get("round_interval", 2.0))
    deadline = float(params.get("deadline", 0.0)) or None
    tenant_budget = float(params.get("tenant_budget", 0.0)) or None
    max_staleness = int(params.get("max_staleness", 0))
    overload = str(params.get("overload", "shed"))
    kill_leaders = int(params.get("kill_leaders", 0))
    net = _make_deployment(side, n_random, seed)
    stack = deploy(net)
    va = VirtualArchitecture(side)
    gather = stack.run_application(
        va.synthesize(CountAggregation(lambda c: True), max_level=1)
    )
    default_policy = None
    if tenant_budget is not None or max_staleness > 0:
        default_policy = TenantPolicy(
            budget=tenant_budget, overload=overload, max_staleness=max_staleness
        )
    healing = None
    if kill_leaders > 0:
        from ..runtime.faults import HealingConfig

        healing = HealingConfig(heartbeat_interval=1.0, miss_threshold=2)
    engine = QueryEngine(
        stack,
        storage=dict(gather.exfiltrated),
        config=ServeConfig(
            loss_rate=loss,
            rng=np.random.default_rng(seed),
            reliable=reliable,
            wire_format=wire,
            cache=cache,
            deadline=deadline,
            default_policy=default_policy,
            healing=healing,
        ),
    )
    plan = None
    if kill_leaders > 0:
        from ..runtime.faults import plan_leader_storm

        plan = plan_leader_storm(
            sorted(engine.storage_cells), kills=kill_leaders, at=0.5, seed=seed
        )
        fault_report = engine.arm_faults(plan)
    arrivals = synthesize_arrivals(
        sorted(stack.binding.leaders),
        n_queries,
        seed=seed,
        mean_interarrival=mean_interarrival,
        tenants=tenants,
    )
    split = len(arrivals) // 2 if updates > 0 else len(arrivals)
    t0 = time.perf_counter()
    first = engine.serve(arrivals[:split], round_interval, reduce_fn=sum)
    for i, cell in enumerate(engine.storage_cells[:updates]):
        engine.update_field(cell, seed + i)
    second = engine.serve(arrivals[split:], round_interval, reduce_fn=sum)
    wall = time.perf_counter() - t0
    outcomes = first.outcomes + second.outcomes
    hits = sum(o.cache_hits for o in outcomes)
    misses = sum(o.cache_misses for o in outcomes)
    queries = len(outcomes)
    counts: Dict[str, int] = {}
    for report in (first, second):
        for name, n in report.outcome_counts().items():
            counts[name] = counts.get(name, 0) + n
    metrics = {
        "queries": float(queries),
        "complete_queries": float(
            first.complete_queries + second.complete_queries
        ),
        "ok_queries": float(counts.get("ok", 0)),
        "partial_queries": float(counts.get("partial", 0)),
        "shed_queries": float(counts.get("shed", 0)),
        "expired_queries": float(counts.get("deadline_expired", 0)),
        "deferred": float(engine.stats.deferred),
        "retries": float(engine.stats.retries),
        "late_responses": float(engine.stats.late_responses),
        "stale_hits": float(engine.stats.stale_hits),
        "rounds": float(len(first.batches) + len(second.batches)),
        "cache_hits": float(hits),
        "cache_misses": float(misses),
        "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "transmissions": float(first.transmissions + second.transmissions),
        "energy": first.energy + second.energy,
        "misdirected": float(engine.stats.misdirected),
        "events_processed": float(engine.sim.events_processed),
        "wall_s": wall,
        "queries_per_s": queries / wall if wall > 0 else 0.0,
    }
    fp_parts = [engine.fingerprint(), first.fingerprint(), second.fingerprint()]
    if plan is not None:
        metrics["failovers"] = float(len(fault_report.failovers))
        fp_parts.extend([plan.fingerprint(), fault_report.fingerprint()])
    return WorkloadOutcome(
        metrics=metrics,
        fingerprint=stable_digest(tuple(fp_parts)),
    )


@workload("timer_storm")
def timer_storm_churn(params: Dict[str, Any], seed: int) -> WorkloadOutcome:
    """The ``repro.bench`` timer-churn workload behind the shard scheduler."""
    from .. import bench

    ops = int(params.get("ops", 100_000))
    legacy = bool(params.get("legacy_handles", False))
    row = bench.timer_storm(ops=ops, seed=seed, legacy_handles=legacy)
    return WorkloadOutcome(
        metrics={k: float(v) for k, v in row.items()},
        fingerprint=stable_digest(
            (row["timer_ops"], row["events_processed"], row["transmissions"])
        ),
    )


@workload("pingpong")
def unicast_pingpong(params: Dict[str, Any], seed: int) -> WorkloadOutcome:
    """The ``repro.bench`` neighbour ping-pong behind the shard scheduler."""
    from .. import bench

    count = int(params.get("count", 20_000))
    row = bench.unicast_pingpong(count=count, seed=seed)
    return WorkloadOutcome(
        metrics={k: float(v) for k, v in row.items()},
        fingerprint=stable_digest(
            (row["transmissions"], row["deliveries"], row["events_processed"])
        ),
    )


@workload("bench_micro")
def bench_micro(params: Dict[str, Any], seed: int) -> WorkloadOutcome:
    """One variant of the full ``repro.bench`` micro suite.

    ``python -m repro.bench --workers N`` expands the whole suite as a
    grid over ``variant`` and shards it through the scheduler — the
    ROADMAP item of parallelizing full bench runs.  Fingerprints cover
    only the deterministic counters (never wall times), so serial and
    sharded dispatch of the same variant must fingerprint-match.
    """
    from .. import bench

    variant = str(params.get("variant", ""))
    scale = float(params.get("scale", 1.0))
    variants = bench.micro_variants(scale)
    if variant not in variants:
        raise KeyError(
            f"unknown bench_micro variant {variant!r} (known: {sorted(variants)})"
        )
    row = variants[variant](seed)
    return WorkloadOutcome(
        metrics={k: float(v) for k, v in row.items()},
        fingerprint=bench.micro_fingerprint(variant, row),
    )


@workload("_sleep")
def _sleep(params: Dict[str, Any], seed: int) -> WorkloadOutcome:
    """Test-only: sleep for ``sleep_s`` (exercises the hang-timeout path)."""
    duration = float(params.get("sleep_s", 0.05))
    time.sleep(duration)
    return WorkloadOutcome(
        metrics={"slept_s": duration, "events_processed": 0.0},
        fingerprint=stable_digest(("sleep", duration, seed)),
    )


@workload("_fail")
def _fail(params: Dict[str, Any], seed: int) -> WorkloadOutcome:
    """Test-only: always raises (exercises the structured-failure path)."""
    raise RuntimeError("injected workload failure")
