"""The sharded multiprocess sweep scheduler.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec`, filters
out runs already completed in the sink (resume), and executes the rest:

* ``workers <= 1`` — serially, in-process.  This is the reference path:
  identical records modulo ``shard`` / ``elapsed_s`` / ``wall_s`` fields.
* ``workers >= 2`` — runs are dealt round-robin onto ``workers`` shards,
  each a ``multiprocessing.Process`` streaming results back over a queue;
  the parent is the sole JSONL writer.  Audit duplicates are pinned to a
  different shard than their primary so the fingerprint audit genuinely
  crosses a process boundary.

Failure containment, in increasing severity:

* a workload **exception** is caught inside the worker and comes back as a
  ``status="failed"`` record (see :mod:`repro.sweep.worker`);
* a **hung** run (no result within ``timeout_s`` of its ``begin``) gets its
  shard terminated; the run is retried up to ``retries`` times on a fresh
  process, then recorded as a timeout failure;
* a **crashed** worker (hard exit, OOM kill, segfault) is detected by
  process death with runs still assigned; the in-flight run is retried or
  failed the same way and a fresh process takes over the remainder;
* a shard that keeps dying (``> max_respawns`` respawns) has its remaining
  runs recorded as structured failures — graceful degradation, never a
  hang and never a lost sweep.

Every run, successful or not, ends as exactly one record in the returned
list; ``len(records) == len(spec.expand())`` always holds.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from queue import Empty
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .sink import append_record, completed_ok_ids, load_records
from .spec import RunSpec, SweepSpec
from .worker import execute_run, failure_record, shard_main


@dataclass
class ShardStatus:
    """Live per-shard progress counters (what the CLI renders)."""

    shard: int
    assigned: int = 0
    done: int = 0
    failed: int = 0
    retried: int = 0
    respawns: int = 0


@dataclass
class SweepProgress:
    """One progress snapshot handed to the ``progress`` callback."""

    elapsed_s: float
    total: int
    done: int
    failed: int
    retried: int
    events_per_s: float
    shards: List[ShardStatus] = field(default_factory=list)

    def render(self) -> str:
        """Single-line human rendering with per-shard breakdown."""
        parts = [
            f"[{self.elapsed_s:7.1f}s]",
            f"{self.done + self.failed}/{self.total} runs",
            f"({self.failed} failed, {self.retried} retried)",
            f"{self.events_per_s:,.0f} ev/s",
        ]
        if self.shards:
            shard_bits = " ".join(
                f"s{s.shard}:{s.done}/{s.assigned}" + (f"!{s.failed}" if s.failed else "")
                for s in self.shards
            )
            parts.append("| " + shard_bits)
        return " ".join(parts)


ProgressFn = Callable[[SweepProgress], None]


def print_progress(snapshot: SweepProgress) -> None:
    """Default progress sink: one line per tick on stdout."""
    print(snapshot.render(), flush=True)


class _Shard:
    """Parent-side bookkeeping for one worker process."""

    def __init__(self, shard_id: int, runs: List[RunSpec]):
        self.id = shard_id
        self.queue: Deque[Tuple[RunSpec, int]] = deque((r, 1) for r in runs)
        self.by_id: Dict[str, RunSpec] = {r.run_id: r for r in runs}
        self.proc: Optional[mp.process.BaseProcess] = None
        #: (run_id, attempt, parent-monotonic begin time) of the in-flight run.
        self.current: Optional[Tuple[str, int, float]] = None
        self.status = ShardStatus(shard=shard_id, assigned=len(runs))

    @property
    def active(self) -> bool:
        return self.proc is not None or bool(self.queue)

    def mark_resolved(self, run_id: str) -> None:
        """Drop ``run_id`` from the pending queue (result or failure recorded)."""
        self.queue = deque((r, a) for r, a in self.queue if r.run_id != run_id)
        if self.current and self.current[0] == run_id:
            self.current = None


def _assign_shards(pending: List[RunSpec], workers: int) -> List[List[RunSpec]]:
    """Round-robin primaries; pin each audit duplicate to a different shard."""
    shards: List[List[RunSpec]] = [[] for _ in range(workers)]
    shard_of: Dict[str, int] = {}
    primaries = [r for r in pending if not r.audit]
    for i, run in enumerate(primaries):
        shard = i % workers
        shard_of[run.run_id] = shard
        shards[shard].append(run)
    for run in (r for r in pending if r.audit):
        shard = (shard_of.get(run.primary_id, run.point_index) + 1) % workers
        shards[shard].append(run)
    return shards


def run_sweep(
    spec: SweepSpec,
    out_path: Optional[str] = None,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    resume: bool = True,
    progress: Optional[ProgressFn] = None,
    progress_interval: float = 1.0,
    max_respawns: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Execute a sweep; returns one record per expanded run, sorted by id.

    ``out_path`` names the JSONL sink (omit for in-memory only); with
    ``resume`` (the default) runs already successful in that sink are
    skipped and their existing records returned.  ``timeout_s`` bounds one
    run's wall time in sharded mode; ``retries`` bounds re-dispatch of
    crashed or hung runs.
    """
    all_runs = spec.expand()
    spec_hash = spec.spec_hash()
    existing: List[Dict[str, Any]] = []
    if out_path and resume:
        prior = load_records(out_path)
        done_ids = completed_ok_ids(prior, spec_hash=spec_hash)
        seen: set = set()
        for record in prior:
            rid = record.get("run_id")
            if rid in done_ids and record.get("status") == "ok" and rid not in seen:
                seen.add(rid)
                existing.append(record)
    done_ids = {r["run_id"] for r in existing}
    pending = [r for r in all_runs if r.run_id not in done_ids]

    # Advertise the sweep's own parallelism to the runs it launches:
    # workloads that use intra-run partitioning (repro.partition) read
    # this to clamp their worker-process count to cpus // sweep_workers,
    # so an N-way sweep of K-way runs cannot oversubscribe the machine.
    # Worker processes inherit the environment at spawn time.
    from ..partition.runner import SWEEP_WORKERS_ENV

    prior_env = os.environ.get(SWEEP_WORKERS_ENV)
    os.environ[SWEEP_WORKERS_ENV] = str(max(1, workers))
    try:
        if workers <= 1:
            records = _run_serial(pending, out_path, progress, progress_interval)
        else:
            records = _run_sharded(
                pending,
                out_path,
                workers=workers,
                timeout_s=timeout_s,
                retries=retries,
                progress=progress,
                progress_interval=progress_interval,
                max_respawns=max_respawns,
            )
    finally:
        if prior_env is None:
            os.environ.pop(SWEEP_WORKERS_ENV, None)
        else:
            os.environ[SWEEP_WORKERS_ENV] = prior_env
    return sorted(existing + records, key=lambda r: r["run_id"])


def _run_serial(
    pending: List[RunSpec],
    out_path: Optional[str],
    progress: Optional[ProgressFn],
    progress_interval: float,
) -> List[Dict[str, Any]]:
    """The in-process reference path (also the 1-core fallback)."""
    records: List[Dict[str, Any]] = []
    t0 = time.monotonic()
    last_tick = t0
    events = 0.0
    failed = 0
    for i, run in enumerate(pending):
        record = execute_run(run, attempt=1, shard=0)
        if out_path:
            append_record(out_path, record)
        records.append(record)
        events += record["metrics"].get("events_processed", 0.0)
        failed += record["status"] != "ok"
        now = time.monotonic()
        if progress and (now - last_tick >= progress_interval or i == len(pending) - 1):
            last_tick = now
            elapsed = max(now - t0, 1e-9)
            progress(
                SweepProgress(
                    elapsed_s=elapsed,
                    total=len(pending),
                    done=i + 1 - failed,
                    failed=failed,
                    retried=0,
                    events_per_s=events / elapsed,
                )
            )
    return records


def _run_sharded(
    pending: List[RunSpec],
    out_path: Optional[str],
    workers: int,
    timeout_s: Optional[float],
    retries: int,
    progress: Optional[ProgressFn],
    progress_interval: float,
    max_respawns: Optional[int],
) -> List[Dict[str, Any]]:
    """Dispatch ``pending`` across ``workers`` shard processes."""
    if max_respawns is None:
        max_respawns = 2 * retries + 4
    ctx = mp.get_context()
    queue: Any = ctx.Queue()
    shards = [_Shard(i, runs) for i, runs in enumerate(_assign_shards(pending, workers))]

    records: List[Dict[str, Any]] = []
    resolved: set = set()
    retried_total = 0
    events = 0.0
    t0 = time.monotonic()
    last_tick = t0

    def emit(record: Dict[str, Any], shard: _Shard) -> None:
        nonlocal events
        if record["run_id"] in resolved:
            return  # duplicate after a timeout race: first resolution wins
        resolved.add(record["run_id"])
        if out_path:
            append_record(out_path, record)
        records.append(record)
        events += record["metrics"].get("events_processed", 0.0)
        if record["status"] == "ok":
            shard.status.done += 1
        else:
            shard.status.failed += 1
        shard.mark_resolved(record["run_id"])

    def spawn(shard: _Shard) -> None:
        if not shard.queue:
            shard.proc = None
            return
        shard.proc = ctx.Process(
            target=shard_main,
            args=(shard.id, list(shard.queue), queue),
            daemon=True,
        )
        shard.proc.start()

    def interrupt(shard: _Shard, reason: str) -> None:
        """A shard died or was killed: retry or fail its in-flight run.

        The charged run is the one whose ``begin`` arrived without a
        ``done`` — or, when no begin was seen, the head of the shard's
        ordered queue: a hard crash (``os._exit``, OOM kill) can take the
        queue feeder thread down before the ``begin`` message flushes, so
        "no run in flight" does not mean "no run was executing".  Charging
        the head is safe either way (workers process their assignment in
        order) and is what makes repeated-crash runs converge to a
        structured failure instead of an infinite respawn loop.
        """
        nonlocal retried_total
        victim = shard.current
        shard.current = None
        if victim is not None and victim[0] in resolved:
            victim = None  # its "done" raced ahead of the kill
        if victim is None and shard.queue:
            head, head_attempt = shard.queue[0]
            victim = (head.run_id, head_attempt, 0.0)
        if victim is not None:
            run_id, attempt, _ = victim
            run = shard.by_id[run_id]
            if attempt <= retries:
                retried_total += 1
                shard.status.retried += 1
                remaining = deque((r, a) for r, a in shard.queue if r.run_id != run_id)
                remaining.appendleft((run, attempt + 1))
                shard.queue = remaining
            else:
                emit(failure_record(run, shard.id, attempt, error=reason), shard)
        shard.status.respawns += 1
        if shard.status.respawns > max_respawns:
            for stranded, att in list(shard.queue):
                emit(
                    failure_record(
                        stranded, shard.id, att,
                        error=f"shard {shard.id} abandoned after "
                        f"{shard.status.respawns} respawns (last: {reason})",
                    ),
                    shard,
                )
            shard.queue.clear()
            shard.proc = None
        else:
            spawn(shard)

    def kill(shard: _Shard, reason: str) -> None:
        proc = shard.proc
        if proc is not None:
            proc.terminate()
            proc.join(5.0)
            shard.proc = None
        _drain(0.2)  # results that raced the terminate still count
        interrupt(shard, reason)

    def _drain(timeout: float) -> None:
        """Pump queue messages for up to ``timeout`` seconds."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                wait = max(0.0, deadline - time.monotonic())
                kind, shard_id, payload = queue.get(timeout=wait) if wait else queue.get_nowait()
            except Empty:
                return
            shard = shards[shard_id]
            if kind == "begin":
                run_id, attempt = payload
                shard.current = (run_id, attempt, time.monotonic())
            elif kind == "done":
                if shard.current and shard.current[0] == payload["run_id"]:
                    shard.current = None
                emit(payload, shard)
            elif kind == "fin":
                shard.current = None

    for shard in shards:
        spawn(shard)

    try:
        while any(s.active for s in shards):
            _drain(0.1)
            now = time.monotonic()
            for shard in shards:
                proc = shard.proc
                if proc is None:
                    if shard.queue:  # abandoned spawn slot; shouldn't happen
                        interrupt(shard, "shard lost its process")
                    continue
                if (
                    timeout_s is not None
                    and shard.current is not None
                    and now - shard.current[2] > timeout_s
                ):
                    run_id, attempt, began = shard.current
                    kill(
                        shard,
                        f"run timed out after {now - began:.1f}s "
                        f"(limit {timeout_s}s, attempt {attempt})",
                    )
                elif not proc.is_alive():
                    exitcode = proc.exitcode
                    proc.join()
                    shard.proc = None
                    _drain(0.2)  # in-flight results written before the exit
                    if shard.queue:
                        interrupt(shard, f"worker crashed (exit code {exitcode})")
            if progress and time.monotonic() - last_tick >= progress_interval:
                last_tick = time.monotonic()
                elapsed = max(last_tick - t0, 1e-9)
                progress(
                    SweepProgress(
                        elapsed_s=elapsed,
                        total=len(pending),
                        done=sum(s.status.done for s in shards),
                        failed=sum(s.status.failed for s in shards),
                        retried=retried_total,
                        events_per_s=events / elapsed,
                        shards=[s.status for s in shards],
                    )
                )
    finally:
        for shard in shards:
            if shard.proc is not None and shard.proc.is_alive():
                shard.proc.terminate()
                shard.proc.join(5.0)
    if progress:
        elapsed = max(time.monotonic() - t0, 1e-9)
        progress(
            SweepProgress(
                elapsed_s=elapsed,
                total=len(pending),
                done=sum(s.status.done for s in shards),
                failed=sum(s.status.failed for s in shards),
                retried=retried_total,
                events_per_s=events / elapsed,
                shards=[s.status for s in shards],
            )
        )
    return records
