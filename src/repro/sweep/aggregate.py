"""Aggregation of sweep records into ``BENCH_*.json``-style summaries.

One sweep's JSONL records collapse into a per-grid-point summary dict
(count, failures, min/mean/max of every numeric metric, distinct
fingerprints across replicates), and that summary is appended as one
per-commit entry to a schema-2 trajectory document — the same
``{"bench": ..., "schema": 2, "runs": [{"commit", "date", "workloads"}]}``
shape :mod:`repro.bench` maintains for ``BENCH_micro.json`` /
``BENCH_e1.json``, so sweep summaries accumulate across commits and can be
diffed by the same tooling.
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
from typing import Any, Dict, List, Optional

from .spec import SweepSpec

#: Version tag of the summary-document layout (shared with repro.bench).
SUMMARY_SCHEMA = 2


def _git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def point_key(params: Dict[str, Any]) -> str:
    """Canonical label of one grid point: ``k=v`` pairs in sorted order."""
    return ",".join(f"{k}={params[k]}" for k in sorted(params))


def summarize(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Collapse records into one summary block per grid point.

    Audit duplicates are excluded (they exist to check determinism, not to
    bias the statistics); failures are counted, never averaged in.
    """
    by_point: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        if record.get("audit"):
            continue
        by_point.setdefault(point_key(record.get("params", {})), []).append(record)

    summary: Dict[str, Any] = {}
    for key in sorted(by_point):
        group = by_point[key]
        ok = [r for r in group if r.get("status") == "ok"]
        metrics: Dict[str, Dict[str, float]] = {}
        names = sorted({m for r in ok for m in r.get("metrics", {})})
        for name in names:
            values = [
                float(r["metrics"][name])
                for r in ok
                if isinstance(r["metrics"].get(name), (int, float))
            ]
            if values:
                metrics[name] = {
                    "mean": sum(values) / len(values),
                    "min": min(values),
                    "max": max(values),
                }
        summary[key] = {
            "runs": len(ok),
            "failed": len(group) - len(ok),
            "distinct_fingerprints": len({r["fingerprint"] for r in ok}),
            "metrics": metrics,
        }
    return summary


def make_entry(records: List[Dict[str, Any]], spec: SweepSpec) -> Dict[str, Any]:
    """One trajectory entry: today's commit + the per-point summary."""
    return {
        "commit": _git_commit(),
        "date": datetime.date.today().isoformat(),
        "spec_hash": spec.spec_hash(),
        "spec": spec.to_dict(),
        "workloads": summarize(records),
    }


def write_summary(
    path: str, records: List[Dict[str, Any]], spec: SweepSpec,
    bench_name: Optional[str] = None,
) -> Dict[str, Any]:
    """Append this sweep's entry to the trajectory document at ``path``.

    An existing entry for the same commit is replaced (re-runs supersede);
    a document for a different bench name is left alone and started fresh.
    Returns the written document.
    """
    bench = bench_name or f"sweep:{spec.name}"
    runs: List[Dict[str, Any]] = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                doc = json.load(fh)
            if doc.get("bench") == bench and isinstance(doc.get("runs"), list):
                runs = doc["runs"]
        except (OSError, json.JSONDecodeError):
            runs = []
    entry = make_entry(records, spec)
    runs = [r for r in runs if r.get("commit") != entry["commit"]]
    runs.append(entry)
    doc = {"bench": bench, "schema": SUMMARY_SCHEMA, "runs": runs}
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc
