"""JSONL result sink: append-only records, resume, determinism audit.

One sweep writes one JSONL file, one record per line, appended and flushed
as each run completes — so killing the orchestrator at any point loses at
most the line being written.  :func:`load_records` tolerates a truncated
final line for exactly that reason, which is what makes
resume-from-partial-results a plain restart: re-running the same spec
against the same sink skips every run that already has an ``ok`` record.

:func:`audit_determinism` checks the cross-shard determinism duplicates a
:class:`~repro.sweep.spec.SweepSpec` schedules (``audit_duplicates``):
every ``...#audit`` record must carry the same fingerprint as its primary,
even though the scheduler deliberately ran the two on different shards.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, Any, Callable, Dict, Iterator, List, Optional, Set

from .spec import AUDIT_SUFFIX


def _ends_mid_line(path: str) -> bool:
    """True iff the file exists, is non-empty, and lacks a final newline."""
    try:
        with open(path, "rb") as fh:
            fh.seek(-1, os.SEEK_END)
            return fh.read(1) != b"\n"
    except (OSError, ValueError):
        return False


def append_record(path_or_fh: "str | IO[str]", record: Dict[str, Any]) -> None:
    """Append one record as a JSON line (flushed immediately).

    If the file ends in a torn, newline-less write (a killed
    orchestrator), a newline is inserted first so the new record never
    glues onto the corpse of the old one.
    """
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if isinstance(path_or_fh, str):
        prefix = "\n" if _ends_mid_line(path_or_fh) else ""
        with open(path_or_fh, "a") as fh:
            fh.write(prefix + line + "\n")
    else:
        path_or_fh.write(line + "\n")
        path_or_fh.flush()


def iter_records(
    path: str, on_torn: Optional[Callable[[int, str], None]] = None
) -> Iterator[Dict[str, Any]]:
    """Stream the intact records of a sink file (nothing if missing).

    The read half of the sink's durability contract, exported for the
    :mod:`repro.analyze` ingest layer: torn lines (a killed writer's
    truncated tail) are skipped, not fatal, and each one is reported to
    ``on_torn(line_number, line)`` so callers can account for the repair
    instead of silently absorbing it.  Completeness is judged by run ids
    against the spec, never by line count, so dropping an unparseable
    line can only cause a run to be re-executed — exactly the safe
    direction.
    """
    if not os.path.exists(path):
        return
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                # torn write from a killed orchestrator
                if on_torn is not None:
                    on_torn(lineno, line)


def load_records(path: str) -> List[Dict[str, Any]]:
    """All intact records of a sink file (empty if missing).

    Materialized :func:`iter_records` with torn-tail lines silently
    repaired — the resume path's historical interface.
    """
    return list(iter_records(path))


def completed_ok_ids(records: List[Dict[str, Any]], spec_hash: Optional[str] = None) -> Set[str]:
    """Run ids with a successful record (optionally for one spec only)."""
    return {
        r["run_id"]
        for r in records
        if r.get("status") == "ok"
        and (spec_hash is None or r.get("spec_hash") == spec_hash)
    }


@dataclass
class AuditReport:
    """Outcome of the cross-shard duplicated-seed determinism audit."""

    pairs_checked: int = 0
    mismatches: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every audited pair agreed on its fingerprint."""
        return not self.mismatches


def audit_determinism(records: List[Dict[str, Any]]) -> AuditReport:
    """Compare every ``#audit`` record's fingerprint with its primary's.

    Pairs where either side failed are not counted — a structured failure
    is its own signal and already visible in the records.
    """
    by_id = {r["run_id"]: r for r in records if r.get("status") == "ok"}
    report = AuditReport()
    for run_id, dup in by_id.items():
        if not run_id.endswith(AUDIT_SUFFIX):
            continue
        primary = by_id.get(run_id[: -len(AUDIT_SUFFIX)])
        if primary is None:
            continue
        report.pairs_checked += 1
        if dup["fingerprint"] != primary["fingerprint"]:
            report.mismatches.append(
                {
                    "run_id": primary["run_id"],
                    "primary_fingerprint": primary["fingerprint"],
                    "audit_fingerprint": dup["fingerprint"],
                    "primary_shard": primary.get("shard"),
                    "audit_shard": dup.get("shard"),
                }
            )
    return report
