"""End-to-end self check of the sweep orchestrator (the CI smoke gate).

Runs one tiny spec three ways and asserts the subsystem's headline
guarantees hold on this machine:

1. **serial vs sharded** — the same spec through the in-process path and
   through a multi-worker pool must produce identical per-run
   fingerprints, and the scheduled cross-shard audit duplicates must
   agree with their primaries;
2. **resume round trip** — a sink truncated mid-sweep (an orchestrator
   kill) plus a resumed run must yield the complete result set, again
   fingerprint-identical, re-executing only the missing runs;
3. **crash recovery** — with a worker hard-crash injected on one run
   (``REPRO_SWEEP_CRASH_RUN``), the scheduler must retry it on a fresh
   process and still deliver the complete, identical result set.

Exposed as ``python -m repro sweep --self-check``.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List, Optional

from .sink import append_record, audit_determinism, load_records
from .spec import SweepSpec
from .scheduler import print_progress, run_sweep
from .worker import CRASH_ENV

#: The tiny grid every self-check runs: 2x2 regimes x 2 replicates
#: (+2 cross-shard audit duplicates) of the medium storm workload.
SELF_CHECK_SPEC = SweepSpec(
    name="selfcheck",
    workload="storm",
    grid={"loss": [0.0, 0.15], "jitter": [0.0, 0.3]},
    fixed={"side": 4, "n_random": 70, "rounds": 2},
    replicates=2,
    audit_duplicates=2,
)


def _fingerprints(records: List[Dict]) -> Dict[str, Optional[str]]:
    return {r["run_id"]: r["fingerprint"] for r in records}


def self_check(workers: int = 2, quiet: bool = False) -> int:
    """Run the three-way check; returns a process exit code (0 = pass)."""
    def say(*parts: object) -> None:
        if not quiet:
            print(*parts)

    progress = None if quiet else print_progress
    spec = SELF_CHECK_SPEC
    total = len(spec.expand())
    with tempfile.TemporaryDirectory(prefix="repro-sweep-check-") as tmp:
        serial = run_sweep(
            spec, out_path=os.path.join(tmp, "serial.jsonl"), workers=1,
        )
        assert len(serial) == total, f"serial sweep incomplete: {len(serial)}/{total}"
        assert all(r["status"] == "ok" for r in serial), "serial sweep had failures"

        sharded = run_sweep(
            spec, out_path=os.path.join(tmp, "sharded.jsonl"),
            workers=workers, timeout_s=300.0, retries=1, progress=progress,
        )
        assert _fingerprints(sharded) == _fingerprints(serial), (
            "sharded fingerprints diverged from the serial reference"
        )
        audit = audit_determinism(sharded)
        assert audit.pairs_checked == spec.audit_duplicates and audit.ok, (
            f"cross-shard determinism audit failed: {audit.mismatches}"
        )
        say(f"self-check 1/3: serial == sharded({workers}) fingerprints "
            f"for {total} runs; {audit.pairs_checked} cross-shard audit pairs OK")

        resume_path = os.path.join(tmp, "resume.jsonl")
        survivors = serial[: total // 2]
        for record in survivors:
            append_record(resume_path, record)
        with open(resume_path, "a") as fh:
            fh.write('{"schema": 1, "kind": "run", "run_id": "torn')  # killed mid-write
        resumed = run_sweep(
            spec, out_path=resume_path, workers=workers,
            timeout_s=300.0, retries=1,
        )
        assert _fingerprints(resumed) == _fingerprints(serial), (
            "resumed sweep diverged from the serial reference"
        )
        on_disk = load_records(resume_path)
        assert len({r["run_id"] for r in on_disk}) == total, "resume lost runs"
        say(f"self-check 2/3: resume after mid-sweep kill completed "
            f"{total - len(survivors)} missing runs; result set identical")

        victim = next(r for r in spec.expand() if not r.audit)
        crash_path = os.path.join(tmp, "crash.jsonl")
        os.environ[CRASH_ENV] = victim.run_id
        try:
            crashed = run_sweep(
                spec, out_path=crash_path, workers=workers,
                timeout_s=300.0, retries=1,
            )
        finally:
            del os.environ[CRASH_ENV]
        assert _fingerprints(crashed) == _fingerprints(serial), (
            "post-crash result set diverged from the serial reference"
        )
        victim_record = next(r for r in crashed if r["run_id"] == victim.run_id)
        assert victim_record["attempt"] >= 2, (
            f"crashed run was not retried (attempt={victim_record['attempt']})"
        )
        say(f"self-check 3/3: injected worker crash on {victim.run_id} "
            f"recovered on attempt {victim_record['attempt']}; result set identical")
    say("sweep self-check: PASS")
    return 0
