"""``repro.sweep`` — sharded multiprocess experiment-sweep orchestration.

The subsystem that turns the one-`Simulator`-per-core reproduction into a
high-throughput experiment platform:

* :mod:`repro.sweep.spec` — declarative :class:`SweepSpec` grids with
  deterministic per-run seed derivation (``spec_hash x point x replicate``);
* :mod:`repro.sweep.workloads` — the registry of seed-pure experiment
  kernels (``e1``, ``storm``, ``regions``, ``churn``);
* :mod:`repro.sweep.scheduler` — the multiprocess shard scheduler with
  per-run timeouts, bounded retry of crashed/hung workers, and structured
  failure records;
* :mod:`repro.sweep.sink` — the append-only JSONL result sink with
  resume-from-partial-results and the cross-shard determinism audit;
* :mod:`repro.sweep.aggregate` — collapse to ``BENCH_*.json`` schema-2
  trajectory summaries;
* :mod:`repro.sweep.cli` / :mod:`repro.sweep.selfcheck` — the
  ``python -m repro sweep`` subcommand and the CI smoke gate.

Quick use::

    from repro.sweep import SweepSpec, run_sweep, audit_determinism

    spec = SweepSpec(name="loss-study", workload="storm",
                     grid={"loss": [0.0, 0.1, 0.2]}, replicates=8,
                     audit_duplicates=3)
    records = run_sweep(spec, out_path="loss.jsonl", workers=4)
    assert audit_determinism(records).ok
"""

from .aggregate import make_entry, point_key, summarize, write_summary
from .scheduler import ShardStatus, SweepProgress, print_progress, run_sweep
from .selfcheck import self_check
from .sink import (
    AuditReport,
    append_record,
    audit_determinism,
    completed_ok_ids,
    iter_records,
    load_records,
)
from .spec import RunSpec, SweepSpec, derive_seed
from .worker import execute_run, failure_record
from .workloads import (
    WORKLOADS,
    WorkloadOutcome,
    get_workload,
    public_workloads,
    workload,
)

__all__ = [
    "AuditReport",
    "RunSpec",
    "ShardStatus",
    "SweepProgress",
    "SweepSpec",
    "WORKLOADS",
    "WorkloadOutcome",
    "append_record",
    "audit_determinism",
    "completed_ok_ids",
    "derive_seed",
    "execute_run",
    "failure_record",
    "get_workload",
    "iter_records",
    "load_records",
    "make_entry",
    "point_key",
    "print_progress",
    "public_workloads",
    "run_sweep",
    "self_check",
    "summarize",
    "workload",
    "write_summary",
]
