"""Declarative sweep specifications with deterministic per-run seeds.

A :class:`SweepSpec` names one workload and a cartesian parameter grid
(``side`` / ``loss`` / ``jitter`` / ``churn`` / ``threshold`` / ...) times a
replicate count.  Expanding the spec yields one :class:`RunSpec` per
``(grid point, replicate)``; each run's seed is derived as

    ``sha256(spec_hash : seed_salt : point_index : replicate)``

so every run is individually reproducible: re-executing a single
:class:`RunSpec` in isolation (one core, no pool) produces byte-identical
fingerprints to the same run inside a many-worker sharded sweep.  The
``spec_hash`` itself is a digest of the canonical JSON of the spec, so two
processes holding "the same" spec always agree on every seed.

``audit_duplicates=k`` appends duplicates of the first ``k`` expanded runs
(same params, same seed, run id suffixed ``#audit``); the scheduler places
each duplicate on a *different* shard than its primary and the sink-level
audit asserts fingerprint equality — a cross-shard determinism check that
rides along with every sweep.  The audit count is deliberately excluded
from the spec hash so enabling it never perturbs primary seeds.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Sequence

#: Suffix marking the cross-shard determinism duplicates of a run.
AUDIT_SUFFIX = "#audit"


def derive_seed(spec_hash: str, seed_salt: int, point_index: int, replicate: int) -> int:
    """Deterministic 63-bit seed for one ``(point, replicate)`` of a spec."""
    material = f"{spec_hash}:{seed_salt}:{point_index}:{replicate}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved run of a sweep: params + the derived seed.

    ``run_id`` is globally stable (``<spec_hash>/p<point>/r<replicate>``),
    which is what makes JSONL resume and cross-process result matching
    possible without any coordination.
    """

    run_id: str
    spec_hash: str
    name: str
    workload: str
    point_index: int
    replicate: int
    seed: int
    params: Dict[str, Any]
    audit: bool = False

    @property
    def primary_id(self) -> str:
        """The run id of the primary this run duplicates (itself if primary)."""
        return self.run_id[: -len(AUDIT_SUFFIX)] if self.audit else self.run_id

    def record_fields(self) -> Dict[str, Any]:
        """The identity fields every result record carries."""
        return {
            "run_id": self.run_id,
            "spec_hash": self.spec_hash,
            "name": self.name,
            "workload": self.workload,
            "point": self.point_index,
            "replicate": self.replicate,
            "audit": self.audit,
            "seed": self.seed,
            "params": dict(self.params),
        }


@dataclass
class SweepSpec:
    """A declarative experiment sweep: workload x parameter grid x replicates.

    ``grid`` maps parameter names to value lists (cartesian product, in
    sorted-name order so point enumeration is canonical); ``fixed`` params
    are merged into every point.  A ``seed`` entry in either overrides the
    derived seed — useful for pinning a legacy benchmark seed, at the cost
    of making replicates identical for seed-driven workloads.
    """

    name: str
    workload: str
    grid: Dict[str, Sequence[Any]] = field(default_factory=dict)
    fixed: Dict[str, Any] = field(default_factory=dict)
    replicates: int = 1
    seed_salt: int = 0
    audit_duplicates: int = 0

    def __post_init__(self) -> None:
        if not self.name or not self.workload:
            raise ValueError("SweepSpec needs a non-empty name and workload")
        if self.replicates < 1:
            raise ValueError(f"replicates must be >= 1, got {self.replicates}")
        if self.audit_duplicates < 0:
            raise ValueError("audit_duplicates must be >= 0")
        for param, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"grid[{param!r}] must be a non-empty list")

    # -- identity --------------------------------------------------------

    def canonical_json(self) -> str:
        """Canonical serialization: the seed-determining fields only."""
        doc = {
            "name": self.name,
            "workload": self.workload,
            "grid": {k: list(v) for k, v in self.grid.items()},
            "fixed": self.fixed,
            "replicates": self.replicates,
            "seed_salt": self.seed_salt,
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """Stable 16-hex-digit identity of the seed-determining fields."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    # -- expansion -------------------------------------------------------

    def points(self) -> List[Dict[str, Any]]:
        """The cartesian grid, each point merged over ``fixed``."""
        names = sorted(self.grid)
        if not names:
            return [dict(self.fixed)]
        out: List[Dict[str, Any]] = []
        for combo in itertools.product(*(self.grid[n] for n in names)):
            params = dict(self.fixed)
            params.update(zip(names, combo))
            out.append(params)
        return out

    def expand(self) -> List[RunSpec]:
        """All runs of the sweep: grid x replicates, plus audit duplicates."""
        spec_hash = self.spec_hash()
        runs: List[RunSpec] = []
        for point_index, params in enumerate(self.points()):
            for rep in range(self.replicates):
                seed = params["seed"] if "seed" in params else derive_seed(
                    spec_hash, self.seed_salt, point_index, rep
                )
                runs.append(
                    RunSpec(
                        run_id=f"{spec_hash}/p{point_index:04d}/r{rep}",
                        spec_hash=spec_hash,
                        name=self.name,
                        workload=self.workload,
                        point_index=point_index,
                        replicate=rep,
                        seed=int(seed),
                        params=params,
                    )
                )
        for primary in runs[: self.audit_duplicates]:
            runs.append(
                replace(primary, run_id=primary.run_id + AUDIT_SUFFIX, audit=True)
            )
        return runs

    # -- (de)serialization ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "workload": self.workload,
            "grid": {k: list(v) for k, v in self.grid.items()},
            "fixed": dict(self.fixed),
            "replicates": self.replicates,
            "seed_salt": self.seed_salt,
            "audit_duplicates": self.audit_duplicates,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`to_dict`; unknown keys rejected loudly."""
        known = {
            "name", "workload", "grid", "fixed", "replicates",
            "seed_salt", "audit_duplicates",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown SweepSpec fields: {sorted(unknown)}")
        return cls(**doc)

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        """Load a spec from a JSON file."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
