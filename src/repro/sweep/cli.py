"""The ``python -m repro sweep`` subcommand.

Builds a :class:`~repro.sweep.spec.SweepSpec` from a JSON file
(``--spec``) or inline flags (``--workload`` + repeated ``--grid``/
``--fixed``), runs it through the shard scheduler with live per-shard
progress, audits the cross-shard determinism duplicates, and optionally
writes the aggregated trajectory summary.

Examples::

    python -m repro sweep --workload e1 --grid side=4,8,16 \\
        --replicates 3 --workers 4 --out sweep_e1.jsonl --summary SWEEP_e1.json

    python -m repro sweep --workload churn --grid churn=0.0,0.25,0.5,1.0 \\
        --grid rotate=false,true --fixed side=4 --replicates 5 --audit 4

    python -m repro sweep --self-check          # the CI smoke gate

Exit codes: 0 on success, 1 on a determinism-audit mismatch, 3 when
``--strict`` is set and any run ended as a structured failure.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from .aggregate import write_summary
from .scheduler import print_progress, run_sweep
from .sink import audit_determinism
from .spec import SweepSpec
from .workloads import public_workloads


def parse_value(text: str) -> Any:
    """CLI literal -> int, float, bool, or string (in that order)."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


def parse_grid(items: List[str]) -> Dict[str, List[Any]]:
    """Repeated ``--grid name=v1,v2,...`` flags -> the grid dict."""
    grid: Dict[str, List[Any]] = {}
    for item in items:
        name, _, values = item.partition("=")
        if not name or not values:
            raise ValueError(f"--grid expects name=v1,v2,..., got {item!r}")
        grid[name] = [parse_value(v) for v in values.split(",")]
    return grid


def parse_fixed(items: List[str]) -> Dict[str, Any]:
    """Repeated ``--fixed name=value`` flags -> the fixed-params dict."""
    fixed: Dict[str, Any] = {}
    for item in items:
        name, _, value = item.partition("=")
        if not name or not value:
            raise ValueError(f"--fixed expects name=value, got {item!r}")
        fixed[name] = parse_value(value)
    return fixed


def build_parser() -> argparse.ArgumentParser:
    """The ``repro sweep`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="sharded multiprocess experiment-sweep orchestrator",
    )
    parser.add_argument("--spec", help="JSON SweepSpec file (alternative to inline flags)")
    parser.add_argument("--workload", help="registered workload name (see --list-workloads)")
    parser.add_argument(
        "--grid", action="append", default=[], metavar="NAME=V1,V2,...",
        help="one grid dimension (repeatable); cartesian product over all",
    )
    parser.add_argument(
        "--fixed", action="append", default=[], metavar="NAME=VALUE",
        help="parameter merged into every point (repeatable)",
    )
    parser.add_argument("--name", help="sweep name (defaults to the workload name)")
    parser.add_argument("--replicates", type=int, default=1, help="seeds per grid point")
    parser.add_argument(
        "--audit", type=int, default=2, metavar="N",
        help="cross-shard determinism duplicates to schedule (default 2)",
    )
    parser.add_argument("--seed-salt", type=int, default=0, help="perturbs every derived seed")
    parser.add_argument(
        "--out", default="sweep_results.jsonl", metavar="PATH",
        help="JSONL result sink (default sweep_results.jsonl)",
    )
    parser.add_argument(
        "--summary", metavar="PATH",
        help="also append an aggregated entry to this trajectory JSON",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: CPU count; 1 = serial in-process)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="per-run wall-time limit in sharded mode (default 600)",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="re-dispatches of a crashed/hung run before recording failure",
    )
    parser.add_argument(
        "--no-resume", action="store_true",
        help="re-run everything even if the sink already has results",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero if any run ended as a structured failure",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    parser.add_argument(
        "--list-workloads", action="store_true", help="print registered workloads and exit"
    )
    parser.add_argument(
        "--self-check", action="store_true",
        help="run the serial-vs-sharded / resume / crash-recovery smoke check",
    )
    return parser


def build_spec(args: argparse.Namespace) -> SweepSpec:
    """Resolve the spec from ``--spec`` or the inline flags."""
    if args.spec:
        spec = SweepSpec.from_file(args.spec)
        if args.workload or args.grid or args.fixed:
            raise ValueError("--spec and inline --workload/--grid/--fixed are exclusive")
        return spec
    if not args.workload:
        raise ValueError("either --spec or --workload is required")
    return SweepSpec(
        name=args.name or args.workload,
        workload=args.workload,
        grid=parse_grid(args.grid),
        fixed=parse_fixed(args.fixed),
        replicates=args.replicates,
        seed_salt=args.seed_salt,
        audit_duplicates=args.audit,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_workloads:
        for name in public_workloads():
            print(name)
        return 0
    if args.self_check:
        from .selfcheck import self_check

        return self_check(workers=args.workers or 2, quiet=args.quiet)
    try:
        spec = build_spec(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    workers = args.workers if args.workers is not None else (os_cpu_count() or 1)
    total = len(spec.expand())
    if not args.quiet:
        print(
            f"sweep {spec.name!r} [{spec.spec_hash()}]: {total} runs "
            f"({len(spec.points())} points x {spec.replicates} replicates "
            f"+ {spec.audit_duplicates} audit) on {workers} worker(s) -> {args.out}"
        )
    records = run_sweep(
        spec,
        out_path=args.out,
        workers=workers,
        timeout_s=args.timeout,
        retries=args.retries,
        resume=not args.no_resume,
        progress=None if args.quiet else print_progress,
    )
    failed = [r for r in records if r["status"] != "ok"]
    audit = audit_determinism(records)
    if not args.quiet:
        print(
            f"done: {len(records) - len(failed)} ok, {len(failed)} failed; "
            f"audit {audit.pairs_checked} pairs, {len(audit.mismatches)} mismatches"
        )
        for record in failed:
            print(f"  FAILED {record['run_id']}: {record['error']}", file=sys.stderr)
    if args.summary:
        write_summary(args.summary, records, spec)
        if not args.quiet:
            print(f"summary appended to {args.summary}")
    if not audit.ok:
        for mismatch in audit.mismatches:
            print(f"AUDIT MISMATCH: {mismatch}", file=sys.stderr)
        return 1
    if args.strict and failed:
        return 3
    return 0


def os_cpu_count() -> Optional[int]:
    """Seam for tests; plain :func:`os.cpu_count` otherwise."""
    import os

    return os.cpu_count()
