"""Command-line entry point.

``python -m repro [side] [threshold]`` runs the complete methodology
pipeline on a small topographic-query instance and prints every stage —
a smoke test that doubles as the thirty-second tour of the library.

``python -m repro sweep ...`` dispatches to the sharded experiment-sweep
orchestrator (see :mod:`repro.sweep.cli` for flags).

``python -m repro faults --self-check`` runs the fault-injection matrix
(kill leaders / partition / corrupt frames, each under reliable on/off
and wire on/off) asserting determinism and recovery — the CI
``fault-matrix`` job.

``python -m repro serve`` brings up a persistent query engine over a
small deployment and serves a synthesized arrival stream, printing the
per-round cache/radio accounting; ``--self-check`` runs the serving
acceptance matrix instead (the CI ``serve`` job).

``python -m repro partition`` runs one seeded broadcast storm serially
and space-partitioned (DESIGN.md §12) and prints the matching
fingerprints plus the wall-clock split; ``--self-check`` runs the
partitioned-simulator acceptance matrix instead (the CI ``partition``
job).

``python -m repro scenario`` runs one seeded round under the full
scenario composition (log-normal shadowing, mobility, pursuit adversary,
duty-cycled sources; DESIGN.md §14) serially and space-partitioned,
printing the matching fingerprints and the scenario report;
``--self-check`` runs the scenario acceptance matrix instead (the CI
``scenario`` job).

``python -m repro bench ...`` forwards to the perf-regression harness
(:mod:`repro.bench`), flags included — ``--check``, ``--workers N``,
``--profile``.

``python -m repro analyze ...`` runs the campaign-analytics pipeline
(:mod:`repro.analyze`): memoized aggregation of sweep JSONL sinks with
confidence intervals (``--sink``/``--by``), plus trajectory regression
detection over the committed ``BENCH_*.json`` artifacts, writing
``ANALYZE_report.json``; ``--self-check`` runs the analysis acceptance
matrix instead (the CI ``analyze`` job).
"""

from __future__ import annotations

import sys

from .apps import (
    GaussianBlobField,
    TopographicQueryApp,
    render_energy_map,
    render_label_map,
)
from .core import VirtualArchitecture
from .core.analysis import estimate_quadtree, quadtree_step_count


def _serve_demo(args: list[str]) -> int:
    """``python -m repro serve [--self-check]``."""
    from .serve import self_check

    if "--self-check" in args:
        return 0 if self_check() else 1

    import numpy as np

    from .core import CountAggregation
    from .deployment import (
        CellGrid,
        Terrain,
        build_network,
        ensure_coverage,
        uniform_random,
    )
    from .runtime import deploy
    from .serve import QueryEngine, ServeConfig, synthesize_arrivals

    side = int(args[0]) if args else 4
    n_queries = int(args[1]) if len(args) > 1 else 12
    terrain = Terrain(100.0)
    cells = CellGrid(terrain, side)
    rng = np.random.default_rng(7)
    positions = ensure_coverage(
        uniform_random(side * side * 9, terrain, rng), cells, rng
    )
    net = build_network(positions, cells, tx_range=cells.cell_side * 2.3)
    stack = deploy(net)
    va = VirtualArchitecture(side)
    gather = stack.run_application(
        va.synthesize(CountAggregation(lambda c: True), max_level=1)
    )
    engine = QueryEngine(
        stack, storage=dict(gather.exfiltrated), config=ServeConfig()
    )
    print(f"deployed stack       : {side}x{side} cells, {len(net)} nodes, "
          f"{len(gather.exfiltrated)} storage leaders")
    arrivals = synthesize_arrivals(
        sorted(stack.binding.leaders), n_queries, seed=5, tenants=3
    )
    report = engine.serve(arrivals, round_interval=2.0, reduce_fn=sum)
    for i, batch in enumerate(report.batches):
        hits = sum(o.cache_hits for o in batch.outcomes)
        print(
            f"round {i}: {len(batch.outcomes)} queries admitted at "
            f"t={batch.admitted_at:.1f}, {batch.transmissions} tx, "
            f"{hits} cache hits, energy {batch.energy:.1f}"
        )
    counts = report.outcome_counts()
    print(
        f"served {report.queries} queries "
        f"({report.complete_queries} complete) over "
        f"{len(report.batches)} rounds: cache hit rate "
        f"{report.cache_hit_rate:.2f}, {report.transmissions} tx, "
        f"energy {report.energy:.1f}"
    )
    print("outcomes             : "
          + ", ".join(f"{name}={counts[name]}" for name in sorted(counts)))
    print(f"engine fingerprint   : {engine.fingerprint()}")
    return 0 if report.complete_queries == report.queries else 1


def _partition_demo(args: list[str]) -> int:
    """``python -m repro partition [side] [K] [--self-check]``."""
    from .partition import self_check

    if "--self-check" in args:
        return 0 if self_check() else 1

    import time

    import numpy as np

    from .bench import make_deployment
    from .partition import effective_procs, run_partitioned_storm

    positional = [a for a in args if not a.startswith("-")]
    side = int(positional[0]) if positional else 16
    partitions = int(positional[1]) if len(positional) > 1 else 4
    seed = 11
    net = make_deployment(side=side, n_random=side * side * 6, seed=seed)
    budget = effective_procs(partitions)
    print(f"deployment           : {side}x{side} cells, {len(net)} nodes")
    print(f"partitions           : {partitions} shards on {budget.procs} "
          f"worker processes (cpu budget {budget.cpu_budget})")
    t0 = time.perf_counter()
    serial = run_partitioned_storm(
        net, rounds=4, partitions=1, rng=np.random.default_rng(seed)
    )
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_partitioned_storm(
        net, rounds=4, partitions=partitions, procs=budget.procs,
        rng=np.random.default_rng(seed),
    )
    parallel_wall = time.perf_counter() - t0
    print(f"serial               : {serial.deliveries} deliveries, "
          f"{serial.events_processed} events, {serial_wall:.2f}s, "
          f"fingerprint {serial.fingerprint}")
    print(f"partitioned (K={partitions})    : {parallel.deliveries} deliveries, "
          f"{parallel.events_processed} events, {parallel.windows} windows, "
          f"{parallel_wall:.2f}s, fingerprint {parallel.fingerprint}")
    match = parallel.fingerprint == serial.fingerprint
    print(f"serial == partitioned: {'MATCH' if match else 'MISMATCH'} "
          f"({serial_wall / parallel_wall:.2f}x)")
    return 0 if match else 1


def _scenario_demo(args: list[str]) -> int:
    """``python -m repro scenario [--self-check]``."""
    from .scenario import self_check
    from .scenario.selfcheck import SIDE, _kill_plan, _run, demo_scenario

    if "--self-check" in args:
        return 0 if self_check() else 1

    scn = demo_scenario()
    plan = _kill_plan((1, 1))
    print(f"scenario             : {scn.link.kind} + "
          f"{len(scn.mobility.moves)} moves + attacker at "
          f"{scn.attacker.start_cell} + {len(scn.sources.cells)} sources")
    print(f"scenario fingerprint : {scn.fingerprint()}")
    serial = _run(scn, plan=plan)
    partitioned = _run(scn, partitions=4, plan=plan)
    rep = serial.scenario_report
    print(f"serial run           : {serial.transmissions} tx, "
          f"{serial.events_processed} events, "
          f"fingerprint {serial.fingerprint()}")
    print(f"partitioned (K=4)    : {partitioned.transmissions} tx, "
          f"{partitioned.events_processed} events, "
          f"fingerprint {partitioned.fingerprint()}")
    print(f"scenario report      : {len(rep.relocations)} relocations, "
          f"{rep.link_faded} frames faded, "
          f"{rep.source_emissions} source emissions")
    atk = rep.attacker
    outcome = (
        f"captured at t={atk.capture_time:.2f}" if atk.captured
        else f"evaded (distance {atk.distance:.1f})"
    )
    print(f"pursuit adversary    : {atk.moves} moves, {outcome}")
    match = partitioned.fingerprint() == serial.fingerprint()
    print(f"serial == partitioned: {'MATCH' if match else 'MISMATCH'}")
    return 0 if match else 1


def main(argv: list[str] | None = None) -> int:
    """Run the demo; returns a process exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "sweep":
        from .sweep.cli import main as sweep_main

        return sweep_main(args[1:])
    if args and args[0] == "faults":
        from .runtime.faults import self_check

        if "--self-check" not in args[1:]:
            print("usage: python -m repro faults --self-check", file=sys.stderr)
            return 2
        return 0 if self_check() else 1
    if args and args[0] == "serve":
        return _serve_demo(args[1:])
    if args and args[0] == "partition":
        return _partition_demo(args[1:])
    if args and args[0] == "scenario":
        return _scenario_demo(args[1:])
    if args and args[0] == "bench":
        from .bench import main as bench_main

        return bench_main(args[1:])
    if args and args[0] == "analyze":
        from .analyze.cli import main as analyze_main

        return analyze_main(args[1:])
    side = int(args[0]) if args else 16
    threshold = float(args[1]) if len(args) > 1 else 0.5
    # side <= 0 must not slip through: 0 & -1 == 0 passes the bit trick
    if side <= 0 or side & (side - 1):
        print(f"side must be a positive power of two, got {side}", file=sys.stderr)
        return 2

    va = VirtualArchitecture(side)
    field = GaussianBlobField(
        [(0.28, 0.32, 0.11, 1.0), (0.72, 0.66, 0.08, 0.9)]
    )
    app = TopographicQueryApp(va, field, threshold)

    print(f"virtual architecture : {va}")
    est = estimate_quadtree(side)
    print(
        f"analytic estimate    : {quadtree_step_count(side)} hop-steps, "
        f"{est.total_energy:.0f} energy (unit messages)"
    )
    report = app.run_virtual()
    print(
        f"one round measured   : latency {report.performance.latency:.1f}, "
        f"energy {report.performance.total_energy:.1f}, "
        f"{report.performance.messages} messages"
    )
    print(
        f"result               : {report.regions} regions "
        f"(oracle {report.expected_regions}; "
        f"{'MATCH' if report.correct else 'MISMATCH'})"
    )
    print("\nlabeled regions:")
    print(render_label_map(app.feature_matrix))
    result = va.execute(app.aggregation, charge_compute=False)
    print("\nper-node energy heat map (hot NW spine under the paper's mapping):")
    print(render_energy_map(result.ledger.per_node(), side))
    return 0 if report.correct else 1


if __name__ == "__main__":
    raise SystemExit(main())
