"""Command-line entry point.

``python -m repro [side] [threshold]`` runs the complete methodology
pipeline on a small topographic-query instance and prints every stage —
a smoke test that doubles as the thirty-second tour of the library.

``python -m repro sweep ...`` dispatches to the sharded experiment-sweep
orchestrator (see :mod:`repro.sweep.cli` for flags).

``python -m repro faults --self-check`` runs the fault-injection matrix
(kill leaders / partition / corrupt frames, each under reliable on/off
and wire on/off) asserting determinism and recovery — the CI
``fault-matrix`` job.
"""

from __future__ import annotations

import sys

from .apps import (
    GaussianBlobField,
    TopographicQueryApp,
    render_energy_map,
    render_label_map,
)
from .core import VirtualArchitecture
from .core.analysis import estimate_quadtree, quadtree_step_count


def main(argv: list[str] | None = None) -> int:
    """Run the demo; returns a process exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "sweep":
        from .sweep.cli import main as sweep_main

        return sweep_main(args[1:])
    if args and args[0] == "faults":
        from .runtime.faults import self_check

        if "--self-check" not in args[1:]:
            print("usage: python -m repro faults --self-check", file=sys.stderr)
            return 2
        return 0 if self_check() else 1
    side = int(args[0]) if args else 16
    threshold = float(args[1]) if len(args) > 1 else 0.5
    # side <= 0 must not slip through: 0 & -1 == 0 passes the bit trick
    if side <= 0 or side & (side - 1):
        print(f"side must be a positive power of two, got {side}", file=sys.stderr)
        return 2

    va = VirtualArchitecture(side)
    field = GaussianBlobField(
        [(0.28, 0.32, 0.11, 1.0), (0.72, 0.66, 0.08, 0.9)]
    )
    app = TopographicQueryApp(va, field, threshold)

    print(f"virtual architecture : {va}")
    est = estimate_quadtree(side)
    print(
        f"analytic estimate    : {quadtree_step_count(side)} hop-steps, "
        f"{est.total_energy:.0f} energy (unit messages)"
    )
    report = app.run_virtual()
    print(
        f"one round measured   : latency {report.performance.latency:.1f}, "
        f"energy {report.performance.total_energy:.1f}, "
        f"{report.performance.messages} messages"
    )
    print(
        f"result               : {report.regions} regions "
        f"(oracle {report.expected_regions}; "
        f"{'MATCH' if report.correct else 'MISMATCH'})"
    )
    print("\nlabeled regions:")
    print(render_label_map(app.feature_matrix))
    result = va.execute(app.aggregation, charge_compute=False)
    print("\nper-node energy heat map (hot NW spine under the paper's mapping):")
    print(render_energy_map(result.ledger.per_node(), side))
    return 0 if report.correct else 1


if __name__ == "__main__":
    raise SystemExit(main())
