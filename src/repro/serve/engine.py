"""The persistent deployed query engine.

One :class:`QueryEngine` instance keeps a single simulator, wireless
medium, and per-node transport-process set alive over a
:class:`~repro.runtime.stack.DeployedStack` for its whole lifetime.
Queries are admitted in batches (one radio phase per admission round,
see :mod:`repro.serve.admission`); the virtual clock never resets, so a
serving session is one monotone timeline the way a real deployment is.

Compared to :func:`~repro.runtime.query.run_deployed_query` (now a thin
one-shot wrapper over this engine) the persistent design adds:

* **admission batching** — co-arriving queries share one protocol round;
  requests of the whole batch are injected together and the round runs
  until the radio quiesces;
* **epoch-cached aggregates** — the engine keeps, per querier leader,
  the payloads that leader has collected, keyed by a per-storage-cell
  freshness epoch.  A repeat query whose target cells are all fresh in
  cache answers without a single transmission.  Epochs bump on
  :meth:`QueryEngine.update_field` / :meth:`QueryEngine.invalidate` and
  when an armed :class:`~repro.runtime.faults.FaultPlan` event dirties a
  cell, so staleness is tracked incrementally, not by flushing;
* **completeness accounting** — every query knows which storage cells it
  expected, so a lossy round reports ``complete=False`` plus the exact
  ``missing_cells`` instead of silently reducing over a partial set (the
  historical ``run_deployed_query`` bug), and protocol routing errors
  surface as the per-query ``misdirected`` counter;
* **resilience contracts** (DESIGN.md §16) — every admitted query
  terminates with exactly one named outcome (``ok`` / ``partial`` /
  ``shed`` / ``deadline_expired``): per-tenant token buckets shed or
  defer overload at admission, deadline-bound queries retry their
  missing cells under the seeded exponential-backoff schedule until the
  deadline and then disclose what they have, tenants may accept bounded
  cache staleness (``max_staleness`` freshness epochs) in exchange for
  radio silence, and a :class:`~repro.runtime.faults.HealingConfig`
  lets the engine keep serving across leader failover — the successor
  adopts the cell's stored aggregate and only the dirtied cache cells
  are invalidated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.coords import GridCoord
from ..runtime.faults import FaultInjector, FaultPlan, FaultReport, HealingConfig
from ..runtime.routing import (
    _HB_TIMER,
    _WATCH_TIMER,
    TransportEnvelope,
    TransportProcess,
    _stable_unit,
)
from ..runtime.stack import DeployedStack
from ..simulator.trace import stable_digest
from .admission import AdmissionController, Arrival, TenantPolicy

#: Inner-payload tags of the serving protocol (request carries the query
#: id and the querier's cell; response echoes the id plus the responder's
#: cell and stored payload, so answers are attributable per query).
QUERY_REQUEST = "qreq"
QUERY_RESPONSE = "qresp"

#: The outcome taxonomy (DESIGN.md §16): every admitted query terminates
#: with exactly one of these — the liveness invariant the chaos soak
#: asserts.  ``ok`` = complete answer; ``partial`` = disclosed-partial
#: (at least one payload, the rest listed in ``missing_cells``);
#: ``shed`` = rejected at admission by the tenant's token bucket;
#: ``deadline_expired`` = the deadline passed with nothing collected.
OUTCOME_OK = "ok"
OUTCOME_PARTIAL = "partial"
OUTCOME_SHED = "shed"
OUTCOME_EXPIRED = "deadline_expired"
OUTCOMES = (OUTCOME_OK, OUTCOME_PARTIAL, OUTCOME_SHED, OUTCOME_EXPIRED)


@dataclass
class ServeConfig:
    """Engine-lifetime parameters (per-query knobs ride on the calls).

    Resilience knobs: ``deadline`` is the default per-query completion
    budget in virtual time from admission (``None`` = unbounded;
    overridden per tenant and per arrival); an incomplete deadline-bound
    query re-requests its missing cells up to ``query_retries`` times
    under seeded exponential backoff (``retry_base`` · ``retry_factor``^k,
    capped at ``retry_max``, jittered by ``retry_jitter`` via a stable
    hash that never consumes medium RNG).  ``tenant_policies`` /
    ``default_policy`` give each tenant its admission budget, overload
    behaviour, and staleness contract.  ``healing`` arms the PR 5
    self-healing layer (heartbeats, deterministic failover) inside every
    admission round — the engine extends the healing horizon by
    ``healing_headroom`` past each round's admission so rounds still
    quiesce; without it a killed leader's cell just degrades.
    """

    loss_rate: float = 0.0
    rng: "np.random.Generator | int | None" = None
    reliable: bool = False
    wire_format: bool = False
    cache: bool = True
    request_size: float = 1.0
    response_size_of: Optional[Callable[[Any], float]] = None
    max_retries: int = 3
    ack_timeout: float = 4.0
    max_events_per_round: int = 10_000_000
    #: optional radio model for the serving medium — a
    #: :meth:`repro.scenario.LinkModel.to_dict` spec (kept declarative so
    #: serve configs stay JSON-able); ``None`` = unit disk
    link_model: Optional[Dict[str, Any]] = None
    deadline: Optional[float] = None
    query_retries: int = 8
    retry_base: float = 2.0
    retry_factor: float = 2.0
    retry_jitter: float = 0.5
    retry_max: Optional[float] = None
    tenant_policies: Optional[Dict[int, TenantPolicy]] = None
    default_policy: Optional[TenantPolicy] = None
    healing: Optional[HealingConfig] = None
    healing_headroom: float = 24.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        if self.ack_timeout <= 0:
            raise ValueError(f"ack_timeout must be > 0, got {self.ack_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.request_size <= 0:
            raise ValueError(f"request_size must be > 0, got {self.request_size}")
        if self.max_events_per_round < 1:
            raise ValueError(
                f"max_events_per_round must be >= 1, got {self.max_events_per_round}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        if self.query_retries < 0:
            raise ValueError(f"query_retries must be >= 0, got {self.query_retries}")
        if self.retry_base <= 0:
            raise ValueError(f"retry_base must be > 0, got {self.retry_base}")
        if self.retry_factor < 1.0:
            raise ValueError(f"retry_factor must be >= 1.0, got {self.retry_factor}")
        if self.retry_jitter < 0.0:
            raise ValueError(f"retry_jitter must be >= 0, got {self.retry_jitter}")
        if self.retry_max is not None and self.retry_max <= 0:
            raise ValueError(f"retry_max must be > 0, got {self.retry_max}")
        if self.healing_headroom <= 0:
            raise ValueError(
                f"healing_headroom must be > 0, got {self.healing_headroom}"
            )
        if not self.cache:
            for tenant, policy in sorted((self.tenant_policies or {}).items()):
                if policy.max_staleness > 0:
                    raise ValueError(
                        f"max_staleness > 0 requires cache=True "
                        f"(tenant {tenant} sets max_staleness={policy.max_staleness})"
                    )
            if self.default_policy is not None and self.default_policy.max_staleness > 0:
                raise ValueError(
                    f"max_staleness > 0 requires cache=True (default policy "
                    f"sets max_staleness={self.default_policy.max_staleness})"
                )


@dataclass(frozen=True)
class QueryCall:
    """One admitted query, engine-facing.

    ``cells=None`` targets every cell currently stored; ``reduce_fn``
    combines the collected payloads **in sorted-cell order** (so a warm
    cache-served answer reduces in exactly the same order as a cold
    radio-served one) and defaults to returning the payload list.
    ``deadline`` is relative to the batch's admission time (``None``
    falls back to the tenant's, then the engine's, default; a
    non-positive value means the deadline already passed in the
    admission queue — the query finalizes expired without radio).
    ``deferred_rounds`` records how long admission control parked the
    query before this batch.
    """

    query_cell: GridCoord
    cells: Optional[Tuple[GridCoord, ...]] = None
    reduce_fn: Optional[Callable[[List[Any]], Any]] = None
    tenant: int = 0
    deadline: Optional[float] = None
    deferred_rounds: int = 0


@dataclass
class QueryOutcome:
    """Everything one served query reports back.

    ``outcome`` is the query's terminal state from :data:`OUTCOMES`;
    ``staleness`` is the worst freshness-epoch lag among cache-served
    cells (0 = everything served fresh), ``deadline`` the absolute
    engine-clock deadline the query ran under (``None`` = unbounded).
    """

    qid: int
    tenant: int
    query_cell: GridCoord
    value: Any
    complete: bool
    missing_cells: List[GridCoord]
    responses: int
    cache_hits: int
    cache_misses: int
    local_hits: int
    misdirected: int
    drops: int
    latency: float
    admitted_at: float
    completed_at: float
    outcome: str = OUTCOME_OK
    deadline: Optional[float] = None
    retries: int = 0
    late_responses: int = 0
    staleness: int = 0
    deferred_rounds: int = 0

    def digest_tuple(self) -> Tuple[Any, ...]:
        """Deterministic-field tuple folded into engine fingerprints."""
        return (
            self.qid,
            self.tenant,
            str(self.query_cell),
            repr(self.value),
            self.complete,
            tuple(str(c) for c in self.missing_cells),
            self.responses,
            self.cache_hits,
            self.cache_misses,
            self.local_hits,
            self.misdirected,
            self.drops,
            self.latency,
            self.admitted_at,
            self.completed_at,
            self.outcome,
            self.deadline,
            self.retries,
            self.late_responses,
            self.staleness,
            self.deferred_rounds,
        )


@dataclass
class BatchResult:
    """One admission round: its outcomes plus the round's radio bill."""

    outcomes: List[QueryOutcome]
    admitted_at: float
    quiesced_at: float
    latency: float
    energy: float
    transmissions: int
    drops: int


@dataclass
class EngineStats:
    """Lifetime counters of one engine instance.

    ``queries`` counts queries actually served (admitted into a round);
    ``shed`` counts queries rejected at admission, ``deferred`` counts
    defer *events* (one query parked two rounds counts twice).
    """

    queries: int = 0
    batches: int = 0
    responses: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    local_hits: int = 0
    misdirected: int = 0
    drops: int = 0
    incomplete_queries: int = 0
    shed: int = 0
    deferred: int = 0
    expired_queries: int = 0
    retries: int = 0
    late_responses: int = 0
    stale_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Cache hits over all cache lookups that could have hit."""
        looked = self.cache_hits + self.cache_misses
        return self.cache_hits / looked if looked else 0.0

    def digest_tuple(self) -> Tuple[Any, ...]:
        return (
            self.queries,
            self.batches,
            self.responses,
            self.cache_hits,
            self.cache_misses,
            self.local_hits,
            self.misdirected,
            self.drops,
            self.incomplete_queries,
            self.shed,
            self.deferred,
            self.expired_queries,
            self.retries,
            self.late_responses,
            self.stale_hits,
        )


@dataclass
class ServeReport:
    """Outcome of serving one arrival stream end to end.

    ``outcomes`` covers every query of the stream, shed ones included —
    ``queries == ok + partial + shed + deadline_expired`` is the
    liveness invariant (:meth:`outcome_counts`).
    """

    outcomes: List[QueryOutcome]
    batches: List[BatchResult]
    energy: float
    transmissions: int

    @property
    def queries(self) -> int:
        """Queries terminated (served or shed)."""
        return len(self.outcomes)

    @property
    def complete_queries(self) -> int:
        """Queries answered with every expected cell present."""
        return sum(1 for o in self.outcomes if o.complete)

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits over cache lookups across the whole stream."""
        hits = sum(o.cache_hits for o in self.outcomes)
        misses = sum(o.cache_misses for o in self.outcomes)
        return hits / (hits + misses) if hits + misses else 0.0

    def outcome_counts(self) -> Dict[str, int]:
        """``outcome -> count`` over the whole stream, all four keys present."""
        counts = {outcome: 0 for outcome in OUTCOMES}
        for o in self.outcomes:
            counts[o.outcome] += 1
        return counts

    def per_tenant(self) -> Dict[int, Dict[str, int]]:
        """``tenant -> {queries, complete, <outcome counts>, deferred_rounds}``."""
        out: Dict[int, Dict[str, int]] = {}
        for o in self.outcomes:
            row = out.setdefault(
                o.tenant,
                {"queries": 0, "complete": 0, "deferred_rounds": 0,
                 **{outcome: 0 for outcome in OUTCOMES}},
            )
            row["queries"] += 1
            row["complete"] += int(o.complete)
            row["deferred_rounds"] += o.deferred_rounds
            row[o.outcome] += 1
        return out

    def fingerprint(self) -> str:
        """Stable digest of every deterministic observable of the stream."""
        return stable_digest(
            (
                tuple(o.digest_tuple() for o in self.outcomes),
                len(self.batches),
                self.energy,
                self.transmissions,
            )
        )


class _ActiveQuery:
    """In-flight bookkeeping of one admitted query."""

    __slots__ = (
        "qid", "call", "targets", "querier_node", "received", "radio_cells",
        "responses", "cache_hits", "cache_misses", "local_hits",
        "misdirected", "drops", "admitted_at", "last_arrival",
        "deadline", "retries", "late_responses", "staleness",
    )

    def __init__(
        self,
        qid: int,
        call: QueryCall,
        targets: Tuple[GridCoord, ...],
        querier_node: Optional[int],
        admitted_at: float,
        deadline: Optional[float] = None,
    ):
        self.qid = qid
        self.call = call
        self.targets = targets
        self.querier_node = querier_node
        self.received: Dict[GridCoord, Any] = {}
        self.radio_cells: List[GridCoord] = []
        self.responses = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.local_hits = 0
        self.misdirected = 0
        self.drops = 0
        self.admitted_at = admitted_at
        self.last_arrival = admitted_at
        self.deadline = deadline  # absolute engine-clock time, or None
        self.retries = 0
        self.late_responses = 0
        self.staleness = 0


class _ServeProcess(TransportProcess):
    """Per-node transport engine plus the storage/querier roles.

    The process is *role-light*: whether it answers requests depends only
    on ``stored`` (set by the engine on storage leaders and kept current
    through :meth:`QueryEngine.update_field`), and responses are handed
    straight back to the engine, which owns all per-query state — one
    process set serves every tenant and every query concurrently.
    """

    def __init__(self, engine: "QueryEngine", stored: Optional[Any] = None):
        cfg = engine.config
        super().__init__(
            engine.stack.topology,
            engine.stack.binding,
            reliable=cfg.reliable,
            max_retries=cfg.max_retries,
            ack_timeout=cfg.ack_timeout,
            wire_format=cfg.wire_format,
            healing=cfg.healing,
            fault_report=engine._fault_report,
        )
        self.engine = engine
        self.stored = stored

    def on_start(self) -> None:
        # healing timers are armed per admission round by the engine (the
        # boot drain must quiesce, and a persistent engine has no single
        # horizon), so the TransportProcess boot-time arming is skipped
        pass

    def on_become_leader(self) -> None:
        # failover continuity: the successor adopts its cell's stored
        # aggregate from the engine, so serving resumes without
        # reconstructing the engine or re-running the gather
        self.stored = self.engine._storage.get(self.my_cell)

    def _deliver(self, envelope: TransportEnvelope) -> None:
        kind, body = envelope.inner
        if kind == QUERY_REQUEST:
            qid, querier_cell = body
            if self.stored is None:
                # a request reached a leader holding nothing: protocol
                # routing error, observable per query
                self.engine._note_misdirected(qid)
                return
            # originate() so the reply gets a uid and rides the reliable
            # transport when enabled
            self.originate(
                querier_cell,
                (QUERY_RESPONSE, (qid, self.my_cell, self.stored)),
                size_units=self.engine._size_of(self.stored),
            )
        elif kind == QUERY_RESPONSE:
            qid, cell, payload = body
            self.engine._on_response(self, qid, cell, payload)

    def _drop(self, envelope: TransportEnvelope, reason: str) -> None:
        super()._drop(envelope, reason)
        self.engine._note_drop(envelope)


class QueryEngine:
    """A long-lived query-serving instance over a deployed stack.

    Parameters
    ----------
    stack:
        A converged :class:`~repro.runtime.stack.DeployedStack`.
    storage:
        ``cell -> stored payload`` at the storage leaders (typically the
        ``exfiltrated`` map of a partial-reduction application round).
        Mutable through :meth:`update_field`.
    config:
        Engine-lifetime :class:`ServeConfig`.

    The engine builds its simulator/medium/process harness once; every
    :meth:`run_batch` (and therefore :meth:`query` / :meth:`serve`)
    advances the same virtual clock.  Determinism contract: given the
    same stack, storage, config, and call sequence, every observable —
    outcomes, medium stats, energy ledger, :meth:`fingerprint` — replays
    byte-identically in any process.
    """

    def __init__(
        self,
        stack: DeployedStack,
        storage: Optional[Dict[GridCoord, Any]] = None,
        config: Optional[ServeConfig] = None,
    ):
        self.stack = stack
        self.config = config or ServeConfig()
        self.stats = EngineStats()
        self.sim, self.medium, self._host = stack.make_harness(
            loss_rate=self.config.loss_rate, rng=self.config.rng
        )
        if self.config.link_model is not None:
            from ..scenario import link_model_from_dict

            gate = link_model_from_dict(self.config.link_model).build_gate(
                stack.network
            )
            if gate is not None:
                self.medium.link_gate = gate
        self._storage: Dict[GridCoord, Any] = dict(storage or {})
        self._epoch: Dict[GridCoord, int] = {}
        # (querier cell, storage cell) -> (epoch at fill time, payload)
        self._cached: Dict[Tuple[GridCoord, GridCoord], Tuple[int, Any]] = {}
        self._active: Dict[int, _ActiveQuery] = {}
        self._next_qid = 0
        self._outcome_digests: List[Tuple[Any, ...]] = []
        self._policies: Dict[int, TenantPolicy] = dict(
            self.config.tenant_policies or {}
        )
        self._default_policy = self.config.default_policy or TenantPolicy()
        # healing needs the report eagerly (processes record failovers
        # into it), so fault-then-recover runs fingerprint identically
        # whether or not arm_faults was called first
        self._fault_report: Optional[FaultReport] = (
            FaultReport() if self.config.healing is not None else None
        )
        self._injected_seen = 0
        self._failovers_seen = 0
        self._procs: Dict[int, _ServeProcess] = {}
        network = stack.network
        for nid in network.alive_ids():
            cell = network.cell_of(nid)
            stored = (
                self._storage.get(cell)
                if stack.binding.leaders.get(cell) == nid
                else None
            )
            proc = _ServeProcess(self, stored=stored)
            self._procs[nid] = proc
            self._host.add(nid, proc)
        self._host.start()
        self.sim.run_until_quiet()  # drain the boot events; no traffic yet

    # -- storage, freshness, and fault interaction --------------------------------

    @property
    def storage_cells(self) -> List[GridCoord]:
        """The currently stored cells, sorted."""
        return sorted(self._storage)

    def update_field(self, cell: GridCoord, payload: Any) -> None:
        """Replace the stored payload of ``cell`` and dirty its epoch.

        The new payload lands at the cell's bound leader; every cached
        copy of the old aggregate becomes stale immediately (epoch
        mismatch), so the next query over ``cell`` re-fetches it — and
        only it — over the radio.
        """
        self._storage[cell] = payload
        leader = self.stack.binding.leaders.get(cell)
        if leader is not None and leader in self._procs:
            self._procs[leader].stored = payload
        self.invalidate([cell])

    def invalidate(self, cells: Optional[Sequence[GridCoord]] = None) -> None:
        """Dirty the freshness epoch of ``cells`` (default: everything)."""
        for cell in (self._storage if cells is None else cells):
            self._epoch[cell] = self._epoch.get(cell, 0) + 1

    def arm_faults(self, plan: FaultPlan) -> FaultReport:
        """Arm a :class:`~repro.runtime.faults.FaultPlan` on the live engine.

        Event times are relative to the current virtual time (the engine
        clock never resets), so ``time=0.5`` fires half a time unit into
        the next admission round.  After each round the engine folds the
        newly fired events into cache freshness: a kill, restore, or
        failover dirties the affected cell, so cached aggregates over a
        faulted cell are re-fetched instead of served stale.  With
        ``config.healing`` set, a killed serving leader fails over inside
        the round (deterministic successor, takeover flood) and the
        successor adopts the cell's stored aggregate — the engine keeps
        serving without reconstruction.
        """
        report = self._fault_report or FaultReport()
        self._fault_report = report
        injector = FaultInjector(plan, self.stack.network, self.stack.binding, report)
        injector.arm(self.sim, self.medium)
        return report

    def _absorb_fault_dirt(self) -> None:
        """Dirty the cells touched by fault events since the last round."""
        report = self._fault_report
        if report is None:
            return
        network = self.stack.network
        for fired_at, action, target in report.injected[self._injected_seen:]:
            if action == "kill_node":
                self.invalidate([network.cell_of(int(target))])
            elif action == "kill_leader":
                cell, _leader = target
                self.invalidate([cell])
            elif action == "restore":
                _links, node = target
                if node is not None:
                    self.invalidate([network.cell_of(int(node))])
        self._injected_seen = len(report.injected)
        # failovers re-home a cell onto a fresh leader mid-round; its
        # cached aggregates are conservatively re-fetched next time
        for _time, cell, _old, _new in report.failovers[self._failovers_seen:]:
            self.invalidate([cell])
        self._failovers_seen = len(report.failovers)

    # -- serving -------------------------------------------------------------------

    def query(
        self,
        query_cell: GridCoord,
        cells: Optional[Sequence[GridCoord]] = None,
        reduce_fn: Optional[Callable[[List[Any]], Any]] = None,
        tenant: int = 0,
        deadline: Optional[float] = None,
    ) -> QueryOutcome:
        """Serve a single query immediately (a batch of one)."""
        call = QueryCall(
            query_cell=query_cell,
            cells=None if cells is None else tuple(cells),
            reduce_fn=reduce_fn,
            tenant=tenant,
            deadline=deadline,
        )
        return self.run_batch([call]).outcomes[0]

    def tick(self) -> BatchResult:
        """Run one empty maintenance round.

        Advances the engine clock through a round with no queries — armed
        fault events fire, and with ``config.healing`` set the heartbeat /
        suspicion / failover machinery runs, so a killed leader's cell
        re-homes before the next serving round instead of during it.
        """
        return self.run_batch([])

    def run_batch(
        self, calls: Sequence[QueryCall], at: Optional[float] = None
    ) -> BatchResult:
        """Serve one admission round: inject every call, run to quiesce.

        ``at`` is the admission time on the engine clock (clamped to
        ``now``; ``None`` = now).  Queries whose querier leader is dead
        or unbound are not injected — they complete immediately with
        every target missing, so a faulted cell degrades one tenant's
        answers instead of crashing the serving loop (with healing armed
        and a deadline, the retry schedule re-resolves the binding, so a
        failover inside the round can still rescue the query).
        """
        start = self.sim.now if at is None else max(at, self.sim.now)
        batch: List[_ActiveQuery] = []
        network = self.stack.network
        for call in calls:
            if call.query_cell not in self.stack.binding.leaders:
                raise ValueError(f"query cell {call.query_cell} has no bound leader")
            targets = (
                call.cells if call.cells is not None
                else tuple(sorted(self._storage))
            )
            leader = self.stack.binding.leaders.get(call.query_cell)
            querier = (
                leader
                if leader is not None
                and leader in self._procs
                and network.node(leader).alive
                else None
            )
            relative = call.deadline
            if relative is None:
                relative = self._policy_for(call.tenant).deadline
            if relative is None:
                relative = self.config.deadline
            deadline = None if relative is None else start + relative
            qid = self._next_qid
            self._next_qid += 1
            active = _ActiveQuery(qid, call, targets, querier, start, deadline)
            self._active[qid] = active
            batch.append(active)
        energy0 = self.medium.ledger.total
        tx0 = self.medium.stats.transmissions
        drops0 = self.stats.drops
        if self.config.healing is not None:
            # healing timers re-arm only below the horizon; extending it
            # just past this round keeps failover live while letting the
            # round quiesce — the engine is persistent, rounds are not
            self.config.healing.horizon = start + self.config.healing_headroom
            self.sim.schedule_at(start, self._arm_healing_round)
        if batch:
            self.sim.schedule_at(start, self._inject_batch, tuple(batch))
        self.sim.run_until_quiet(max_events=self.config.max_events_per_round)
        self._absorb_fault_dirt()
        outcomes = [self._finalize(active, start) for active in batch]
        self.stats.batches += 1
        return BatchResult(
            outcomes=outcomes,
            admitted_at=start,
            quiesced_at=self.sim.now,
            latency=self.sim.now - start,
            energy=self.medium.ledger.total - energy0,
            transmissions=self.medium.stats.transmissions - tx0,
            drops=self.stats.drops - drops0,
        )

    def serve(
        self,
        arrivals: Sequence[Arrival],
        round_interval: float = 1.0,
        reduce_fn: Optional[Callable[[List[Any]], Any]] = None,
    ) -> ServeReport:
        """Serve a whole arrival stream through admission batching.

        Per-tenant token buckets (``config.tenant_policies``) gate every
        round: over-budget queries are shed — terminated immediately with
        the ``shed`` outcome — or deferred ahead of the next round's
        arrivals, by tenant policy.  A deferred query's deadline budget
        shrinks by one round interval per parked round, so queueing time
        is charged against the same contract as serving time, and every
        query terminates (defers are bounded by ``max_defer_rounds``).
        """
        energy0 = self.medium.ledger.total
        tx0 = self.medium.stats.transmissions
        outcomes: List[QueryOutcome] = []
        batches: List[BatchResult] = []
        controller = AdmissionController(self._policies, self._default_policy)
        # same windowing as admission.batch_rounds, kept as indices so
        # deferred queries can roll into rounds with no fresh arrivals
        if round_interval <= 0:
            raise ValueError(f"round_interval must be > 0, got {round_interval}")
        groups: Dict[int, List[Arrival]] = {}
        for arrival in sorted(
            arrivals, key=lambda a: (a.time, a.tenant, a.query_cell)
        ):
            groups.setdefault(int(arrival.time // round_interval), []).append(arrival)
        index = min(groups) if groups else 0
        pending: List[Tuple[Arrival, int]] = []
        while groups or pending:
            if not pending and index not in groups:
                index = min(groups)  # fast-forward over empty windows
            group = groups.pop(index, [])
            admit_time = (index + 1) * round_interval
            queue = pending + [(a, 0) for a in group]
            admitted, pending, shed = controller.admit_round(queue)
            self.stats.deferred += len(pending)
            for arrival, defers in shed:
                outcomes.append(self._shed_outcome(arrival, defers, admit_time))
            calls = []
            for arrival, defers in admitted:
                relative = arrival.deadline
                if relative is None:
                    relative = controller.policy_for(arrival.tenant).deadline
                if relative is None:
                    relative = self.config.deadline
                if relative is not None and defers:
                    relative -= defers * round_interval
                calls.append(
                    QueryCall(
                        query_cell=arrival.query_cell,
                        cells=arrival.cells,
                        reduce_fn=reduce_fn,
                        tenant=arrival.tenant,
                        deadline=relative,
                        deferred_rounds=defers,
                    )
                )
            if calls:
                batch = self.run_batch(calls, at=admit_time)
                batches.append(batch)
                outcomes.extend(batch.outcomes)
            index += 1
        return ServeReport(
            outcomes=outcomes,
            batches=batches,
            energy=self.medium.ledger.total - energy0,
            transmissions=self.medium.stats.transmissions - tx0,
        )

    def fingerprint(self) -> str:
        """Stable digest of the engine's whole serving history."""
        return stable_digest(
            (
                tuple(self._outcome_digests),
                self.stats.digest_tuple(),
                self.medium.stats.fingerprint(),
                self.medium.ledger.fingerprint(),
                self.sim.now,
                self.sim.events_processed,
                None
                if self._fault_report is None
                else self._fault_report.fingerprint(),
            )
        )

    # -- internals -----------------------------------------------------------------

    def _size_of(self, payload: Any) -> float:
        sizer = self.config.response_size_of
        return sizer(payload) if sizer is not None else 1.0

    def _policy_for(self, tenant: int) -> TenantPolicy:
        return self._policies.get(tenant, self._default_policy)

    def _shed_outcome(
        self, arrival: Arrival, defers: int, admit_time: float
    ) -> QueryOutcome:
        qid = self._next_qid
        self._next_qid += 1
        outcome = QueryOutcome(
            qid=qid,
            tenant=arrival.tenant,
            query_cell=arrival.query_cell,
            value=None,
            complete=False,
            missing_cells=[],
            responses=0,
            cache_hits=0,
            cache_misses=0,
            local_hits=0,
            misdirected=0,
            drops=0,
            latency=0.0,
            admitted_at=admit_time,
            completed_at=admit_time,
            outcome=OUTCOME_SHED,
            deferred_rounds=defers,
        )
        self.stats.shed += 1
        self._outcome_digests.append(outcome.digest_tuple())
        return outcome

    def _arm_healing_round(self) -> None:
        """Arm heartbeat/watch timers on every live node for this round."""
        healing = self.config.healing
        assert healing is not None
        network = self.stack.network
        now = self.sim.now
        for nid, proc in self._procs.items():
            if not network.node(nid).alive:
                continue
            proc._last_hb = now
            if self.stack.binding.is_leader(nid):
                proc.set_timer(healing.heartbeat_interval, _HB_TIMER)
            else:
                proc.set_timer(
                    healing.heartbeat_interval * healing.miss_threshold,
                    _WATCH_TIMER,
                )

    def _inject_batch(self, batch: Tuple[_ActiveQuery, ...]) -> None:
        now = self.sim.now
        for active in batch:
            expired = active.deadline is not None and active.deadline <= now + 1e-9
            if expired:
                continue  # the admission queue ate the whole budget
            if active.querier_node is not None:
                proc = self._procs[active.querier_node]
                for cell in active.targets:
                    self._request_cell(active, proc, cell, first=True)
            # dead/unbound querier with no deadline: finalized all-missing;
            # with a deadline, the retry chain below may still rescue it
            # once the healing layer fails the cell over
            if active.deadline is None or self.config.query_retries < 1:
                continue
            if all(cell in active.received for cell in active.targets):
                continue
            when = now + self._retry_delay(active.qid, 1)
            if when <= active.deadline:
                self.sim.schedule_at(when, self._retry_check, active, 1)

    def _retry_delay(self, qid: int, attempt: int) -> float:
        """Seeded exponential backoff (attempt >= 1), jittered stably.

        Like the transport ARQ schedule, the jitter is a pure hash of
        ``(qid, attempt)`` — it never consumes medium RNG, so retries do
        not perturb the loss stream of unrelated transmissions.
        """
        cfg = self.config
        cap = cfg.retry_max if cfg.retry_max is not None else 8.0 * cfg.retry_base
        delay = min(cfg.retry_base * cfg.retry_factor ** (attempt - 1), cap)
        return delay * (1.0 + cfg.retry_jitter * _stable_unit(0x5EED, qid, attempt))

    def _retry_check(self, active: _ActiveQuery, attempt: int) -> None:
        """One scheduled retry: re-request whatever is still missing."""
        if active.qid not in self._active:
            return  # finalized (defensive: checks live inside one round)
        missing = [c for c in active.targets if c not in active.received]
        if not missing:
            return  # completed since the retry was scheduled
        deadline = active.deadline
        assert deadline is not None
        # re-resolve the querier: the cell may have failed over since
        # admission — serving continuity across recovery
        leader = self.stack.binding.leaders.get(active.call.query_cell)
        network = self.stack.network
        if (
            leader is not None
            and leader in self._procs
            and network.node(leader).alive
        ):
            active.querier_node = leader
            proc = self._procs[leader]
            active.retries += 1
            self.stats.retries += 1
            for cell in missing:
                self._request_cell(active, proc, cell, first=False)
        next_attempt = attempt + 1
        if next_attempt > self.config.query_retries:
            return
        when = self.sim.now + self._retry_delay(active.qid, next_attempt)
        if when <= deadline:
            self.sim.schedule_at(when, self._retry_check, active, next_attempt)

    def _request_cell(
        self, active: _ActiveQuery, proc: _ServeProcess, cell: GridCoord,
        first: bool,
    ) -> None:
        """Resolve one target cell: local store, cache, or radio request.

        ``first`` distinguishes the admission-time pass from retries —
        a retried cell may hit the cache (another query refreshed it
        meanwhile) but its miss was already counted at admission.
        """
        if cell == active.call.query_cell:
            # the querier's own stored payload needs no radio
            if proc.stored is not None and cell not in active.received:
                active.received[cell] = proc.stored
                active.local_hits += 1
                self.stats.local_hits += 1
            return
        hit = self._cache_lookup(
            active.call.query_cell, cell,
            self._policy_for(active.call.tenant).max_staleness,
        )
        if hit is not None:
            lag, payload = hit
            active.received[cell] = payload
            active.cache_hits += 1
            self.stats.cache_hits += 1
            if lag > 0:
                active.staleness = max(active.staleness, lag)
                self.stats.stale_hits += 1
            return
        if first:
            active.cache_misses += 1
            self.stats.cache_misses += 1
        if cell not in active.radio_cells:
            active.radio_cells.append(cell)
        proc.originate(
            cell,
            (QUERY_REQUEST, (active.qid, active.call.query_cell)),
            size_units=self.config.request_size,
        )

    def _cache_lookup(
        self, query_cell: GridCoord, cell: GridCoord, max_staleness: int = 0
    ) -> Optional[Tuple[int, Any]]:
        """``(staleness lag, payload)`` if cached within the bound, else None."""
        if not self.config.cache:
            return None
        entry = self._cached.get((query_cell, cell))
        if entry is None:
            return None
        lag = self._epoch.get(cell, 0) - entry[0]
        if lag > max_staleness:
            return None
        return lag, entry[1]

    def _on_response(
        self, proc: _ServeProcess, qid: int, cell: GridCoord, payload: Any
    ) -> None:
        active = self._active.get(qid)
        if active is None or proc.node_id != active.querier_node:
            # a response that reached the wrong node (or outlived its
            # query): protocol routing error, never silently reduced
            self._note_misdirected(qid)
            return
        if cell in active.received:
            return  # duplicate answer (reliable-mode edge); first one wins
        if active.deadline is not None and proc.now > active.deadline + 1e-9:
            # past the deadline: the answer is disclosed as expired, but
            # the payload still warms the cache for the next query
            active.late_responses += 1
            self.stats.late_responses += 1
            if self.config.cache:
                self._cached[(active.call.query_cell, cell)] = (
                    self._epoch.get(cell, 0),
                    payload,
                )
            return
        active.received[cell] = payload
        active.responses += 1
        active.last_arrival = proc.now
        self.stats.responses += 1
        if self.config.cache:
            self._cached[(active.call.query_cell, cell)] = (
                self._epoch.get(cell, 0),
                payload,
            )

    def _note_misdirected(self, qid: int) -> None:
        self.stats.misdirected += 1
        active = self._active.get(qid)
        if active is not None:
            active.misdirected += 1

    def _note_drop(self, envelope: TransportEnvelope) -> None:
        self.stats.drops += 1
        inner = envelope.inner
        if isinstance(inner, tuple) and len(inner) == 2:
            kind, body = inner
            if kind in (QUERY_REQUEST, QUERY_RESPONSE):
                active = self._active.get(body[0])
                if active is not None:
                    active.drops += 1

    def _finalize(self, active: _ActiveQuery, admitted_at: float) -> QueryOutcome:
        del self._active[active.qid]
        missing = sorted(c for c in active.targets if c not in active.received)
        payloads = [active.received[c] for c in sorted(active.received)]
        reduce_fn = active.call.reduce_fn
        value = reduce_fn(payloads) if reduce_fn is not None else payloads
        radio_used = bool(active.radio_cells)
        if not missing:
            label = OUTCOME_OK
        elif active.received:
            label = OUTCOME_PARTIAL  # disclosed-partial, never silent
        elif active.deadline is not None:
            label = OUTCOME_EXPIRED
        else:
            label = OUTCOME_PARTIAL
        outcome = QueryOutcome(
            qid=active.qid,
            tenant=active.call.tenant,
            query_cell=active.call.query_cell,
            value=value,
            complete=not missing,
            missing_cells=missing,
            responses=active.responses,
            cache_hits=active.cache_hits,
            cache_misses=active.cache_misses,
            local_hits=active.local_hits,
            misdirected=active.misdirected,
            drops=active.drops,
            latency=(active.last_arrival - admitted_at) if radio_used else 0.0,
            admitted_at=admitted_at,
            completed_at=active.last_arrival if radio_used else admitted_at,
            outcome=label,
            deadline=active.deadline,
            retries=active.retries,
            late_responses=active.late_responses,
            staleness=active.staleness,
            deferred_rounds=active.call.deferred_rounds,
        )
        self.stats.queries += 1
        if not outcome.complete:
            self.stats.incomplete_queries += 1
        if label == OUTCOME_EXPIRED:
            self.stats.expired_queries += 1
        self._outcome_digests.append(outcome.digest_tuple())
        return outcome
