"""The persistent deployed query engine.

One :class:`QueryEngine` instance keeps a single simulator, wireless
medium, and per-node transport-process set alive over a
:class:`~repro.runtime.stack.DeployedStack` for its whole lifetime.
Queries are admitted in batches (one radio phase per admission round,
see :mod:`repro.serve.admission`); the virtual clock never resets, so a
serving session is one monotone timeline the way a real deployment is.

Compared to :func:`~repro.runtime.query.run_deployed_query` (now a thin
one-shot wrapper over this engine) the persistent design adds:

* **admission batching** — co-arriving queries share one protocol round;
  requests of the whole batch are injected together and the round runs
  until the radio quiesces;
* **epoch-cached aggregates** — the engine keeps, per querier leader,
  the payloads that leader has collected, keyed by a per-storage-cell
  freshness epoch.  A repeat query whose target cells are all fresh in
  cache answers without a single transmission.  Epochs bump on
  :meth:`QueryEngine.update_field` / :meth:`QueryEngine.invalidate` and
  when an armed :class:`~repro.runtime.faults.FaultPlan` event dirties a
  cell, so staleness is tracked incrementally, not by flushing;
* **completeness accounting** — every query knows which storage cells it
  expected, so a lossy round reports ``complete=False`` plus the exact
  ``missing_cells`` instead of silently reducing over a partial set (the
  historical ``run_deployed_query`` bug), and protocol routing errors
  surface as the per-query ``misdirected`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.coords import GridCoord
from ..runtime.faults import FaultInjector, FaultPlan, FaultReport
from ..runtime.routing import TransportEnvelope, TransportProcess
from ..runtime.stack import DeployedStack
from ..simulator.trace import stable_digest
from .admission import Arrival, batch_rounds

#: Inner-payload tags of the serving protocol (request carries the query
#: id and the querier's cell; response echoes the id plus the responder's
#: cell and stored payload, so answers are attributable per query).
QUERY_REQUEST = "qreq"
QUERY_RESPONSE = "qresp"


@dataclass
class ServeConfig:
    """Engine-lifetime parameters (per-query knobs ride on the calls)."""

    loss_rate: float = 0.0
    rng: "np.random.Generator | int | None" = None
    reliable: bool = False
    wire_format: bool = False
    cache: bool = True
    request_size: float = 1.0
    response_size_of: Optional[Callable[[Any], float]] = None
    max_retries: int = 3
    ack_timeout: float = 4.0
    max_events_per_round: int = 10_000_000
    #: optional radio model for the serving medium — a
    #: :meth:`repro.scenario.LinkModel.to_dict` spec (kept declarative so
    #: serve configs stay JSON-able); ``None`` = unit disk
    link_model: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class QueryCall:
    """One admitted query, engine-facing.

    ``cells=None`` targets every cell currently stored; ``reduce_fn``
    combines the collected payloads **in sorted-cell order** (so a warm
    cache-served answer reduces in exactly the same order as a cold
    radio-served one) and defaults to returning the payload list.
    """

    query_cell: GridCoord
    cells: Optional[Tuple[GridCoord, ...]] = None
    reduce_fn: Optional[Callable[[List[Any]], Any]] = None
    tenant: int = 0


@dataclass
class QueryOutcome:
    """Everything one served query reports back."""

    qid: int
    tenant: int
    query_cell: GridCoord
    value: Any
    complete: bool
    missing_cells: List[GridCoord]
    responses: int
    cache_hits: int
    cache_misses: int
    local_hits: int
    misdirected: int
    drops: int
    latency: float
    admitted_at: float
    completed_at: float

    def digest_tuple(self) -> Tuple[Any, ...]:
        """Deterministic-field tuple folded into engine fingerprints."""
        return (
            self.qid,
            self.tenant,
            str(self.query_cell),
            repr(self.value),
            self.complete,
            tuple(str(c) for c in self.missing_cells),
            self.responses,
            self.cache_hits,
            self.cache_misses,
            self.local_hits,
            self.misdirected,
            self.drops,
            self.latency,
            self.admitted_at,
            self.completed_at,
        )


@dataclass
class BatchResult:
    """One admission round: its outcomes plus the round's radio bill."""

    outcomes: List[QueryOutcome]
    admitted_at: float
    quiesced_at: float
    latency: float
    energy: float
    transmissions: int
    drops: int


@dataclass
class EngineStats:
    """Lifetime counters of one engine instance."""

    queries: int = 0
    batches: int = 0
    responses: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    local_hits: int = 0
    misdirected: int = 0
    drops: int = 0
    incomplete_queries: int = 0

    @property
    def hit_rate(self) -> float:
        """Cache hits over all cache lookups that could have hit."""
        looked = self.cache_hits + self.cache_misses
        return self.cache_hits / looked if looked else 0.0

    def digest_tuple(self) -> Tuple[Any, ...]:
        return (
            self.queries,
            self.batches,
            self.responses,
            self.cache_hits,
            self.cache_misses,
            self.local_hits,
            self.misdirected,
            self.drops,
            self.incomplete_queries,
        )


@dataclass
class ServeReport:
    """Outcome of serving one arrival stream end to end."""

    outcomes: List[QueryOutcome]
    batches: List[BatchResult]
    energy: float
    transmissions: int

    @property
    def queries(self) -> int:
        """Queries served."""
        return len(self.outcomes)

    @property
    def complete_queries(self) -> int:
        """Queries answered with every expected cell present."""
        return sum(1 for o in self.outcomes if o.complete)

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits over cache lookups across the whole stream."""
        hits = sum(o.cache_hits for o in self.outcomes)
        misses = sum(o.cache_misses for o in self.outcomes)
        return hits / (hits + misses) if hits + misses else 0.0

    def per_tenant(self) -> Dict[int, Dict[str, int]]:
        """``tenant -> {queries, complete}`` accounting."""
        out: Dict[int, Dict[str, int]] = {}
        for o in self.outcomes:
            row = out.setdefault(o.tenant, {"queries": 0, "complete": 0})
            row["queries"] += 1
            row["complete"] += int(o.complete)
        return out

    def fingerprint(self) -> str:
        """Stable digest of every deterministic observable of the stream."""
        return stable_digest(
            (
                tuple(o.digest_tuple() for o in self.outcomes),
                len(self.batches),
                self.energy,
                self.transmissions,
            )
        )


class _ActiveQuery:
    """In-flight bookkeeping of one admitted query."""

    __slots__ = (
        "qid", "call", "targets", "querier_node", "received", "radio_cells",
        "responses", "cache_hits", "cache_misses", "local_hits",
        "misdirected", "drops", "admitted_at", "last_arrival",
    )

    def __init__(
        self,
        qid: int,
        call: QueryCall,
        targets: Tuple[GridCoord, ...],
        querier_node: Optional[int],
        admitted_at: float,
    ):
        self.qid = qid
        self.call = call
        self.targets = targets
        self.querier_node = querier_node
        self.received: Dict[GridCoord, Any] = {}
        self.radio_cells: List[GridCoord] = []
        self.responses = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.local_hits = 0
        self.misdirected = 0
        self.drops = 0
        self.admitted_at = admitted_at
        self.last_arrival = admitted_at


class _ServeProcess(TransportProcess):
    """Per-node transport engine plus the storage/querier roles.

    The process is *role-light*: whether it answers requests depends only
    on ``stored`` (set by the engine on storage leaders and kept current
    through :meth:`QueryEngine.update_field`), and responses are handed
    straight back to the engine, which owns all per-query state — one
    process set serves every tenant and every query concurrently.
    """

    def __init__(self, engine: "QueryEngine", stored: Optional[Any] = None):
        cfg = engine.config
        super().__init__(
            engine.stack.topology,
            engine.stack.binding,
            reliable=cfg.reliable,
            max_retries=cfg.max_retries,
            ack_timeout=cfg.ack_timeout,
            wire_format=cfg.wire_format,
        )
        self.engine = engine
        self.stored = stored

    def _deliver(self, envelope: TransportEnvelope) -> None:
        kind, body = envelope.inner
        if kind == QUERY_REQUEST:
            qid, querier_cell = body
            if self.stored is None:
                # a request reached a leader holding nothing: protocol
                # routing error, observable per query
                self.engine._note_misdirected(qid)
                return
            # originate() so the reply gets a uid and rides the reliable
            # transport when enabled
            self.originate(
                querier_cell,
                (QUERY_RESPONSE, (qid, self.my_cell, self.stored)),
                size_units=self.engine._size_of(self.stored),
            )
        elif kind == QUERY_RESPONSE:
            qid, cell, payload = body
            self.engine._on_response(self, qid, cell, payload)

    def _drop(self, envelope: TransportEnvelope, reason: str) -> None:
        super()._drop(envelope, reason)
        self.engine._note_drop(envelope)


class QueryEngine:
    """A long-lived query-serving instance over a deployed stack.

    Parameters
    ----------
    stack:
        A converged :class:`~repro.runtime.stack.DeployedStack`.
    storage:
        ``cell -> stored payload`` at the storage leaders (typically the
        ``exfiltrated`` map of a partial-reduction application round).
        Mutable through :meth:`update_field`.
    config:
        Engine-lifetime :class:`ServeConfig`.

    The engine builds its simulator/medium/process harness once; every
    :meth:`run_batch` (and therefore :meth:`query` / :meth:`serve`)
    advances the same virtual clock.  Determinism contract: given the
    same stack, storage, config, and call sequence, every observable —
    outcomes, medium stats, energy ledger, :meth:`fingerprint` — replays
    byte-identically in any process.
    """

    def __init__(
        self,
        stack: DeployedStack,
        storage: Optional[Dict[GridCoord, Any]] = None,
        config: Optional[ServeConfig] = None,
    ):
        self.stack = stack
        self.config = config or ServeConfig()
        self.stats = EngineStats()
        self.sim, self.medium, self._host = stack.make_harness(
            loss_rate=self.config.loss_rate, rng=self.config.rng
        )
        if self.config.link_model is not None:
            from ..scenario import link_model_from_dict

            gate = link_model_from_dict(self.config.link_model).build_gate(
                stack.network
            )
            if gate is not None:
                self.medium.link_gate = gate
        self._storage: Dict[GridCoord, Any] = dict(storage or {})
        self._epoch: Dict[GridCoord, int] = {}
        # (querier cell, storage cell) -> (epoch at fill time, payload)
        self._cached: Dict[Tuple[GridCoord, GridCoord], Tuple[int, Any]] = {}
        self._active: Dict[int, _ActiveQuery] = {}
        self._next_qid = 0
        self._outcome_digests: List[Tuple[Any, ...]] = []
        self._fault_report: Optional[FaultReport] = None
        self._injected_seen = 0
        self._procs: Dict[int, _ServeProcess] = {}
        network = stack.network
        for nid in network.alive_ids():
            cell = network.cell_of(nid)
            stored = (
                self._storage.get(cell)
                if stack.binding.leaders.get(cell) == nid
                else None
            )
            proc = _ServeProcess(self, stored=stored)
            self._procs[nid] = proc
            self._host.add(nid, proc)
        self._host.start()
        self.sim.run_until_quiet()  # drain the boot events; no traffic yet

    # -- storage, freshness, and fault interaction --------------------------------

    @property
    def storage_cells(self) -> List[GridCoord]:
        """The currently stored cells, sorted."""
        return sorted(self._storage)

    def update_field(self, cell: GridCoord, payload: Any) -> None:
        """Replace the stored payload of ``cell`` and dirty its epoch.

        The new payload lands at the cell's bound leader; every cached
        copy of the old aggregate becomes stale immediately (epoch
        mismatch), so the next query over ``cell`` re-fetches it — and
        only it — over the radio.
        """
        self._storage[cell] = payload
        leader = self.stack.binding.leaders.get(cell)
        if leader is not None and leader in self._procs:
            self._procs[leader].stored = payload
        self.invalidate([cell])

    def invalidate(self, cells: Optional[Sequence[GridCoord]] = None) -> None:
        """Dirty the freshness epoch of ``cells`` (default: everything)."""
        for cell in (self._storage if cells is None else cells):
            self._epoch[cell] = self._epoch.get(cell, 0) + 1

    def arm_faults(self, plan: FaultPlan) -> FaultReport:
        """Arm a :class:`~repro.runtime.faults.FaultPlan` on the live engine.

        Event times are relative to the current virtual time (the engine
        clock never resets), so ``time=0.5`` fires half a time unit into
        the next admission round.  After each round the engine folds the
        newly fired events into cache freshness: a kill or restore
        dirties the affected node's cell, so cached aggregates over a
        faulted cell are re-fetched instead of served stale.
        """
        report = self._fault_report or FaultReport()
        self._fault_report = report
        injector = FaultInjector(plan, self.stack.network, self.stack.binding, report)
        injector.arm(self.sim, self.medium)
        return report

    def _absorb_fault_dirt(self) -> None:
        """Dirty the cells touched by fault events since the last round."""
        report = self._fault_report
        if report is None:
            return
        network = self.stack.network
        for fired_at, action, target in report.injected[self._injected_seen:]:
            if action == "kill_node":
                self.invalidate([network.cell_of(int(target))])
            elif action == "kill_leader":
                cell, _leader = target
                self.invalidate([cell])
            elif action == "restore":
                _links, node = target
                if node is not None:
                    self.invalidate([network.cell_of(int(node))])
        self._injected_seen = len(report.injected)

    # -- serving -------------------------------------------------------------------

    def query(
        self,
        query_cell: GridCoord,
        cells: Optional[Sequence[GridCoord]] = None,
        reduce_fn: Optional[Callable[[List[Any]], Any]] = None,
        tenant: int = 0,
    ) -> QueryOutcome:
        """Serve a single query immediately (a batch of one)."""
        call = QueryCall(
            query_cell=query_cell,
            cells=None if cells is None else tuple(cells),
            reduce_fn=reduce_fn,
            tenant=tenant,
        )
        return self.run_batch([call]).outcomes[0]

    def run_batch(
        self, calls: Sequence[QueryCall], at: Optional[float] = None
    ) -> BatchResult:
        """Serve one admission round: inject every call, run to quiesce.

        ``at`` is the admission time on the engine clock (clamped to
        ``now``; ``None`` = now).  Queries whose querier leader is dead
        or unbound are not injected — they complete immediately with
        every target missing, so a faulted cell degrades one tenant's
        answers instead of crashing the serving loop.
        """
        start = self.sim.now if at is None else max(at, self.sim.now)
        batch: List[_ActiveQuery] = []
        network = self.stack.network
        for call in calls:
            if call.query_cell not in self.stack.binding.leaders:
                raise ValueError(f"query cell {call.query_cell} has no bound leader")
            targets = (
                call.cells if call.cells is not None
                else tuple(sorted(self._storage))
            )
            leader = self.stack.binding.leaders.get(call.query_cell)
            querier = (
                leader
                if leader is not None
                and leader in self._procs
                and network.node(leader).alive
                else None
            )
            qid = self._next_qid
            self._next_qid += 1
            active = _ActiveQuery(qid, call, targets, querier, start)
            self._active[qid] = active
            batch.append(active)
        energy0 = self.medium.ledger.total
        tx0 = self.medium.stats.transmissions
        drops0 = self.stats.drops
        if batch:
            self.sim.schedule_at(start, self._inject_batch, tuple(batch))
        self.sim.run_until_quiet(max_events=self.config.max_events_per_round)
        self._absorb_fault_dirt()
        outcomes = [self._finalize(active, start) for active in batch]
        self.stats.batches += 1
        return BatchResult(
            outcomes=outcomes,
            admitted_at=start,
            quiesced_at=self.sim.now,
            latency=self.sim.now - start,
            energy=self.medium.ledger.total - energy0,
            transmissions=self.medium.stats.transmissions - tx0,
            drops=self.stats.drops - drops0,
        )

    def serve(
        self,
        arrivals: Sequence[Arrival],
        round_interval: float = 1.0,
        reduce_fn: Optional[Callable[[List[Any]], Any]] = None,
    ) -> ServeReport:
        """Serve a whole arrival stream through admission batching."""
        energy0 = self.medium.ledger.total
        tx0 = self.medium.stats.transmissions
        outcomes: List[QueryOutcome] = []
        batches: List[BatchResult] = []
        for admit_time, group in batch_rounds(arrivals, round_interval):
            calls = [
                QueryCall(
                    query_cell=a.query_cell,
                    cells=a.cells,
                    reduce_fn=reduce_fn,
                    tenant=a.tenant,
                )
                for a in group
            ]
            batch = self.run_batch(calls, at=admit_time)
            batches.append(batch)
            outcomes.extend(batch.outcomes)
        return ServeReport(
            outcomes=outcomes,
            batches=batches,
            energy=self.medium.ledger.total - energy0,
            transmissions=self.medium.stats.transmissions - tx0,
        )

    def fingerprint(self) -> str:
        """Stable digest of the engine's whole serving history."""
        return stable_digest(
            (
                tuple(self._outcome_digests),
                self.stats.digest_tuple(),
                self.medium.stats.fingerprint(),
                self.medium.ledger.fingerprint(),
                self.sim.now,
                self.sim.events_processed,
                None
                if self._fault_report is None
                else self._fault_report.fingerprint(),
            )
        )

    # -- internals -----------------------------------------------------------------

    def _size_of(self, payload: Any) -> float:
        sizer = self.config.response_size_of
        return sizer(payload) if sizer is not None else 1.0

    def _inject_batch(self, batch: Tuple[_ActiveQuery, ...]) -> None:
        for active in batch:
            if active.querier_node is None:
                continue  # dead/unbound querier: finalized as all-missing
            proc = self._procs[active.querier_node]
            for cell in active.targets:
                if cell == active.call.query_cell:
                    # the querier's own stored payload needs no radio
                    if proc.stored is not None:
                        active.received[cell] = proc.stored
                        active.local_hits += 1
                        self.stats.local_hits += 1
                    continue
                hit = self._cache_lookup(active.call.query_cell, cell)
                if hit is not None:
                    active.received[cell] = hit[1]
                    active.cache_hits += 1
                    self.stats.cache_hits += 1
                    continue
                active.cache_misses += 1
                self.stats.cache_misses += 1
                active.radio_cells.append(cell)
                proc.originate(
                    cell,
                    (QUERY_REQUEST, (active.qid, active.call.query_cell)),
                    size_units=self.config.request_size,
                )

    def _cache_lookup(
        self, query_cell: GridCoord, cell: GridCoord
    ) -> Optional[Tuple[int, Any]]:
        if not self.config.cache:
            return None
        entry = self._cached.get((query_cell, cell))
        if entry is None or entry[0] != self._epoch.get(cell, 0):
            return None
        return entry

    def _on_response(
        self, proc: _ServeProcess, qid: int, cell: GridCoord, payload: Any
    ) -> None:
        active = self._active.get(qid)
        if active is None or proc.node_id != active.querier_node:
            # a response that reached the wrong node (or outlived its
            # query): protocol routing error, never silently reduced
            self._note_misdirected(qid)
            return
        if cell in active.received:
            return  # duplicate answer (reliable-mode edge); first one wins
        active.received[cell] = payload
        active.responses += 1
        active.last_arrival = proc.now
        self.stats.responses += 1
        if self.config.cache:
            self._cached[(active.call.query_cell, cell)] = (
                self._epoch.get(cell, 0),
                payload,
            )

    def _note_misdirected(self, qid: int) -> None:
        self.stats.misdirected += 1
        active = self._active.get(qid)
        if active is not None:
            active.misdirected += 1

    def _note_drop(self, envelope: TransportEnvelope) -> None:
        self.stats.drops += 1
        inner = envelope.inner
        if isinstance(inner, tuple) and len(inner) == 2:
            kind, body = inner
            if kind in (QUERY_REQUEST, QUERY_RESPONSE):
                active = self._active.get(body[0])
                if active is not None:
                    active.drops += 1

    def _finalize(self, active: _ActiveQuery, admitted_at: float) -> QueryOutcome:
        del self._active[active.qid]
        missing = sorted(c for c in active.targets if c not in active.received)
        payloads = [active.received[c] for c in sorted(active.received)]
        reduce_fn = active.call.reduce_fn
        value = reduce_fn(payloads) if reduce_fn is not None else payloads
        radio_used = bool(active.radio_cells)
        outcome = QueryOutcome(
            qid=active.qid,
            tenant=active.call.tenant,
            query_cell=active.call.query_cell,
            value=value,
            complete=not missing,
            missing_cells=missing,
            responses=active.responses,
            cache_hits=active.cache_hits,
            cache_misses=active.cache_misses,
            local_hits=active.local_hits,
            misdirected=active.misdirected,
            drops=active.drops,
            latency=(active.last_arrival - admitted_at) if radio_used else 0.0,
            admitted_at=admitted_at,
            completed_at=active.last_arrival if radio_used else admitted_at,
        )
        self.stats.queries += 1
        if not outcome.complete:
            self.stats.incomplete_queries += 1
        self._outcome_digests.append(outcome.digest_tuple())
        return outcome
