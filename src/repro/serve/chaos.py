"""Chaos soak: resilient serving under an armed kill/partition/corrupt mix.

The acceptance campaign for DESIGN.md §16: a seed-deterministic serving
run that arms a mixed :func:`~repro.runtime.faults.plan_chaos` schedule
(leader kills, a link partition with restore, frame corruption) against
a *live* :class:`~repro.serve.engine.QueryEngine` with healing enabled,
drives an overloaded multi-tenant arrival stream through it, and then
checks the liveness invariant:

    every admitted query terminates with exactly one named outcome
    (``ok`` / ``partial`` / ``shed`` / ``deadline_expired``) — none
    lost, none hung, none silently partial.

The whole soak — gather round included — is a pure function of its
arguments, so its fingerprint must be byte-identical across repeat runs,
wire codec on/off, and serial vs space-partitioned gather execution
(``partitions=K``); the self-check asserts all three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..core.coords import GridCoord
from ..runtime.faults import FaultReport, HealingConfig, plan_chaos
from ..simulator.trace import stable_digest
from .admission import TenantPolicy, synthesize_arrivals
from .engine import OUTCOMES, QueryEngine, ServeConfig, ServeReport


def _count_all(cell) -> bool:
    # module-level so the partitioned gather can pickle the spec
    return True


def build_serving_stack(
    side: int = 4, seed: int = 7, n_nodes: int = 140, partitions: int = 1
):
    """A deployed stack plus gathered storage, ready to serve.

    ``partitions=K`` runs the gather round on the space-partitioned
    simulator (PR 7); with the default lossless gather no RNG is drawn,
    so the resulting stack state and storage are K-invariant — which is
    exactly what lets chaos fingerprints be compared serial vs
    partitioned while the serving engine itself stays serial.
    """
    from ..core import CountAggregation, VirtualArchitecture
    from ..deployment import (
        CellGrid,
        Terrain,
        build_network,
        ensure_coverage,
        uniform_random,
    )
    from ..runtime.stack import deploy

    terrain = Terrain(100.0)
    cells = CellGrid(terrain, side)
    rng = np.random.default_rng(seed)
    positions = ensure_coverage(uniform_random(n_nodes, terrain, rng), cells, rng)
    net = build_network(positions, cells, tx_range=cells.cell_side * 2.3)
    stack = deploy(net)
    va = VirtualArchitecture(side)
    spec = va.synthesize(CountAggregation(_count_all), max_level=1)
    if partitions > 1:
        run = stack.run_application(spec, partitions=partitions)
    else:
        run = stack.run_application(spec)
    return stack, dict(run.exfiltrated)


#: The soak's tenant mix — one tenant per resilience contract under test:
#: tenant 0 sheds overload, tenant 1 defers it (with a tight deadline, so
#: queueing time burns real budget), tenant 2 is unthrottled but accepts
#: two epochs of cache staleness.
def soak_policies() -> Dict[int, TenantPolicy]:
    return {
        0: TenantPolicy(budget=1.0, overload="shed", deadline=16.0),
        1: TenantPolicy(
            budget=1.0, overload="defer", max_defer_rounds=3, deadline=4.0
        ),
        2: TenantPolicy(max_staleness=2),
    }


@dataclass
class ChaosSoakResult:
    """Everything one chaos soak observed, plus its fingerprint."""

    queries: int
    counts: Dict[str, int]
    lost: int
    leftover_active: int
    failovers: int
    detected_failures: int
    frames_corrupted: int
    shed: int
    deferred: int
    expired: int
    retries: int
    stale_hits: int
    probe_complete: bool
    fingerprint: str

    @property
    def liveness_ok(self) -> bool:
        """The §16 invariant: every query terminated, exactly once, named."""
        return (
            self.lost == 0
            and self.leftover_active == 0
            and sum(self.counts.values()) == self.queries
            and set(self.counts) == set(OUTCOMES)
        )


def _partition_links(
    stack, storage_cells: Tuple[GridCoord, ...]
) -> Tuple[Tuple[int, int], ...]:
    """Links to sever: the last storage leader cut off from its cell.

    Derived purely from the deployed stack (binding + adjacency), so the
    same seed always partitions the same links.
    """
    leader = stack.binding.leaders.get(storage_cells[-1])
    if leader is None:
        return ()
    return stack.network.intra_cell_links(leader)


def chaos_soak(
    side: int = 4,
    n_queries: int = 18,
    seed: int = 7,
    wire: bool = False,
    partitions: int = 1,
    loss: float = 0.08,
) -> ChaosSoakResult:
    """One full resilience campaign; see the module docstring.

    Seed-deterministic end to end: deployment, gather, fault schedule,
    arrival stream, and every retry/backoff delay derive from ``seed``
    and the arguments alone.
    """
    stack, storage = build_serving_stack(
        side=side, seed=seed, partitions=partitions
    )
    storage_cells = tuple(sorted(storage))
    query_cells = sorted(stack.binding.leaders)
    plan = plan_chaos(
        storage_cells[:-1],  # the last storage cell is the partition victim
        links=_partition_links(stack, storage_cells),
        kills=2,
        at=2.5,
        spacing=2.0,
        corrupt_frames=3,
        partition_at=1.0,
        restore_at=9.0,
        seed=seed + 1,
    )
    config = ServeConfig(
        loss_rate=loss,
        rng=np.random.default_rng(seed + 2),
        reliable=True,
        wire_format=wire,
        healing=HealingConfig(heartbeat_interval=1.0, miss_threshold=2),
        healing_headroom=10.0,
        tenant_policies=soak_policies(),
        deadline=20.0,
        query_retries=3,
        retry_base=1.5,
    )
    engine = QueryEngine(stack, storage, config)
    report_faults: FaultReport = engine.arm_faults(plan)
    arrivals = synthesize_arrivals(
        query_cells, n_queries, seed=seed + 3, mean_interarrival=0.35, tenants=3
    )
    report: ServeReport = engine.serve(arrivals, round_interval=2.0, reduce_fn=sum)
    counts = report.outcome_counts()
    # continuity probe: after the whole chaos campaign the engine must
    # still answer — over the failed-over cells — without reconstruction
    probe = engine.query(query_cells[-1], reduce_fn=sum)
    fingerprint = stable_digest(
        (
            engine.fingerprint(),
            report.fingerprint(),
            plan.fingerprint(),
            probe.digest_tuple(),
        )
    )
    return ChaosSoakResult(
        queries=n_queries,
        counts=counts,
        lost=n_queries - report.queries,
        leftover_active=len(engine._active),
        failovers=len(report_faults.failovers),
        detected_failures=report_faults.detected_failures,
        frames_corrupted=report_faults.frames_corrupted,
        shed=engine.stats.shed,
        deferred=engine.stats.deferred,
        expired=engine.stats.expired_queries,
        retries=engine.stats.retries,
        stale_hits=engine.stats.stale_hits,
        probe_complete=probe.complete,
        fingerprint=fingerprint,
    )
