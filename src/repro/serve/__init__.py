"""Persistent query serving over the deployed network.

The paper's end goal is topographic *querying*, yet
:func:`~repro.runtime.query.run_deployed_query` is one-shot: build the
simulator, answer, tear down.  This package is the long-lived engine the
ROADMAP's "serve the network" item calls for — the "millions of users"
workload of grid-cell query serving:

* :class:`~repro.serve.engine.QueryEngine` keeps one simulator, medium,
  and per-node transport process set alive across queries, so repeat
  queries pay no setup and the virtual clock forms a single monotone
  serving timeline;
* the admission layer (:mod:`repro.serve.admission`) turns a
  seed-deterministic concurrent arrival stream into protocol rounds,
  batching co-arriving queries into one radio phase, with per-tenant
  token buckets that deterministically *shed* or *defer* overload
  (:class:`~repro.serve.admission.TenantPolicy`);
* querier leaders cache collected aggregates keyed by a per-cell
  freshness epoch, with incremental invalidation when fields change
  (:meth:`~repro.serve.engine.QueryEngine.update_field`) or when faults
  from the PR 5 :class:`~repro.runtime.faults.FaultPlan` machinery dirty
  a cell — warm queries answer without touching the radio, and tenants
  may trade bounded staleness (``max_staleness`` epochs) for silence;
* the resilience layer (DESIGN.md §16) guarantees every admitted query
  terminates with exactly one named outcome (``ok`` / ``partial`` /
  ``shed`` / ``deadline_expired``): deadline-bound queries retry missing
  cells under seeded backoff then disclose what they have, and with
  ``healing`` configured the engine keeps serving across leader failover
  (:mod:`repro.serve.chaos` is the acceptance campaign).

``python -m repro serve --self-check`` runs the CI acceptance matrix
(:mod:`repro.serve.selfcheck`).
"""

from .admission import (
    AdmissionController,
    Arrival,
    TenantPolicy,
    batch_rounds,
    synthesize_arrivals,
)
from .chaos import ChaosSoakResult, chaos_soak
from .engine import (
    OUTCOMES,
    BatchResult,
    EngineStats,
    QueryCall,
    QueryEngine,
    QueryOutcome,
    ServeConfig,
    ServeReport,
)
from .selfcheck import self_check

__all__ = [
    "AdmissionController",
    "Arrival",
    "BatchResult",
    "ChaosSoakResult",
    "EngineStats",
    "OUTCOMES",
    "QueryCall",
    "QueryEngine",
    "QueryOutcome",
    "ServeConfig",
    "ServeReport",
    "TenantPolicy",
    "batch_rounds",
    "chaos_soak",
    "self_check",
    "synthesize_arrivals",
]
