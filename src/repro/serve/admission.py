"""Admission control: a concurrent query stream batched into rounds.

A serving engine facing "millions of users" cannot run one radio phase
per query; it admits the queries that arrived during a round window
together and answers them in one protocol round.  This module provides
the two pieces the engine composes:

* :func:`synthesize_arrivals` — a seed-deterministic arrival schedule
  (exponential interarrivals, query cells and tenants drawn from a
  ``numpy`` generator), the pure-function stream every sweep/benchmark
  run replays byte-identically;
* :func:`batch_rounds` — the admission rule: arrivals are grouped by the
  round window their arrival time falls in, and each group is admitted
  at the *close* of its window (a query never runs before it arrived).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.coords import GridCoord


@dataclass(frozen=True)
class Arrival:
    """One query arriving at the engine's front door.

    ``cells`` optionally restricts the query to a subset of the storage
    cells (``None`` = aggregate over everything stored); ``tenant`` is an
    opaque id used only for per-tenant accounting — tenants share the
    deployed network, WSN-virtualization style.
    """

    time: float
    query_cell: GridCoord
    tenant: int = 0
    cells: Optional[Tuple[GridCoord, ...]] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"arrival time must be >= 0, got {self.time}")


def synthesize_arrivals(
    query_cells: Sequence[GridCoord],
    n_queries: int,
    seed: int = 0,
    mean_interarrival: float = 1.0,
    tenants: int = 1,
) -> List[Arrival]:
    """A seed-deterministic query stream over ``query_cells``.

    Interarrival gaps are exponential with mean ``mean_interarrival``;
    the query cell and tenant of each arrival are drawn uniformly.  The
    result is a pure function of the arguments, so sweeps and benchmarks
    replaying the same seed serve the identical stream.
    """
    if not query_cells:
        raise ValueError("query_cells must be non-empty")
    if n_queries < 0:
        raise ValueError(f"n_queries must be >= 0, got {n_queries}")
    if mean_interarrival <= 0:
        raise ValueError(f"mean_interarrival must be > 0, got {mean_interarrival}")
    if tenants < 1:
        raise ValueError(f"tenants must be >= 1, got {tenants}")
    cells = sorted(set(query_cells))
    rng = np.random.default_rng(seed)
    now = 0.0
    arrivals: List[Arrival] = []
    for _ in range(n_queries):
        now += float(rng.exponential(mean_interarrival))
        arrivals.append(
            Arrival(
                time=now,
                query_cell=cells[int(rng.integers(len(cells)))],
                tenant=int(rng.integers(tenants)),
            )
        )
    return arrivals


def batch_rounds(
    arrivals: Sequence[Arrival], round_interval: float = 1.0
) -> List[Tuple[float, List[Arrival]]]:
    """Group ``arrivals`` into admission rounds.

    Returns ``(admit_time, group)`` pairs in round order, where every
    arrival with ``time`` in ``[k * round_interval, (k+1) * round_interval)``
    is admitted together at ``(k+1) * round_interval`` — the close of its
    window, so no query is served before it arrived.  Within a group the
    original stream order (time, then tenant) is preserved, which fixes
    the injection order inside the round's radio phase.
    """
    if round_interval <= 0:
        raise ValueError(f"round_interval must be > 0, got {round_interval}")
    groups: Dict[int, List[Arrival]] = {}
    for arrival in sorted(arrivals, key=lambda a: (a.time, a.tenant, a.query_cell)):
        groups.setdefault(int(arrival.time // round_interval), []).append(arrival)
    return [
        ((index + 1) * round_interval, group)
        for index, group in sorted(groups.items())
    ]
