"""Admission control: a concurrent query stream batched into rounds.

A serving engine facing "millions of users" cannot run one radio phase
per query; it admits the queries that arrived during a round window
together and answers them in one protocol round.  This module provides
the pieces the engine composes:

* :func:`synthesize_arrivals` — a seed-deterministic arrival schedule
  (exponential interarrivals, query cells and tenants drawn from a
  ``numpy`` generator), the pure-function stream every sweep/benchmark
  run replays byte-identically;
* :func:`batch_rounds` — the admission rule: arrivals are grouped by the
  round window their arrival time falls in, and each group is admitted
  at the *close* of its window (a query never runs before it arrived);
* :class:`TenantPolicy` / :class:`AdmissionController` — per-tenant
  overload control (WSN-virtualization style: tenants share the deployed
  network but carry their own budgets).  Each tenant owns a token bucket
  refilled once per admission round; a query that finds the bucket empty
  is *shed* (rejected with the named ``shed`` outcome) or *deferred* to
  the next round, by tenant policy.  Shedding is deterministic — it
  depends only on the stream and the policies, never on wall clocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.coords import GridCoord

#: Valid ``TenantPolicy.overload`` values: what happens to a query that
#: finds its tenant's token bucket empty at admission.
OVERLOAD_POLICIES = ("shed", "defer")


@dataclass(frozen=True)
class Arrival:
    """One query arriving at the engine's front door.

    ``cells`` optionally restricts the query to a subset of the storage
    cells (``None`` = aggregate over everything stored); ``tenant`` is an
    opaque id used only for per-tenant accounting — tenants share the
    deployed network, WSN-virtualization style.  ``deadline`` is the
    query's completion budget in virtual time, measured from its
    *admission* (``None`` = unbounded); an incomplete answer is retried
    under seeded backoff until the deadline, then disclosed as partial
    or expired — see :mod:`repro.serve.engine`.
    """

    time: float
    query_cell: GridCoord
    tenant: int = 0
    cells: Optional[Tuple[GridCoord, ...]] = None
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"arrival time must be >= 0, got {self.time}")
        if self.tenant < 0:
            raise ValueError(f"arrival tenant must be >= 0, got {self.tenant}")
        if self.cells is not None and len(self.cells) == 0:
            raise ValueError("arrival cells must be None or a non-empty tuple, got ()")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"arrival deadline must be > 0, got {self.deadline}")


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant serving contract: budget, overload behaviour, freshness.

    ``budget`` is the number of tokens added to the tenant's bucket per
    admission round (``None`` = unlimited admission); ``burst`` caps the
    bucket (``None`` = ``budget``, i.e. no carry-over beyond one round's
    worth).  ``overload`` picks what happens to a query that finds the
    bucket empty: ``"shed"`` rejects it immediately with the named
    ``shed`` outcome, ``"defer"`` re-queues it ahead of the next round's
    arrivals (at most ``max_defer_rounds`` times, then it is shed — a
    query is never parked forever).  ``deadline`` is the tenant's default
    completion budget in virtual time from admission (overridden by a
    per-arrival deadline); a *deferred* query's deadline shrinks by one
    round interval per deferral, so queueing time is not free.
    ``max_staleness`` is the tenant's freshness contract: a cached
    aggregate may be served if it is at most this many freshness epochs
    behind the cell's current epoch (0 = only perfectly fresh entries,
    the strict default); every answer reports the worst staleness it was
    served at.
    """

    budget: Optional[float] = None
    burst: Optional[float] = None
    overload: str = "shed"
    deadline: Optional[float] = None
    max_staleness: int = 0
    max_defer_rounds: int = 8

    def __post_init__(self) -> None:
        if self.budget is not None and self.budget < 0:
            raise ValueError(f"tenant budget must be >= 0, got {self.budget}")
        if self.burst is not None and self.burst <= 0:
            raise ValueError(f"tenant burst must be > 0, got {self.burst}")
        if self.overload not in OVERLOAD_POLICIES:
            raise ValueError(
                f"unknown overload policy {self.overload!r}; "
                f"expected one of {OVERLOAD_POLICIES}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"tenant deadline must be > 0, got {self.deadline}")
        if self.max_staleness < 0:
            raise ValueError(
                f"tenant max_staleness must be >= 0, got {self.max_staleness}"
            )
        if self.max_defer_rounds < 0:
            raise ValueError(
                f"tenant max_defer_rounds must be >= 0, got {self.max_defer_rounds}"
            )

    @property
    def bucket_cap(self) -> Optional[float]:
        """The bucket's token capacity (``None`` = unlimited tenant)."""
        if self.budget is None:
            return None
        return self.burst if self.burst is not None else max(self.budget, 1.0)


#: One queued query: the arrival plus how many rounds it has been
#: deferred so far (0 = fresh from the stream).
QueuedArrival = Tuple[Arrival, int]


class AdmissionController:
    """Per-tenant token-bucket gate, one instance per serving campaign.

    Buckets start full (at :attr:`TenantPolicy.bucket_cap`) and gain
    ``budget`` tokens at every admission round; each admitted query costs
    one token.  :meth:`admit_round` partitions a round's queue — deferred
    queries first (FIFO), then the round's fresh arrivals in stream order
    — into admitted / deferred / shed, deterministically.
    """

    def __init__(
        self,
        policies: Optional[Dict[int, TenantPolicy]] = None,
        default: Optional[TenantPolicy] = None,
    ):
        self.policies = dict(policies or {})
        self.default = default or TenantPolicy()
        self._buckets: Dict[int, float] = {}

    def policy_for(self, tenant: int) -> TenantPolicy:
        """The policy governing ``tenant`` (falling back to the default)."""
        return self.policies.get(tenant, self.default)

    def _bucket(self, tenant: int, policy: TenantPolicy) -> float:
        cap = policy.bucket_cap
        assert cap is not None
        if tenant not in self._buckets:
            self._buckets[tenant] = cap
        return self._buckets[tenant]

    def refill(self) -> None:
        """Credit every known tenant one round's budget (capped at burst)."""
        for tenant in self._buckets:
            policy = self.policy_for(tenant)
            cap = policy.bucket_cap
            if cap is None:
                continue
            self._buckets[tenant] = min(
                cap, self._buckets[tenant] + (policy.budget or 0.0)
            )

    def admit_round(
        self, queue: Sequence[QueuedArrival]
    ) -> Tuple[List[QueuedArrival], List[QueuedArrival], List[QueuedArrival]]:
        """One admission round over ``queue``.

        Returns ``(admitted, deferred, shed)``; deferred entries carry an
        incremented defer count and must be fed back ahead of the next
        round's queue.  The caller refills buckets implicitly — this
        method credits each tenant its per-round ``budget`` before
        spending, so calling it once per round is the whole protocol.
        """
        self.refill()
        admitted: List[QueuedArrival] = []
        deferred: List[QueuedArrival] = []
        shed: List[QueuedArrival] = []
        for arrival, defers in queue:
            policy = self.policy_for(arrival.tenant)
            if policy.budget is None:
                admitted.append((arrival, defers))
                continue
            if self._bucket(arrival.tenant, policy) >= 1.0:
                self._buckets[arrival.tenant] -= 1.0
                admitted.append((arrival, defers))
            elif policy.overload == "defer" and defers < policy.max_defer_rounds:
                deferred.append((arrival, defers + 1))
            else:
                shed.append((arrival, defers))
        return admitted, deferred, shed


def synthesize_arrivals(
    query_cells: Sequence[GridCoord],
    n_queries: int,
    seed: int = 0,
    mean_interarrival: float = 1.0,
    tenants: int = 1,
    deadline: Optional[float] = None,
) -> List[Arrival]:
    """A seed-deterministic query stream over ``query_cells``.

    Interarrival gaps are exponential with mean ``mean_interarrival``;
    the query cell and tenant of each arrival are drawn uniformly.
    ``deadline`` (optional) stamps every arrival with the same completion
    budget.  The result is a pure function of the arguments, so sweeps
    and benchmarks replaying the same seed serve the identical stream.
    """
    if not query_cells:
        raise ValueError("query_cells must be non-empty")
    if n_queries < 0:
        raise ValueError(f"n_queries must be >= 0, got {n_queries}")
    if mean_interarrival <= 0:
        raise ValueError(f"mean_interarrival must be > 0, got {mean_interarrival}")
    if tenants < 1:
        raise ValueError(f"tenants must be >= 1, got {tenants}")
    cells = sorted(set(query_cells))
    rng = np.random.default_rng(seed)
    now = 0.0
    arrivals: List[Arrival] = []
    for _ in range(n_queries):
        now += float(rng.exponential(mean_interarrival))
        arrivals.append(
            Arrival(
                time=now,
                query_cell=cells[int(rng.integers(len(cells)))],
                tenant=int(rng.integers(tenants)),
                deadline=deadline,
            )
        )
    return arrivals


def batch_rounds(
    arrivals: Sequence[Arrival], round_interval: float = 1.0
) -> List[Tuple[float, List[Arrival]]]:
    """Group ``arrivals`` into admission rounds.

    Returns ``(admit_time, group)`` pairs in round order, where every
    arrival with ``time`` in ``[k * round_interval, (k+1) * round_interval)``
    is admitted together at ``(k+1) * round_interval`` — the close of its
    window, so no query is served before it arrived.  Within a group the
    original stream order (time, then tenant) is preserved, which fixes
    the injection order inside the round's radio phase.
    """
    if round_interval <= 0:
        raise ValueError(f"round_interval must be > 0, got {round_interval}")
    groups: Dict[int, List[Arrival]] = {}
    for arrival in sorted(arrivals, key=lambda a: (a.time, a.tenant, a.query_cell)):
        groups.setdefault(int(arrival.time // round_interval), []).append(arrival)
    return [
        ((index + 1) * round_interval, group)
        for index, group in sorted(groups.items())
    ]
