"""CI acceptance matrix for the serving engine.

Run by the ``serve`` and ``serve-resilience`` CI jobs via ``python -m
repro serve --self-check``: builds one small deployment, then asserts
the engine's core contracts — wrapper/engine answer agreement,
warm-cache queries touching zero radio, incremental (single-cell)
invalidation, completeness reporting under loss, and byte-identical
fingerprints across repeat runs and across the wire codec being on or
off — plus the DESIGN.md §16 resilience contracts: construction-time
validation, token-bucket overload shedding/deferral, deadline + seeded
retry termination, per-tenant staleness serving, fault-then-recover
serving continuity against a fresh-engine oracle, and the chaos soak
(liveness invariant + fingerprint invariance across wire on/off and
serial vs partitioned gather).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .admission import Arrival, TenantPolicy, synthesize_arrivals
from .engine import (
    OUTCOME_EXPIRED,
    OUTCOME_OK,
    OUTCOME_SHED,
    OUTCOMES,
    QueryEngine,
    ServeConfig,
)


def _build_stack(side: int = 4, seed: int = 7):
    from ..core import CountAggregation, VirtualArchitecture
    from ..deployment import (
        CellGrid,
        Terrain,
        build_network,
        ensure_coverage,
        uniform_random,
    )
    from ..runtime.stack import deploy

    terrain = Terrain(100.0)
    cells = CellGrid(terrain, side)
    rng = np.random.default_rng(seed)
    positions = ensure_coverage(uniform_random(140, terrain, rng), cells, rng)
    net = build_network(positions, cells, tx_range=cells.cell_side * 2.3)
    stack = deploy(net)
    va = VirtualArchitecture(side)
    spec = va.synthesize(CountAggregation(lambda c: True), max_level=1)
    run = stack.run_application(spec)
    return stack, dict(run.exfiltrated)


def self_check(verbose: bool = True) -> bool:
    """The serving-engine acceptance matrix; ``True`` iff all checks pass."""
    from ..runtime.query import run_deployed_query

    def say(msg: str) -> None:
        if verbose:
            print(msg)

    failures: List[str] = []

    def check(name: str, cond: bool) -> None:
        mark = "ok" if cond else "FAIL"
        say(f"  [{mark}] {name}")
        if not cond:
            failures.append(name)

    stack, storage = _build_stack()
    query_cell = (3, 3)

    say("serve: wrapper vs engine answer agreement")
    wrapped = run_deployed_query(stack, storage, query_cell, reduce_fn=len)
    engine = QueryEngine(stack, storage)
    direct = engine.query(query_cell, reduce_fn=len)
    check("wrapper and engine agree", wrapped.value == direct.value)
    check("wrapper reports complete", wrapped.complete and not wrapped.missing_cells)

    say("serve: warm cache serves without the radio")
    tx_before = engine.medium.stats.transmissions  # cache warmed by `direct`
    warm = engine.query(query_cell, reduce_fn=len)
    check("warm value matches cold", warm.value == direct.value)
    check("warm round is radio-silent", engine.medium.stats.transmissions == tx_before)
    check("warm round hits cache everywhere", warm.cache_misses == 0 and warm.cache_hits > 0)
    check("engine hit rate positive", engine.stats.hit_rate > 0.0)

    say("serve: update_field invalidates exactly one cell")
    dirty = engine.storage_cells[0]
    engine.update_field(dirty, 99)
    refetch = engine.query(query_cell, reduce_fn=None)
    check("only the dirtied cell re-fetches", refetch.cache_misses == 1)
    check("refreshed payload served", 99 in refetch.value)

    say("serve: admission stream, determinism, wire invariance")
    cells = sorted(stack.binding.leaders)
    arrivals = synthesize_arrivals(cells, n_queries=12, seed=5, tenants=3)

    def serve_once(wire: bool) -> Tuple[str, str, float]:
        eng = QueryEngine(
            stack,
            storage,
            ServeConfig(
                loss_rate=0.1,
                rng=np.random.default_rng(11),
                reliable=True,
                wire_format=wire,
            ),
        )
        report = eng.serve(arrivals, round_interval=2.0, reduce_fn=len)
        return eng.fingerprint(), report.fingerprint(), report.cache_hit_rate

    a, b = serve_once(False), serve_once(False)
    check("same-seed serving fingerprints identical", a == b)
    wired = serve_once(True)
    check("wire on/off fingerprints identical", a == wired)
    check("stream warms the cache", a[2] > 0.0)

    say("serve: completeness accounting under loss")
    lossy = QueryEngine(
        stack,
        storage,
        ServeConfig(loss_rate=0.6, rng=np.random.default_rng(2), cache=False),
    )
    degraded = lossy.query(query_cell, reduce_fn=len)
    check(
        "losses reported, never silently reduced",
        degraded.complete or len(degraded.missing_cells) > 0,
    )
    check("lossy run actually lost something", not degraded.complete)
    reliable = QueryEngine(
        stack,
        storage,
        ServeConfig(
            loss_rate=0.25, rng=np.random.default_rng(3), reliable=True, cache=False
        ),
    )
    recovered = reliable.query(query_cell, reduce_fn=len)
    check("reliable transport restores completeness", recovered.complete)

    say("serve: construction-time validation")

    def raises(thunk) -> bool:
        try:
            thunk()
        except ValueError:
            return True
        return False

    check("arrival rejects negative tenant",
          raises(lambda: Arrival(time=0.0, query_cell=(0, 0), tenant=-1)))
    check("arrival rejects empty cells tuple",
          raises(lambda: Arrival(time=0.0, query_cell=(0, 0), cells=())))
    check("config rejects ack_timeout <= 0",
          raises(lambda: ServeConfig(ack_timeout=0.0)))
    check("config rejects staleness without cache",
          raises(lambda: ServeConfig(
              cache=False, tenant_policies={0: TenantPolicy(max_staleness=1)}
          )))
    check("policy rejects unknown overload",
          raises(lambda: TenantPolicy(budget=1.0, overload="panic")))

    say("serve: overload control (token buckets: shed vs defer)")
    policies = {
        7: TenantPolicy(budget=1.0, overload="shed"),
        8: TenantPolicy(budget=1.0, overload="defer", max_defer_rounds=4),
    }
    throttled = QueryEngine(stack, storage, ServeConfig(tenant_policies=policies))
    burst = [
        Arrival(time=0.1 * (i + 1), query_cell=query_cell, tenant=tenant)
        for tenant in (7, 8)
        for i in range(3)
    ]
    overloaded = throttled.serve(burst, round_interval=1.0, reduce_fn=len)
    counts = overloaded.outcome_counts()
    tenants = overloaded.per_tenant()
    check("every query terminates with a named outcome",
          sum(counts.values()) == len(burst) and set(counts) == set(OUTCOMES))
    check("shed tenant sheds overload", tenants[7][OUTCOME_SHED] == 2)
    check("defer tenant eventually serves everything",
          tenants[8][OUTCOME_OK] == 3 and tenants[8]["deferred_rounds"] > 0)
    check("engine counts shed and deferred",
          throttled.stats.shed == 2 and throttled.stats.deferred > 0)

    say("serve: deadlines + seeded retry (terminate, never hang)")
    deadline_eng = QueryEngine(
        stack,
        storage,
        ServeConfig(
            loss_rate=0.5,
            rng=np.random.default_rng(4),
            cache=False,
            deadline=8.0,
            query_retries=3,
            retry_base=1.0,
        ),
    )
    bounded = [deadline_eng.query(query_cell, reduce_fn=len) for _ in range(4)]
    check("deadline-bound queries all terminate named",
          all(o.outcome in OUTCOMES for o in bounded)
          and not deadline_eng._active)
    check("lossy deadline run actually retried", deadline_eng.stats.retries > 0)
    # single nearby target: each attempt has a real chance end to end, so
    # the seeded schedule recovers completeness inside the deadline
    near = QueryEngine(
        stack,
        storage,
        ServeConfig(
            loss_rate=0.3,
            rng=np.random.default_rng(4),
            cache=False,
            deadline=10.0,
            query_retries=4,
            retry_base=1.0,
        ),
    )
    near_cell = sorted(storage)[-1]  # the storage cell adjacent to the querier
    singles = [
        near.query(query_cell, cells=[near_cell], reduce_fn=len) for _ in range(6)
    ]
    check("retries recover completeness within deadline",
          any(o.complete and o.retries > 0 for o in singles))

    say("serve: per-tenant staleness contracts")
    lax = QueryEngine(
        stack, storage, ServeConfig(tenant_policies={5: TenantPolicy(max_staleness=5)})
    )
    fresh = lax.query(query_cell, tenant=5, reduce_fn=sum)
    stale_cell = next(c for c in lax.storage_cells if c != query_cell)
    lax.update_field(stale_cell, 1000)  # epoch bump: caches go stale
    tx_stale = lax.medium.stats.transmissions
    stale = lax.query(query_cell, tenant=5, reduce_fn=sum)
    check("lenient tenant served stale from cache",
          stale.staleness == 1 and stale.value == fresh.value)
    check("stale hit is radio-silent",
          lax.medium.stats.transmissions == tx_stale)
    strict = lax.query(query_cell, tenant=0, reduce_fn=sum)
    check("strict tenant forces refresh",
          strict.cache_misses == 1 and strict.staleness == 0)
    check("refreshed value reflects the update", strict.value != stale.value)

    say("serve: fault-then-recover serving continuity")
    from ..runtime.faults import FaultEvent, FaultPlan, HealingConfig
    from .chaos import build_serving_stack, chaos_soak

    rec_stack, rec_storage = build_serving_stack(seed=9)
    healing = HealingConfig(heartbeat_interval=1.0, miss_threshold=2)
    living = QueryEngine(
        rec_stack, rec_storage,
        ServeConfig(healing=healing, healing_headroom=8.0),
    )
    probe_cell = sorted(rec_storage)[0]
    victim = sorted(rec_storage)[-1]
    cold = living.query(probe_cell, reduce_fn=sum)
    living.arm_faults(FaultPlan((
        FaultEvent(time=0.5, action="kill_leader", cell=victim),
    )))
    living.tick()  # kill fires; heartbeat loss detected; cell fails over
    after = living.query(probe_cell, reduce_fn=sum)
    check("failover happened inside the engine",
          living._fault_report is not None
          and len(living._fault_report.failovers) >= 1)
    check("engine keeps serving complete answers after failover",
          after.complete and after.value == cold.value)
    check("only the dirtied cell re-fetches after failover",
          after.cache_misses == 1 and after.missing_cells == [])
    oracle = QueryEngine(rec_stack, rec_storage).query(probe_cell, reduce_fn=sum)
    check("post-failover answers match a fresh-engine oracle",
          after.value == oracle.value)

    say("serve: chaos soak (liveness + fingerprint invariance)")
    soak = chaos_soak()
    check("chaos soak liveness invariant holds", soak.liveness_ok)
    check("chaos soak exercised shed/expired/failover",
          soak.shed > 0 and soak.expired > 0 and soak.failovers > 0)
    check("chaos soak keeps serving after the storm", soak.probe_complete)
    check("chaos soak reproduces byte-identically",
          chaos_soak().fingerprint == soak.fingerprint)
    check("chaos soak invariant wire on/off",
          chaos_soak(wire=True).fingerprint == soak.fingerprint)
    check("chaos soak invariant serial vs partitioned",
          chaos_soak(partitions=4).fingerprint == soak.fingerprint)

    if failures:
        say(f"serve self-check: {len(failures)} FAILURES")
        return False
    say("serve self-check: all checks passed")
    return True
