"""CI acceptance matrix for the serving engine.

Run by the ``serve`` CI job via ``python -m repro serve --self-check``:
builds one small deployment, then asserts the engine's core contracts —
wrapper/engine answer agreement, warm-cache queries touching zero radio,
incremental (single-cell) invalidation, completeness reporting under
loss, and byte-identical fingerprints across repeat runs and across the
wire codec being on or off.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .admission import synthesize_arrivals
from .engine import QueryEngine, ServeConfig


def _build_stack(side: int = 4, seed: int = 7):
    from ..core import CountAggregation, VirtualArchitecture
    from ..deployment import (
        CellGrid,
        Terrain,
        build_network,
        ensure_coverage,
        uniform_random,
    )
    from ..runtime.stack import deploy

    terrain = Terrain(100.0)
    cells = CellGrid(terrain, side)
    rng = np.random.default_rng(seed)
    positions = ensure_coverage(uniform_random(140, terrain, rng), cells, rng)
    net = build_network(positions, cells, tx_range=cells.cell_side * 2.3)
    stack = deploy(net)
    va = VirtualArchitecture(side)
    spec = va.synthesize(CountAggregation(lambda c: True), max_level=1)
    run = stack.run_application(spec)
    return stack, dict(run.exfiltrated)


def self_check(verbose: bool = True) -> bool:
    """The serving-engine acceptance matrix; ``True`` iff all checks pass."""
    from ..runtime.query import run_deployed_query

    def say(msg: str) -> None:
        if verbose:
            print(msg)

    failures: List[str] = []

    def check(name: str, cond: bool) -> None:
        mark = "ok" if cond else "FAIL"
        say(f"  [{mark}] {name}")
        if not cond:
            failures.append(name)

    stack, storage = _build_stack()
    query_cell = (3, 3)

    say("serve: wrapper vs engine answer agreement")
    wrapped = run_deployed_query(stack, storage, query_cell, reduce_fn=len)
    engine = QueryEngine(stack, storage)
    direct = engine.query(query_cell, reduce_fn=len)
    check("wrapper and engine agree", wrapped.value == direct.value)
    check("wrapper reports complete", wrapped.complete and not wrapped.missing_cells)

    say("serve: warm cache serves without the radio")
    tx_before = engine.medium.stats.transmissions  # cache warmed by `direct`
    warm = engine.query(query_cell, reduce_fn=len)
    check("warm value matches cold", warm.value == direct.value)
    check("warm round is radio-silent", engine.medium.stats.transmissions == tx_before)
    check("warm round hits cache everywhere", warm.cache_misses == 0 and warm.cache_hits > 0)
    check("engine hit rate positive", engine.stats.hit_rate > 0.0)

    say("serve: update_field invalidates exactly one cell")
    dirty = engine.storage_cells[0]
    engine.update_field(dirty, 99)
    refetch = engine.query(query_cell, reduce_fn=None)
    check("only the dirtied cell re-fetches", refetch.cache_misses == 1)
    check("refreshed payload served", 99 in refetch.value)

    say("serve: admission stream, determinism, wire invariance")
    cells = sorted(stack.binding.leaders)
    arrivals = synthesize_arrivals(cells, n_queries=12, seed=5, tenants=3)

    def serve_once(wire: bool) -> Tuple[str, str, float]:
        eng = QueryEngine(
            stack,
            storage,
            ServeConfig(
                loss_rate=0.1,
                rng=np.random.default_rng(11),
                reliable=True,
                wire_format=wire,
            ),
        )
        report = eng.serve(arrivals, round_interval=2.0, reduce_fn=len)
        return eng.fingerprint(), report.fingerprint(), report.cache_hit_rate

    a, b = serve_once(False), serve_once(False)
    check("same-seed serving fingerprints identical", a == b)
    wired = serve_once(True)
    check("wire on/off fingerprints identical", a == wired)
    check("stream warms the cache", a[2] > 0.0)

    say("serve: completeness accounting under loss")
    lossy = QueryEngine(
        stack,
        storage,
        ServeConfig(loss_rate=0.6, rng=np.random.default_rng(2), cache=False),
    )
    degraded = lossy.query(query_cell, reduce_fn=len)
    check(
        "losses reported, never silently reduced",
        degraded.complete or len(degraded.missing_cells) > 0,
    )
    check("lossy run actually lost something", not degraded.complete)
    reliable = QueryEngine(
        stack,
        storage,
        ServeConfig(
            loss_rate=0.25, rng=np.random.default_rng(3), reliable=True, cache=False
        ),
    )
    recovered = reliable.query(query_cell, reduce_fn=len)
    check("reliable transport restores completeness", recovered.complete)

    if failures:
        say(f"serve self-check: {len(failures)} FAILURES")
        return False
    say("serve self-check: all checks passed")
    return True
