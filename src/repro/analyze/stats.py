"""Combinable summary statistics and confidence intervals.

The analysis pipeline never holds a campaign's raw samples in memory: every
metric of every group collapses into an :class:`Accumulator` — a
Welford-style running summary (count / mean / M2 / min / max) with an exact
pairwise :meth:`Accumulator.merge` (Chan, Golub & LeVeque).  Merging is the
property the disk memo relies on: one partial accumulator per sink file,
combined in any grouping or order, equals the single-pass computation over
the concatenated records (to float rounding; count/min/max exactly).

Confidence intervals over replicates use the Student-t critical value for
small samples and fall back to the normal value for large ones — the
tabulated two-sided 90/95/99% quantiles are interpolated linearly in
``1/df`` between pinned degrees of freedom, which keeps ``t_critical``
monotone decreasing in ``df`` (the property that makes CI width shrink
monotonically in ``n`` at fixed variance).  No SciPy at runtime: the table
is pinned here and cross-checked against ``scipy.stats`` in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple

#: Degrees of freedom pinned in the t tables (interpolated in 1/df between).
_T_DFS: Tuple[int, ...] = tuple(range(1, 31)) + (40, 60, 120)

#: Two-sided Student-t critical values by confidence level; the final entry
#: of each row is the df→inf (normal) value used beyond the table.
_T_TABLE: Dict[float, Tuple[float, ...]] = {
    0.90: (
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
        1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
        1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
        1.701, 1.699, 1.697, 1.684, 1.671, 1.658, 1.645,
    ),
    0.95: (
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042, 2.021, 2.000, 1.980, 1.960,
    ),
    0.99: (
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
        3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
        2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
        2.763, 2.756, 2.750, 2.704, 2.660, 2.617, 2.576,
    ),
}

#: Confidence levels the tables cover.
SUPPORTED_CONFIDENCES: Tuple[float, ...] = tuple(sorted(_T_TABLE))


def _table(confidence: float) -> Tuple[float, ...]:
    try:
        return _T_TABLE[confidence]
    except KeyError:
        raise ValueError(
            f"confidence must be one of {SUPPORTED_CONFIDENCES}, got {confidence}"
        ) from None


def z_critical(confidence: float = 0.95) -> float:
    """Two-sided normal critical value (the df→inf column of the table)."""
    return _table(confidence)[-1]


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom.

    Exact at the pinned table points, linear in ``1/df`` between them,
    and the normal value beyond ``df = 120`` — monotone decreasing in
    ``df`` throughout.
    """
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    table = _table(confidence)
    if df <= 30:
        return table[df - 1]
    if df > _T_DFS[-1]:
        return table[-1]
    for i in range(len(_T_DFS) - 1):
        lo_df, hi_df = _T_DFS[i], _T_DFS[i + 1]
        if lo_df <= df <= hi_df:
            # linear interpolation in 1/df preserves monotonicity
            frac = (1.0 / df - 1.0 / lo_df) / (1.0 / hi_df - 1.0 / lo_df)
            return table[i] + frac * (table[i + 1] - table[i])
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass
class Accumulator:
    """Mergeable count/mean/variance/min/max summary of one sample stream.

    ``add`` is Welford's online update; ``merge`` is the parallel
    combination, so any partition of the samples into accumulators folds
    to the same summary as a single pass (count/min/max exactly, moments
    to float rounding).
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    min: float = field(default=math.inf)
    max: float = field(default=-math.inf)

    def add(self, x: float) -> "Accumulator":
        """Fold one sample in (returns self for chaining)."""
        x = float(x)
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        return self

    def add_all(self, xs: Iterable[float]) -> "Accumulator":
        """Fold an iterable of samples in (returns self)."""
        for x in xs:
            self.add(x)
        return self

    def merge(self, other: "Accumulator") -> "Accumulator":
        """Fold another accumulator in (returns self).

        Chan/Golub/LeVeque pairwise combination; merging an empty side is
        an exact no-op, so identity elements are safe everywhere.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.min = other.min
            self.max = other.max
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 below two samples)."""
        return self.m2 / (self.count - 1) if self.count >= 2 else 0.0

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(max(0.0, self.variance))

    # -- persistence (the disk memo stores partials as JSON) -------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; round-trips through :meth:`from_dict`."""
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self.m2,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Accumulator":
        """Inverse of :meth:`to_dict`."""
        count = int(doc["count"])
        return cls(
            count=count,
            mean=float(doc["mean"]),
            m2=float(doc["m2"]),
            min=math.inf if count == 0 else float(doc["min"]),
            max=-math.inf if count == 0 else float(doc["max"]),
        )


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided CI for the mean of one accumulator's stream.

    ``method`` records how the half-width was derived: ``"t"`` (Student-t
    over the sample std), ``"normal"`` (large-sample z), or
    ``"degenerate"`` (fewer than two samples — zero width at the mean, so
    the bounds still contain the sample mean by construction).
    """

    mean: float
    lo: float
    hi: float
    half_width: float
    confidence: float
    n: int
    method: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (report/table serialization)."""
        return {
            "mean": self.mean,
            "lo": self.lo,
            "hi": self.hi,
            "half_width": self.half_width,
            "confidence": self.confidence,
            "n": self.n,
            "method": self.method,
        }


#: Sample count at and above which the normal value replaces Student-t.
NORMAL_CUTOVER_N = 121


def confidence_interval(
    acc: Accumulator, confidence: float = 0.95
) -> ConfidenceInterval:
    """The two-sided CI for the mean summarized by ``acc``.

    t-based below :data:`NORMAL_CUTOVER_N` samples, normal at and above
    (where the table is the normal value anyway); degenerate (zero width)
    below two samples.
    """
    if acc.count == 0:
        raise ValueError("cannot build a confidence interval from zero samples")
    if acc.count < 2:
        return ConfidenceInterval(
            mean=acc.mean, lo=acc.mean, hi=acc.mean, half_width=0.0,
            confidence=confidence, n=acc.count, method="degenerate",
        )
    if acc.count >= NORMAL_CUTOVER_N:
        crit, method = z_critical(confidence), "normal"
    else:
        crit, method = t_critical(acc.count - 1, confidence), "t"
    hw = crit * acc.std / math.sqrt(acc.count)
    return ConfidenceInterval(
        mean=acc.mean, lo=acc.mean - hw, hi=acc.mean + hw, half_width=hw,
        confidence=confidence, n=acc.count, method=method,
    )


def prediction_interval_lower(
    acc: Accumulator, confidence: float = 0.99
) -> Optional[float]:
    """Lower bound of the one-new-observation prediction interval.

    The regression detector's CI-overlap rule: a *new* trajectory point
    consistent with the recorded history should land above
    ``mean - t * s * sqrt(1 + 1/n)``.  ``None`` when the history is too
    short (< 2 samples) or has zero spread — a degenerate history cannot
    support a statistical verdict and the caller falls back to the floor
    rule alone.
    """
    if acc.count < 2 or acc.std == 0.0:
        return None
    crit = (
        z_critical(confidence)
        if acc.count >= NORMAL_CUTOVER_N
        else t_critical(acc.count - 1, confidence)
    )
    return acc.mean - crit * acc.std * math.sqrt(1.0 + 1.0 / acc.count)
