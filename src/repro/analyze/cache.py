"""Disk-memoized campaign aggregation: only new shards are ever re-read.

A campaign that grows by appending sink files (or by appending records to
a new shard's sink) should cost re-analysis proportional to the *new*
data, not the whole history.  :class:`MemoizedAggregator` keeps one memo
entry per ``(sink file sha256, query hash)`` pair under a cache directory;
an unchanged file's partial :class:`~repro.analyze.aggregate.GroupAggregate`
dict is loaded from the memo without parsing a single record, and the
partials merge associatively into the campaign answer.

The :class:`CacheStats` counters are part of the contract, not telemetry:
the self-check asserts that re-aggregating an unchanged campaign performs
**zero** record re-reads, and that growing the campaign re-reads only the
changed file.

Cross-file duplicate runs are an error (:class:`DuplicateRecordError`):
once two files' partials both contain a run, the merged moments cannot be
un-double-counted, so the overlap is reported loudly instead.  Within one
file, resume/retry duplicates are deduplicated by the ingest layer before
the partial is built.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .aggregate import GroupAggregate, GroupQuery, aggregate_records, merge_groups
from .ingest import DuplicateRecordError, IngestReport, ingest_jsonl

#: Version tag of the memo-entry layout; bump to invalidate every memo.
CACHE_SCHEMA = 1

#: Default memo directory (next to wherever the analyzer runs).
DEFAULT_CACHE_DIR = ".analyze_cache"


def file_sha256(path: str) -> str:
    """Streaming sha256 of a file's bytes (the memo key's file half)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class CacheStats:
    """What the memo actually did during one :meth:`aggregate` call."""

    files: int = 0
    hits: int = 0
    misses: int = 0
    records_read: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (folded into reports)."""
        return {
            "files": self.files,
            "hits": self.hits,
            "misses": self.misses,
            "records_read": self.records_read,
        }


@dataclass
class AggregateResult:
    """One memoized campaign aggregation: groups + provenance."""

    query: GroupQuery
    groups: Dict[str, GroupAggregate]
    stats: CacheStats
    sources: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def duplicates(self) -> List[Dict[str, Any]]:
        """Within-file duplicate reports from every ingested source."""
        return [d for src in self.sources for d in src.get("duplicates", [])]

    @property
    def audit_mismatches(self) -> List[Dict[str, Any]]:
        """Audit-fingerprint mismatches from every ingested source."""
        return [m for src in self.sources for m in src.get("audit_mismatches", [])]

    @property
    def torn_lines(self) -> int:
        """Torn JSONL lines repaired across every ingested source."""
        return sum(src.get("torn_lines", 0) for src in self.sources)


class MemoizedAggregator:
    """Aggregate sweep sinks through a ``(file sha256, query)`` disk memo."""

    def __init__(self, cache_dir: Optional[str] = DEFAULT_CACHE_DIR):
        self.cache_dir = cache_dir
        self.stats = CacheStats()

    # -- memo plumbing ----------------------------------------------------

    def _memo_path(self, sha: str, query: GroupQuery) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(
            self.cache_dir, f"{sha[:16]}-{query.query_hash()}.json"
        )

    def _load_memo(self, memo_path: Optional[str], sha: str) -> Optional[Dict[str, Any]]:
        if memo_path is None or not os.path.exists(memo_path):
            return None
        try:
            with open(memo_path) as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None  # a torn memo is a miss, never an error
        if entry.get("schema") != CACHE_SCHEMA or entry.get("sha256") != sha:
            return None
        return entry

    def _store_memo(self, memo_path: Optional[str], entry: Dict[str, Any]) -> None:
        if memo_path is None:
            return
        os.makedirs(os.path.dirname(memo_path) or ".", exist_ok=True)
        # atomic replace: a killed analyzer never leaves a torn memo
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(memo_path) or ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, memo_path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- per-file partials -------------------------------------------------

    def _build_partial(self, path: str, query: GroupQuery) -> Dict[str, Any]:
        report: IngestReport = ingest_jsonl(path)
        self.stats.records_read += len(report.records)
        groups = aggregate_records(report.records, query)
        meta = report.meta_dict()
        return {
            "schema": CACHE_SCHEMA,
            "query": query.canonical_json(),
            "groups": {k: g.to_dict() for k, g in sorted(groups.items())},
            "run_ids": sorted(r.run_id for r in report.records if r.ok and not r.audit),
            "meta": meta,
        }

    def partial_for(self, path: str, query: GroupQuery) -> Dict[str, Any]:
        """The memoized per-file partial (built and stored on a miss)."""
        sha = file_sha256(path)
        memo_path = self._memo_path(sha, query)
        entry = self._load_memo(memo_path, sha)
        if entry is not None:
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        entry = self._build_partial(path, query)
        entry["sha256"] = sha
        self._store_memo(memo_path, entry)
        return entry

    # -- the campaign answer -----------------------------------------------

    def aggregate(self, paths: Sequence[str], query: GroupQuery) -> AggregateResult:
        """Memoized group-by over every sink file in ``paths``."""
        merged: Dict[str, GroupAggregate] = {}
        sources: List[Dict[str, Any]] = []
        seen_runs: Dict[str, str] = {}
        for path in paths:
            self.stats.files += 1
            entry = self.partial_for(path, query)
            overlap = sorted(
                run_id for run_id in entry.get("run_ids", []) if run_id in seen_runs
            )
            if overlap:
                head = ", ".join(overlap[:5])
                raise DuplicateRecordError(
                    f"{path}: {len(overlap)} run(s) already ingested from "
                    f"{seen_runs[overlap[0]]} (e.g. {head}) — the same "
                    f"campaign file was passed twice or two sinks overlap"
                )
            for run_id in entry.get("run_ids", []):
                seen_runs[run_id] = path
            merge_groups(
                merged,
                {
                    k: GroupAggregate.from_dict(g)
                    for k, g in entry.get("groups", {}).items()
                },
            )
            sources.append(dict(entry.get("meta", {})))
        return AggregateResult(
            query=query, groups=merged, stats=self.stats, sources=sources
        )
