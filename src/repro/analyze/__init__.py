"""``repro.analyze`` — campaign analytics: from JSONL sinks to conclusions.

The results pipeline that pairs the :mod:`repro.sweep` runner (DESIGN.md
§15): million-run campaigns land as append-only JSONL sinks and
``BENCH_*.json`` trajectories, and this package turns them into checked,
publishable answers —

* :mod:`repro.analyze.ingest` — typed, schema-validated records through
  the sink layer's torn-tail repair, with resume-duplicate deduplication
  and audit-fingerprint verification;
* :mod:`repro.analyze.stats` — Welford-style combinable accumulators and
  t/normal confidence intervals over replicates (no SciPy at runtime);
* :mod:`repro.analyze.aggregate` / :mod:`repro.analyze.cache` — group-by
  over grid axes with mergeable summaries, disk-memoized per
  ``(file sha256, query)`` so an unchanged campaign re-analyzes with
  zero record re-reads;
* :mod:`repro.analyze.regression` — trajectory regression detection
  (the bench 0.85x floor plus a prediction-interval CI-overlap rule)
  emitting ``ANALYZE_report.json``;
* :mod:`repro.analyze.tables` — deterministic text/markdown tables;
* :mod:`repro.analyze.cli` / :mod:`repro.analyze.selfcheck` — the
  ``python -m repro analyze`` subcommand and the CI acceptance matrix.

Quick use::

    from repro.analyze import GroupQuery, MemoizedAggregator

    result = MemoizedAggregator().aggregate(
        ["loss.jsonl"], GroupQuery(by=("loss",))
    )
    for key, group in sorted(result.groups.items()):
        print(key, group.intervals(0.95)["latency"])
"""

from .aggregate import (
    GroupAggregate,
    GroupQuery,
    aggregate_records,
    merge_groups,
)
from .cache import (
    AggregateResult,
    CacheStats,
    MemoizedAggregator,
    file_sha256,
)
from .ingest import (
    AnalyzeError,
    DuplicateRecordError,
    IngestReport,
    RunRecord,
    TrajectoryDoc,
    UnknownSchemaError,
    ingest_jsonl,
    ingest_trajectory,
)
from .regression import (
    RegressionReport,
    SeriesCheck,
    analyze_trajectories,
    detect_regressions,
    write_report,
)
from .selfcheck import self_check
from .stats import (
    Accumulator,
    ConfidenceInterval,
    confidence_interval,
    prediction_interval_lower,
    t_critical,
    z_critical,
)
from .tables import (
    campaign_table,
    e1_table,
    format_table,
    markdown_table,
    micro_table,
    regression_table,
)

__all__ = [
    "Accumulator",
    "AggregateResult",
    "AnalyzeError",
    "CacheStats",
    "ConfidenceInterval",
    "DuplicateRecordError",
    "GroupAggregate",
    "GroupQuery",
    "IngestReport",
    "MemoizedAggregator",
    "RegressionReport",
    "RunRecord",
    "SeriesCheck",
    "TrajectoryDoc",
    "UnknownSchemaError",
    "aggregate_records",
    "analyze_trajectories",
    "campaign_table",
    "confidence_interval",
    "detect_regressions",
    "e1_table",
    "file_sha256",
    "format_table",
    "ingest_jsonl",
    "ingest_trajectory",
    "markdown_table",
    "merge_groups",
    "micro_table",
    "prediction_interval_lower",
    "regression_table",
    "self_check",
    "t_critical",
    "write_report",
    "z_critical",
]
