"""Publishable text/markdown tables: from aggregates to conclusions.

The last rung of the pipeline: a memoized :class:`AggregateResult` or a
regression pass renders as an aligned plain-text table (terminal) or a
markdown table (docs/PR bodies).  Formatting is deliberately deterministic
— sorted groups, fixed float formats — so golden-fixture tests can
byte-pin the output and tables regenerate identically across runs.

``campaign_table`` is the E2–E8 workhorse (one row per grid group per
metric, with the replicate CI); ``e1_table`` and ``micro_table`` render
the paper's E1 scaling evidence and the micro-bench trajectory verdicts
straight from the committed ``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from .cache import AggregateResult
from .regression import RegressionReport


def _fmt(value: Any) -> str:
    """Deterministic cell formatting (6 significant digits for floats)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Aligned plain-text table (numbers right-aligned, labels left)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def is_num(cell: str) -> bool:
        if cell == "-":
            return True
        try:
            float(cell.lstrip("±"))
            return True
        except ValueError:
            return False

    numeric = [
        bool(cells) and all(is_num(r[i]) for r in cells)
        for i in range(len(headers))
    ]

    def line(row: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i])
            for i, cell in enumerate(row)
        ).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out) + "\n"


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """The same rows as a GitHub-flavoured markdown table."""
    out = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    out.extend(
        "| " + " | ".join(_fmt(c) for c in row) + " |" for row in rows
    )
    return "\n".join(out) + "\n"


#: Headers of the campaign (grid-aggregate) table.
CAMPAIGN_HEADERS = (
    "group", "metric", "n", "failed", "mean", "ci", "lo", "hi", "min", "max",
)


def campaign_rows(
    result: AggregateResult, confidence: float = 0.95
) -> List[List[Any]]:
    """One row per (group, metric) with the replicate CI attached."""
    rows: List[List[Any]] = []
    for key in sorted(result.groups):
        group = result.groups[key]
        intervals = group.intervals(confidence)
        for metric in sorted(intervals):
            ci = intervals[metric]
            acc = group.metrics[metric]
            rows.append(
                [
                    key or "(all)",
                    metric,
                    ci.n,
                    group.failed,
                    ci.mean,
                    f"±{_fmt(ci.half_width)}",
                    ci.lo,
                    ci.hi,
                    acc.min,
                    acc.max,
                ]
            )
    return rows


def campaign_table(
    result: AggregateResult, confidence: float = 0.95, markdown: bool = False
) -> str:
    """The grid-aggregate table of one memoized campaign aggregation."""
    render = markdown_table if markdown else format_table
    return render(CAMPAIGN_HEADERS, campaign_rows(result, confidence))


#: Headers of the trajectory-regression table.
REGRESSION_HEADERS = (
    "bench", "workload", "metric", "value", "best", "ratio", "pi_lower",
    "n", "status",
)


def regression_rows(report: RegressionReport) -> List[List[Any]]:
    """One row per checked trajectory series, findings first."""
    ordered = sorted(
        report.checked,
        key=lambda c: (c.ok, not c.rules_violated, c.bench, c.workload, c.metric),
    )
    return [
        [
            c.bench,
            c.workload,
            c.metric,
            c.value,
            c.best,
            c.ratio_vs_best,
            c.pi_lower,
            c.n_history,
            ("REGRESSION(" + ",".join(c.rules_violated) + ")")
            if (c.gated and c.rules_violated)
            else ("drift(" + ",".join(c.rules_violated) + ")")
            if c.rules_violated
            else ("ok" if c.gated else "watch"),
        ]
        for c in ordered
    ]


def regression_table(report: RegressionReport, markdown: bool = False) -> str:
    """The human half of the regression report (pairs the JSON)."""
    render = markdown_table if markdown else format_table
    return render(REGRESSION_HEADERS, regression_rows(report))


def e1_table(
    runs: Sequence[Mapping[str, Any]], markdown: bool = False
) -> str:
    """The paper's E1 scaling table from the latest ``BENCH_e1.json`` entry."""
    if not runs:
        return "(no recorded E1 runs)\n"
    latest = runs[-1]
    headers = ("side", "partitions", "n_nodes", "wall_s", "tx_per_s", "commit")
    rows: List[List[Any]] = []
    workloads = latest.get("workloads", {})
    for name in ("e1_deployed_scaling", "e1_partitioned"):
        for row in workloads.get(name, []) or []:
            rows.append(
                [
                    row.get("side"),
                    row.get("partitions", 1),
                    row.get("n_nodes"),
                    row.get("wall_s"),
                    row.get("tx_per_s"),
                    latest.get("commit", "unknown"),
                ]
            )
    render = markdown_table if markdown else format_table
    return render(headers, rows)


def micro_table(
    runs: Sequence[Mapping[str, Any]],
    markdown: bool = False,
    keys: Optional[Sequence[str]] = None,
) -> str:
    """Latest micro-suite rates with their best recorded values."""
    if not runs:
        return "(no recorded micro runs)\n"
    latest = runs[-1]
    headers = ("workload", "metric", "latest", "best", "ratio")
    rows: List[List[Any]] = []
    workloads: Dict[str, Any] = latest.get("workloads", {})
    for name in sorted(workloads):
        row = workloads[name]
        if not isinstance(row, Mapping):
            continue
        for metric in sorted(row):
            if not metric.endswith("_per_s"):
                continue
            if keys is not None and metric not in keys:
                continue
            best = max(
                (
                    r["workloads"][name][metric]
                    for r in runs
                    if isinstance(r.get("workloads", {}).get(name), Mapping)
                    and isinstance(
                        r["workloads"][name].get(metric), (int, float)
                    )
                ),
                default=None,
            )
            value = row[metric]
            rows.append(
                [
                    name,
                    metric,
                    value,
                    best,
                    (value / best) if best else None,
                ]
            )
    render = markdown_table if markdown else format_table
    return render(headers, rows)
