"""Ingest: sweep JSONL sinks and trajectory JSON into typed records.

The boundary between "files a campaign left on disk" and "data the
analysis math is allowed to touch".  Everything downstream of this module
sees only validated, deduplicated, typed values:

* :func:`ingest_jsonl` reads one sweep sink through the sink layer's
  torn-tail repair (:func:`repro.sweep.iter_records`), **rejects unknown
  record schema versions loudly** (:class:`UnknownSchemaError` naming the
  file and line), deduplicates resumed/re-run ``(point, replicate)``
  records so nothing is double-counted (reported, never silent), and
  checks every ``#audit`` duplicate's fingerprint against its primary;
* :func:`ingest_trajectory` reads a ``BENCH_*.json`` / ``SWEEP_*.json``
  schema-2 trajectory document (schema-1 bench snapshots are migrated
  through :func:`repro.bench.load_trajectory`).

A record that fails validation is an error, not a skip: a sink full of
records this code cannot interpret must never be summarized as if it had
been empty.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..sweep.sink import AUDIT_SUFFIX, iter_records
from ..sweep.worker import RECORD_SCHEMA


class AnalyzeError(Exception):
    """Base class of every analysis-pipeline error."""


class UnknownSchemaError(AnalyzeError):
    """A record or document carries a schema version this code can't read."""


class DuplicateRecordError(AnalyzeError):
    """The same run appears in more than one ingested source file."""


@dataclass(frozen=True)
class RunRecord:
    """One validated sweep-run result, typed and source-attributed."""

    run_id: str
    spec_hash: str
    name: str
    workload: str
    point: int
    replicate: int
    audit: bool
    seed: int
    shard: int
    attempt: int
    status: str
    error: Optional[str]
    elapsed_s: float
    params: Tuple[Tuple[str, Any], ...]
    metrics: Tuple[Tuple[str, float], ...]
    fingerprint: Optional[str]
    source: str

    @property
    def ok(self) -> bool:
        """True iff the run completed successfully."""
        return self.status == "ok"

    @property
    def primary_id(self) -> str:
        """The run id of the primary this record duplicates (self if primary)."""
        return self.run_id[: -len(AUDIT_SUFFIX)] if self.audit else self.run_id

    def param_dict(self) -> Dict[str, Any]:
        """The grid-point parameters as a plain dict."""
        return dict(self.params)

    def metric_dict(self) -> Dict[str, float]:
        """The numeric metrics as a plain dict."""
        return dict(self.metrics)

    @classmethod
    def from_dict(
        cls, doc: Mapping[str, Any], source: str = "<memory>", lineno: int = 0
    ) -> "RunRecord":
        """Validate and type one raw JSONL record.

        Raises :class:`UnknownSchemaError` for any schema version other
        than the one this code was written against — forward compatibility
        is an explicit migration, never a guess.
        """
        schema = doc.get("schema")
        if schema != RECORD_SCHEMA:
            raise UnknownSchemaError(
                f"{source}:{lineno}: record schema {schema!r} is not the "
                f"supported version {RECORD_SCHEMA} "
                f"(run_id={doc.get('run_id')!r})"
            )
        try:
            metrics = tuple(
                sorted(
                    (str(k), float(v))
                    for k, v in dict(doc.get("metrics") or {}).items()
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                )
            )
            return cls(
                run_id=str(doc["run_id"]),
                spec_hash=str(doc["spec_hash"]),
                name=str(doc.get("name", "")),
                workload=str(doc["workload"]),
                point=int(doc["point"]),
                replicate=int(doc["replicate"]),
                audit=bool(doc.get("audit", False)),
                seed=int(doc["seed"]),
                shard=int(doc.get("shard", -1)),
                attempt=int(doc.get("attempt", 1)),
                status=str(doc["status"]),
                error=doc.get("error"),
                elapsed_s=float(doc.get("elapsed_s", 0.0)),
                params=tuple(sorted(dict(doc.get("params") or {}).items())),
                metrics=metrics,
                fingerprint=doc.get("fingerprint"),
                source=source,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise UnknownSchemaError(
                f"{source}:{lineno}: malformed record "
                f"(run_id={doc.get('run_id')!r}): {exc}"
            ) from exc


@dataclass
class IngestReport:
    """Everything :func:`ingest_jsonl` learned about one sink file.

    ``records`` is the deduplicated, analysis-ready view; the bookkeeping
    fields say what the repair and validation passes actually did, so a
    summary can disclose them instead of silently absorbing them.
    """

    path: str
    records: List[RunRecord] = field(default_factory=list)
    torn_lines: int = 0
    skipped_kinds: int = 0
    duplicates: List[Dict[str, Any]] = field(default_factory=list)
    audit_mismatches: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok_records(self) -> List[RunRecord]:
        """The successful records (what the statistics run on)."""
        return [r for r in self.records if r.ok]

    @property
    def clean(self) -> bool:
        """True iff no audit fingerprint disagreed with its primary."""
        return not self.audit_mismatches

    def meta_dict(self) -> Dict[str, Any]:
        """The bookkeeping counters as a JSON-ready dict."""
        return {
            "path": self.path,
            "records": len(self.records),
            "ok": len(self.ok_records),
            "failed": len(self.records) - len(self.ok_records),
            "torn_lines": self.torn_lines,
            "skipped_kinds": self.skipped_kinds,
            "duplicates": list(self.duplicates),
            "audit_mismatches": list(self.audit_mismatches),
        }


def _dedupe(records: List[RunRecord]) -> Tuple[List[RunRecord], List[Dict[str, Any]]]:
    """Collapse repeated run ids to one record each, reporting the repeats.

    Resume semantics: a later record supersedes an earlier one for the
    same run id, and an ``ok`` record supersedes a structured failure
    regardless of order (a retried run's failure is history, not data).
    Only repeated *ok* records are reported as duplicates — a failure
    followed by its successful retry is the sink working as designed.
    """
    kept: Dict[str, RunRecord] = {}
    ok_seen: Dict[str, List[RunRecord]] = {}
    order: List[str] = []
    for record in records:
        if record.run_id not in kept:
            order.append(record.run_id)
            kept[record.run_id] = record
        else:
            previous = kept[record.run_id]
            if record.ok or not previous.ok:
                kept[record.run_id] = record
        if record.ok:
            ok_seen.setdefault(record.run_id, []).append(record)
    duplicates = [
        {
            "run_id": run_id,
            "count": len(group),
            "fingerprints_agree": len({r.fingerprint for r in group}) == 1,
        }
        for run_id, group in sorted(ok_seen.items())
        if len(group) > 1
    ]
    return [kept[run_id] for run_id in order], duplicates


def _check_audits(records: List[RunRecord]) -> List[Dict[str, Any]]:
    """Fingerprint-compare every ok ``#audit`` record with its primary."""
    by_id = {r.run_id: r for r in records if r.ok}
    mismatches: List[Dict[str, Any]] = []
    for record in records:
        if not (record.audit and record.ok):
            continue
        primary = by_id.get(record.primary_id)
        if primary is not None and primary.fingerprint != record.fingerprint:
            mismatches.append(
                {
                    "run_id": primary.run_id,
                    "primary_fingerprint": primary.fingerprint,
                    "audit_fingerprint": record.fingerprint,
                }
            )
    return mismatches


def ingest_jsonl(path: str) -> IngestReport:
    """One sweep sink file -> validated, deduplicated typed records."""
    report = IngestReport(path=path)

    def count_torn(lineno: int, line: str) -> None:
        report.torn_lines += 1

    raw: List[RunRecord] = []
    for lineno, doc in enumerate(iter_records(path, on_torn=count_torn), start=1):
        if doc.get("kind", "run") != "run":
            report.skipped_kinds += 1
            continue
        raw.append(RunRecord.from_dict(doc, source=path, lineno=lineno))
    report.records, report.duplicates = _dedupe(raw)
    report.audit_mismatches = _check_audits(report.records)
    return report


#: Trajectory-document schema versions this code can read (2 = current;
#: 1 = the pre-PR2 single-snapshot layout, migrated on load).
TRAJECTORY_SCHEMAS = (1, 2)


@dataclass(frozen=True)
class TrajectoryDoc:
    """One loaded ``BENCH_*.json`` / ``SWEEP_*.json`` trajectory document."""

    path: str
    bench: str
    schema: int
    runs: Tuple[Dict[str, Any], ...]


def ingest_trajectory(path: str, expect_bench: Optional[str] = None) -> TrajectoryDoc:
    """Load and validate one trajectory document.

    Unknown schema versions raise :class:`UnknownSchemaError`; a
    ``bench`` name mismatch against ``expect_bench`` is likewise an error
    — pointing the analyzer at the wrong artifact must not produce a
    quietly empty answer (the silent-partial lesson of PR 6).
    """
    if not os.path.exists(path):
        raise AnalyzeError(f"trajectory file not found: {path}")
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except json.JSONDecodeError as exc:
        raise AnalyzeError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "bench" not in doc:
        raise UnknownSchemaError(f"{path}: not a trajectory document (no 'bench')")
    schema = doc.get("schema", 1)
    if schema not in TRAJECTORY_SCHEMAS:
        raise UnknownSchemaError(
            f"{path}: trajectory schema {schema!r} is not a supported "
            f"version {TRAJECTORY_SCHEMAS}"
        )
    bench = str(doc["bench"])
    if expect_bench is not None and bench != expect_bench:
        raise AnalyzeError(
            f"{path}: bench {bench!r} does not match expected {expect_bench!r}"
        )
    if schema >= 2:
        runs = doc.get("runs")
        if not isinstance(runs, list):
            raise UnknownSchemaError(f"{path}: schema-2 document without a runs list")
    else:
        from ..bench import load_trajectory

        runs = load_trajectory(path, bench)
    return TrajectoryDoc(path=path, bench=bench, schema=int(schema), runs=tuple(runs))
