"""Acceptance matrix for the analysis pipeline (DESIGN.md §15).

Run by the ``analyze`` CI job via ``python -m repro analyze --self-check``.
Everything here pins the subsystem's two contracts — **the math is exact
and mergeable** and **the memo never changes an answer, only its cost**:

* the combinable accumulator agrees with a single-pass computation and
  merges associatively; t critical values are monotone; CIs contain the
  sample mean and tighten with ``n``;
* ingest repairs torn JSONL tails (counting them), rejects unknown
  record schema versions with a named error, deduplicates resumed runs
  instead of double-counting them, and surfaces audit-fingerprint
  mismatches;
* re-aggregating an unchanged campaign performs **zero** record
  re-reads; growing the campaign re-reads only the new file; warm and
  cold answers are identical;
* regression detection fires on an injected degradation (naming the
  exact workload and metric, under both the floor and CI-overlap rules),
  stays quiet on a flat noisy trajectory, and — when the committed
  ``BENCH_*.json`` artifacts are visible — passes them clean;
* the report JSON and tables are byte-stable across repeated runs.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from typing import Any, Dict, List

from ..sweep.sink import append_record
from ..sweep.spec import SweepSpec
from ..sweep.worker import base_record
from .aggregate import GroupQuery, aggregate_records
from .cache import MemoizedAggregator
from .ingest import UnknownSchemaError, ingest_jsonl
from .regression import analyze_trajectories, detect_regressions, write_report
from .stats import Accumulator, confidence_interval, t_critical, z_critical
from .tables import campaign_table, regression_table


def _metric_value(seed: int, salt: int = 0) -> float:
    """A deterministic fabricated metric (no simulation needed here)."""
    return 100.0 + ((seed >> salt) % 997) / 10.0


def _records_for(spec: SweepSpec, shard: int = 0) -> List[Dict[str, Any]]:
    """Fabricated ok-records in the real worker record shape."""
    records = []
    for run in spec.expand():
        record = base_record(run, shard=shard, attempt=1)
        record.update(
            {
                "status": "ok",
                "error": None,
                "elapsed_s": 0.01,
                "metrics": {
                    "deliveries": _metric_value(run.seed),
                    "energy": _metric_value(run.seed, salt=3),
                },
                "fingerprint": f"fp-{run.primary_id.replace('/', '-')}",
            }
        )
        records.append(record)
    return records


def _spec(name: str, replicates: int = 4) -> SweepSpec:
    return SweepSpec(
        name=name, workload="storm", grid={"loss": [0.0, 0.1]},
        replicates=replicates, audit_duplicates=1,
    )


def _write_sink(path: str, records: List[Dict[str, Any]]) -> None:
    for record in records:
        append_record(path, record)


def _trajectory(values: List[float], workload: str, metric: str) -> List[Dict]:
    """A synthetic BENCH-style trajectory, one commit per value."""
    return [
        {
            "commit": f"c{i}",
            "date": None,
            "workloads": {workload: {metric: v, "wall_s": 1.0}},
        }
        for i, v in enumerate(values)
    ]


def self_check(verbose: bool = True) -> bool:
    """The analysis acceptance matrix; ``True`` iff all checks pass."""

    def say(msg: str) -> None:
        if verbose:
            print(msg)

    failures: List[str] = []

    def check(name: str, cond: bool) -> None:
        mark = "ok" if cond else "FAIL"
        say(f"  [{mark}] {name}")
        if not cond:
            failures.append(name)

    rel = lambda a, b: math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)  # noqa: E731

    say("analyze: combinable statistics")
    samples = [float(x * x % 83) for x in range(1, 60)]
    single = Accumulator().add_all(samples)
    a = Accumulator().add_all(samples[:13])
    b = Accumulator().add_all(samples[13:40])
    c = Accumulator().add_all(samples[40:])
    merged = Accumulator().merge(a).merge(b).merge(c)
    check(
        "merged accumulator == single pass",
        merged.count == single.count
        and rel(merged.mean, single.mean)
        and rel(merged.variance, single.variance)
        and merged.min == single.min
        and merged.max == single.max,
    )
    left = Accumulator().merge(Accumulator().merge(a).merge(b)).merge(c)
    right = Accumulator().merge(a).merge(Accumulator().merge(b).merge(c))
    check(
        "merge is associative",
        left.count == right.count
        and rel(left.mean, right.mean)
        and rel(left.m2, right.m2),
    )
    ts = [t_critical(df, 0.95) for df in range(1, 200)]
    check(
        "t critical monotone decreasing, -> z at large df",
        all(x >= y for x, y in zip(ts, ts[1:]))
        and ts[-1] == z_critical(0.95),
    )
    ci = confidence_interval(single, 0.95)
    widths = [
        t_critical(n - 1, 0.95) / math.sqrt(n) for n in range(2, 50)
    ]
    check(
        "CI contains mean; width shrinks monotonically in n",
        ci.lo <= single.mean <= ci.hi
        and all(x > y for x, y in zip(widths, widths[1:])),
    )

    say("analyze: ingest validation and repair")
    with tempfile.TemporaryDirectory() as tmp:
        sink = os.path.join(tmp, "campaign.jsonl")
        spec = _spec("selfcheck-a")
        records = _records_for(spec)
        _write_sink(sink, records)
        report = ingest_jsonl(sink)
        expanded = spec.expand()
        check(
            "typed records round-trip the sink",
            len(report.records) == len(expanded)
            and report.ok_records[0].param_dict() == expanded[0].params
            and report.clean and not report.duplicates,
        )

        with open(sink, "a") as fh:
            fh.write('{"schema": 1, "kind": "run", "run_id": "torn...')
        torn = ingest_jsonl(sink)
        check(
            "torn tail repaired and counted",
            torn.torn_lines == 1 and len(torn.records) == len(records),
        )

        bad = os.path.join(tmp, "bad.jsonl")
        append_record(bad, {**records[0], "schema": 99})
        try:
            ingest_jsonl(bad)
            schema_rejected = False
        except UnknownSchemaError as exc:
            schema_rejected = "99" in str(exc)
        check("unknown schema version rejected by name", schema_rejected)

        dup = os.path.join(tmp, "dup.jsonl")
        _write_sink(dup, records + [records[0]])
        dup_report = ingest_jsonl(dup)
        check(
            "duplicate run counted once and reported",
            len(dup_report.records) == len(records)
            and len(dup_report.duplicates) == 1
            and dup_report.duplicates[0]["run_id"] == records[0]["run_id"]
            and dup_report.duplicates[0]["fingerprints_agree"],
        )

        tampered = os.path.join(tmp, "tampered.jsonl")
        bad_audit = [dict(r) for r in records]
        for record in bad_audit:
            if record["audit"]:
                record["fingerprint"] = "fp-TAMPERED"
        _write_sink(tampered, bad_audit)
        check(
            "audit fingerprint mismatch surfaced",
            len(ingest_jsonl(tampered).audit_mismatches) == 1,
        )

        say("analyze: memoized aggregation")
        query = GroupQuery(by=("loss",))
        cache_dir = os.path.join(tmp, "memo")
        cold = MemoizedAggregator(cache_dir=cache_dir)
        cold_result = cold.aggregate([sink], query)
        check(
            "cold pass reads every record once",
            cold.stats.misses == 1
            and cold.stats.records_read == len(torn.records),
        )
        warm = MemoizedAggregator(cache_dir=cache_dir)
        warm_result = warm.aggregate([sink], query)
        check(
            "unchanged campaign re-aggregates with ZERO record re-reads",
            warm.stats.hits == 1
            and warm.stats.misses == 0
            and warm.stats.records_read == 0,
        )
        check(
            "warm and cold answers identical",
            {k: g.to_dict() for k, g in warm_result.groups.items()}
            == {k: g.to_dict() for k, g in cold_result.groups.items()},
        )
        sink2 = os.path.join(tmp, "campaign2.jsonl")
        records2 = _records_for(_spec("selfcheck-b", replicates=2))
        _write_sink(sink2, records2)
        grown = MemoizedAggregator(cache_dir=cache_dir)
        grown_result = grown.aggregate([sink, sink2], query)
        check(
            "grown campaign re-reads only the new shard",
            grown.stats.hits == 1
            and grown.stats.misses == 1
            and grown.stats.records_read == len(records2),
        )

        expected = {}
        for record in ingest_jsonl(sink).records + ingest_jsonl(sink2).records:
            if record.ok and not record.audit:
                key = f"loss={record.param_dict()['loss']}"
                expected.setdefault(key, []).append(
                    record.metric_dict()["deliveries"]
                )
        hand = {
            k: (len(v), sum(v) / len(v), min(v), max(v))
            for k, v in expected.items()
        }
        got = {
            k: (
                g.metrics["deliveries"].count,
                g.metrics["deliveries"].mean,
                g.metrics["deliveries"].min,
                g.metrics["deliveries"].max,
            )
            for k, g in grown_result.groups.items()
        }
        check(
            "group-by aggregation matches hand computation",
            set(hand) == set(got)
            and all(
                hand[k][0] == got[k][0]
                and rel(hand[k][1], got[k][1])
                and hand[k][2] == got[k][2]
                and hand[k][3] == got[k][3]
                for k in hand
            ),
        )
        ci_table = campaign_table(grown_result)
        check(
            "campaign table renders every group with a CI column",
            "ci" in ci_table.splitlines()[0]
            and all(k in ci_table for k in hand),
        )

        say("analyze: trajectory regression detection")
        flat = _trajectory(
            [1000.0, 1010.0, 990.0, 1005.0, 995.0, 1002.0],
            "medium_broadcast_storm", "deliveries_per_s",
        )
        check(
            "flat noisy trajectory: no findings",
            all(c.ok and not c.rules_violated
                for c in detect_regressions(flat, "micro")),
        )
        degraded = _trajectory(
            [1000.0, 1010.0, 990.0, 1005.0, 995.0, 500.0],
            "medium_broadcast_storm", "deliveries_per_s",
        )
        found = [
            c for c in detect_regressions(degraded, "micro") if c.rules_violated
        ]
        check(
            "injected degradation flagged, naming workload and metric",
            len(found) == 1
            and found[0].workload == "medium_broadcast_storm"
            and found[0].metric == "deliveries_per_s"
            and set(found[0].rules_violated) == {"floor", "ci"}
            and not found[0].ok,
        )
        watch = _trajectory(
            [1000.0, 1010.0, 990.0, 1005.0, 995.0, 500.0],
            "timer_storm", "timer_ops_per_s",
        )
        watch_checks = detect_regressions(watch, "micro")
        check(
            "ungated series degrades to drift, never a finding",
            all(c.ok for c in watch_checks)
            and any(c.rules_violated for c in watch_checks),
        )

        report1 = analyze_trajectories([("micro", degraded)])
        path1 = os.path.join(tmp, "r1.json")
        path2 = os.path.join(tmp, "r2.json")
        write_report(path1, report1)
        write_report(path2, analyze_trajectories([("micro", degraded)]))
        with open(path1, "rb") as f1, open(path2, "rb") as f2:
            check("report JSON byte-stable across runs", f1.read() == f2.read())
        table = regression_table(report1)
        check(
            "regression table names the offending series",
            "REGRESSION(floor,ci)" in table
            and "medium_broadcast_storm" in table,
        )
        with open(path1) as fh:
            doc = json.load(fh)
        check(
            "report schema: findings mirrored in machine-readable form",
            doc["schema"] == 1 and not doc["ok"]
            and doc["findings"][0]["workload"] == "medium_broadcast_storm",
        )

    say("analyze: committed trajectories")
    committed = []
    for filename, bench in (("BENCH_micro.json", "micro"), ("BENCH_e1.json", "e1")):
        if os.path.exists(filename):
            from .ingest import ingest_trajectory

            doc = ingest_trajectory(filename, expect_bench=bench)
            committed.append((doc.bench, doc.runs))
    if committed:
        real = analyze_trajectories(committed)
        check(
            "committed BENCH_*.json trajectories pass clean",
            real.ok and len(real.checked) >= 4,
        )
    else:
        say("  [--] committed BENCH_*.json not visible from cwd (skipped)")

    if failures:
        say(f"analyze self-check: {len(failures)} FAILURES")
        return False
    say("analyze self-check: all checks passed")
    return True
