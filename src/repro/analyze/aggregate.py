"""Cross-sweep group-by aggregation with mergeable summaries.

A :class:`GroupQuery` names the question ("group the ``storm`` records by
``loss`` and summarize every metric"); :func:`aggregate_records` folds a
batch of typed records into one :class:`GroupAggregate` per group.  The
aggregates are *mergeable* — per-metric :class:`~repro.analyze.stats.Accumulator`
moments, failure counts, and fingerprint digests all combine associatively
— which is what lets the disk memo (:mod:`repro.analyze.cache`) keep one
partial per sink file and combine partials instead of re-reading records.

Audit duplicates are excluded from the statistics (they exist to check
determinism, not to bias it — same rule as :func:`repro.sweep.summarize`);
their fingerprint verdicts travel in the ingest report instead.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .ingest import AnalyzeError, RunRecord
from .stats import Accumulator, ConfidenceInterval, confidence_interval


@dataclass(frozen=True)
class GroupQuery:
    """One aggregation question over a campaign.

    ``by`` lists the grid axes to group on (``None`` = every parameter,
    i.e. one group per grid point); ``metrics`` restricts which numeric
    metrics are summarized (``None`` = all); ``workload`` filters records
    to one workload kernel.  The canonical form is part of the memo key,
    so two processes asking "the same question" share cache entries.
    """

    by: Optional[Tuple[str, ...]] = None
    metrics: Optional[Tuple[str, ...]] = None
    workload: Optional[str] = None

    def __post_init__(self) -> None:
        for name, value in (("by", self.by), ("metrics", self.metrics)):
            if value is not None and (
                not isinstance(value, tuple)
                or any(not isinstance(v, str) for v in value)
            ):
                raise AnalyzeError(f"GroupQuery.{name} must be a tuple of axis names")

    def canonical_json(self) -> str:
        """Canonical serialization (the memo-key half the query owns)."""
        return json.dumps(
            {
                "by": sorted(self.by) if self.by is not None else None,
                "metrics": sorted(self.metrics) if self.metrics is not None else None,
                "workload": self.workload,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def query_hash(self) -> str:
        """Stable 16-hex-digit identity of the question."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    def group_key(self, record: RunRecord) -> str:
        """The group label one record lands in (sorted ``k=v`` pairs)."""
        params = record.param_dict()
        axes = sorted(params) if self.by is None else sorted(self.by)
        return ",".join(f"{axis}={params.get(axis)}" for axis in axes)

    def wants(self, record: RunRecord) -> bool:
        """True iff the record is in this query's population."""
        return self.workload is None or record.workload == self.workload


@dataclass
class GroupAggregate:
    """The mergeable summary of one group: counts, moments, fingerprints."""

    key: str
    runs: int = 0
    failed: int = 0
    metrics: Dict[str, Accumulator] = field(default_factory=dict)
    fingerprints: List[str] = field(default_factory=list)

    def fold(self, record: RunRecord, wanted: Optional[Tuple[str, ...]]) -> None:
        """Fold one non-audit record in."""
        if not record.ok:
            self.failed += 1
            return
        self.runs += 1
        if record.fingerprint and record.fingerprint not in self.fingerprints:
            self.fingerprints.append(record.fingerprint)
            self.fingerprints.sort()
        for name, value in record.metrics:
            if wanted is not None and name not in wanted:
                continue
            self.metrics.setdefault(name, Accumulator()).add(value)

    def merge(self, other: "GroupAggregate") -> "GroupAggregate":
        """Fold another group's summary in (returns self)."""
        if other.key != self.key:
            raise AnalyzeError(
                f"cannot merge group {other.key!r} into {self.key!r}"
            )
        self.runs += other.runs
        self.failed += other.failed
        self.fingerprints = sorted(set(self.fingerprints) | set(other.fingerprints))
        for name, acc in other.metrics.items():
            self.metrics.setdefault(name, Accumulator()).merge(acc)
        return self

    @property
    def fingerprint_digest(self) -> str:
        """Stable digest of the distinct run fingerprints in the group."""
        material = "\n".join(self.fingerprints).encode()
        return hashlib.sha256(material).hexdigest()[:16]

    def intervals(self, confidence: float = 0.95) -> Dict[str, ConfidenceInterval]:
        """Per-metric CIs over the replicates (skips empty accumulators)."""
        return {
            name: confidence_interval(acc, confidence)
            for name, acc in sorted(self.metrics.items())
            if acc.count > 0
        }

    # -- persistence (the disk memo stores one partial per sink file) ----

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; round-trips through :meth:`from_dict`."""
        return {
            "key": self.key,
            "runs": self.runs,
            "failed": self.failed,
            "fingerprints": list(self.fingerprints),
            "metrics": {k: acc.to_dict() for k, acc in sorted(self.metrics.items())},
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "GroupAggregate":
        """Inverse of :meth:`to_dict`."""
        return cls(
            key=str(doc["key"]),
            runs=int(doc["runs"]),
            failed=int(doc["failed"]),
            fingerprints=sorted(str(f) for f in doc.get("fingerprints", [])),
            metrics={
                str(k): Accumulator.from_dict(v)
                for k, v in dict(doc.get("metrics", {})).items()
            },
        )


def aggregate_records(
    records: Sequence[RunRecord], query: GroupQuery
) -> Dict[str, GroupAggregate]:
    """Fold typed records into one :class:`GroupAggregate` per group."""
    groups: Dict[str, GroupAggregate] = {}
    for record in records:
        if record.audit or not query.wants(record):
            continue
        key = query.group_key(record)
        group = groups.get(key)
        if group is None:
            group = groups[key] = GroupAggregate(key=key)
        group.fold(record, query.metrics)
    return groups


def merge_groups(
    into: Dict[str, GroupAggregate], other: Dict[str, GroupAggregate]
) -> Dict[str, GroupAggregate]:
    """Merge one partial group dict into another (returns ``into``)."""
    for key, group in other.items():
        if key in into:
            into[key].merge(group)
        else:
            into[key] = GroupAggregate.from_dict(group.to_dict())
    return into
