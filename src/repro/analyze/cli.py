"""The ``python -m repro analyze`` subcommand.

Two modes, composable in one invocation:

* **campaign aggregation** — ``--sink results.jsonl`` (repeatable) runs
  the memoized group-by over the named sweep sinks and prints the
  campaign table with replicate confidence intervals (``--by loss,side``
  picks the axes, ``--workload``/``--metrics`` filter, ``--markdown``
  switches the rendering);
* **trajectory regression** — with ``--bench-dir`` (default ``.``) the
  committed ``BENCH_micro.json`` / ``BENCH_e1.json`` trajectories are
  checked for regressions (floor + CI-overlap rules), the E1/micro
  tables are printed, and the machine-readable verdict is written to
  ``--report`` (default ``ANALYZE_report.json``).

``--self-check`` runs the analysis acceptance matrix instead (the CI
``analyze`` job).  Exit codes: 0 ok; 1 regression findings or audit
mismatches; 2 usage/ingest errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Tuple

from .aggregate import GroupQuery
from .cache import MemoizedAggregator
from .ingest import AnalyzeError, ingest_trajectory
from .regression import analyze_trajectories, write_report
from .stats import SUPPORTED_CONFIDENCES
from .tables import campaign_table, e1_table, micro_table, regression_table

#: The trajectory artifacts the regression pass looks for by default.
BENCH_FILES = (("BENCH_micro.json", "micro"), ("BENCH_e1.json", "e1"))


def build_parser() -> argparse.ArgumentParser:
    """The ``repro analyze`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="campaign analytics: memoized aggregation, confidence "
        "intervals, trajectory regression detection",
    )
    parser.add_argument(
        "--self-check", action="store_true",
        help="run the analysis acceptance matrix (the CI analyze job)",
    )
    parser.add_argument(
        "--sink", action="append", default=[], metavar="PATH",
        help="sweep JSONL sink to aggregate (repeatable)",
    )
    parser.add_argument(
        "--by", default=None, metavar="AXIS1,AXIS2",
        help="grid axes to group on (default: every parameter)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="M1,M2",
        help="metrics to summarize (default: all numeric)",
    )
    parser.add_argument("--workload", default=None, help="restrict to one workload")
    parser.add_argument(
        "--confidence", type=float, default=0.95,
        choices=list(SUPPORTED_CONFIDENCES),
        help="CI level for the campaign table (default 0.95)",
    )
    parser.add_argument(
        "--cache-dir", default=".analyze_cache", metavar="DIR",
        help="memo directory keyed by (file sha256, query) "
        "(default .analyze_cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the disk memo (every record re-read)",
    )
    parser.add_argument(
        "--bench-dir", default=".", metavar="DIR",
        help="directory holding BENCH_*.json trajectories (default .)",
    )
    parser.add_argument(
        "--no-regression", action="store_true",
        help="skip the trajectory regression pass",
    )
    parser.add_argument(
        "--report", default="ANALYZE_report.json", metavar="PATH",
        help="machine-readable regression report (default ANALYZE_report.json)",
    )
    parser.add_argument(
        "--no-report", action="store_true", help="do not write the report file"
    )
    parser.add_argument(
        "--markdown", action="store_true", help="render markdown tables"
    )
    parser.add_argument("--quiet", action="store_true", help="suppress tables")
    return parser


def _split(text: Optional[str]) -> Optional[Tuple[str, ...]]:
    if text is None:
        return None
    parts = tuple(p.strip() for p in text.split(",") if p.strip())
    return parts or None


def _run_campaign(args: argparse.Namespace) -> int:
    query = GroupQuery(
        by=_split(args.by), metrics=_split(args.metrics), workload=args.workload
    )
    aggregator = MemoizedAggregator(
        cache_dir=None if args.no_cache else args.cache_dir
    )
    result = aggregator.aggregate(args.sink, query)
    if not args.quiet:
        print(campaign_table(result, args.confidence, markdown=args.markdown))
        stats = result.stats
        print(
            f"campaign: {len(result.groups)} group(s) from {stats.files} "
            f"file(s) — {stats.hits} memo hit(s), {stats.misses} miss(es), "
            f"{stats.records_read} record(s) read, "
            f"{result.torn_lines} torn line(s) repaired"
        )
        for dup in result.duplicates:
            print(
                f"  note: {dup['run_id']} recorded {dup['count']}x "
                f"(counted once; fingerprints "
                f"{'agree' if dup['fingerprints_agree'] else 'DISAGREE'})"
            )
    if result.audit_mismatches:
        for mismatch in result.audit_mismatches:
            print(f"AUDIT MISMATCH: {mismatch}", file=sys.stderr)
        return 1
    return 0


def _run_regression(args: argparse.Namespace) -> int:
    docs: List[Tuple[str, Sequence]] = []
    for filename, bench in BENCH_FILES:
        path = os.path.join(args.bench_dir, filename)
        if os.path.exists(path):
            doc = ingest_trajectory(path, expect_bench=bench)
            docs.append((doc.bench, doc.runs))
    if not docs:
        print(f"no BENCH_*.json trajectories under {args.bench_dir!r}")
        return 0
    report = analyze_trajectories(docs)
    if not args.quiet:
        by_bench = dict(docs)
        if "e1" in by_bench:
            print("E1 deployed scaling (latest recorded run):")
            print(e1_table(by_bench["e1"], markdown=args.markdown))
        if "micro" in by_bench:
            print("micro-suite rates (latest vs best recorded):")
            print(micro_table(by_bench["micro"], markdown=args.markdown))
        print("trajectory regression checks:")
        print(regression_table(report, markdown=args.markdown))
    if not args.no_report:
        write_report(args.report, report)
        if not args.quiet:
            print(f"wrote {args.report}")
    if not report.ok:
        for check in report.findings:
            print(
                f"REGRESSION: {check.bench}:{check.workload}.{check.metric} "
                f"= {check.value:.6g} (best {check.best:.6g}, "
                f"rules: {', '.join(check.rules_violated)})",
                file=sys.stderr,
            )
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.self_check:
        from .selfcheck import self_check

        return 0 if self_check() else 1
    try:
        code = 0
        if args.sink:
            code = _run_campaign(args)
        if not args.no_regression:
            code = max(code, _run_regression(args))
        if not args.sink and args.no_regression:
            print("nothing to do: no --sink and --no-regression", file=sys.stderr)
            return 2
        return code
    except AnalyzeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
