"""Trajectory regression detection over BENCH/SWEEP histories.

Every ``BENCH_*.json`` run entry is one commit's measurement of the same
seeded workloads; a perf or fidelity regression shows up as the *latest*
entry falling out of the recorded distribution.  :func:`detect_regressions`
applies two rules to each tracked series:

* the **floor rule** — the existing :data:`repro.bench.NO_REGRESSION_FLOOR`
  semantics: the latest value must be at least ``floor`` (0.85) times the
  best value ever recorded for that series;
* the **CI-overlap rule** — the latest value must lie above the lower
  bound of the one-new-observation prediction interval of the historical
  values (:func:`repro.analyze.stats.prediction_interval_lower`, 99% by
  default): a new point below it is statistically inconsistent with the
  trajectory even when it clears the floor.

Only the series in :data:`repro.bench.TRAJECTORY_GATES` can produce
findings — those are the stable, machine-comparable hot paths the bench
harness already floors.  Every other numeric rate in the trajectory
(including the per-``side`` E1 rows, whose sub-100ms wall clocks swing
wildly across runner hardware) is evaluated and *reported* with the same
numbers but marked ``watch`` so drift is visible without false alarms.

The output is machine-readable (``ANALYZE_report.json``, deliberately
timestamp-free so a re-run over unchanged inputs is byte-identical) plus
a human table naming the offending workload/axis and metric.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..bench import NO_REGRESSION_FLOOR, TRAJECTORY_GATES
from .stats import Accumulator, prediction_interval_lower

#: Version tag of the ANALYZE_report.json layout.
REPORT_SCHEMA = 1

#: Confidence of the prediction-interval (CI-overlap) rule.
PI_CONFIDENCE = 0.99

#: Minimum historical points before the CI rule can fire.
MIN_HISTORY = 3


@dataclass(frozen=True)
class SeriesCheck:
    """The verdict on one (workload/axis, metric) trajectory series."""

    bench: str
    workload: str
    metric: str
    gated: bool
    commit: str
    value: float
    n_history: int
    best: Optional[float] = None
    ratio_vs_best: Optional[float] = None
    pi_lower: Optional[float] = None
    rules_violated: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True iff no gated rule fired on this series."""
        return not (self.gated and self.rules_violated)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (one ``checked`` row of the report)."""
        return {
            "bench": self.bench,
            "workload": self.workload,
            "metric": self.metric,
            "gated": self.gated,
            "commit": self.commit,
            "value": self.value,
            "n_history": self.n_history,
            "best": self.best,
            "ratio_vs_best": self.ratio_vs_best,
            "pi_lower": self.pi_lower,
            "rules_violated": list(self.rules_violated),
            "status": (
                "regression" if (self.gated and self.rules_violated)
                else ("drift" if self.rules_violated else "ok")
            ),
        }


@dataclass
class RegressionReport:
    """Machine-readable outcome of one trajectory regression pass."""

    checked: List[SeriesCheck] = field(default_factory=list)
    floor: float = NO_REGRESSION_FLOOR
    confidence: float = PI_CONFIDENCE

    @property
    def findings(self) -> List[SeriesCheck]:
        """Gated series with at least one violated rule (the failures)."""
        return [c for c in self.checked if c.gated and c.rules_violated]

    @property
    def drift(self) -> List[SeriesCheck]:
        """Watch-only series whose rules fired (visible, never fatal)."""
        return [c for c in self.checked if not c.gated and c.rules_violated]

    @property
    def ok(self) -> bool:
        """True iff no gated series regressed."""
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        """The ``ANALYZE_report.json`` document (timestamp-free)."""
        return {
            "schema": REPORT_SCHEMA,
            "floor": self.floor,
            "confidence": self.confidence,
            "ok": self.ok,
            "findings": [c.to_dict() for c in self.findings],
            "drift": [c.to_dict() for c in self.drift],
            "checked": [c.to_dict() for c in self.checked],
        }


def _flatten_workloads(
    workloads: Mapping[str, Any]
) -> Dict[str, Dict[str, float]]:
    """One run entry's workloads -> flat ``label -> {metric: value}`` rows.

    Dict-valued workloads (the micro suite) keep their name; list-valued
    workloads (the E1 suites) become one labelled row per axis point,
    e.g. ``e1_deployed_scaling[side=8]`` — which is how a finding names
    the exact offending workload *and* axis.
    """
    AXES = ("side", "partitions")
    rows: Dict[str, Dict[str, float]] = {}
    for name, value in workloads.items():
        if isinstance(value, Mapping):
            rows[name] = {
                k: float(v)
                for k, v in value.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            }
        elif isinstance(value, list):
            for row in value:
                if not isinstance(row, Mapping):
                    continue
                axis = ",".join(
                    f"{a}={row[a]}" for a in AXES if a in row
                )
                label = f"{name}[{axis}]" if axis else name
                rows[label] = {
                    k: float(v)
                    for k, v in row.items()
                    if k not in AXES
                    and isinstance(v, (int, float))
                    and not isinstance(v, bool)
                }
    return rows


def _series(
    runs: Sequence[Mapping[str, Any]]
) -> Dict[Tuple[str, str], List[Tuple[str, float]]]:
    """All ``(label, metric) -> [(commit, value), ...]`` rate series.

    Only ``*_per_s`` rates are tracked: counters are pinned by the
    determinism fingerprints, and raw wall clocks are redundant with
    their rates.
    """
    series: Dict[Tuple[str, str], List[Tuple[str, float]]] = {}
    for run in runs:
        commit = str(run.get("commit", "unknown"))
        for label, row in _flatten_workloads(run.get("workloads", {})).items():
            for metric, value in row.items():
                if metric.endswith("_per_s"):
                    series.setdefault((label, metric), []).append((commit, value))
    return series


def _gated(label: str, metric: str) -> bool:
    """True iff a flattened (workload label, metric) series is gated."""
    workload = label.split("[", 1)[0]
    return (workload, metric) in TRAJECTORY_GATES


def detect_regressions(
    runs: Sequence[Mapping[str, Any]],
    bench: str,
    floor: float = NO_REGRESSION_FLOOR,
    confidence: float = PI_CONFIDENCE,
) -> List[SeriesCheck]:
    """Check the latest run of one trajectory against its history.

    Needs at least two entries (a latest and one historical point);
    shorter trajectories produce no checks.  Series that first appear in
    the latest entry have no history and are skipped the same way.
    """
    if len(runs) < 2:
        return []
    latest_commit = str(runs[-1].get("commit", "unknown"))
    checks: List[SeriesCheck] = []
    for (label, metric), points in sorted(_series(runs).items()):
        history = [v for c, v in points if c != latest_commit]
        latest = [v for c, v in points if c == latest_commit]
        if not latest or not history:
            continue
        value = latest[-1]
        best = max(history)
        ratio = value / best if best > 0 else None
        acc = Accumulator().add_all(history)
        pi_lower = (
            prediction_interval_lower(acc, confidence)
            if acc.count >= MIN_HISTORY
            else None
        )
        violated: List[str] = []
        if ratio is not None and ratio < floor:
            violated.append("floor")
        if pi_lower is not None and value < pi_lower:
            violated.append("ci")
        checks.append(
            SeriesCheck(
                bench=bench,
                workload=label,
                metric=metric,
                gated=_gated(label, metric),
                commit=latest_commit,
                value=value,
                n_history=len(history),
                best=best,
                ratio_vs_best=ratio,
                pi_lower=pi_lower,
                rules_violated=tuple(violated),
            )
        )
    return checks


def analyze_trajectories(
    docs: Sequence[Tuple[str, Sequence[Mapping[str, Any]]]],
    floor: float = NO_REGRESSION_FLOOR,
    confidence: float = PI_CONFIDENCE,
) -> RegressionReport:
    """Run :func:`detect_regressions` over several ``(bench, runs)`` docs."""
    report = RegressionReport(floor=floor, confidence=confidence)
    for bench, runs in docs:
        report.checked.extend(
            detect_regressions(runs, bench, floor=floor, confidence=confidence)
        )
    return report


def write_report(path: str, report: RegressionReport) -> None:
    """Write ``ANALYZE_report.json`` (sorted keys, byte-stable re-runs)."""
    with open(path, "w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
