"""Flat flood-fill region labeling: the local-algorithm baseline.

A third design point between the paper's hierarchical divide-and-conquer
and the centralized collection: **label propagation**.  Every feature node
starts with its own id (its Morton index) and repeatedly exchanges labels
with feature neighbours, adopting the minimum; when the network quiesces,
each region carries the id of its minimum member and counting regions
means counting nodes whose label equals their own id.

This is the classic "local algorithm" the parallel-labeling literature the
paper builds on (Alnuweiri & Prasanna [3]) uses as the baseline: simple,
fully local, no hierarchy — but its round complexity is the maximum
*intra-region* path length (worst case O(N) for a serpentine region,
vs the quad-tree's O(√N)), and every round touches every boundary edge.

Executed here on the virtual grid with the uniform cost model so it slots
directly into the E2-style comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.coords import GridCoord, morton_encode
from ..core.cost_model import (
    CostModel,
    EnergyLedger,
    PerformanceReport,
    UniformCostModel,
)
from ..core.network_model import OrientedGrid


@dataclass
class FloodFillResult:
    """Outcome of a flood-fill labeling round.

    ``labels`` maps every feature coordinate to its region's canonical id
    (the minimum Morton index in the region); ``rounds`` is the number of
    synchronous exchange rounds to quiescence.
    """

    labels: Dict[GridCoord, int]
    regions: int
    rounds: int
    ledger: EnergyLedger
    messages: int

    def areas(self) -> List[int]:
        """Sorted region areas (cell counts)."""
        counts: Dict[int, int] = {}
        for label in self.labels.values():
            counts[label] = counts.get(label, 0) + 1
        return sorted(counts.values())

    def report(self, latency_per_round: float = 1.0) -> PerformanceReport:
        """Standard metric bundle; latency = rounds (one slot each)."""
        return PerformanceReport.from_ledger(
            self.ledger,
            latency=self.rounds * latency_per_round,
            messages=self.messages,
            data_units=float(self.messages),
        )


def run_floodfill(
    feature_matrix: np.ndarray,
    cost_model: Optional[CostModel] = None,
    broadcast_per_round: bool = True,
) -> FloodFillResult:
    """Synchronous min-label propagation over the virtual grid.

    Each round, every feature node whose label changed in the previous
    round broadcasts it to its 4-neighbourhood (``broadcast_per_round``
    charges one tx per active node per round, one rx per feature
    neighbour — the radio broadcast advantage); nodes adopt the minimum
    label heard.  Terminates when no label changes.
    """
    feat = np.asarray(feature_matrix, dtype=bool)
    if feat.ndim != 2 or feat.shape[0] != feat.shape[1]:
        raise ValueError(f"feature matrix must be square, got {feat.shape}")
    side = feat.shape[0]
    grid = OrientedGrid(side)
    cm = cost_model or UniformCostModel()
    ledger = EnergyLedger()

    feature_nodes = [
        (x, y) for y in range(side) for x in range(side) if feat[y, x]
    ]
    labels: Dict[GridCoord, int] = {
        c: morton_encode(c) for c in feature_nodes
    }
    feature_set = set(feature_nodes)
    neighbours: Dict[GridCoord, List[GridCoord]] = {
        c: [n for n in grid.neighbors(c) if n in feature_set]
        for c in feature_nodes
    }

    active = set(feature_nodes)
    rounds = 0
    messages = 0
    while active:
        rounds += 1
        # transmit phase: every active node announces its label once
        heard: Dict[GridCoord, int] = {}
        for node in active:
            if not neighbours[node] and not broadcast_per_round:
                continue
            ledger.charge(node, cm.tx_energy(1.0), "tx")
            messages += 1
            for nbr in neighbours[node]:
                ledger.charge(nbr, cm.rx_energy(1.0), "rx")
                current = heard.get(nbr)
                if current is None or labels[node] < current:
                    heard[nbr] = labels[node]
        # adopt phase
        next_active = set()
        for node, best in heard.items():
            if best < labels[node]:
                labels[node] = best
                next_active.add(node)
        active = next_active

    regions = sum(1 for c, lab in labels.items() if lab == morton_encode(c))
    return FloodFillResult(
        labels=labels,
        regions=regions,
        rounds=rounds,
        ledger=ledger,
        messages=messages,
    )


def compare_three_designs(
    feature_matrix: np.ndarray,
    cost_model: Optional[CostModel] = None,
) -> Dict[str, Dict[str, float]]:
    """Quad-tree vs centralized vs flood-fill on the same input.

    Returns ``design -> {latency, total_energy, max_node_energy,
    messages, regions}`` for the three-way version of the Section 2
    comparison (experiment E2+).
    """
    from ..core.virtual_architecture import VirtualArchitecture
    from .centralized import run_centralized
    from .regions import feature_matrix_aggregation

    feat = np.asarray(feature_matrix, dtype=bool)
    side = feat.shape[0]
    out: Dict[str, Dict[str, float]] = {}

    va = VirtualArchitecture(side, cost_model=cost_model)
    dnc = va.execute(feature_matrix_aggregation(feat), charge_compute=False)
    dnc_report = dnc.report()
    out["quad-tree"] = {
        "latency": dnc_report.latency,
        "total_energy": dnc_report.total_energy,
        "max_node_energy": dnc_report.max_node_energy,
        "messages": float(dnc.messages),
        "regions": float(dnc.root_payload.total_regions()),
    }

    central = run_centralized(feat, cost_model=cost_model)
    central_report = central.report()
    out["centralized"] = {
        "latency": central_report.latency,
        "total_energy": central_report.total_energy,
        "max_node_energy": central_report.max_node_energy,
        "messages": float(central.messages),
        "regions": float(central.regions),
    }

    flood = run_floodfill(feat, cost_model=cost_model)
    flood_report = flood.report()
    out["flood-fill"] = {
        "latency": flood_report.latency,
        "total_energy": flood_report.total_energy,
        "max_node_energy": flood_report.max_node_energy,
        "messages": float(flood.messages),
        "regions": float(flood.regions),
    }
    return out
