"""Identification and labeling of homogeneous regions (Section 3.1/4.1).

The case-study algorithm as an :class:`~repro.core.synthesis.Aggregation`
(:class:`RegionAggregation`) pluggable into the synthesized Figure 4
program, plus a pure in-memory recursive version
(:func:`label_regions_quadtree`) used to validate the boundary-merge logic
independently of the program/executor machinery.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..core.coords import GridCoord, is_power_of_two
from ..core.synthesis import Aggregation
from .boundary import (
    Extent,
    MergeAccumulator,
    RegionSummary,
    cell_summary,
)


class RegionAggregation(Aggregation):
    """Boundary-merging aggregation for the region-labeling case study.

    Parameters
    ----------
    feature:
        ``coord -> bool``: is the PoC at ``coord`` a feature node for the
        query (Section 3.1's binary status)?
    sense_operations:
        Compute cost charged for the level-0 threshold comparison.
    """

    def __init__(
        self,
        feature: Callable[[GridCoord], bool],
        sense_operations: float = 1.0,
    ):
        self.feature = feature
        self.sense_operations = sense_operations

    def local(self, coord: GridCoord) -> RegionSummary:
        """Level-0 summary: the cell's own binary status."""
        return cell_summary(coord, bool(self.feature(coord)))

    def make_accumulator(self, corner: GridCoord, level: int) -> MergeAccumulator:
        """``mySubGraph[level]``: an accumulator over the level's block."""
        side = 2**level
        return MergeAccumulator((corner[0], corner[1], side, side))

    def merge(self, accumulator: MergeAccumulator, payload: RegionSummary) -> None:
        """Incremental merge of one child summary (any arrival order)."""
        accumulator.add(payload)

    def finalize(self, accumulator) -> RegionSummary:
        """Close out a completed level: stitch + re-summarize."""
        if isinstance(accumulator, RegionSummary):
            return accumulator  # level 0 is already a summary
        return accumulator.finalize()

    def size_of(self, payload: RegionSummary) -> float:
        """Message size = the boundary description's size."""
        return payload.size_units

    def local_operations(self, coord: GridCoord) -> float:
        return self.sense_operations

    def merge_operations(self, payload: RegionSummary) -> float:
        """Merging walks the incoming perimeter once."""
        return payload.size_units


class _FeatureMatrixPredicate:
    """``coord -> feat[y, x]`` as a picklable callable: space-partitioned
    runs ship the aggregation spec to shard worker processes, which a
    closure over the matrix could not survive."""

    def __init__(self, feat: np.ndarray):
        self.feat = feat

    def __call__(self, coord: GridCoord) -> bool:
        x, y = coord
        return bool(self.feat[y, x])


def feature_matrix_aggregation(feature_matrix: np.ndarray) -> RegionAggregation:
    """Build a :class:`RegionAggregation` from a boolean matrix indexed
    ``[y, x]`` (the output of ``repro.apps.fields``)."""
    feat = np.asarray(feature_matrix, dtype=bool)
    if feat.ndim != 2 or feat.shape[0] != feat.shape[1]:
        raise ValueError(f"feature matrix must be square 2-D, got {feat.shape}")
    return RegionAggregation(_FeatureMatrixPredicate(feat))


def label_regions_quadtree(feature_matrix: np.ndarray) -> RegionSummary:
    """Pure in-memory divide-and-conquer labeling (no network machinery).

    Recursively splits the grid into quadrants, summarizes 1x1 extents at
    the leaves, and merges upward — the exact data path of the distributed
    algorithm, executed depth-first.  The returned root summary's
    :meth:`~repro.apps.boundary.RegionSummary.total_regions` equals the
    4-connected component count of the matrix.
    """
    feat = np.asarray(feature_matrix, dtype=bool)
    if feat.ndim != 2 or feat.shape[0] != feat.shape[1]:
        raise ValueError(f"feature matrix must be square, got {feat.shape}")
    side = feat.shape[0]
    if not is_power_of_two(side):
        raise ValueError(f"side must be a power of two, got {side}")

    def solve(x0: int, y0: int, size: int) -> RegionSummary:
        if size == 1:
            return cell_summary((x0, y0), bool(feat[y0, x0]))
        half = size // 2
        acc = MergeAccumulator((x0, y0, size, size))
        for dy in (0, half):
            for dx in (0, half):
                acc.add(solve(x0 + dx, y0 + dy, half))
        return acc.finalize()

    return solve(0, 0, side)


def summary_statistics(summary: RegionSummary) -> dict:
    """Flat statistics of a summary for reports and benchmark rows."""
    return {
        "regions": summary.total_regions(),
        "open_regions": summary.open_count,
        "closed_regions": summary.closed_count,
        "perimeter_cells": len(summary.perimeter),
        "size_units": summary.size_units,
        "total_area": sum(summary.all_areas()),
    }
