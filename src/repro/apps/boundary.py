"""Feature-region boundary summaries and their divide-and-conquer merge.

The data exchanged between nodes of the case study *"represents boundaries
of feature regions"* (Section 4.1): a node overseeing a geographic extent
describes the feature regions inside it compactly — full detail only for
cells on the extent's **perimeter** (where regions may continue into
neighbouring extents), a bare count + areas for regions already **closed**
(entirely interior).  Merging the four quadrant summaries of a block
stitches regions that touch across the shared internal borders and then
re-summarizes at the block's perimeter, achieving the *"maximum data
compression"* the spatial-correlation constraint is designed for.  This is
the image-component-labeling strategy of Alnuweiri & Prasanna [3] that the
paper builds on.

Two objects implement it:

* :class:`RegionSummary` — the immutable, canonicalized payload
  transmitted upward (the ``msubGraph`` of Figure 4's message alphabet).
  Its :attr:`~RegionSummary.size_units` (perimeter length + closed-region
  count) is the message size charged to the cost model.
* :class:`MergeAccumulator` — the per-level ``mySubGraph[k]`` state: child
  summaries are added **incrementally in any order** (the asynchronous
  model's requirement); stitching happens on arrival and closure is
  resolved at :meth:`~MergeAccumulator.finalize`.

Correctness oracle (property-tested): the root summary's
:meth:`~RegionSummary.total_regions` equals the number of 4-connected
components of the feature matrix, and the multiset of region areas
matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.coords import GridCoord

Extent = Tuple[int, int, int, int]
"""An axis-aligned rectangle ``(x0, y0, width, height)`` in grid cells."""


def extent_cells_on_perimeter(extent: Extent) -> Set[GridCoord]:
    """All cells lying on the outer ring of ``extent``."""
    x0, y0, w, h = extent
    cells: Set[GridCoord] = set()
    for x in range(x0, x0 + w):
        cells.add((x, y0))
        cells.add((x, y0 + h - 1))
    for y in range(y0, y0 + h):
        cells.add((x0, y))
        cells.add((x0 + w - 1, y))
    return cells


def extent_contains(extent: Extent, cell: GridCoord) -> bool:
    """True iff ``cell`` lies inside ``extent``."""
    x0, y0, w, h = extent
    return x0 <= cell[0] < x0 + w and y0 <= cell[1] < y0 + h


def extents_disjoint(a: Extent, b: Extent) -> bool:
    """True iff the two rectangles share no cell."""
    ax, ay, aw, ah = a
    bx, by, bw, bh = b
    return ax + aw <= bx or bx + bw <= ax or ay + ah <= by or by + bh <= ay


@dataclass(frozen=True)
class RegionSummary:
    """Canonical boundary description of the feature regions in an extent.

    Attributes
    ----------
    extent:
        The geographic oversight of the summary.
    perimeter:
        Sorted tuple of ``((x, y), label)`` for every *feature* cell on
        the extent perimeter.  Labels are canonical: ``0..k-1`` in order
        of each open region's first perimeter cell (sorted by ``(y, x)``).
    open_areas:
        ``open_areas[label]`` is the total cell count of that open region
        within this extent.
    closed_count:
        Number of feature regions entirely interior to the extent.
    closed_areas:
        Sorted areas of the closed regions (len == closed_count).
    """

    extent: Extent
    perimeter: Tuple[Tuple[GridCoord, int], ...]
    open_areas: Tuple[int, ...]
    closed_count: int
    closed_areas: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.closed_count != len(self.closed_areas):
            raise ValueError("closed_count must match closed_areas length")
        labels = {lab for _, lab in self.perimeter}
        if labels != set(range(len(self.open_areas))):
            raise ValueError("perimeter labels must be canonical 0..k-1")

    @property
    def open_count(self) -> int:
        """Number of distinct open regions (touching the perimeter)."""
        return len(self.open_areas)

    @property
    def size_units(self) -> float:
        """Message size in data units: one per perimeter entry, one per
        closed region, plus a fixed header unit."""
        return float(len(self.perimeter) + len(self.closed_areas) + 1)

    def total_regions(self) -> int:
        """Region count, valid when the extent is the full monitored area
        (open regions are then complete regions)."""
        return self.closed_count + self.open_count

    def all_areas(self) -> List[int]:
        """Areas of all regions (closed + open), sorted — the query result
        for region-size enumeration at the root."""
        return sorted(list(self.closed_areas) + list(self.open_areas))

    def label_of(self, cell: GridCoord) -> Optional[int]:
        """The open-region label of a perimeter cell (None if absent)."""
        for c, lab in self.perimeter:
            if c == cell:
                return lab
        return None


def empty_summary(extent: Extent) -> RegionSummary:
    """Summary of an extent with no feature cells."""
    return RegionSummary(
        extent=extent, perimeter=(), open_areas=(), closed_count=0, closed_areas=()
    )


def cell_summary(cell: GridCoord, is_feature: bool) -> RegionSummary:
    """Level-0 summary of a single grid cell (Figure 4's ``mySubGraph[0]``
    computed "from intra-cell readings")."""
    extent: Extent = (cell[0], cell[1], 1, 1)
    if not is_feature:
        return empty_summary(extent)
    return RegionSummary(
        extent=extent,
        perimeter=((cell, 0),),
        open_areas=(1,),
        closed_count=0,
        closed_areas=(),
    )


class _UnionFind:
    """Union-find over hashable keys with path compression."""

    def __init__(self) -> None:
        self.parent: Dict[object, object] = {}

    def add(self, key: object) -> None:
        self.parent.setdefault(key, key)

    def find(self, key: object) -> object:
        root = key
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[key] != root:
            self.parent[key], key = root, self.parent[key]
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


class MergeAccumulator:
    """Incremental merger of child summaries into a parent extent.

    Children may arrive in any order; each :meth:`add` stitches the new
    summary's perimeter against everything already present.  When the
    children tile the parent extent, :meth:`finalize` produces the parent
    :class:`RegionSummary`.  (Finalizing early raises — closure of a
    region can only be decided against the complete parent perimeter.)
    """

    def __init__(self, extent: Extent):
        x0, y0, w, h = extent
        if w <= 0 or h <= 0:
            raise ValueError(f"degenerate extent {extent!r}")
        self.extent = extent
        self._children: List[RegionSummary] = []
        self._uf = _UnionFind()
        # global perimeter map: cell -> (child index, label)
        self._cell_class: Dict[GridCoord, Tuple[int, int]] = {}
        self._covered_cells = 0
        self._closed_count = 0
        self._closed_areas: List[int] = []

    @property
    def children_added(self) -> int:
        """How many child summaries have been merged so far."""
        return len(self._children)

    def is_complete(self) -> bool:
        """True iff the added child extents exactly tile the parent."""
        _, _, w, h = self.extent
        return self._covered_cells == w * h

    def add(self, summary: RegionSummary) -> None:
        """Merge one child summary (incremental; any order).

        Validates that the child extent lies inside the parent and is
        disjoint from previously added children.
        """
        ex = summary.extent
        x0, y0, w, h = ex
        px0, py0, pw, ph = self.extent
        if not (px0 <= x0 and py0 <= y0 and x0 + w <= px0 + pw and y0 + h <= py0 + ph):
            raise ValueError(
                f"child extent {ex!r} not contained in parent {self.extent!r}"
            )
        for prev in self._children:
            if not extents_disjoint(prev.extent, ex):
                raise ValueError(
                    f"child extent {ex!r} overlaps previous {prev.extent!r}"
                )
        idx = len(self._children)
        self._children.append(summary)
        self._covered_cells += w * h
        self._closed_count += summary.closed_count
        self._closed_areas.extend(summary.closed_areas)

        # register classes and stitch across shared borders
        for cell, label in summary.perimeter:
            self._uf.add((idx, label))
            self._cell_class[cell] = (idx, label)
        for cell, label in summary.perimeter:
            x, y = cell
            for nbr in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                if extent_contains(ex, nbr):
                    continue  # internal to this child; already same region
                other = self._cell_class.get(nbr)
                if other is not None:
                    self._uf.union((idx, label), other)

    def finalize(self) -> RegionSummary:
        """Produce the parent summary (requires a complete tiling)."""
        if not self.is_complete():
            raise ValueError(
                f"cannot finalize: children cover {self._covered_cells} of "
                f"{self.extent[2] * self.extent[3]} cells"
            )
        # accumulate areas per root class
        areas: Dict[object, int] = {}
        for idx, child in enumerate(self._children):
            counted: Set[int] = set()
            for _, label in child.perimeter:
                if label in counted:
                    continue
                counted.add(label)
                root = self._uf.find((idx, label))
                areas[root] = areas.get(root, 0) + child.open_areas[label]

        parent_ring = extent_cells_on_perimeter(self.extent)
        # classes that survive on the parent perimeter stay open
        surviving: Dict[object, List[GridCoord]] = {}
        for cell, cls in self._cell_class.items():
            if cell in parent_ring:
                surviving.setdefault(self._uf.find(cls), []).append(cell)

        closed_count = self._closed_count
        closed_areas = list(self._closed_areas)
        for root, area in areas.items():
            if root not in surviving:
                closed_count += 1
                closed_areas.append(area)

        # canonical relabeling by first perimeter cell in (y, x) order
        order = sorted(
            surviving.items(), key=lambda kv: min((c[1], c[0]) for c in kv[1])
        )
        relabel = {root: i for i, (root, _) in enumerate(order)}
        perimeter = tuple(
            sorted(
                (
                    (cell, relabel[self._uf.find(cls)])
                    for cell, cls in self._cell_class.items()
                    if cell in parent_ring
                ),
                key=lambda item: (item[0][1], item[0][0]),
            )
        )
        open_areas = tuple(areas[root] for root, _ in order)
        return RegionSummary(
            extent=self.extent,
            perimeter=perimeter,
            open_areas=open_areas,
            closed_count=closed_count,
            closed_areas=tuple(sorted(closed_areas)),
        )
