"""The case-study application layer (Sections 3–4).

Topographic querying via identification and labeling of homogeneous
regions: synthetic phenomenon fields, boundary summaries and their
divide-and-conquer merge, the region aggregation plugged into the
synthesized quad-tree program, the centralized baseline, distributed-
storage queries, and the reference oracles everything is tested against.
"""

from .boundary import (
    Extent,
    MergeAccumulator,
    RegionSummary,
    cell_summary,
    empty_summary,
)
from .centralized import CentralizedResult, compare_designs, run_centralized
from .floodfill import FloodFillResult, compare_three_designs, run_floodfill
from .fields import (
    CompositeField,
    GaussianBlobField,
    GradientField,
    NoisyField,
    PlateauField,
    ScalarField,
    StripeField,
    UniformField,
    feature_function,
    random_feature_matrix,
    sample_grid,
    threshold_features,
)
from .quadtree_app import RegionReport, TopographicQueryApp
from .queries import (
    DistributedStorage,
    QueryResult,
    count_regions_exact,
    count_regions_fast,
    enumerate_region_areas,
    feature_area_total,
    largest_region,
)
from .reference import (
    boundary_cell_count,
    count_regions,
    label_components,
    region_areas,
)
from .regions import (
    RegionAggregation,
    feature_matrix_aggregation,
    label_regions_quadtree,
    summary_statistics,
)
from .viz import (
    render_band_map,
    render_deployment,
    render_energy_map,
    render_feature_map,
    render_group_blocks,
    render_label_map,
)
from .statistics import (
    BandedLabeling,
    HistogramAggregation,
    TopKAggregation,
    banded_labeling,
    quantile_from_histogram,
    query_reading_range,
    rank_of_value,
)

__all__ = [
    "BandedLabeling",
    "CentralizedResult",
    "CompositeField",
    "DistributedStorage",
    "Extent",
    "FloodFillResult",
    "GaussianBlobField",
    "GradientField",
    "HistogramAggregation",
    "MergeAccumulator",
    "NoisyField",
    "PlateauField",
    "QueryResult",
    "RegionAggregation",
    "RegionReport",
    "RegionSummary",
    "ScalarField",
    "StripeField",
    "TopKAggregation",
    "TopographicQueryApp",
    "UniformField",
    "banded_labeling",
    "boundary_cell_count",
    "cell_summary",
    "compare_designs",
    "compare_three_designs",
    "count_regions",
    "count_regions_exact",
    "count_regions_fast",
    "empty_summary",
    "enumerate_region_areas",
    "feature_area_total",
    "feature_function",
    "feature_matrix_aggregation",
    "label_components",
    "label_regions_quadtree",
    "largest_region",
    "quantile_from_histogram",
    "query_reading_range",
    "random_feature_matrix",
    "rank_of_value",
    "region_areas",
    "render_band_map",
    "render_deployment",
    "render_energy_map",
    "render_feature_map",
    "render_group_blocks",
    "render_label_map",
    "run_centralized",
    "run_floodfill",
    "sample_grid",
    "summary_statistics",
    "threshold_features",
]
