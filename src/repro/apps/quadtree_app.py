"""The end-to-end topographic-querying application.

Wires the whole methodology together for the case study: a scalar field is
sampled at the points of coverage, thresholded into feature status, run
through the synthesized quad-tree program — on the virtual grid
(design-time) or on a physical deployment (the full stack) — and checked
against the centralized oracle.  This is the "networked sensing
application" box at the top of the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.cost_model import PerformanceReport
from ..core.executor import ExecutionResult, execute_round
from ..core.synthesis import SynthesizedProgram
from ..core.virtual_architecture import VirtualArchitecture
from .boundary import RegionSummary
from .fields import ScalarField, sample_grid, threshold_features
from .reference import count_regions, region_areas
from .regions import RegionAggregation, feature_matrix_aggregation


@dataclass
class RegionReport:
    """Result of one labeling round plus its cost metrics.

    ``correct`` compares the in-network result against the centralized
    oracle on the same feature matrix.
    """

    regions: int
    areas: list
    expected_regions: int
    expected_areas: list
    performance: PerformanceReport
    correct: bool = field(init=False)

    def __post_init__(self) -> None:
        self.correct = (
            self.regions == self.expected_regions
            and list(self.areas) == list(self.expected_areas)
        )


class TopographicQueryApp:
    """The case-study application over a virtual architecture.

    Parameters
    ----------
    architecture:
        The virtual architecture to design against.
    field_:
        The monitored phenomenon.
    threshold:
        Feature threshold of the query (Section 3.1).
    """

    def __init__(
        self,
        architecture: VirtualArchitecture,
        field_: ScalarField,
        threshold: float,
    ):
        self.architecture = architecture
        self.field = field_
        self.threshold = threshold
        self.readings = sample_grid(field_, architecture.side)
        self.feature_matrix = threshold_features(self.readings, threshold)
        self.aggregation: RegionAggregation = feature_matrix_aggregation(
            self.feature_matrix
        )

    def synthesize(self, max_level: Optional[int] = None) -> SynthesizedProgram:
        """The Figure 4 program for this query."""
        return self.architecture.synthesize(self.aggregation, max_level=max_level)

    def run_virtual(
        self,
        charge_compute: bool = True,
        max_level: Optional[int] = None,
    ) -> RegionReport:
        """One round on the virtual grid (design-time execution)."""
        result = self.architecture.execute(
            self.aggregation, max_level=max_level, charge_compute=charge_compute
        )
        return self._report(result)

    def execution_to_report(self, result: ExecutionResult) -> RegionReport:
        """Convert a raw execution (e.g. from a custom executor) into a
        checked report."""
        return self._report(result)

    def _report(self, result: ExecutionResult) -> RegionReport:
        summary = self._extract_summary(result.exfiltrated)
        return RegionReport(
            regions=summary.total_regions() if summary else 0,
            areas=summary.all_areas() if summary else [],
            expected_regions=count_regions(self.feature_matrix),
            expected_areas=region_areas(self.feature_matrix),
            performance=result.report(),
        )

    @staticmethod
    def _extract_summary(exfiltrated: Dict) -> Optional[RegionSummary]:
        if len(exfiltrated) != 1:
            raise ValueError(
                "full reduction expected exactly one exfiltrated summary, "
                f"got {len(exfiltrated)} (use queries.py for partial reductions)"
            )
        payload = next(iter(exfiltrated.values()))
        if not isinstance(payload, RegionSummary):
            raise TypeError(f"unexpected exfiltrated payload {type(payload)}")
        return payload

    def ascii_feature_map(self) -> str:
        """Render the feature matrix ('#' = feature cell) for reports."""
        rows = []
        for y in range(self.feature_matrix.shape[0]):
            rows.append(
                "".join(
                    "#" if self.feature_matrix[y, x] else "."
                    for x in range(self.feature_matrix.shape[1])
                )
            )
        return "\n".join(rows)
