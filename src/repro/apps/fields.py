"""Synthetic scalar fields: the monitored phenomenon.

The paper's application monitors *"the temperature over the entire terrain
with a certain granularity"*; feature nodes are those whose reading crosses
a query threshold (Section 3.1's binary status).  Real sensor traces are
unavailable, so these synthetic fields substitute (see DESIGN.md): each is
a deterministic function of position — Gaussian plumes (contaminant
monitoring), linear gradients (HVAC), plateaus, stripes — optionally
perturbed with seeded noise, giving full control over the number, size,
and shape of the homogeneous regions the labeling algorithm must find.

Fields are sampled at the points of coverage: :func:`sample_grid` produces
the per-PoC reading matrix and :func:`threshold_features` the binary
feature matrix the case study consumes.
"""

from __future__ import annotations

import abc
import math
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np


class ScalarField(abc.ABC):
    """A deterministic scalar phenomenon over normalized terrain coords.

    ``value(x, y)`` takes coordinates in ``[0, 1]^2`` (NW origin, y grows
    southward — matching the grid convention) and returns the reading.
    """

    @abc.abstractmethod
    def value(self, x: float, y: float) -> float:
        """Field value at normalized position ``(x, y)``."""

    def __add__(self, other: "ScalarField") -> "ScalarField":
        return CompositeField((self, other))


class UniformField(ScalarField):
    """Constant background level."""

    def __init__(self, level: float = 0.0):
        self.level = level

    def value(self, x: float, y: float) -> float:
        return self.level


class GaussianBlobField(ScalarField):
    """Sum of isotropic Gaussian plumes (hot spots / contaminant sources).

    ``blobs`` is a sequence of ``(cx, cy, sigma, amplitude)``.
    """

    def __init__(self, blobs: Sequence[Tuple[float, float, float, float]]):
        for _, _, sigma, _ in blobs:
            if sigma <= 0:
                raise ValueError("blob sigma must be positive")
        self.blobs = list(blobs)

    def value(self, x: float, y: float) -> float:
        total = 0.0
        for cx, cy, sigma, amp in self.blobs:
            d2 = (x - cx) ** 2 + (y - cy) ** 2
            total += amp * math.exp(-d2 / (2.0 * sigma * sigma))
        return total


class GradientField(ScalarField):
    """Linear ramp ``lo`` at the NW corner to ``hi`` at the SE corner along
    a configurable direction (HVAC-style temperature gradient)."""

    def __init__(self, lo: float = 0.0, hi: float = 1.0, angle: float = math.pi / 4):
        self.lo = lo
        self.hi = hi
        self.angle = angle

    def value(self, x: float, y: float) -> float:
        t = x * math.cos(self.angle) + y * math.sin(self.angle)
        tmax = abs(math.cos(self.angle)) + abs(math.sin(self.angle))
        return self.lo + (self.hi - self.lo) * (t / tmax if tmax else 0.0)


class PlateauField(ScalarField):
    """Axis-aligned rectangular plateaus on a background.

    ``plateaus`` is a sequence of ``(x0, y0, x1, y1, level)`` in normalized
    coordinates; later entries override earlier ones.
    """

    def __init__(
        self,
        plateaus: Sequence[Tuple[float, float, float, float, float]],
        background: float = 0.0,
    ):
        self.plateaus = list(plateaus)
        self.background = background

    def value(self, x: float, y: float) -> float:
        level = self.background
        for x0, y0, x1, y1, lvl in self.plateaus:
            if x0 <= x <= x1 and y0 <= y <= y1:
                level = lvl
        return level


class StripeField(ScalarField):
    """Periodic stripes (worst case for boundary compression: long
    boundaries, many regions)."""

    def __init__(self, period: float = 0.25, level: float = 1.0, vertical: bool = True):
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self.level = level
        self.vertical = vertical

    def value(self, x: float, y: float) -> float:
        t = x if self.vertical else y
        return self.level if (int(t / (self.period / 2.0)) % 2 == 0) else 0.0


class CompositeField(ScalarField):
    """Pointwise sum of fields."""

    def __init__(self, parts: Sequence[ScalarField]):
        self.parts = list(parts)

    def value(self, x: float, y: float) -> float:
        return sum(p.value(x, y) for p in self.parts)


class NoisyField(ScalarField):
    """A field plus per-cell deterministic pseudo-noise.

    Noise is a seeded hash of the *quantized* position, so repeated
    sampling of the same PoC yields the same reading — the repeatability
    the data-driven execution model assumes within one round.
    """

    def __init__(self, base: ScalarField, amplitude: float, seed: int = 0,
                 quantum: float = 1e-6):
        if amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        self.base = base
        self.amplitude = amplitude
        self.seed = seed
        self.quantum = quantum

    def value(self, x: float, y: float) -> float:
        qx = round(x / self.quantum)
        qy = round(y / self.quantum)
        h = hash((self.seed, qx, qy)) & 0xFFFFFFFF
        noise = (h / 0xFFFFFFFF) * 2.0 - 1.0
        return self.base.value(x, y) + self.amplitude * noise


def sample_grid(field: ScalarField, side: int) -> np.ndarray:
    """Sample a field at the PoC grid: cell centres of a ``side x side``
    decomposition of the unit square.  Returns readings indexed ``[y, x]``.
    """
    if side <= 0:
        raise ValueError("side must be positive")
    out = np.empty((side, side), dtype=float)
    for y in range(side):
        for x in range(side):
            out[y, x] = field.value((x + 0.5) / side, (y + 0.5) / side)
    return out


def threshold_features(readings: np.ndarray, threshold: float) -> np.ndarray:
    """Binary feature matrix: reading >= threshold (Section 3.1's
    "binary status (feature node or not a feature node) for the query")."""
    return np.asarray(readings, dtype=float) >= threshold


def feature_function(feature_matrix: np.ndarray) -> Callable[[Tuple[int, int]], bool]:
    """Adapter from a feature matrix to the coordinate predicate the
    aggregations consume (``coord=(x, y)`` -> ``matrix[y, x]``)."""
    feat = np.asarray(feature_matrix, dtype=bool)

    def fn(coord: Tuple[int, int]) -> bool:
        x, y = coord
        return bool(feat[y, x])

    return fn


def random_feature_matrix(
    side: int, density: float, rng: "np.random.Generator | int | None" = None
) -> np.ndarray:
    """I.i.d. Bernoulli feature matrix (stress input for property tests)."""
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    r = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    return r.random((side, side)) < density
