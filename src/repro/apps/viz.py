"""ASCII visualization of fields, labelings, deployments, and hierarchies.

The paper's application is *topographic querying* — "understanding the
graphical delineation of features of interest".  These renderers give the
examples and debugging sessions that delineation without any plotting
dependency: everything is monospace text.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.coords import GridCoord
from ..core.groups import HierarchicalGroups
from ..deployment.topology import RealNetwork
from .reference import label_components

#: Characters used for region labels (cycled when regions exceed the set).
LABEL_CHARS = "123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"


def render_feature_map(feature: np.ndarray, on: str = "#", off: str = ".") -> str:
    """Binary feature matrix as a character grid (row ``y`` per line)."""
    feat = np.asarray(feature, dtype=bool)
    if feat.ndim != 2:
        raise ValueError(f"feature matrix must be 2-D, got shape {feat.shape}")
    return "\n".join(
        "".join(on if feat[y, x] else off for x in range(feat.shape[1]))
        for y in range(feat.shape[0])
    )


def render_label_map(feature: np.ndarray, background: str = ".") -> str:
    """Label map: each 4-connected region rendered with its own character.

    Labels are assigned in scan order (the reference labeler's numbering),
    so the output is deterministic.
    """
    labels, count = label_components(np.asarray(feature, dtype=bool))
    h, w = labels.shape
    rows = []
    for y in range(h):
        row = []
        for x in range(w):
            lab = labels[y, x]
            row.append(
                background
                if lab == 0
                else LABEL_CHARS[(lab - 1) % len(LABEL_CHARS)]
            )
        rows.append("".join(row))
    return "\n".join(rows)


def render_band_map(readings: np.ndarray, edges: Sequence[float]) -> str:
    """Iso-band map: each reading band rendered with a distinct character —
    the paper's "visualizing gradients of sensor readings"."""
    data = np.asarray(readings, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"readings must be 2-D, got shape {data.shape}")
    edge_list = list(edges)
    if edge_list != sorted(edge_list):
        raise ValueError("band edges must be ascending")
    bins = np.digitize(data, edge_list, right=False)
    return "\n".join(
        "".join(LABEL_CHARS[int(bins[y, x]) % len(LABEL_CHARS)]
                for x in range(data.shape[1]))
        for y in range(data.shape[0])
    )


def render_deployment(
    network: RealNetwork,
    leaders: Optional[Dict[GridCoord, int]] = None,
    width: int = 64,
) -> str:
    """Terrain-scale scatter of the deployment.

    ``*`` marks ordinary nodes, ``L`` elected leaders, ``+`` cell-grid
    lines; resolution is ``width`` characters across the terrain.
    """
    side = network.cells.terrain.side
    height = max(8, width // 2)
    canvas = [[" "] * width for _ in range(height)]

    # cell boundaries
    per = network.cells.cells_per_side
    for k in range(per + 1):
        gx = min(int(k * width / per), width - 1)
        gy = min(int(k * height / per), height - 1)
        for y in range(height):
            canvas[y][gx] = "|" if canvas[y][gx] == " " else canvas[y][gx]
        for x in range(width):
            canvas[gy][x] = "-" if canvas[gy][x] == " " else canvas[gy][x]

    leader_ids = set(leaders.values()) if leaders else set()
    for nid, node in network.nodes.items():
        x = min(int(node.x / side * width), width - 1)
        y = min(int(node.y / side * height), height - 1)
        canvas[y][x] = "L" if nid in leader_ids else ("*" if node.alive else "x")
    return "\n".join("".join(row) for row in canvas)


def render_group_blocks(groups: HierarchicalGroups, level: int) -> str:
    """The level-``level`` block partition: leaders as ``L``, followers as
    the block's index character."""
    grid = groups.grid
    rows = []
    block_index: Dict[GridCoord, int] = {
        corner: i for i, corner in enumerate(
            groups.block_corner((x, y), level)
            for y in range(0, grid.height, groups.block_side(level))
            for x in range(0, grid.width, groups.block_side(level))
        )
    }
    for y in range(grid.height):
        row = []
        for x in range(grid.width):
            if groups.is_leader((x, y), level):
                row.append("L")
            else:
                idx = block_index[groups.block_corner((x, y), level)]
                row.append(LABEL_CHARS[idx % len(LABEL_CHARS)])
        rows.append("".join(row))
    return "\n".join(rows)


def render_energy_map(
    per_node: Dict[GridCoord, float], side: int, levels: str = " .:-=+*#%@"
) -> str:
    """Heat map of per-virtual-node energy consumption (hot spots show as
    dense characters)."""
    if side <= 0:
        raise ValueError("side must be positive")
    peak = max(per_node.values(), default=0.0)
    rows = []
    for y in range(side):
        row = []
        for x in range(side):
            v = per_node.get((x, y), 0.0)
            idx = 0 if peak == 0 else int(v / peak * (len(levels) - 1))
            row.append(levels[idx])
        rows.append("".join(row))
    return "\n".join(rows)
