"""Topographic queries over in-network distributed storage (Section 3.1).

*"Once this information is gathered and stored in the network, other
queries can be answered.  For example, a query to count the number of
regions of interest can obtain and sum the local counts of each of the
distributed storage nodes.  Processing and responding to queries could be
in most cases decoupled from the actual data gathering and boundary
estimation process."*

The storage configuration is produced by running the synthesized program
with ``max_level = L < maxrecLevel``: the reduction stops at the level-L
leaders, each holding the :class:`RegionSummary` of its block.  Queries
then run against this :class:`DistributedStorage`:

* :func:`count_regions_fast` — the paper's cheap query: sum the local
  counts.  Exact only when no region spans a storage-block boundary; the
  returned report carries the (known) overcount bound.
* :func:`count_regions_exact` — gather the stored summaries to the query
  point and merge them, paying the gather cost.
* :func:`enumerate_region_areas` — full region enumeration at the query
  point.
* range queries ("enumeration of regions with sensor readings in a
  specific range") live in ``repro.apps.statistics.query_reading_range``
  over a banded labeling.

Every query returns both its answer and its communication cost so the
decoupling claim (query cost independent of, and much smaller than, the
gathering cost) is measurable (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.coords import GridCoord
from ..core.cost_model import CostModel, EnergyLedger, UniformCostModel
from ..core.executor import ExecutionResult
from ..core.network_model import OrientedGrid
from .boundary import MergeAccumulator, RegionSummary


@dataclass
class DistributedStorage:
    """Per-block summaries held at the level-L storage leaders."""

    grid: OrientedGrid
    level: int
    summaries: Dict[GridCoord, RegionSummary]

    @classmethod
    def from_execution(
        cls, grid: OrientedGrid, level: int, result: ExecutionResult
    ) -> "DistributedStorage":
        """Build from a partial-reduction execution (``max_level=level``)."""
        summaries: Dict[GridCoord, RegionSummary] = {}
        for coord, payload in result.exfiltrated.items():
            if not isinstance(payload, RegionSummary):
                raise TypeError(f"storage leader {coord} holds {type(payload)}")
            summaries[coord] = payload
        expected = (grid.width // 2**level) * (grid.height // 2**level)
        if len(summaries) != expected:
            raise ValueError(
                f"expected {expected} storage leaders at level {level}, "
                f"got {len(summaries)}"
            )
        return cls(grid=grid, level=level, summaries=summaries)

    def leaders(self) -> List[GridCoord]:
        """The storage nodes, sorted."""
        return sorted(self.summaries)

    def counts(self) -> Dict[GridCoord, int]:
        """``cell -> local region count`` — the payload map the deployed
        query layer (:func:`~repro.runtime.query.run_deployed_query`, or a
        persistent :class:`~repro.serve.engine.QueryEngine`) serves for
        count queries."""
        return {c: s.total_regions() for c, s in self.summaries.items()}

    def payloads(self) -> Dict[GridCoord, RegionSummary]:
        """``cell -> stored summary`` — the payload map for deployed
        summary-shipping queries (exact counts, area enumeration)."""
        return dict(self.summaries)


@dataclass
class QueryResult:
    """A query answer plus its communication cost."""

    value: object
    energy: float
    latency: float
    messages: int


def _gather_cost(
    storage: DistributedStorage,
    query_point: GridCoord,
    size_of: Dict[GridCoord, float],
    cost_model: CostModel,
) -> Tuple[float, float, int]:
    """Cost of each storage leader sending ``size_of[leader]`` units to the
    query point over shortest grid routes (parallel sends)."""
    energy = 0.0
    latency = 0.0
    messages = 0
    for leader, size in size_of.items():
        if leader == query_point:
            continue
        hops = storage.grid.hop_distance(leader, query_point)
        energy += cost_model.path_energy(size, hops)
        latency = max(latency, cost_model.path_latency(size, hops))
        messages += 1
    return energy, latency, messages


def count_regions_fast(
    storage: DistributedStorage,
    query_point: GridCoord = (0, 0),
    cost_model: Optional[CostModel] = None,
) -> QueryResult:
    """The paper's cheap count: sum each storage node's local region count.

    Each leader sends a single unit (its count).  Regions spanning block
    boundaries are counted once per block they touch, so the value is an
    upper bound; it is exact whenever every stored summary has zero open
    regions crossing into a neighbouring block that also sees them.
    """
    cm = cost_model or UniformCostModel()
    total = sum(s.total_regions() for s in storage.summaries.values())
    energy, latency, messages = _gather_cost(
        storage, query_point, {c: 1.0 for c in storage.summaries}, cm
    )
    return QueryResult(value=total, energy=energy, latency=latency, messages=messages)


def count_regions_exact(
    storage: DistributedStorage,
    query_point: GridCoord = (0, 0),
    cost_model: Optional[CostModel] = None,
) -> QueryResult:
    """Exact count: gather the stored summaries and merge at the query
    point (each leader ships its full boundary description)."""
    cm = cost_model or UniformCostModel()
    acc = MergeAccumulator((0, 0, storage.grid.width, storage.grid.height))
    for summary in storage.summaries.values():
        acc.add(summary)
    merged = acc.finalize()
    energy, latency, messages = _gather_cost(
        storage,
        query_point,
        {c: s.size_units for c, s in storage.summaries.items()},
        cm,
    )
    return QueryResult(
        value=merged.total_regions(),
        energy=energy,
        latency=latency,
        messages=messages,
    )


def enumerate_region_areas(
    storage: DistributedStorage,
    query_point: GridCoord = (0, 0),
    cost_model: Optional[CostModel] = None,
) -> QueryResult:
    """Gather + merge, returning the sorted areas of every region."""
    cm = cost_model or UniformCostModel()
    acc = MergeAccumulator((0, 0, storage.grid.width, storage.grid.height))
    for summary in storage.summaries.values():
        acc.add(summary)
    merged = acc.finalize()
    energy, latency, messages = _gather_cost(
        storage,
        query_point,
        {c: s.size_units for c, s in storage.summaries.items()},
        cm,
    )
    return QueryResult(
        value=merged.all_areas(), energy=energy, latency=latency, messages=messages
    )


def largest_region(
    storage: DistributedStorage,
    query_point: GridCoord = (0, 0),
    cost_model: Optional[CostModel] = None,
) -> QueryResult:
    """Area of the largest feature region."""
    result = enumerate_region_areas(storage, query_point, cost_model)
    areas: List[int] = result.value  # type: ignore[assignment]
    return QueryResult(
        value=max(areas) if areas else 0,
        energy=result.energy,
        latency=result.latency,
        messages=result.messages,
    )


def feature_area_total(
    storage: DistributedStorage,
    query_point: GridCoord = (0, 0),
    cost_model: Optional[CostModel] = None,
) -> QueryResult:
    """Total feature area — exactly answerable from local scalars, so each
    leader sends one unit (the decoupling showcase: O(blocks) cost)."""
    cm = cost_model or UniformCostModel()
    total = sum(
        sum(s.all_areas()) for s in storage.summaries.values()
    )
    energy, latency, messages = _gather_cost(
        storage, query_point, {c: 1.0 for c in storage.summaries}, cm
    )
    return QueryResult(value=total, energy=energy, latency=latency, messages=messages)
