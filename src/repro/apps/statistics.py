"""Statistical computation primitives and banded topographic queries.

Section 2: *"Computation primitives could include summing, sorting, or
ranking a set of data values from a set of sensor nodes"* (citing the
fundamental-protocols work [5]).  Section 3.1 motivates queries such as
*"visualizing gradients of sensor readings across the region or other
queries such as enumeration of regions with sensor readings in a specific
range"*.

This module provides the data-value primitives as mergeable aggregations
(so they run through the same synthesized reduction as everything else)
and the range/banded queries on top of the region-labeling machinery:

* :class:`HistogramAggregation` — in-network histogram; exact quantile /
  rank queries then run against the root histogram
  (:func:`quantile_from_histogram`, :func:`rank_of_value`).
* :class:`TopKAggregation` — in-network top-k (the "ranking" primitive):
  each summary keeps the k largest readings with their coordinates.
* :func:`banded_labeling` — multi-threshold labeling: partition readings
  into bands and label the homogeneous regions of every band.
* :func:`query_reading_range` — "enumeration of regions with sensor
  readings in a specific range" over a banded labeling.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.coords import GridCoord
from ..core.synthesis import Aggregation
from .reference import count_regions, region_areas


class HistogramAggregation(Aggregation):
    """In-network histogram of per-node readings.

    ``edges`` are the bin boundaries (ascending); readings below the first
    edge land in bin 0, above the last in the final bin — the histogram
    has ``len(edges) + 1`` bins.  Summaries are count vectors and merge by
    elementwise addition, so the reduction is exact and order-independent.
    """

    def __init__(self, reading: Callable[[GridCoord], float], edges: Sequence[float]):
        edge_list = list(edges)
        if edge_list != sorted(edge_list):
            raise ValueError("histogram edges must be ascending")
        if not edge_list:
            raise ValueError("at least one edge is required")
        self.reading = reading
        self.edges = edge_list

    @property
    def num_bins(self) -> int:
        """Number of histogram bins (``len(edges) + 1``)."""
        return len(self.edges) + 1

    def _bin_of(self, value: float) -> int:
        return bisect.bisect_right(self.edges, value)

    def local(self, coord: GridCoord) -> List[int]:
        counts = [0] * self.num_bins
        counts[self._bin_of(float(self.reading(coord)))] = 1
        return counts

    def make_accumulator(self, corner: GridCoord, level: int) -> List[int]:
        return [0] * self.num_bins

    def merge(self, accumulator: List[int], payload: List[int]) -> None:
        for i, c in enumerate(payload):
            accumulator[i] += c

    def finalize(self, accumulator: List[int]) -> List[int]:
        return list(accumulator)

    def size_of(self, payload: List[int]) -> float:
        return float(self.num_bins)


def quantile_from_histogram(
    counts: Sequence[int], edges: Sequence[float], q: float
) -> float:
    """Approximate the q-quantile from a histogram.

    Returns the upper edge of the bin containing the quantile (the
    conventional conservative estimate; resolution is the bin width).
    Open-ended extreme bins return the adjacent edge.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        raise ValueError("empty histogram")
    target = q * total
    running = 0.0
    for i, c in enumerate(counts):
        running += c
        if running >= target:
            if i == 0:
                return float(edges[0])
            if i >= len(edges):
                return float(edges[-1])
            return float(edges[i])
    return float(edges[-1])


def rank_of_value(counts: Sequence[int], edges: Sequence[float], value: float) -> int:
    """Number of readings strictly below ``value``'s bin — the in-network
    "ranking" primitive's answer at histogram resolution."""
    b = bisect.bisect_right(list(edges), value)
    return int(sum(counts[:b]))


class TopKAggregation(Aggregation):
    """In-network top-k readings with their coordinates.

    The "sorting/ranking" primitive for the k hottest points of coverage:
    each summary is the k largest ``(reading, coord)`` pairs of its
    extent; merging keeps the k largest of the union.  Exact and
    order-independent.
    """

    def __init__(self, reading: Callable[[GridCoord], float], k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.reading = reading
        self.k = k

    def local(self, coord: GridCoord) -> List[Tuple[float, GridCoord]]:
        return [(float(self.reading(coord)), coord)]

    def make_accumulator(
        self, corner: GridCoord, level: int
    ) -> List[Tuple[float, GridCoord]]:
        return []

    def merge(self, accumulator: List, payload: List) -> None:
        accumulator.extend(payload)
        accumulator.sort(key=lambda rc: (-rc[0], rc[1]))
        del accumulator[self.k :]

    def finalize(self, accumulator: List) -> List[Tuple[float, GridCoord]]:
        out = sorted(accumulator, key=lambda rc: (-rc[0], rc[1]))
        return out[: self.k]

    def size_of(self, payload: List) -> float:
        return float(max(1, len(payload)))


@dataclass
class BandedLabeling:
    """Region labeling of every reading band.

    ``bands[i]`` covers readings in ``[edges[i-1], edges[i])`` with the
    usual open ends; each entry records the band's region count and areas.
    """

    edges: List[float]
    band_feature: List[np.ndarray]
    band_regions: List[int]
    band_areas: List[List[int]]

    @property
    def num_bands(self) -> int:
        """Number of bands (``len(edges) + 1``)."""
        return len(self.edges) + 1

    def band_of(self, value: float) -> int:
        """Index of the band containing ``value``."""
        return bisect.bisect_right(self.edges, value)


def banded_labeling(readings: np.ndarray, edges: Sequence[float]) -> BandedLabeling:
    """Label the homogeneous regions of every reading band.

    The multi-threshold generalization of the binary case study: the
    terrain is partitioned into iso-bands (the paper's "gradients of
    sensor readings" visualization) and each band's connected regions are
    labelled.  Uses the reference labeler; the in-network version runs one
    binary reduction per band (see ``bench_e7``-style cost analysis).
    """
    data = np.asarray(readings, dtype=float)
    edge_list = list(edges)
    if edge_list != sorted(edge_list):
        raise ValueError("band edges must be ascending")
    bands: List[np.ndarray] = []
    counts: List[int] = []
    areas: List[List[int]] = []
    bin_index = np.digitize(data, edge_list, right=False)
    for b in range(len(edge_list) + 1):
        feat = bin_index == b
        bands.append(feat)
        counts.append(count_regions(feat))
        areas.append(region_areas(feat))
    return BandedLabeling(
        edges=edge_list,
        band_feature=bands,
        band_regions=counts,
        band_areas=areas,
    )


def query_reading_range(
    labeling: BandedLabeling, lo: float, hi: float
) -> Dict[str, object]:
    """Enumerate regions with readings in ``[lo, hi)`` (Section 3.1's
    range query), answered from a banded labeling.

    Returns the per-band region counts and total area within the range.
    Bands partially overlapping the range are included whole (band
    resolution is the query's precision, as with any pre-computed
    banding).
    """
    if hi < lo:
        raise ValueError("hi must be >= lo")
    first = labeling.band_of(lo)
    last = labeling.band_of(hi - 1e-12) if hi > lo else first
    bands = list(range(first, last + 1))
    return {
        "bands": bands,
        "regions_per_band": [labeling.band_regions[b] for b in bands],
        "total_regions": sum(labeling.band_regions[b] for b in bands),
        "total_area": sum(sum(labeling.band_areas[b]) for b in bands),
    }
