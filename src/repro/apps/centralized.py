"""The centralized-collection baseline.

The counterpoint in the paper's Section 2 design-flow example: instead of
in-network divide-and-conquer merging, every node forwards its raw reading
to a single sink, which computes the labeling locally.  Correctness is
trivially that of the oracle; the interesting output is the cost profile —
``O(N**1.5)`` total energy, a serialized hot-spot sink — that the
quad-tree algorithm beats (experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.coords import GridCoord
from ..core.cost_model import (
    CostModel,
    EnergyLedger,
    PerformanceReport,
    UniformCostModel,
)
from ..core.network_model import OrientedGrid
from .reference import count_regions, region_areas


@dataclass
class CentralizedResult:
    """Outcome of one centralized collection round."""

    regions: int
    areas: List[int]
    ledger: EnergyLedger
    latency: float
    messages: int
    hop_units: float

    def report(self) -> PerformanceReport:
        """Standard metric bundle (benchmark row shape)."""
        return PerformanceReport.from_ledger(
            self.ledger,
            latency=self.latency,
            messages=self.messages,
            data_units=float(self.messages),
        )


def run_centralized(
    feature_matrix: np.ndarray,
    cost_model: Optional[CostModel] = None,
    sink: GridCoord = (0, 0),
    units_per_reading: float = 1.0,
    serial_sink: bool = True,
) -> CentralizedResult:
    """Collect every node's raw reading at ``sink`` and label there.

    Every non-sink node sends ``units_per_reading`` along the XY route to
    the sink; relays are charged tx+rx per hop.  With ``serial_sink`` the
    latency accounts for the sink radio receiving one message at a time
    (the physically honest model); otherwise only the longest route
    counts.
    """
    feat = np.asarray(feature_matrix, dtype=bool)
    if feat.ndim != 2 or feat.shape[0] != feat.shape[1]:
        raise ValueError(f"feature matrix must be square, got {feat.shape}")
    side = feat.shape[0]
    grid = OrientedGrid(side)
    grid.validate_member(sink)
    cm = cost_model or UniformCostModel()

    ledger = EnergyLedger()
    messages = 0
    hop_units = 0.0
    max_route_latency = 0.0
    for node in grid.nodes():
        if node == sink:
            continue
        path = grid.route(node, sink)
        hops = len(path) - 1
        for a, b in zip(path, path[1:]):
            ledger.charge(a, cm.tx_energy(units_per_reading), "tx")
            ledger.charge(b, cm.rx_energy(units_per_reading), "rx")
        messages += 1
        hop_units += units_per_reading * hops
        max_route_latency = max(
            max_route_latency, cm.path_latency(units_per_reading, hops)
        )

    if serial_sink:
        latency = max(
            max_route_latency, cm.tx_latency(units_per_reading) * messages
        )
    else:
        latency = max_route_latency

    return CentralizedResult(
        regions=count_regions(feat),
        areas=region_areas(feat),
        ledger=ledger,
        latency=latency,
        messages=messages,
        hop_units=hop_units,
    )


def compare_designs(
    feature_matrix: np.ndarray,
    cost_model: Optional[CostModel] = None,
    charge_compute: bool = False,
) -> dict:
    """Run both designs on the same input and tabulate the comparison.

    Returns the row dict used by experiment E2: latencies, energies,
    hot-spot loads, and the winner under each metric.
    """
    from ..core.virtual_architecture import VirtualArchitecture
    from .regions import feature_matrix_aggregation

    side = int(np.asarray(feature_matrix).shape[0])
    va = VirtualArchitecture(side, cost_model=cost_model)
    dnc = va.execute(
        feature_matrix_aggregation(feature_matrix), charge_compute=charge_compute
    )
    central = run_centralized(feature_matrix, cost_model=cost_model)
    dnc_report = dnc.report()
    central_report = central.report()
    return {
        "side": side,
        "dnc_latency": dnc_report.latency,
        "central_latency": central_report.latency,
        "dnc_energy": dnc_report.total_energy,
        "central_energy": central_report.total_energy,
        "dnc_max_node": dnc_report.max_node_energy,
        "central_max_node": central_report.max_node_energy,
        "latency_winner": (
            "divide-and-conquer"
            if dnc_report.latency < central_report.latency
            else "centralized"
        ),
        "energy_winner": (
            "divide-and-conquer"
            if dnc_report.total_energy < central_report.total_energy
            else "centralized"
        ),
        "energy_ratio": central_report.total_energy
        / max(dnc_report.total_energy, 1e-12),
    }
