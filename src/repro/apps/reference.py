"""Reference (centralized, oracle) algorithms for the case study.

These are the ground-truth computations every distributed result is tested
against: plain 4-connected component labeling of the binary feature matrix
and the derived region statistics.  Implemented with no dependency on the
rest of the stack so the oracle cannot share bugs with the system under
test.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def label_components(feature: np.ndarray) -> Tuple[np.ndarray, int]:
    """4-connected component labeling of a boolean matrix.

    Parameters
    ----------
    feature:
        2-D boolean array indexed ``[y, x]`` (row-major, matching the
        grid's north-west origin).

    Returns
    -------
    labels:
        Integer array of the same shape; 0 = background, components are
        numbered 1..count in scan order of their first cell.
    count:
        Number of components.
    """
    feat = np.asarray(feature, dtype=bool)
    if feat.ndim != 2:
        raise ValueError(f"feature matrix must be 2-D, got shape {feat.shape}")
    h, w = feat.shape
    labels = np.zeros((h, w), dtype=np.int64)
    count = 0
    for y in range(h):
        for x in range(w):
            if not feat[y, x] or labels[y, x]:
                continue
            count += 1
            stack = [(x, y)]
            labels[y, x] = count
            while stack:
                cx, cy = stack.pop()
                for nx, ny in ((cx + 1, cy), (cx - 1, cy), (cx, cy + 1), (cx, cy - 1)):
                    if 0 <= nx < w and 0 <= ny < h and feat[ny, nx] and not labels[ny, nx]:
                        labels[ny, nx] = count
                        stack.append((nx, ny))
    return labels, count


def count_regions(feature: np.ndarray) -> int:
    """Number of 4-connected feature regions."""
    return label_components(feature)[1]


def region_areas(feature: np.ndarray) -> List[int]:
    """Sorted areas (cell counts) of all feature regions."""
    labels, count = label_components(feature)
    if count == 0:
        return []
    areas = np.bincount(labels.ravel(), minlength=count + 1)[1:]
    return sorted(int(a) for a in areas)


def feature_fraction(feature: np.ndarray) -> float:
    """Fraction of cells that are feature cells."""
    feat = np.asarray(feature, dtype=bool)
    return float(feat.mean()) if feat.size else 0.0


def boundary_cell_count(feature: np.ndarray) -> int:
    """Number of feature cells adjacent to a non-feature cell or the grid
    edge — the quantity the boundary summaries compress toward."""
    feat = np.asarray(feature, dtype=bool)
    h, w = feat.shape
    count = 0
    for y in range(h):
        for x in range(w):
            if not feat[y, x]:
                continue
            on_boundary = x in (0, w - 1) or y in (0, h - 1)
            if not on_boundary:
                on_boundary = not (
                    feat[y, x - 1]
                    and feat[y, x + 1]
                    and feat[y - 1, x]
                    and feat[y + 1, x]
                )
            if on_boundary:
                count += 1
    return count
