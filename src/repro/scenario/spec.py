"""Scenario composition: one declarative world description (DESIGN.md §14).

A :class:`Scenario` bundles the four pluggable models — radio
(:mod:`~repro.scenario.link`), mobility, adversary, and traffic sources —
into a single dict-round-trippable value that travels anywhere a
``FaultPlan`` travels: ``run_application(scenario=...)``, sweep grid
axes, partition job blobs, serve configs.  Its fingerprint folds every
sub-model's fingerprint, and the :class:`ScenarioReport` produced by a
run folds what actually happened, so a seeded scenario run reproduces
byte-identically across serial, sharded-sweep, and partitioned execution.

A scenario whose only content is the :class:`UnitDisk` link model is
*trivial* — the stack drops it entirely, keeping the no-scenario fast
path (and its fingerprints) untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..core.coords import GridCoord
from ..simulator.trace import stable_digest
from .attacker import Attacker, AttackerOutcome
from .link import LinkModel, UnitDisk, link_model_from_dict
from .mobility import MobilityModel
from .sources import SourcePeriodModel


@dataclass(frozen=True)
class Scenario:
    """The world a run executes in: radio + mobility + adversary + sources."""

    link: Optional[LinkModel] = None
    mobility: Optional[MobilityModel] = None
    attacker: Optional[Attacker] = None
    sources: Optional[SourcePeriodModel] = None

    def is_trivial(self) -> bool:
        """True when the scenario changes nothing about a run."""
        return (
            (self.link is None or isinstance(self.link, UnitDisk))
            and not self.mobility
            and self.attacker is None
            and self.sources is None
        )

    def fingerprint(self) -> str:
        """Stable digest over every sub-model's declarative identity."""
        return stable_digest(
            (
                "scenario",
                "-" if self.link is None else self.link.fingerprint(),
                "-" if self.mobility is None else self.mobility.fingerprint(),
                "-" if self.attacker is None else self.attacker.fingerprint(),
                "-" if self.sources is None else self.sources.fingerprint(),
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (sweep params / JSON grids)."""
        out: Dict[str, Any] = {}
        if self.link is not None:
            out["link"] = self.link.to_dict()
        if self.mobility is not None:
            out["mobility"] = self.mobility.to_dicts()
        if self.attacker is not None:
            out["attacker"] = self.attacker.to_dict()
        if self.sources is not None:
            out["sources"] = self.sources.to_dict()
        return out

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`."""
        link = spec.get("link")
        mobility = spec.get("mobility")
        attacker = spec.get("attacker")
        sources = spec.get("sources")
        return cls(
            link=None if link is None else link_model_from_dict(link),
            mobility=None if mobility is None else MobilityModel.from_dicts(mobility),
            attacker=None if attacker is None else Attacker.from_dict(attacker),
            sources=None if sources is None else SourcePeriodModel.from_dict(sources),
        )

    @classmethod
    def coerce(
        cls, value: "Union[Scenario, Dict[str, Any], None]"
    ) -> "Optional[Scenario]":
        """Accept a Scenario, a plain dict, or None (API entry points)."""
        if value is None or isinstance(value, Scenario):
            return value
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise TypeError(f"scenario must be a Scenario, dict, or None, got {value!r}")


@dataclass
class ScenarioReport:
    """What the scenario actually did to a run.

    ``relocations`` records ``(time, node, old_cell, new_cell)`` as moves
    fired; ``link_faded`` counts packets the link model suppressed;
    source counters track the duty cycle; ``attacker`` is the post-hoc
    pursuit outcome.  :meth:`fingerprint` digests the whole record, and
    the stack folds it into the run fingerprint, so scenario effects are
    part of the reproducibility contract.
    """

    relocations: List[Tuple[float, int, GridCoord, GridCoord]] = field(
        default_factory=list
    )
    link_faded: int = 0
    source_emissions: int = 0
    source_skipped: int = 0
    attacker: Optional[AttackerOutcome] = None

    def fingerprint(self) -> str:
        return stable_digest(
            (
                tuple(self.relocations),
                self.link_faded,
                self.source_emissions,
                self.source_skipped,
                None if self.attacker is None else self.attacker.as_tuple(),
            )
        )

    def metrics(self) -> Dict[str, float]:
        """Flat numeric form for sweep records and bench rows."""
        out: Dict[str, float] = {
            "relocations": len(self.relocations),
            "link_faded": self.link_faded,
            "source_emissions": self.source_emissions,
            "source_skipped": self.source_skipped,
        }
        if self.attacker is not None:
            out.update(self.attacker.metrics())
        return out


def merge_scenario_reports(
    reports: Iterable[ScenarioReport],
) -> ScenarioReport:
    """Combine per-shard reports into the whole-world report.

    Counters sum (each shard counted only what it owned); relocations
    concatenate and re-sort into the canonical ``(time, node)`` order.
    The attacker outcome is NOT merged here — the pursuit is computed
    once, post-merge, over the combined delivery tap.
    """
    merged = ScenarioReport()
    for rep in reports:
        merged.relocations.extend(rep.relocations)
        merged.link_faded += rep.link_faded
        merged.source_emissions += rep.source_emissions
        merged.source_skipped += rep.source_skipped
    merged.relocations.sort(key=lambda r: (r[0], r[1]))
    return merged
