"""Eavesdropping pursuit adversary — source-location privacy (DESIGN.md §14).

The classic source-location-privacy threat model (Kamat et al., and the
``Attacker``/``AttackerConfiguration`` split in MBradbury's SLP
simulator): a patient adversary parks at the sink, overhears each radio
delivery to the node it currently sits at, and moves to the transmitter —
hop by hop it walks the reverse data path toward the traffic source.  The
privacy metric is whether (and when) it reaches a source.

Our adversary is *passive and post-hoc*: it must not perturb the run it
observes, or fingerprints would stop matching across execution modes.
The medium keeps a delivery tap — ``(time, transmitter, receiver)``
triples for packet kinds the attacker listens to — and the pursuit is
replayed over the time-sorted tap after the run ends.  Each delivery is
logged exactly once on the receiver's owning shard, so the merged
partitioned tap equals the serial tap and the resulting
:class:`AttackerOutcome` is byte-identical in every execution mode.

Cells name positions declaratively: the attacker starts at the arm-time
leader of ``start_cell`` (typically the quad-tree root) and captures when
it reaches the arm-time leader of any ``source_cell``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional, Sequence, Tuple

from ..core.coords import GridCoord
from ..simulator.trace import stable_digest

if TYPE_CHECKING:  # pragma: no cover
    from ..deployment.topology import RealNetwork

#: mirrors repro.runtime.routing.TRANSPORT_KIND (kept literal so the
#: scenario layer stays below the runtime layer in the import graph)
DEFAULT_LISTEN_KINDS: Tuple[str, ...] = ("transport",)


@dataclass(frozen=True)
class AttackerOutcome:
    """The privacy metric: did the pursuit reach a source, and how far?

    ``capture_time`` is ``-1.0`` when no capture happened; ``distance``
    is the final Euclidean distance from the attacker to the nearest
    source node (0.0 on capture), computed from post-run positions.
    """

    captured: bool
    capture_time: float
    moves: int
    final_node: int
    distance: float

    def fingerprint(self) -> str:
        return stable_digest(self.as_tuple())

    def as_tuple(self) -> Tuple[Any, ...]:
        return (self.captured, self.capture_time, self.moves,
                self.final_node, self.distance)

    def metrics(self) -> Dict[str, float]:
        """Flat numeric form for sweep records and bench rows."""
        return {
            "attacker_captured": int(self.captured),
            "attacker_capture_time": self.capture_time,
            "attacker_moves": self.moves,
            "attacker_distance": self.distance,
        }


@dataclass(frozen=True)
class Attacker:
    """Declarative pursuit-adversary configuration.

    ``move_cooldown`` models the adversary's travel time: after a hop it
    ignores overheard deliveries until the cooldown elapses (0 = the
    idealized instantly-moving adversary).
    """

    start_cell: GridCoord
    source_cells: Tuple[GridCoord, ...]
    move_cooldown: float = 0.0
    listen_kinds: Tuple[str, ...] = DEFAULT_LISTEN_KINDS

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "start_cell", (int(self.start_cell[0]), int(self.start_cell[1]))
        )
        object.__setattr__(
            self,
            "source_cells",
            tuple((int(c[0]), int(c[1])) for c in self.source_cells),
        )
        object.__setattr__(self, "listen_kinds", tuple(self.listen_kinds))
        if not self.source_cells:
            raise ValueError("attacker needs at least one source cell")
        if self.move_cooldown < 0:
            raise ValueError(f"move_cooldown must be >= 0, got {self.move_cooldown}")
        if not self.listen_kinds:
            raise ValueError("attacker needs at least one listen kind")

    def fingerprint(self) -> str:
        return stable_digest(
            ("attacker", self.start_cell, self.source_cells,
             self.move_cooldown, self.listen_kinds)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "start_cell": list(self.start_cell),
            "source_cells": [list(c) for c in self.source_cells],
            "move_cooldown": self.move_cooldown,
            "listen_kinds": list(self.listen_kinds),
        }

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "Attacker":
        return cls(
            start_cell=tuple(spec["start_cell"]),
            source_cells=tuple(tuple(c) for c in spec["source_cells"]),
            move_cooldown=float(spec.get("move_cooldown", 0.0)),
            listen_kinds=tuple(spec.get("listen_kinds", DEFAULT_LISTEN_KINDS)),
        )

    # -- post-hoc pursuit ----------------------------------------------------------

    def pursue(
        self,
        deliveries: Iterable[Tuple[float, int, int]],
        start_node: Optional[int],
        source_nodes: Sequence[int],
        network: "RealNetwork",
    ) -> AttackerOutcome:
        """Replay the pursuit over a time-sorted delivery tap.

        ``deliveries`` must already be sorted by ``(time, src, receiver)``
        — the canonical order both the serial and the merged partitioned
        tap are put in, which is what makes the outcome execution-mode
        independent.
        """
        sources = set(source_nodes)
        if start_node is None or not sources:
            return AttackerOutcome(
                captured=False, capture_time=-1.0, moves=0,
                final_node=-1, distance=-1.0,
            )
        position = start_node
        moves = 0
        ready = 0.0
        captured = position in sources
        capture_time = 0.0 if captured else -1.0
        if not captured:
            for time, src, receiver in deliveries:
                if receiver != position or time < ready or src == position:
                    continue
                position = src
                moves += 1
                ready = time + self.move_cooldown
                if position in sources:
                    captured = True
                    capture_time = time
                    break
        if captured:
            distance = 0.0
        else:
            pos = network.node(position).position
            distance = min(
                math.hypot(
                    pos[0] - network.node(s).position[0],
                    pos[1] - network.node(s).position[1],
                )
                for s in sources
            )
        return AttackerOutcome(
            captured=captured,
            capture_time=capture_time,
            moves=moves,
            final_node=position,
            distance=distance,
        )
